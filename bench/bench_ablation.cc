// E13 — Design-choice ablations (paper §2.4, §6.1, Observation 1).
//
// Four knobs the paper discusses qualitatively, quantified:
//   (a) redundancy R — the backup links kept per slot ("in the current
//       implementation, two" backups, §2.4): their cost in space and
//       their value as instant failover when primaries die;
//   (b) root multiplicity + query retry (Observation 1): tolerance of
//       root failures *without* waiting for soft-state republish;
//   (c) PRR-style secondary search during location (§2.4): stretch
//       improvement vs probe traffic;
//   (d) the power of indirection (§6.1): Tapestry's pointer trails vs a
//       plain store-at-root DHT on the *identical* locality-optimal mesh.
#include "bench_util.h"
#include "src/baselines/root_store.h"
#include "src/baselines/tapestry_scheme.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

constexpr std::size_t kNodes = 512;

// ------------------------------------------------------- (a) redundancy R

struct RResult {
  unsigned R;
  double entries_per_node;
  double repair_msgs_per_route;  // lazy-repair traffic paid after failures
};

RResult run_redundancy(unsigned R, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", kNodes + 8, rng);
  TapestryParams params = default_params();
  params.redundancy = R;
  auto net = build_static(*space, kNodes, params, seed);
  const double entries =
      double(net->total_table_entries()) / double(kNodes);

  // Kill 15% of nodes, then route from everywhere: every dead-primary
  // encounter triggers lazy repair.  With backups (R > 1), a stored
  // secondary takes over for the price of a probe; with R = 1, every
  // emptied slot escalates to replacement searches (local peers, then a
  // prefix multicast) — the traffic difference is what R buys.
  Rng wl(seed ^ 0x99);
  for (std::size_t i = 0; i < kNodes * 15 / 100; ++i) {
    const auto ids = net->node_ids();
    net->fail(ids[wl.next_u64(ids.size())]);
  }
  const auto ids = net->node_ids();
  Trace t;
  const int kRoutes = 300;
  for (int q = 0; q < kRoutes; ++q) {
    const Guid guid = bench_guid(*net, 9000 + q);
    const NodeId src = ids[wl.next_u64(ids.size())];
    (void)net->route_to_root(src, guid, &t);
  }
  return RResult{R, entries, double(t.messages()) / kRoutes};
}

// --------------------------------- (b) multi-root retry (Observation 1)

struct RootResult {
  unsigned roots;
  bool retry;
  double success_after_root_failure;
  double locate_msgs;
};

RootResult run_roots(unsigned roots, bool retry, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", kNodes + 8, rng);
  TapestryParams params = default_params();
  params.root_multiplicity = roots;
  params.retry_all_roots = retry;
  auto net = build_static(*space, kNodes, params, seed);

  Rng wl(seed ^ 0x22);
  std::size_t ok = 0, total = 0;
  Summary msgs;
  for (int obj = 0; obj < 120; ++obj) {
    const Guid guid = bench_guid(*net, 400 + obj);
    const auto ids = net->node_ids();  // refresh: earlier roots have died
    const NodeId server = ids[wl.next_u64(ids.size())];
    net->publish(server, guid);
    // Fail the primary root (salt 0) unless it is the server itself.
    const NodeId root0 = net->surrogate_root(salted_guid(guid, 0));
    if (root0 == server || !net->contains(root0)) continue;
    net->fail(root0);
    for (int q = 0; q < 3; ++q) {
      auto live_ids = net->node_ids();
      const NodeId client = live_ids[wl.next_u64(live_ids.size())];
      Trace t;
      const LocateResult r = net->locate(client, guid, &t);
      ++total;
      if (r.found) ++ok;
      msgs.add(double(t.messages()));
    }
    // Restore invariants for the next object (oracle reset).
    net->heartbeat_sweep();
    net->republish_all();
  }
  return RootResult{roots, retry, double(ok) / double(total), msgs.mean()};
}

// ------------------------------------- (c) PRR secondary search (§2.4)

struct SearchResult {
  bool enabled;
  double stretch_near;  // ring-adjacent pairs
  double stretch_all;
  double msgs_per_locate;
  double msgs_per_publish;
};

SearchResult run_search(bool enabled, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", kNodes + 8, rng);
  TapestryParams params = default_params();
  params.prr_secondary_search = enabled;
  auto net = build_static(*space, kNodes, params, seed);
  Rng wl(seed ^ 0x33);
  const auto ids = net->node_ids();
  Summary near, all, msgs, pub_msgs;
  for (int q = 0; q < 400; ++q) {
    const Guid guid = bench_guid(*net, 700 + q);
    const std::size_t si = wl.next_u64(ids.size());
    Trace pt;
    net->publish(ids[si], guid, &pt);
    pub_msgs.add(double(pt.messages()));
    // Near pair: ring-adjacent location; far pair: uniform.
    const std::size_t near_ci = (si + 1) % ids.size();
    const std::size_t far_ci = wl.next_u64(ids.size());
    Trace t;
    const LocateResult rn = net->locate(ids[near_ci], guid, &t);
    const LocateResult rf = net->locate(ids[far_ci], guid, &t);
    msgs.add(double(t.messages()) / 2.0);
    const double dn = net->distance(ids[near_ci], ids[si]);
    const double df = net->distance(ids[far_ci], ids[si]);
    if (rn.found && dn > 1e-9) near.add(rn.latency / dn);
    if (rf.found && df > 1e-9) all.add(rf.latency / df);
  }
  return SearchResult{enabled, near.mean(), all.mean(), msgs.mean(),
                      pub_msgs.mean()};
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E13 — design-choice ablations",
               "§2.4 backups & secondary search; Observation 1 multi-root "
               "retry; §6.1 the power of indirection");

  // (a) redundancy R
  {
    const std::vector<unsigned> rs{1, 2, 3, 4};
    const auto results = run_trials<RResult>(rs.size(), [&](std::size_t i) {
      return run_redundancy(rs[i], 6100 + i);
    });
    std::printf("\n(a) redundancy R: backup links per slot (§2.4)\n");
    TextTable t({"R", "entries/node", "msgs/route after 15% failures"});
    for (const auto& r : results)
      t.add_row({fmt(std::size_t{r.R}), fmt(r.entries_per_node, 1),
                 fmt(r.repair_msgs_per_route, 1)});
    t.print();
  }

  // (b) multi-root retry
  {
    struct Cfg {
      unsigned roots;
      bool retry;
    };
    const std::vector<Cfg> cfgs{{1, false}, {2, false}, {2, true}, {4, true}};
    const auto results = run_trials<RootResult>(cfgs.size(), [&](std::size_t i) {
      return run_roots(cfgs[i].roots, cfgs[i].retry, 6200 + i);
    });
    std::printf("\n(b) root multiplicity + retry (Observation 1): queries "
                "issued right after the salt-0 root fails, before any "
                "republish\n");
    TextTable t({"roots", "retry", "success", "msgs/locate"});
    for (const auto& r : results)
      t.add_row({fmt(std::size_t{r.roots}), r.retry ? "yes" : "no",
                 fmt(r.success_after_root_failure * 100, 1) + "%",
                 fmt(r.locate_msgs, 1)});
    t.print();
  }

  // (c) PRR secondary search
  {
    const std::vector<bool> modes{false, true};
    const auto results = run_trials<SearchResult>(modes.size(), [&](std::size_t i) {
      return run_search(modes[i], 6300 + i);
    });
    std::printf("\n(c) PRR-style secondary search during location (§2.4)\n");
    TextTable t({"secondary search", "stretch (adjacent pairs)",
                 "stretch (uniform pairs)", "msgs/locate", "msgs/publish"});
    for (const auto& r : results)
      t.add_row({r.enabled ? "on (PRR)" : "off (Tapestry)",
                 fmt(r.stretch_near, 2), fmt(r.stretch_all, 2),
                 fmt(r.msgs_per_locate, 1), fmt(r.msgs_per_publish, 1)});
    t.print();
  }

  // (d) power of indirection
  {
    Rng rng(6400);
    auto space = make_space("ring", kNodes + 8, rng);
    TapestryScheme tap_scheme(*space, default_params(), 6400);
    RootStoreOverlay root_scheme(*space, default_params(), 6400);
    for (std::size_t i = 0; i < kNodes; ++i) {
      tap_scheme.add_node(i, nullptr);
      root_scheme.add_node(i, nullptr);
    }
    tap_scheme.network().rebuild_static_tables();
    root_scheme.finalize();

    Rng wl(6401);
    Summary tap_near, root_near, tap_all, root_all;
    for (int q = 0; q < 500; ++q) {
      const std::uint64_t key = 12000 + q;
      const std::size_t server = wl.next_u64(kNodes);
      tap_scheme.publish(server, key, nullptr);
      root_scheme.publish(server, key, nullptr);
      for (const bool near : {true, false}) {
        const std::size_t client =
            near ? (server + 1) % kNodes : wl.next_u64(kNodes);
        if (client == server) continue;
        const double direct = space->distance(client, server);
        if (direct < 1e-9) continue;
        const SchemeLocate rt = tap_scheme.locate(client, key, nullptr);
        const SchemeLocate rr = root_scheme.locate(client, key, nullptr);
        if (rt.found) (near ? tap_near : tap_all).add(rt.latency / direct);
        if (rr.found) (near ? root_near : root_all).add(rr.latency / direct);
      }
    }
    std::printf("\n(d) the power of indirection (§6.1): identical mesh, "
                "pointer trails vs store-at-root\n");
    TextTable t({"object mapping", "stretch (adjacent pairs)",
                 "stretch (uniform pairs)"});
    t.add_row({"pointer trail (tapestry)", fmt(tap_near.mean(), 1),
               fmt(tap_all.mean(), 2)});
    t.add_row({"store-at-root (plain DHT)", fmt(root_near.mean(), 1),
               fmt(root_all.mean(), 2)});
    t.print();
  }

  std::printf(
      "\nreading guide: (a) each extra backup costs ~b entries per level\n"
      "and slashes post-failure repair traffic — R=3 (the paper's\n"
      "primary+two-backups) is the knee; (b) Observation 1's retry turns\n"
      "root failure from a ~1/roots outage into a few extra messages;\n"
      "(c) reproduces §2.4's *simplification argument*: with R-closest\n"
      "tables, the query's primaries already sit on the publish path, so\n"
      "PRR's secondary machinery mostly adds probe/publish traffic —\n"
      "empirical support for Tapestry's primary-only design 'performing\n"
      "well in practice'; (d) pointer trails, not the mesh, deliver the\n"
      "locality: store-at-root on the same mesh loses the nearby-object\n"
      "advantage entirely (§6.1).\n");
  return 0;
}
