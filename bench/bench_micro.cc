// E12 — Local computation micro-costs.
//
// The paper's cost model (§3) charges only network traffic and ignores
// local computation, arguing none of it is time-consuming.  This benchmark
// substantiates that for our implementation: identifier manipulation,
// neighbor-set updates, routing-table scans and per-hop route decisions
// all run in nanoseconds-to-microseconds, orders of magnitude below any
// realistic network RTT.
//
// Two harnesses share this file:
//   * google-benchmark suites (when the library is available) — the
//     classic BM_ microbenchmarks, including a bitmask-vs-reference pair
//     for the select_slot hot path;
//   * a hand-rolled harness behind --json (no gbench dependency) that
//     times Router::select_slot against select_slot_reference on the same
//     deterministic workload, verifies digit-for-digit agreement, and
//     emits the metrics the perf-smoke CI job gates via
//     tools/check_bench.py.  Absolute nanoseconds are machine-dependent;
//     the gated metrics are the *ratio* (bitmask speedup) and the exact
//     agreement/work counters.
#include <chrono>
#include <cstring>

#include "bench_util.h"

#ifdef TAPESTRY_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace tap;
using namespace tap::bench;

// --------------------------------------------------------------------
// Shared select_slot workload: a static overlay whose deeper rows are
// mostly holes (the case the occupancy bitmask accelerates — the
// reference scan probes every slot of a row to find the lone self-entry).
// --------------------------------------------------------------------

struct SlotWorkload {
  std::unique_ptr<MetricSpace> space;
  std::unique_ptr<Network> net;
  std::vector<const TapestryNode*> nodes;
  struct Probe {
    std::uint32_t node;
    unsigned level;
    unsigned desired;
  };
  std::vector<Probe> probes;
};

SlotWorkload make_slot_workload(std::size_t n, std::uint64_t seed) {
  SlotWorkload w;
  Rng rng(seed);
  w.space = make_space("ring", n + 8, rng);
  w.net = build_static(*w.space, n, default_params(), seed);
  for (const auto& node : w.net->registry().nodes())
    if (node->alive) w.nodes.push_back(node.get());
  Rng wl(seed ^ 0x51a7);
  const unsigned digits = w.net->params().id.num_digits;
  const unsigned radix = w.net->params().id.radix();
  for (int i = 0; i < 4096; ++i)
    w.probes.push_back({static_cast<std::uint32_t>(wl.next_u64(w.nodes.size())),
                        static_cast<unsigned>(wl.next_u64(digits)),
                        static_cast<unsigned>(wl.next_u64(radix))});
  return w;
}

/// One full pass over the workload; returns a checksum of chosen digits
/// (keeps the optimizer honest and doubles as the agreement witness).
template <typename SelectFn>
std::uint64_t slot_pass(const SlotWorkload& w, SelectFn&& select) {
  std::uint64_t sum = 0;
  for (const auto& p : w.probes) {
    bool past_hole = false;
    const auto j =
        select(*w.nodes[p.node], p.level, p.desired, past_hole);
    sum = sum * 31 + (j.has_value() ? *j + 1 : 0) + (past_hole ? 7 : 0);
  }
  return sum;
}

double best_pass_ms(const std::function<std::uint64_t()>& pass, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    volatile std::uint64_t sink = pass();
    (void)sink;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < best) best = ms;
  }
  return best;
}

// --------------------------------------------------------------------
// Hand-rolled harness (also the --json CI path)
// --------------------------------------------------------------------

int run_handrolled(bool json) {
  const SlotWorkload w = make_slot_workload(512, 42);
  const Router& router = w.net->router();

  auto bitmask_pass = [&] {
    return slot_pass(w, [&](const TapestryNode& at, unsigned l, unsigned d,
                            bool& ph) { return router.select_slot(at, l, d, ph); });
  };
  auto reference_pass = [&] {
    return slot_pass(w, [&](const TapestryNode& at, unsigned l, unsigned d,
                            bool& ph) {
      return router.select_slot_reference(at, l, d, ph);
    });
  };

  const std::uint64_t sum_bitmask = bitmask_pass();
  const std::uint64_t sum_reference = reference_pass();
  const bool agree = sum_bitmask == sum_reference;

  // Warm, then take the best of several timed passes of many workload
  // sweeps each — enough work to dwarf clock granularity.
  constexpr int kSweeps = 64;
  const double ms_bitmask = best_pass_ms(
      [&] {
        std::uint64_t s = 0;
        for (int i = 0; i < kSweeps; ++i) s ^= bitmask_pass();
        return s;
      },
      5);
  const double ms_reference = best_pass_ms(
      [&] {
        std::uint64_t s = 0;
        for (int i = 0; i < kSweeps; ++i) s ^= reference_pass();
        return s;
      },
      5);
  const double speedup = ms_bitmask > 0.0 ? ms_reference / ms_bitmask : 1.0;
  const double ns_per_bitmask =
      ms_bitmask * 1e6 / (kSweeps * double(w.probes.size()));
  const double ns_per_reference =
      ms_reference * 1e6 / (kSweeps * double(w.probes.size()));

  // Full peek routes over the const read path (informational timing plus
  // a deterministic hop counter the baseline can gate exactly).
  const auto ids = w.net->node_ids();
  std::size_t peek_hops = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int q = 0; q < 2000; ++q) {
    const Guid guid = bench_guid(*w.net, 900 + q);
    peek_hops +=
        w.net->router().route_to_root_peek(ids[q % ids.size()], guid).hops;
  }
  const double peek_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - t0)
                             .count() /
                         2000.0;

  if (json) {
    std::printf(
        "{\"bench\":\"bench_micro\",\"metrics\":{"
        "\"select_slot_agreement\":%d,\"select_slot_speedup\":%.3f,"
        "\"select_slot_ns_bitmask\":%.2f,\"select_slot_ns_reference\":%.2f,"
        "\"peek_route_hops_2000q\":%zu,\"peek_route_us\":%.2f}}\n",
        agree ? 1 : 0, speedup, ns_per_bitmask, ns_per_reference, peek_hops,
        peek_us);
    return agree ? 0 : 1;
  }

  print_header("E12 — local micro-costs (hand-rolled)",
               "§3 cost model: local computation is negligible; occupancy "
               "bitmasks accelerate the select_slot hot path");
  std::printf("select_slot: bitmask %.1f ns/op, reference %.1f ns/op "
              "(%.2fx speedup), agreement %s\n",
              ns_per_bitmask, ns_per_reference, speedup,
              agree ? "exact" : "BROKEN");
  std::printf("route_to_root_peek: %.2f us/route (%zu hops over 2000 "
              "routes, const read path)\n",
              peek_us, peek_hops);
  return agree ? 0 : 1;
}

// --------------------------------------------------------------------
// google-benchmark suites
// --------------------------------------------------------------------

#ifdef TAPESTRY_HAVE_GBENCH

void BM_IdDigitExtraction(benchmark::State& state) {
  const IdSpec spec{4, 10};
  Rng rng(1);
  const Id id = Id::random(spec, rng);
  unsigned acc = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < spec.num_digits; ++i) acc += id.digit(i);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_IdDigitExtraction);

void BM_IdCommonPrefix(benchmark::State& state) {
  const IdSpec spec{4, 10};
  Rng rng(2);
  std::vector<Id> ids;
  for (int i = 0; i < 256; ++i) ids.push_back(Id::random(spec, rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ids[i % 256].common_prefix_len(ids[(i + 1) % 256]));
    ++i;
  }
}
BENCHMARK(BM_IdCommonPrefix);

void BM_NeighborSetConsider(benchmark::State& state) {
  const IdSpec spec{4, 10};
  Rng rng(3);
  NeighborSet set(3);
  std::vector<NodeId> ids;
  for (int i = 0; i < 1024; ++i) ids.push_back(Id::random(spec, rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.consider(ids[i % 1024], rng.next_double()));
    ++i;
  }
}
BENCHMARK(BM_NeighborSetConsider);

void BM_SelectSlotBitmask(benchmark::State& state) {
  static const SlotWorkload w = make_slot_workload(512, 42);
  const Router& router = w.net->router();
  for (auto _ : state) {
    benchmark::DoNotOptimize(slot_pass(
        w, [&](const TapestryNode& at, unsigned l, unsigned d, bool& ph) {
          return router.select_slot(at, l, d, ph);
        }));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.probes.size()));
  state.SetLabel("occupancy-mask slot scan, 4096 probes/iter");
}
BENCHMARK(BM_SelectSlotBitmask)->Unit(benchmark::kMicrosecond);

void BM_SelectSlotReference(benchmark::State& state) {
  static const SlotWorkload w = make_slot_workload(512, 42);
  const Router& router = w.net->router();
  for (auto _ : state) {
    benchmark::DoNotOptimize(slot_pass(
        w, [&](const TapestryNode& at, unsigned l, unsigned d, bool& ph) {
          return router.select_slot_reference(at, l, d, ph);
        }));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.probes.size()));
  state.SetLabel("pre-bitmask linear slot scan, 4096 probes/iter");
}
BENCHMARK(BM_SelectSlotReference)->Unit(benchmark::kMicrosecond);

void BM_RouteToRoot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  auto space = make_space("ring", n + 8, rng);
  auto net = build_static(*space, n, default_params(), 4);
  const auto ids = net->node_ids();
  std::size_t q = 0;
  for (auto _ : state) {
    const Guid guid = bench_guid(*net, q++);
    benchmark::DoNotOptimize(
        net->route_to_root(ids[q % ids.size()], guid));
  }
  state.SetLabel("full surrogate route, n=" + std::to_string(n));
}
BENCHMARK(BM_RouteToRoot)->Arg(256)->Arg(1024);

void BM_RouteToRootPeek(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  auto space = make_space("ring", n + 8, rng);
  auto net = build_static(*space, n, default_params(), 4);
  const auto ids = net->node_ids();
  std::size_t q = 0;
  for (auto _ : state) {
    const Guid guid = bench_guid(*net, q++);
    benchmark::DoNotOptimize(
        net->router().route_to_root_peek(ids[q % ids.size()], guid));
  }
  state.SetLabel("const lock-free surrogate route, n=" + std::to_string(n));
}
BENCHMARK(BM_RouteToRootPeek)->Arg(256)->Arg(1024);

void BM_LocateHit(benchmark::State& state) {
  const std::size_t n = 512;
  Rng rng(6);
  auto space = make_space("ring", n + 8, rng);
  auto net = build_static(*space, n, default_params(), 6);
  const auto ids = net->node_ids();
  Rng wl(7);
  for (int i = 0; i < 64; ++i)
    net->publish(ids[wl.next_u64(ids.size())], bench_guid(*net, i));
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net->locate(ids[q % ids.size()], bench_guid(*net, q % 64)));
    ++q;
  }
}
BENCHMARK(BM_LocateHit);

void BM_StaticTableBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  Rng rng(8);
  auto space = make_space("ring", n + 8, rng);
  for (auto _ : state) {
    state.PauseTiming();
    auto net = std::make_unique<Network>(*space, default_params(), 8);
    std::vector<Location> locs(n);
    for (std::size_t i = 0; i < n; ++i) locs[i] = i;
    net->insert_static_bulk(locs, workers);
    state.ResumeTiming();
    net->rebuild_static_tables(workers);
    benchmark::DoNotOptimize(net->total_table_entries());
  }
  state.SetLabel("workers=" + std::to_string(workers));
}
BENCHMARK(BM_StaticTableBuild)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Unit(benchmark::kMillisecond);

void BM_DynamicJoin(benchmark::State& state) {
  const std::size_t n = 256;
  Rng rng(9);
  auto space = make_space("ring", n + 4096, rng);
  auto net = grow(*space, n, default_params(), 9);
  std::size_t next = n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->join(next++));
  }
  state.SetLabel("wall-clock cost of one full join protocol run");
}
BENCHMARK(BM_DynamicJoin)->Unit(benchmark::kMicrosecond)->Iterations(512);

#endif  // TAPESTRY_HAVE_GBENCH

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) return run_handrolled(true);
#ifdef TAPESTRY_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  return run_handrolled(false);
#endif
}
