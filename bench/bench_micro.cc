// E12 — Local computation micro-costs (google-benchmark).
//
// The paper's cost model (§3) charges only network traffic and ignores
// local computation, arguing none of it is time-consuming.  This benchmark
// substantiates that for our implementation: identifier manipulation,
// neighbor-set updates, routing-table scans and per-hop route decisions
// all run in nanoseconds-to-microseconds, orders of magnitude below any
// realistic network RTT.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace tap;
using namespace tap::bench;

void BM_IdDigitExtraction(benchmark::State& state) {
  const IdSpec spec{4, 10};
  Rng rng(1);
  const Id id = Id::random(spec, rng);
  unsigned acc = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < spec.num_digits; ++i) acc += id.digit(i);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_IdDigitExtraction);

void BM_IdCommonPrefix(benchmark::State& state) {
  const IdSpec spec{4, 10};
  Rng rng(2);
  std::vector<Id> ids;
  for (int i = 0; i < 256; ++i) ids.push_back(Id::random(spec, rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ids[i % 256].common_prefix_len(ids[(i + 1) % 256]));
    ++i;
  }
}
BENCHMARK(BM_IdCommonPrefix);

void BM_NeighborSetConsider(benchmark::State& state) {
  const IdSpec spec{4, 10};
  Rng rng(3);
  NeighborSet set(3);
  std::vector<NodeId> ids;
  for (int i = 0; i < 1024; ++i) ids.push_back(Id::random(spec, rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.consider(ids[i % 1024], rng.next_double()));
    ++i;
  }
}
BENCHMARK(BM_NeighborSetConsider);

void BM_RouteToRoot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  auto space = make_space("ring", n + 8, rng);
  auto net = build_static(*space, n, default_params(), 4);
  const auto ids = net->node_ids();
  Rng wl(5);
  std::size_t q = 0;
  for (auto _ : state) {
    const Guid guid = bench_guid(*net, q++);
    benchmark::DoNotOptimize(
        net->route_to_root(ids[q % ids.size()], guid));
  }
  state.SetLabel("full surrogate route, n=" + std::to_string(n));
}
BENCHMARK(BM_RouteToRoot)->Arg(256)->Arg(1024);

void BM_LocateHit(benchmark::State& state) {
  const std::size_t n = 512;
  Rng rng(6);
  auto space = make_space("ring", n + 8, rng);
  auto net = build_static(*space, n, default_params(), 6);
  const auto ids = net->node_ids();
  Rng wl(7);
  for (int i = 0; i < 64; ++i)
    net->publish(ids[wl.next_u64(ids.size())], bench_guid(*net, i));
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net->locate(ids[q % ids.size()], bench_guid(*net, q % 64)));
    ++q;
  }
}
BENCHMARK(BM_LocateHit);

void BM_StaticTableBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  auto space = make_space("ring", n + 8, rng);
  for (auto _ : state) {
    state.PauseTiming();
    auto net = std::make_unique<Network>(*space, default_params(), 8);
    for (std::size_t i = 0; i < n; ++i) net->insert_static(i);
    state.ResumeTiming();
    net->rebuild_static_tables();
    benchmark::DoNotOptimize(net->total_table_entries());
  }
}
BENCHMARK(BM_StaticTableBuild)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_DynamicJoin(benchmark::State& state) {
  const std::size_t n = 256;
  Rng rng(9);
  auto space = make_space("ring", n + 4096, rng);
  auto net = grow(*space, n, default_params(), 9);
  std::size_t next = n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->join(next++));
  }
  state.SetLabel("wall-clock cost of one full join protocol run");
}
BENCHMARK(BM_DynamicJoin)->Unit(benchmark::kMicrosecond)->Iterations(512);

}  // namespace

BENCHMARK_MAIN();
