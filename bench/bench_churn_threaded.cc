// E15 — Fully threaded churn soak.
//
// ThreadedChurnSoak (src/sim/churn_driver.h) on one overlay: every round
// runs thread-parallel join, fail-stop repair and voluntary-leave waves
// back to back while racer threads drive guarded batch publishes, §6.5
// expiry sweeps and guarded-peek locate probes against the same mesh.
// The soak runs twice from the same seed — once at 1 worker, once at
// --threads — and the bench gates the §5 repair contract: identical
// terminal membership and Property 1 occupancy fingerprints, converged
// invariants, and every tracked object locatable WITHOUT a republish
// (§4.2 rerouting happened inside the waves).
//
// Flags: --nodes=N [256]  --rounds=R [4]  --threads=T [4]  --seed=S [1]
//        --json (machine-readable metrics for CI)
//
// JSON metrics (tools/check_bench.py compares them against
// bench/baselines/bench_churn_threaded.json):
//   property1_ok / symmetry_ok /
//   no_pins_left / membership_match /
//   occupancy_match                 convergence contract, exact
//   locate_found                    availability with no republish, exact
//   repair_throughput               victims repaired per wall-clock second
//                                   in the parallel leg; floor gate
#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "src/sim/churn_driver.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

struct SoakResult {
  ThreadedChurnReport rep;
  double soak_ms = 0.0;
};

SoakResult run_soak(const MetricSpace& space, const TapestryParams& params,
                    std::size_t nodes, std::size_t rounds, std::size_t workers,
                    std::uint64_t seed) {
  Network net(space, params, seed);
  std::vector<Location> locs(nodes);
  for (std::size_t i = 0; i < nodes; ++i) locs[i] = i;
  net.insert_static_bulk(locs, workers == 0 ? 1 : workers);
  net.rebuild_static_tables(workers == 0 ? 1 : workers);

  ThreadedChurnScenario sc;
  sc.rounds = rounds;
  sc.joins_per_round = std::max<std::size_t>(4, nodes / 16);
  sc.fails_per_round = std::max<std::size_t>(2, nodes / 32);
  sc.leaves_per_round = std::max<std::size_t>(2, nodes / 32);
  sc.min_nodes = nodes / 2;
  sc.objects = 32;
  sc.publishes_per_round = 8;
  sc.workers = workers;
  sc.seed = seed;

  SoakResult r;
  ThreadedChurnSoak soak(net, sc);
  const auto t0 = std::chrono::steady_clock::now();
  r.rep = soak.run();
  r.soak_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace
}  // namespace tap::bench

int main(int argc, char** argv) {
  using namespace tap;
  using namespace tap::bench;

  std::size_t nodes = 256, rounds = 4, threads = 4;
  std::uint64_t seed = 1;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0)
      nodes = std::stoul(argv[i] + 8);
    else if (std::strncmp(argv[i], "--rounds=", 9) == 0)
      rounds = std::stoul(argv[i] + 9);
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = std::stoul(argv[i] + 10);
    else if (std::strncmp(argv[i], "--seed=", 7) == 0)
      seed = std::stoull(argv[i] + 7);
    else if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  Rng rng(seed);
  const std::size_t joins_total =
      rounds * std::max<std::size_t>(4, nodes / 16);
  auto space = make_space("ring", nodes + joins_total + 16, rng);
  TapestryParams params = default_params();
  params.store_backend = StoreBackend::kSharded;

  const SoakResult serial =
      run_soak(*space, params, nodes, rounds, 1, seed);
  const SoakResult parallel =
      run_soak(*space, params, nodes, rounds, threads, seed);

  const bool membership_match =
      serial.rep.membership_fp == parallel.rep.membership_fp;
  const bool occupancy_match =
      serial.rep.occupancy_fp == parallel.rep.occupancy_fp;
  const bool property1_ok =
      serial.rep.property1_ok && parallel.rep.property1_ok;
  const bool symmetry_ok = serial.rep.symmetry_ok && parallel.rep.symmetry_ok;
  const bool no_pins = serial.rep.no_pins && parallel.rep.no_pins;
  const double locate_found =
      std::min(serial.rep.availability(), parallel.rep.availability());

  const bool contract_ok = property1_ok && symmetry_ok && no_pins &&
                           membership_match && occupancy_match &&
                           locate_found == 1.0;

  if (json) {
    std::printf(
        "{\"bench\":\"bench_churn_threaded\",\"metrics\":{"
        "\"property1_ok\":%d,\"symmetry_ok\":%d,\"no_pins_left\":%d,"
        "\"membership_match\":%d,\"occupancy_match\":%d,"
        "\"locate_found\":%.4f,\"repair_throughput\":%.1f,"
        "\"soak_ms_serial\":%.1f,\"soak_ms_parallel\":%.1f,"
        "\"probes\":%zu,\"probe_transients\":%zu,"
        "\"threads\":%zu,\"hardware_threads\":%zu}}\n",
        property1_ok ? 1 : 0, symmetry_ok ? 1 : 0, no_pins ? 1 : 0,
        membership_match ? 1 : 0, occupancy_match ? 1 : 0, locate_found,
        parallel.rep.repairs_per_sec(), serial.soak_ms, parallel.soak_ms,
        parallel.rep.probes, parallel.rep.probe_transients, threads,
        default_worker_count());
    return contract_ok ? 0 : 1;
  }

  print_header("E15 — fully threaded churn soak",
               "§5 repair waves racing guarded store traffic: invariant "
               "convergence at any worker count, no republish backstop");
  print_space_info(*space, seed);
  TextTable table({"workers", "soak ms", "repairs/s", "avail", "P1", "sym",
                   "pins"});
  table.add_row({"1", fmt(serial.soak_ms, 1),
                 fmt(serial.rep.repairs_per_sec(), 0),
                 fmt(serial.rep.availability(), 4),
                 serial.rep.property1_ok ? "ok" : "FAIL",
                 serial.rep.symmetry_ok ? "ok" : "FAIL",
                 serial.rep.no_pins ? "none" : "LEFT!"});
  table.add_row({fmt(threads), fmt(parallel.soak_ms, 1),
                 fmt(parallel.rep.repairs_per_sec(), 0),
                 fmt(parallel.rep.availability(), 4),
                 parallel.rep.property1_ok ? "ok" : "FAIL",
                 parallel.rep.symmetry_ok ? "ok" : "FAIL",
                 parallel.rep.no_pins ? "none" : "LEFT!"});
  table.print();
  std::printf(
      "\n%zu rounds on a %zu-node core: %zu joins, %zu fails, %zu leaves in "
      "the parallel leg;\n%zu racer publishes, %zu expiry sweeps, %zu "
      "guarded probes (%zu mid-wave transients)\nmembership %s, occupancy "
      "pattern %s across worker counts; every tracked object\nlocated with "
      "NO republish: %s\n",
      rounds, nodes, parallel.rep.joins, parallel.rep.fails,
      parallel.rep.leaves, parallel.rep.publishes, parallel.rep.expiry_sweeps,
      parallel.rep.probes, parallel.rep.probe_transients,
      membership_match ? "identical" : "MISMATCH!",
      occupancy_match ? "identical" : "MISMATCH!",
      locate_found == 1.0 ? "yes" : "NO!");
  return contract_ok ? 0 : 1;
}
