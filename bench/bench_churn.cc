// E7 — Availability under churn with soft state (paper §4.3, §5, §6.5).
//
// Claims reproduced:
//   * voluntary departures never interrupt availability (§5.1);
//   * involuntary failures make objects rooted at (or pathed through) the
//     corpse unavailable until the next republish interval, then recover
//     (§5.2 + §6.5's soft-state argument);
//   * shorter republish intervals buy higher availability at higher
//     maintenance traffic — the soft-state trade-off.
//
// Setup: event-driven churn (Poisson joins/leaves/failures) over a 256-node
// network with 128 objects; lookups sampled continuously; a maintenance
// timer fires the heartbeat sweep + republish at the configured interval.
#include "bench_util.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

struct Result {
  double republish_interval;
  double availability_all;     // success rate over the whole run
  double availability_fail;    // success rate in windows after failures
  double maintenance_msgs;     // republish+sweep traffic per interval
  std::size_t lookups;
};

Result run(double interval, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", 512, rng);
  TapestryParams params = default_params();
  params.pointer_ttl = 2.0 * interval;
  auto net = grow(*space, 256, params, seed);

  std::vector<Location> free_locs;
  for (std::size_t i = 256; i < 512; ++i) free_locs.push_back(i);

  // Objects with their live servers (mirror of ground truth).
  struct Obj {
    Guid guid;
    NodeId server;
    bool alive = true;
  };
  std::vector<Obj> objects;
  Rng wl(seed ^ 0x0b1ec7);
  {
    const auto ids = net->node_ids();
    for (int i = 0; i < 128; ++i) {
      Obj o{bench_guid(*net, 500 + i), ids[wl.next_u64(ids.size())], true};
      net->publish(o.server, o.guid);
      objects.push_back(o);
    }
  }

  const double horizon = 40.0;
  double last_failure = -1e9;
  std::size_t ok_all = 0, total_all = 0, ok_fail = 0, total_fail = 0;
  Trace maintenance;
  std::size_t maintenance_rounds = 0;

  double next_churn = 0.5;
  double next_lookup = 0.05;
  double next_maint = interval;
  auto& q = net->events();
  while (q.now() < horizon) {
    const double t =
        std::min(std::min(next_churn, next_lookup), next_maint);
    q.run_until(t);
    if (t == next_churn) {
      next_churn += rng.exponential(2.0);
      const double dice = rng.next_double();
      const auto ids = net->node_ids();
      if (dice < 0.4 && !free_locs.empty()) {
        net->join(free_locs.back());
        free_locs.pop_back();
      } else if (dice < 0.7 && net->size() > 128) {
        // Voluntary departure of a non-server node.
        NodeId victim = ids[rng.next_u64(ids.size())];
        bool is_server = false;
        for (const Obj& o : objects)
          if (o.alive && o.server == victim) is_server = true;
        if (!is_server) {
          free_locs.push_back(net->node(victim).location());
          net->leave(victim);
        }
      } else if (net->size() > 128) {
        // Involuntary failure: any node, including servers.
        NodeId victim = ids[rng.next_u64(ids.size())];
        net->fail(victim);
        for (Obj& o : objects)
          if (o.server == victim) o.alive = false;
        last_failure = q.now();
      }
    } else if (t == next_lookup) {
      next_lookup += 0.05;
      const auto ids = net->node_ids();
      const Obj& o = objects[wl.next_u64(objects.size())];
      if (!o.alive) continue;
      const bool found =
          net->locate(ids[wl.next_u64(ids.size())], o.guid).found;
      ++total_all;
      if (found) ++ok_all;
      if (q.now() - last_failure < interval) {
        ++total_fail;
        if (found) ++ok_fail;
      }
    } else {
      next_maint += interval;
      ++maintenance_rounds;
      net->heartbeat_sweep(&maintenance);
      net->expire_pointers();
      net->republish_all(&maintenance);
    }
  }

  Result r;
  r.republish_interval = interval;
  r.availability_all = total_all ? double(ok_all) / total_all : 1.0;
  r.availability_fail = total_fail ? double(ok_fail) / total_fail : 1.0;
  // Per simulated time unit, so intervals are comparable: sparser rounds
  // are individually heavier (more corpses accumulate) but cheaper per
  // unit time.
  r.maintenance_msgs =
      maintenance_rounds
          ? double(maintenance.messages()) / (maintenance_rounds * interval)
          : 0.0;
  r.lookups = total_all;
  return r;
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E7 — availability under churn",
               "§4.3/§5/§6.5: objects stay available through voluntary "
               "churn; failures recover at the republish boundary; shorter "
               "soft-state intervals buy availability with traffic");

  const std::vector<double> intervals{1.0, 2.0, 4.0, 8.0};
  const auto results = run_trials<Result>(intervals.size(), [&](std::size_t i) {
    return run(intervals[i], 9000 + i);
  });

  TextTable table({"republish interval", "availability (all)",
                   "availability (post-failure window)",
                   "maintenance msgs/time", "lookups"});
  for (const Result& r : results)
    table.add_row({fmt(r.republish_interval, 1),
                   fmt(r.availability_all * 100.0, 2) + "%",
                   fmt(r.availability_fail * 100.0, 2) + "%",
                   fmt(r.maintenance_msgs, 0), fmt(r.lookups)});
  table.print();
  std::printf(
      "\nreading guide: overall availability stays high for every\n"
      "interval (voluntary churn never interrupts service); the\n"
      "post-failure window column degrades as the republish interval\n"
      "grows — the paper's soft-state trade-off made quantitative.\n");
  return 0;
}
