// E7 — Availability under churn with soft state (paper §4.3, §5, §6.5).
//
// Claims reproduced:
//   * voluntary departures never interrupt availability (§5.1);
//   * involuntary failures make objects rooted at (or pathed through) the
//     corpse unavailable until the next republish interval, then recover
//     (§5.2 + §6.5's soft-state argument);
//   * shorter republish intervals buy higher availability at higher
//     maintenance traffic — the soft-state trade-off.
//
// Setup: a ChurnDriver scenario (Poisson joins/leaves/failures, continuous
// lookups) over a 256-node network with 128 objects, fully event-driven:
// publishes and queries decompose per hop on the EventQueue, republish /
// expiry / heartbeat run as subsystem timers at the configured interval,
// so queries genuinely interleave with repairs (the regime §6.5 assumes).
//
// --json additionally gates the metrics registry's hot-path cost: the
// interval-4 trial runs with recording enabled and disabled (interleaved,
// min-of-3 each) and reports the wall-time ratio — the ≤5% overhead
// budget of the observability work.  It also runs the targeted-rootfail
// scenario (the tapestry_sim --scenario=rootfail preset) and gates its
// overall and post-failure availability against the baseline.
#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "src/sim/churn_driver.h"
#include "src/sim/metrics.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

struct Result {
  double republish_interval;
  double availability_all;   // success rate over the whole run
  double availability_fail;  // success rate in windows after failures
  double maintenance_msgs;   // republish+sweep traffic per unit time
  std::size_t lookups;
};

Result run(double interval, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", 512, rng);
  TapestryParams params = default_params();
  params.pointer_ttl = 2.0 * interval;
  auto net = grow(*space, 256, params, seed);

  ChurnScenario sc;
  sc.horizon = 40.0;
  sc.epoch = 5.0;
  // The pre-driver loop drew one churn event per exponential(2.0) with a
  // 0.4 / 0.3 / 0.3 join/leave/fail split; the same mix as rates:
  sc.join_rate = 0.8;
  sc.leave_rate = 0.6;
  sc.fail_rate = 0.6;
  sc.min_nodes = 128;
  sc.query_rate = 20.0;  // one lookup per 0.05 time units
  sc.post_failure_window = interval;
  sc.objects = 128;
  sc.replicas = 1;
  sc.republish_interval = interval;
  sc.expiry_interval = interval;
  sc.heartbeat_interval = interval;
  sc.seed = seed;

  ChurnDriver driver(*net, sc);
  const ChurnReport rep = driver.run();

  Result r;
  r.republish_interval = interval;
  r.availability_all = rep.availability();
  r.availability_fail = rep.availability_post_failure();
  r.maintenance_msgs =
      static_cast<double>(rep.maintenance_msgs) / sc.horizon;
  r.lookups = rep.queries;
  return r;
}

// Targeted root failure (the --scenario=rootfail preset of tapestry_sim):
// no background churn, zipf-ranked query targets, and one scripted kill of
// the surrogate roots of the three hottest objects a quarter into the run.
// Soft-state republish is the only repair mechanism, so post-failure
// availability gates the directory's worst-case recovery path.
Result run_rootfail(std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", 512, rng);
  TapestryParams params = default_params();
  params.pointer_ttl = 8.0;
  auto net = grow(*space, 256, params, seed);

  ChurnScenario sc;
  sc.horizon = 40.0;
  sc.epoch = 5.0;
  sc.join_rate = 0.0;
  sc.leave_rate = 0.0;
  sc.fail_rate = 0.0;
  sc.min_nodes = 128;
  sc.query_rate = 20.0;
  sc.post_failure_window = 4.0;
  sc.objects = 128;
  sc.replicas = 1;
  sc.republish_interval = 4.0;
  sc.expiry_interval = 4.0;
  sc.heartbeat_interval = 4.0;
  sc.popularity = ChurnScenario::Popularity::kZipf;
  sc.rootfail_at = sc.horizon / 4.0;
  sc.rootfail_count = 3;
  sc.seed = seed;

  ChurnDriver driver(*net, sc);
  const ChurnReport rep = driver.run();

  Result r;
  r.republish_interval = sc.republish_interval;
  r.availability_all = rep.availability();
  r.availability_fail = rep.availability_post_failure();
  r.maintenance_msgs = static_cast<double>(rep.maintenance_msgs) / sc.horizon;
  r.lookups = rep.queries;
  return r;
}

// Wall time of one full interval-4 trial (growth + driver) with metric
// recording toggled; the workload itself is identical either way — the
// enabled() gate never changes control flow.
double timed_trial(bool recording_on) {
  metrics::set_enabled(recording_on);
  const auto t0 = std::chrono::steady_clock::now();
  (void)run(4.0, 9002);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int run_json() {
  metrics::set_enabled(true);
  const Result det = run(4.0, 9002);
  const Result rf = run_rootfail(9003);

  double best_on = 1e300;
  double best_off = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    best_off = std::min(best_off, timed_trial(false));
    best_on = std::min(best_on, timed_trial(true));
  }
  metrics::set_enabled(true);
  const double ratio = best_off <= 0.0 ? 1.0 : best_on / best_off;

  std::printf("{\"bench\":\"bench_churn\",\"metrics\":{"
              "\"availability_i4\":%.4f,\"availability_post_i4\":%.4f,"
              "\"lookups_i4\":%zu,\"metrics_overhead_ratio\":%.4f,"
              "\"rootfail_availability\":%.4f,"
              "\"rootfail_availability_post\":%.4f,"
              "\"rootfail_lookups\":%zu}}\n",
              det.availability_all, det.availability_fail, det.lookups, ratio,
              rf.availability_all, rf.availability_fail, rf.lookups);
  return 0;
}

}  // namespace
}  // namespace tap::bench

int main(int argc, char** argv) {
  using namespace tap;
  using namespace tap::bench;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "usage: bench_churn [--json]\n");
      return 2;
    }
  }
  if (json) return run_json();
  print_header("E7 — availability under churn",
               "§4.3/§5/§6.5: objects stay available through voluntary "
               "churn; failures recover at the republish boundary; shorter "
               "soft-state intervals buy availability with traffic");

  const std::vector<double> intervals{1.0, 2.0, 4.0, 8.0};
  const auto results = run_trials<Result>(intervals.size(), [&](std::size_t i) {
    return run(intervals[i], 9000 + i);
  });

  TextTable table({"republish interval", "availability (all)",
                   "availability (post-failure window)",
                   "maintenance msgs/time", "lookups"});
  for (const Result& r : results)
    table.add_row({fmt(r.republish_interval, 1),
                   fmt(r.availability_all * 100.0, 2) + "%",
                   fmt(r.availability_fail * 100.0, 2) + "%",
                   fmt(r.maintenance_msgs, 0), fmt(r.lookups)});
  table.print();
  std::printf(
      "\nreading guide: overall availability stays high for every\n"
      "interval (voluntary churn never interrupts service); the\n"
      "post-failure window column degrades as the republish interval\n"
      "grows — the paper's soft-state trade-off made quantitative.\n"
      "queries and repairs interleave per-hop on the event queue; the\n"
      "serialized engine of the pre-driver bench is still available via\n"
      "tapestry_sim --scenario=churn --engine=sync.\n");
  return 0;
}
