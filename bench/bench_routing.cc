// E6 — Surrogate routing (paper §2.3, Theorem 2).
//
// Claims reproduced:
//   * root uniqueness: every source reaches the same root for a GUID
//     (Theorem 2), for both localized routing variants;
//   * hop counts are O(log n) and surrogate (post-hole) hops add < 2 in
//     expectation, independent of n;
//   * routing to an existing node-ID resolves exactly (no surrogate hops).
#include <set>

#include "bench_util.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

struct Result {
  std::size_t n;
  std::string mode;
  double hops_mean;
  double hops_max;
  double surrogate_mean;
  double surrogate_p99;
  bool unique_roots;
};

Result measure(std::size_t n, RoutingMode mode, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", n + 8, rng);
  TapestryParams params = default_params();
  params.routing = mode;
  auto net = build_static(*space, n, params, seed);

  Summary hops, surrogate;
  bool unique = true;
  Rng wl(seed ^ 0xabc);
  const auto ids = net->node_ids();
  for (int obj = 0; obj < 60; ++obj) {
    const Guid guid = bench_guid(*net, 100 + obj);
    std::set<std::uint64_t> roots;
    for (std::size_t i = 0; i < ids.size(); i += std::max<std::size_t>(1, ids.size() / 40)) {
      const RouteResult rr = net->route_to_root(ids[i], guid);
      roots.insert(rr.root.value());
      hops.add(double(rr.hops));
      surrogate.add(double(rr.surrogate_hops));
    }
    if (roots.size() != 1) unique = false;
  }
  Result r;
  r.n = n;
  r.mode = mode == RoutingMode::kTapestryNative ? "native" : "prr-like";
  r.hops_mean = hops.mean();
  r.hops_max = hops.max();
  r.surrogate_mean = surrogate.mean();
  r.surrogate_p99 = surrogate.percentile(99);
  r.unique_roots = unique;
  return r;
}

}  // namespace
}  // namespace tap::bench

int main(int argc, char** argv) {
  using namespace tap;
  using namespace tap::bench;
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") json = true;

  std::vector<std::pair<std::size_t, RoutingMode>> configs;
  for (const std::size_t n : {128ul, 512ul, 2048ul})
    for (const RoutingMode m :
         {RoutingMode::kTapestryNative, RoutingMode::kPrrLike})
      configs.emplace_back(n, m);

  const auto results = run_trials<Result>(configs.size(), [&](std::size_t i) {
    return measure(configs[i].first, configs[i].second, 555 + i);
  });

  if (json) {
    // Deterministic metrics (fixed seeds): tools/check_bench.py gates them
    // against bench/baselines/bench_routing.json in the perf-smoke CI job.
    std::printf("{\"bench\":\"bench_routing\",\"metrics\":{");
    bool first = true;
    for (const Result& r : results) {
      std::printf("%s\"hops_mean_n%zu_%s\":%.4f,"
                  "\"surrogate_mean_n%zu_%s\":%.4f,"
                  "\"unique_roots_n%zu_%s\":%d",
                  first ? "" : ",", r.n, r.mode.c_str(), r.hops_mean, r.n,
                  r.mode.c_str(), r.surrogate_mean, r.n, r.mode.c_str(),
                  r.unique_roots ? 1 : 0);
      first = false;
    }
    std::printf("}}\n");
    return 0;
  }

  print_header("E6 — surrogate routing",
               "§2.3 / Theorem 2: unique roots; O(log n) hops; < 2 expected "
               "extra surrogate hops, independent of n");

  TextTable table({"n", "mode", "hops mean", "hops max", "log16(n)",
                   "surrogate hops mean", "surrogate p99", "unique roots"});
  for (const Result& r : results)
    table.add_row({fmt(r.n), r.mode, fmt(r.hops_mean, 2), fmt(r.hops_max, 0),
                   fmt(std::log2(double(r.n)) / 4.0, 2),
                   fmt(r.surrogate_mean, 2), fmt(r.surrogate_p99, 0),
                   r.unique_roots ? "yes" : "NO (violation!)"});
  table.print();
  std::printf(
      "\nreading guide: hops track log16(n) plus a small constant; the\n"
      "surrogate-hop mean stays below 2 and does not grow with n (§2.3);\n"
      "unique roots must hold for every row (Theorem 2).\n");
  return 0;
}
