// E14 — Thread-parallel dynamic insertion.
//
// The §4.4 join protocol driven on real threads (ThreadedJoinDriver via
// Network::join_bulk): a wave of simultaneous insertions lands on a static
// core once serially and once across --threads workers, and the bench
// verifies the convergence contract — same seed at any worker count gives
// the same membership and the same Property 1 occupancy pattern
// (fingerprint_occupancy), with no leftover pins and full surrogate
// agreement — then reports the wall-clock speedup.  A third leg races the
// wave against a guarded ShardedStore batch publish and checks that one
// soft-state republish restores full locatability.
//
// Flags: --core=N [2000]  --wave=W [64]  --threads=T [4]  --seed=S [1]
//        --json (machine-readable metrics for CI)
//
// JSON metrics (tools/check_bench.py compares them against
// bench/baselines/bench_parallel_join.json):
//   property1_ok / no_pins_left /
//   surrogate_agreement / occupancy_match   convergence contract, exact
//   race_locate_found                       availability after the racing
//                                           publish + republish, exact
//   join_speedup                            wall-clock serial/parallel
//                                           ratio; floor gate — tracks the
//                                           runner's core count (~1.0 on a
//                                           single-core box)
#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "bench_util.h"
#include "src/sim/thread_pool.h"
#include "src/tapestry/fingerprint.h"
#include "src/tapestry/threaded_join.h"

namespace tap::bench {
namespace {

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct WaveResult {
  double wave_ms = 0.0;
  bool property1 = false;
  bool no_pins = true;
  bool surrogates_agree = true;
  std::uint64_t membership_fp = 0;
  std::uint64_t occupancy_fp = 0;
  std::size_t messages = 0;
  std::unique_ptr<Network> net;
};

std::vector<JoinRequest> wave_requests(std::size_t core, std::size_t wave) {
  std::vector<JoinRequest> reqs(wave);
  for (std::size_t i = 0; i < wave; ++i) reqs[i].loc = core + i;
  return reqs;
}

WaveResult run_wave(const MetricSpace& space, const TapestryParams& params,
                    std::size_t core, std::size_t wave, std::size_t workers,
                    std::uint64_t seed) {
  WaveResult r;
  r.net = std::make_unique<Network>(space, params, seed);
  Network& net = *r.net;
  std::vector<Location> locs(core);
  for (std::size_t i = 0; i < core; ++i) locs[i] = i;
  net.insert_static_bulk(locs, workers == 0 ? 1 : workers);
  net.rebuild_static_tables(workers == 0 ? 1 : workers);

  ThreadedJoinDriver driver(net.registry(), net.router(), net.params(),
                            net.rng());
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcomes = driver.run(wave_requests(core, wave), workers);
  r.wave_ms = wall_ms(t0);

  detail::Fnv1a members;
  std::vector<std::uint64_t> sorted;
  for (const auto& o : outcomes) {
    sorted.push_back(o.id.value());
    r.messages += o.messages;
  }
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint64_t v : sorted) members.mix(v);
  r.membership_fp = members.value();
  r.occupancy_fp = fingerprint_occupancy(net);

  try {
    net.check_property1();
    net.check_backpointer_symmetry();
    r.property1 = true;
  } catch (const CheckError&) {
    r.property1 = false;
  }
  for (const auto& n : net.registry().nodes()) {
    if (!n->alive) continue;
    const RoutingTable& t = n->table();
    for (unsigned l = 0; l < t.levels(); ++l)
      for (unsigned j = 0; j < t.radix(); ++j)
        if (!t.at(l, j).pinned_members().empty()) r.no_pins = false;
  }
  // Surrogate agreement sampled over a start subset (the full cross
  // product is an O(n^2) oracle pass; 64 starts x 8 targets witnesses
  // Theorem 2 just as decisively for a perf gate).
  Rng sr(seed ^ 0x5a5a);
  const auto ids = net.node_ids();
  for (int k = 0; k < 8; ++k) {
    const Guid guid = bench_guid(net, 41'000 + static_cast<std::size_t>(k));
    std::set<std::uint64_t> roots;
    for (int s = 0; s < 64; ++s) {
      const NodeId src = ids[sr.next_u64(ids.size())];
      roots.insert(net.router().route_to_root_peek(src, guid).root.value());
    }
    if (roots.size() != 1) r.surrogates_agree = false;
  }
  return r;
}

}  // namespace
}  // namespace tap::bench

int main(int argc, char** argv) {
  using namespace tap;
  using namespace tap::bench;

  std::size_t core = 2000, wave = 64, threads = 4;
  std::uint64_t seed = 1;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--core=", 7) == 0)
      core = std::stoul(argv[i] + 7);
    else if (std::strncmp(argv[i], "--wave=", 7) == 0)
      wave = std::stoul(argv[i] + 7);
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = std::stoul(argv[i] + 10);
    else if (std::strncmp(argv[i], "--seed=", 7) == 0)
      seed = std::stoull(argv[i] + 7);
    else if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  Rng rng(seed);
  auto space = make_space("ring", core + wave + 8, rng);
  TapestryParams params = default_params();

  const WaveResult serial =
      run_wave(*space, params, core, wave, 1, seed);
  const WaveResult parallel =
      run_wave(*space, params, core, wave, threads, seed);

  const bool membership_match =
      serial.membership_fp == parallel.membership_fp;
  const bool occupancy_match = serial.occupancy_fp == parallel.occupancy_fp;
  const bool property1_ok = serial.property1 && parallel.property1;
  const bool no_pins = serial.no_pins && parallel.no_pins;
  const bool surrogates = serial.surrogates_agree && parallel.surrogates_agree;
  const double speedup =
      parallel.wave_ms > 0.0 ? serial.wave_ms / parallel.wave_ms : 1.0;

  // Race leg: the same wave on a sharded-store overlay while a guarded
  // batch publish drains underneath it; one republish restores Property 4.
  double race_found = 1.0;
  {
    TapestryParams race_params = params;
    race_params.store_backend = StoreBackend::kSharded;
    Network net(*space, race_params, seed);
    std::vector<Location> locs(core);
    for (std::size_t i = 0; i < core; ++i) locs[i] = i;
    net.insert_static_bulk(locs, threads);
    net.rebuild_static_tables(threads);

    Rng wl(seed ^ 0xbead);
    const auto ids = net.node_ids();
    std::vector<ObjectDirectory::PublishRequest> pubs;
    const std::size_t n_objects = wave * 2;
    for (std::size_t i = 0; i < n_objects; ++i)
      pubs.push_back({ids[wl.next_u64(ids.size())],
                      bench_guid(net, 43'000 + i)});

    std::thread racer(
        [&] { net.publish_batch(pubs, threads, nullptr, /*guarded=*/true); });
    net.join_bulk(wave_requests(core, wave), threads);
    racer.join();

    net.republish_all();
    net.check_property4();
    const auto all_ids = net.node_ids();
    std::size_t found = 0;
    for (std::size_t i = 0; i < n_objects; ++i)
      if (net.locate(all_ids[wl.next_u64(all_ids.size())],
                     bench_guid(net, 43'000 + i))
              .found)
        ++found;
    race_found = n_objects == 0 ? 1.0 : double(found) / double(n_objects);
  }

  const bool contract_ok = property1_ok && no_pins && surrogates &&
                           membership_match && occupancy_match;

  if (json) {
    std::printf(
        "{\"bench\":\"bench_parallel_join\",\"metrics\":{"
        "\"property1_ok\":%d,\"no_pins_left\":%d,"
        "\"surrogate_agreement\":%d,\"membership_match\":%d,"
        "\"occupancy_match\":%d,\"race_locate_found\":%.4f,"
        "\"join_speedup\":%.3f,\"wave_ms_serial\":%.1f,"
        "\"wave_ms_parallel\":%.1f,\"msgs_per_join_parallel\":%.1f,"
        "\"threads\":%zu,\"hardware_threads\":%zu}}\n",
        property1_ok ? 1 : 0, no_pins ? 1 : 0, surrogates ? 1 : 0,
        membership_match ? 1 : 0, occupancy_match ? 1 : 0, race_found,
        speedup, serial.wave_ms, parallel.wave_ms,
        wave == 0 ? 0.0 : double(parallel.messages) / double(wave), threads,
        default_worker_count());
    return contract_ok && race_found == 1.0 ? 0 : 1;
  }

  print_header("E14 — thread-parallel dynamic insertion",
               "§4.4 simultaneous insertion on real threads: invariant "
               "convergence at any worker count (Theorem 6)");
  print_space_info(*space, seed);
  TextTable table({"workers", "wave ms", "msgs/join", "P1", "pins", "roots"});
  table.add_row({"1", fmt(serial.wave_ms, 1),
                 fmt(double(serial.messages) / double(wave), 0),
                 serial.property1 ? "ok" : "FAIL",
                 serial.no_pins ? "none" : "LEFT!",
                 serial.surrogates_agree ? "unique" : "SPLIT!"});
  table.add_row({fmt(threads), fmt(parallel.wave_ms, 1),
                 fmt(double(parallel.messages) / double(wave), 0),
                 parallel.property1 ? "ok" : "FAIL",
                 parallel.no_pins ? "none" : "LEFT!",
                 parallel.surrogates_agree ? "unique" : "SPLIT!"});
  table.print();
  std::printf(
      "\n%zu joins on a %zu-node core: speedup %.2fx at %zu workers (%zu "
      "hardware threads)\nmembership %s, occupancy pattern %s across worker "
      "counts; racing sharded publish +\nrepublish locates %.1f%%\n"
      "reading guide: tables need not be bit-identical across worker counts "
      "—\nthe §4.4 contract is invariant convergence (membership, Property 1 "
      "occupancy,\nno pins, unique roots), which must hold at every thread "
      "count.\n",
      wave, core, speedup, threads, default_worker_count(),
      membership_match ? "identical" : "MISMATCH!",
      occupancy_match ? "identical" : "MISMATCH!", 100.0 * race_found);
  return contract_ok && race_found == 1.0 ? 0 : 1;
}
