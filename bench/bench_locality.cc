// E9 — Stub-locality optimization (paper §6.3).
//
// On transit-stub topologies, intra-stub latency is an order of magnitude
// below wide-area latency.  The §6.3 optimization publishes a local branch
// inside the server's stub and lets clients probe their stub's local root
// before going wide.  Claims reproduced:
//   * with the optimization, queries for objects replicated inside the
//     client's stub never cross the transit network;
//   * remote queries pay only a small bounded intra-stub detour;
//   * net effect: large latency wins whenever workloads have stub locality.
#include "bench_util.h"
#include "src/tapestry/locality.h"

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E9 — stub-local publication/location",
               "§6.3: local queries resolve without leaving the stub; "
               "remote queries pay < 2 extra local hops in expectation");

  Rng rng(60601);
  TransitStubParams tsp;
  tsp.transit_scale = 10.0;
  TransitStubMetric space(512, rng, tsp);
  Network net(space, default_params(), 60601);
  net.bootstrap(0);
  for (std::size_t i = 1; i < 512; ++i) net.join(i);
  LocalityManager locality(net, space);
  print_space_info(space, 60601);
  std::printf("stubs: %zu, max intra-stub distance: %.4f\n", space.num_stubs(),
              space.max_intra_stub_distance());

  Rng wl(123);
  Summary plain_local, opt_local, plain_remote, opt_remote;
  std::size_t local_escapes_plain = 0, local_escapes_opt = 0,
              local_queries = 0;

  int key = 0;
  for (std::size_t stub = 0; stub < space.num_stubs(); ++stub) {
    const auto members = locality.stub_members(stub);
    if (members.size() < 2) continue;
    // A locally replicated object, published with and without the local
    // branch (separate GUIDs so the two configurations don't interact).
    const Guid g_plain = bench_guid(net, 10000 + key);
    const Guid g_opt = bench_guid(net, 20000 + key);
    ++key;
    net.publish(members[0], g_plain);
    locality.publish(members[0], g_opt);

    for (std::size_t m = 1; m < members.size(); ++m) {
      const LocateResult rp = net.locate(members[m], g_plain);
      const LocateResult ro = locality.locate(members[m], g_opt);
      if (!rp.found || !ro.found) continue;
      ++local_queries;
      plain_local.add(rp.latency);
      opt_local.add(ro.latency);
      if (rp.latency > space.max_intra_stub_distance()) ++local_escapes_plain;
      if (ro.latency > space.max_intra_stub_distance()) ++local_escapes_opt;
    }

    // Remote queries for the same objects from another stub: the price of
    // the optimization.
    for (int probes = 0; probes < 3; ++probes) {
      const auto ids = net.node_ids();
      const NodeId client = ids[wl.next_u64(ids.size())];
      if (locality.stub_of(client) == stub) continue;
      const LocateResult rp = net.locate(client, g_plain);
      const LocateResult ro = locality.locate(client, g_opt);
      if (rp.found) plain_remote.add(rp.latency);
      if (ro.found) opt_remote.add(ro.latency);
    }
  }

  TextTable table({"workload", "plain tapestry", "with §6.3 optimization"});
  table.add_row({"intra-stub query latency (mean)", fmt(plain_local.mean(), 4),
                 fmt(opt_local.mean(), 4)});
  table.add_row({"intra-stub query latency (p95)",
                 fmt(plain_local.percentile(95), 4),
                 fmt(opt_local.percentile(95), 4)});
  table.add_row({"local queries leaving the stub",
                 fmt(double(local_escapes_plain) / local_queries * 100, 1) +
                     "%",
                 fmt(double(local_escapes_opt) / local_queries * 100, 1) +
                     "%"});
  table.add_row({"remote query latency (mean)", fmt(plain_remote.mean(), 3),
                 fmt(opt_remote.mean(), 3)});
  table.print();
  std::printf(
      "\nreading guide: the optimization drives 'local queries leaving the\n"
      "stub' to 0%% and collapses intra-stub latency by roughly the\n"
      "transit_scale factor, while remote queries pay only the small\n"
      "local-probe overhead (§6.3's trade-off).\n");
  return 0;
}
