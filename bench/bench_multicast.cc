// E5 — Acknowledged multicast cost (paper §4.1, Theorem 5).
//
// Claims reproduced:
//   * the multicast reaches exactly the prefix set (Theorem 5);
//   * collapsing self-messages, the message graph is a spanning tree:
//     2(k-1) messages (forward + ack) for k recipients;
//   * total traffic is O(d·k) with d the network diameter, and the
//     completion time (longest forward+ack chain) is far below the total
//     traffic because the fan-out proceeds in parallel.
#include <map>

#include "bench_util.h"

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E5 — acknowledged multicast",
               "§4.1 / Theorem 5: prefix coverage with 2(k-1) messages, "
               "O(dk) traffic");

  Rng rng(31337);
  auto space = make_space("ring", 2048 + 8, rng);
  auto net = build_static(*space, 2048, default_params(), 31337);
  print_space_info(*space, 31337);

  // Group live nodes by first-digit prefix to get varying reach sizes;
  // deeper prefixes give smaller sets.
  TextTable table({"prefix len", "reach k", "messages", "2(k-1)",
                   "traffic/d", "completion/d", "traffic/(d*k)"});
  const double diameter = 0.5;  // ring metric

  struct Probe {
    NodeId start;
    unsigned len;
  };
  std::vector<Probe> probes;
  const auto ids = net->node_ids();
  probes.push_back({ids[0], 0});
  for (unsigned len = 1; len <= 3; ++len)
    for (unsigned i = 0; i < 4; ++i)
      probes.push_back({ids[(i * 97 + len) % ids.size()], len});

  std::map<unsigned, Summary> ratio_by_len;
  for (const Probe& p : probes) {
    const MulticastStats stats =
        net->multicast(p.start, p.start, p.len, [](NodeId) {});
    table.add_row({fmt(std::size_t{p.len}), fmt(stats.reached),
                   fmt(stats.messages), fmt(2 * (stats.reached - 1)),
                   fmt(stats.traffic / diameter, 2),
                   fmt(stats.completion / diameter, 2),
                   fmt(stats.traffic / (diameter * double(stats.reached)),
                       3)});
    ratio_by_len[p.len].add(stats.traffic /
                            (diameter * double(stats.reached)));
  }
  table.print();

  std::printf("\ntraffic/(d*k) by prefix length (the O(dk) constant):\n");
  for (const auto& [len, s] : ratio_by_len)
    std::printf("  len %u: %s\n", len, s.describe().c_str());
  std::printf(
      "\nreading guide: messages == 2(k-1) exactly (spanning tree);\n"
      "traffic/(d*k) is a small constant, and completion stays near a\n"
      "couple of diameters regardless of k (parallel fan-out).\n");
  return 0;
}
