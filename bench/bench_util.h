// Shared helpers for the experiment binaries (bench/bench_*.cc).
//
// Every experiment prints a standard header — experiment id, the paper
// artifact/claim it regenerates, and the space it ran on (with its measured
// expansion constant, since the paper's guarantees are parameterized by
// it) — followed by one or more aligned tables.  See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured narratives.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/format.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/metric/analysis.h"
#include "src/metric/general.h"
#include "src/metric/ring.h"
#include "src/metric/torus.h"
#include "src/metric/transit_stub.h"
#include "src/tapestry/network.h"

namespace tap::bench {

inline void print_header(const std::string& exp_id,
                         const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", exp_id.c_str());
  std::printf("paper artifact: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

inline void print_space_info(const MetricSpace& space, std::uint64_t seed) {
  Rng rng(seed);
  const ExpansionEstimate e = estimate_expansion(space, rng, 24);
  std::printf("space: %s (n=%zu, expansion c: median %.2f, p90 %.2f)\n",
              space.name().c_str(), space.size(), e.median_ratio,
              e.p90_ratio);
}

inline std::unique_ptr<MetricSpace> make_space(const std::string& kind,
                                               std::size_t n, Rng& rng) {
  if (kind == "ring") return std::make_unique<RingMetric>(n, rng);
  if (kind == "torus") return std::make_unique<Torus2D>(n, rng);
  if (kind == "transit-stub")
    return std::make_unique<TransitStubMetric>(n, rng);
  if (kind == "euclid6d") return std::make_unique<HighDimEuclidean>(n, 6, rng);
  if (kind == "two-cluster") return std::make_unique<TwoClusterMetric>(n, rng);
  std::fprintf(stderr, "unknown space %s\n", kind.c_str());
  std::abort();
}

inline TapestryParams default_params() {
  TapestryParams p;
  p.id = IdSpec{4, 8};
  p.redundancy = 3;
  return p;
}

/// Grows an n-node network with the dynamic join protocol over locations
/// 0..n-1 (the space may be larger to leave headroom).
inline std::unique_ptr<Network> grow(const MetricSpace& space, std::size_t n,
                                     TapestryParams params,
                                     std::uint64_t seed,
                                     Trace* join_trace = nullptr) {
  auto net = std::make_unique<Network>(space, params, seed);
  net->bootstrap(0);
  for (std::size_t i = 1; i < n; ++i) net->join(i, std::nullopt, join_trace);
  return net;
}

/// Builds an n-node network with the static oracle (fast, for experiments
/// where construction is not what is measured).
inline std::unique_ptr<Network> build_static(const MetricSpace& space,
                                             std::size_t n,
                                             TapestryParams params,
                                             std::uint64_t seed) {
  auto net = std::make_unique<Network>(space, params, seed);
  for (std::size_t i = 0; i < n; ++i) net->insert_static(i);
  net->rebuild_static_tables();
  return net;
}

inline Guid bench_guid(const Network& net, std::uint64_t raw) {
  const IdSpec spec = net.params().id;
  const std::uint64_t mask = spec.total_bits() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << spec.total_bits()) - 1;
  return Guid(spec, splitmix64(raw ^ 0xbe9c4) & mask);
}

}  // namespace tap::bench
