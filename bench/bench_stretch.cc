// E2 — Routing locality: stretch vs. client-object distance (paper §2.2,
// Theorem 1 discussion; Figure 3's behaviour).
//
// PRR's guarantee — and Tapestry's empirical claim — is *constant expected
// stretch* in growth-restricted metrics: a query for a nearby object costs
// proportionally to its distance, not to the network diameter.  DHTs that
// ignore proximity (Chord, CAN, blind-prefix) pay diameter-scale latency
// even for next-door objects, so their stretch *grows* as the true
// distance shrinks.  This experiment buckets query workloads by the true
// client-replica distance (deciles of the distance distribution) and
// reports mean stretch per bucket and scheme — the series form of the
// paper's locality argument.
#include <algorithm>
#include <memory>

#include "bench_util.h"
#include "src/baselines/blind_prefix.h"
#include "src/baselines/can.h"
#include "src/baselines/central.h"
#include "src/baselines/chord.h"
#include "src/baselines/tapestry_scheme.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

constexpr std::size_t kNodes = 1024;
constexpr std::size_t kQueries = 6000;
constexpr std::size_t kBuckets = 10;

struct Series {
  std::string scheme;
  std::vector<Summary> by_bucket;  // stretch per distance decile
  Summary overall;
};

Series run_scheme(const std::string& kind, const MetricSpace& space,
                  const std::vector<double>& decile_edges,
                  std::uint64_t seed) {
  std::unique_ptr<LocationScheme> scheme;
  if (kind == "tapestry")
    scheme = std::make_unique<TapestryScheme>(space, default_params(), seed);
  else if (kind == "chord")
    scheme = std::make_unique<ChordNetwork>(space, seed);
  else if (kind == "can")
    scheme = std::make_unique<CanNetwork>(space, seed);
  else if (kind == "central")
    scheme = std::make_unique<CentralDirectory>(space);
  else
    scheme = std::make_unique<BlindPrefixOverlay>(space, IdSpec{4, 8}, seed);

  for (std::size_t i = 0; i < kNodes; ++i) scheme->add_node(i, nullptr);
  scheme->finalize();

  Series s;
  s.scheme = scheme->name();
  s.by_bucket.resize(kBuckets);
  Rng wl(seed ^ 0xfeedbeef);
  for (std::size_t q = 0; q < kQueries; ++q) {
    const std::uint64_t key = 40000 + q;
    const std::size_t server = wl.next_u64(kNodes);
    const std::size_t client = wl.next_u64(kNodes);
    if (server == client) continue;
    scheme->publish(server, key, nullptr);
    const SchemeLocate r = scheme->locate(client, key, nullptr);
    if (!r.found) continue;
    const double direct = space.distance(client, server);
    if (direct < 1e-9) continue;
    const double stretch = r.latency / direct;
    const auto it = std::upper_bound(decile_edges.begin(), decile_edges.end(),
                                     direct);
    const auto bucket = std::min<std::size_t>(
        kBuckets - 1, static_cast<std::size_t>(it - decile_edges.begin()));
    s.by_bucket[bucket].add(stretch);
    s.overall.add(stretch);
  }
  return s;
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E2 — stretch vs. client-object distance",
               "§2.2 / Theorem 1: constant expected stretch for growth-"
               "restricted metrics; Figure 3: nearby objects are found on "
               "nearby paths");

  for (const std::string& space_kind : {std::string("ring"),
                                       std::string("torus")}) {
    Rng rng(4242);
    auto space = make_space(space_kind, kNodes + 8, rng);
    print_space_info(*space, 4242);

    // Distance deciles of random node pairs define the buckets.
    std::vector<double> sample;
    Rng pair_rng(7);
    for (int i = 0; i < 20000; ++i) {
      const Location a = pair_rng.next_u64(kNodes);
      const Location b = pair_rng.next_u64(kNodes);
      if (a != b) sample.push_back(space->distance(a, b));
    }
    std::sort(sample.begin(), sample.end());
    std::vector<double> edges;
    for (std::size_t d = 1; d < kBuckets; ++d)
      edges.push_back(sample[d * sample.size() / kBuckets]);

    const std::vector<std::string> kinds{"tapestry", "chord", "can",
                                         "central", "blind"};
    const auto series = run_trials<Series>(kinds.size(), [&](std::size_t i) {
      return run_scheme(kinds[i], *space, edges, 99 + i);
    });

    std::vector<std::string> header{"scheme"};
    for (std::size_t b = 0; b < kBuckets; ++b)
      header.push_back("d" + std::to_string(b + 1));
    header.push_back("overall");
    TextTable table(header);
    for (const Series& s : series) {
      std::vector<std::string> row{s.scheme};
      for (const auto& bucket : s.by_bucket)
        row.push_back(bucket.empty() ? "-" : fmt(bucket.mean(), 1));
      row.push_back(fmt(s.overall.mean(), 2));
      table.add_row(row);
    }
    table.print();
    std::printf(
        "(columns: stretch per client-replica distance decile, d1 = nearest"
        " pairs)\n");
  }
  std::printf(
      "\nreading guide: tapestry's stretch stays flat-ish across deciles\n"
      "(constant-stretch shape); chord/can/blind/central explode on d1-d3\n"
      "because their query paths ignore where the object actually is.\n");
  return 0;
}
