// E10 — Load balance of surrogate roots (paper §2.3, §2.4).
//
// The paper notes that "the Tapestry Native Routing scheme may have better
// load balancing properties" than the distributed PRR-like variant, which
// always resolves holes toward numerically higher digits and therefore
// concentrates root duty on high-digit node-IDs.  This experiment maps
// 20,000 GUIDs to roots under both variants and reports the distribution
// of root ownership (mean = uniform share, max share, coefficient of
// variation) plus the share of the most loaded 1% of nodes.
#include <algorithm>
#include <map>

#include "bench_util.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

struct Result {
  std::string mode;
  double max_over_mean;
  double cv;
  double top1pct_share;
};

Result run(RoutingMode mode, std::uint64_t seed) {
  constexpr std::size_t kNodes = 1024;
  constexpr int kGuids = 20000;
  Rng rng(seed);
  auto space = make_space("ring", kNodes + 8, rng);
  TapestryParams params = default_params();
  params.routing = mode;
  auto net = build_static(*space, kNodes, params, seed);

  std::map<std::uint64_t, std::size_t> owned;
  for (int g = 0; g < kGuids; ++g) {
    const Guid guid = bench_guid(*net, 70000 + g);
    ++owned[net->surrogate_root(guid).value()];
  }
  std::vector<double> loads;
  loads.reserve(owned.size());
  for (const auto& [id, count] : owned) loads.push_back(double(count));
  // Nodes owning zero roots matter for the distribution too.
  while (loads.size() < kNodes) loads.push_back(0.0);
  Summary s;
  s.add_all(loads);
  std::sort(loads.begin(), loads.end(), std::greater<>());
  double top = 0;
  const std::size_t top_count = kNodes / 100;
  for (std::size_t i = 0; i < top_count; ++i) top += loads[i];

  Result r;
  r.mode = mode == RoutingMode::kTapestryNative ? "tapestry-native"
                                                : "distributed-prr-like";
  r.max_over_mean = s.max() / s.mean();
  r.cv = s.stddev() / s.mean();
  r.top1pct_share = top / double(kGuids);
  return r;
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E10 — surrogate-root load balance",
               "§2.3/§2.4: Tapestry native routing load-balances roots "
               "better than the PRR-like highest-digit rule");

  const std::vector<RoutingMode> modes{RoutingMode::kTapestryNative,
                                       RoutingMode::kPrrLike};
  const auto results = run_trials<Result>(modes.size(), [&](std::size_t i) {
    return run(modes[i], 808 + i);
  });

  TextTable table({"routing variant", "max/mean root load", "coeff. of var.",
                   "share owned by top 1% nodes"});
  for (const Result& r : results)
    table.add_row({r.mode, fmt(r.max_over_mean, 1), fmt(r.cv, 2),
                   fmt(r.top1pct_share * 100.0, 1) + "%"});
  table.print();
  std::printf(
      "\nreading guide: the native wrap-around rule spreads hole traffic\n"
      "over the digit space; the PRR-like rule funnels it to numerically\n"
      "high IDs, inflating max/mean and the top-1%% share — the imbalance\n"
      "the paper calls out in §2.3/§2.4.\n");
  return 0;
}
