// E1 — Table 1: Comparison of Object Location Systems.
//
// The paper's Table 1 lists asymptotic insert cost, space, stretch and hop
// bounds for Chord, CAN, Pastry, Viceroy, Tapestry (this paper),
// Awerbuch-Peleg, RRVV, and PRR.  This experiment measures those columns
// empirically for every system implemented in this repository — Tapestry
// (dynamic, both as published), Chord, CAN, the centralized directory
// strawman, the proximity-blind prefix ablation, the static PRR oracle,
// and the PRR v.0 general-metric scheme (§7) — on a growth-restricted ring
// and prints the rows the paper tabulates.  Rows the paper lists without
// an implementable algorithm (Viceroy, Awerbuch-Peleg, RRVV) are reprinted
// from the paper, marked "published".
#include <memory>

#include "bench_util.h"
#include "src/baselines/blind_prefix.h"
#include "src/baselines/can.h"
#include "src/baselines/central.h"
#include "src/baselines/chord.h"
#include "src/baselines/general_metric.h"
#include "src/baselines/tapestry_scheme.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

struct Row {
  std::string scheme;
  std::string insert_msgs = "-";
  std::string space_per_node;
  std::string stretch;
  std::string hops;
  std::string balanced;
  std::string found;
};

struct SchemeSpec {
  std::string kind;
  bool balanced;
};

std::unique_ptr<LocationScheme> instantiate(const std::string& kind,
                                            const MetricSpace& space,
                                            std::uint64_t seed) {
  if (kind == "tapestry" || kind == "prr-static") {
    TapestryParams p = default_params();
    return std::make_unique<TapestryScheme>(space, p, seed);
  }
  if (kind == "chord") return std::make_unique<ChordNetwork>(space, seed);
  if (kind == "can") return std::make_unique<CanNetwork>(space, seed);
  if (kind == "central") return std::make_unique<CentralDirectory>(space);
  if (kind == "blind")
    return std::make_unique<BlindPrefixOverlay>(space, IdSpec{4, 8}, seed);
  if (kind == "prr-v0")
    return std::make_unique<GeneralMetricScheme>(space, seed);
  std::abort();
}

Row measure(const std::string& kind, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", n + 16, rng);
  auto scheme = instantiate(kind, *space, seed);

  // Membership: measure per-join message cost over the last joins (only
  // meaningful for dynamic schemes; the static PRR oracle uses the oracle
  // construction, matching the "-" of the paper's PRR row).
  Summary insert_msgs;
  const bool dynamic = scheme->dynamic_insert() && kind != "prr-static";
  for (std::size_t i = 0; i < n; ++i) {
    Trace t;
    scheme->add_node(i, &t);
    if (dynamic && i >= n - n / 8) insert_msgs.add(double(t.messages()));
  }
  if (kind == "prr-static") {
    auto* tap_scheme = static_cast<TapestryScheme*>(scheme.get());
    tap_scheme->network().rebuild_static_tables();
  }
  scheme->finalize();

  // Workload: 2n objects at random servers; queries from random clients.
  Rng wl(seed ^ 0x5eed);
  std::vector<std::pair<std::uint64_t, std::size_t>> objects;
  for (std::size_t o = 0; o < 2 * n; ++o) {
    const std::size_t server = wl.next_u64(n);
    scheme->publish(server, 1000 + o, nullptr);
    objects.emplace_back(1000 + o, server);
  }
  Summary stretch, hops;
  std::size_t found = 0, queries = 0;
  for (std::size_t q = 0; q < 4 * n; ++q) {
    const auto& [key, server] = objects[wl.next_u64(objects.size())];
    const std::size_t client = wl.next_u64(n);
    if (client == server) continue;
    const SchemeLocate r = scheme->locate(client, key, nullptr);
    ++queries;
    if (!r.found) continue;
    ++found;
    hops.add(double(r.hops));
    const double direct = space->distance(client, server);
    if (direct > 1e-9) stretch.add(r.latency / direct);
  }

  Row row;
  row.scheme = scheme->name() + (kind == "prr-static" ? " (static)" : "");
  if (dynamic) row.insert_msgs = fmt(insert_msgs.mean(), 0);
  row.space_per_node = fmt(double(scheme->total_state()) / double(n), 1);
  row.stretch = fmt(stretch.mean(), 2) + " (p95 " +
                fmt(stretch.percentile(95), 1) + ")";
  row.hops = fmt(hops.mean(), 1);
  row.balanced = (kind == "central") ? "no" : "yes";
  row.found = fmt(double(found) / double(queries) * 100.0, 1) + "%";
  return row;
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E1 / Table 1 — comparison of object location systems",
               "Table 1: insert cost, space, stretch, hops, balance for "
               "Chord / CAN / Tapestry / PRR / PRR v.0 and the central "
               "directory strawman");

  const std::vector<std::string> kinds{"tapestry", "chord",  "can",
                                       "central",  "blind",  "prr-static",
                                       "prr-v0"};
  for (const std::size_t n : {256ul, 1024ul}) {
    std::printf("\n--- n = %zu, objects = %zu, queries = %zu (ring) ---\n", n,
                2 * n, 4 * n);
    // Schemes measured in parallel: each trial is fully independent.
    const auto rows = run_trials<Row>(
        kinds.size(),
        [&](std::size_t i) { return measure(kinds[i], n, 17 + i); });
    TextTable table({"scheme", "insert msgs/join", "space/node",
                     "stretch mean", "hops", "balanced", "success"});
    for (const Row& r : rows)
      table.add_row({r.scheme, r.insert_msgs, r.space_per_node, r.stretch,
                     r.hops, r.balanced, r.found});
    // Rows the paper lists but provides no implementable algorithm for.
    table.add_row({"viceroy [21]", "O(log n) (published)", "O(1)·n",
                   "- (published)", "O(log n)", "yes", "-"});
    table.add_row({"awerbuch-peleg [1]", "- (published)", "O(log^3 n)",
                   "O(log^2 n) (published)", "O(log^2 n)", "no", "-"});
    table.add_row({"rrvv [25]", "O(log^3 n) (published)", "O(log^3 n)",
                   "O(log^3 n) (published)", "O(log^2 n)", "yes", "-"});
    table.print();
  }
  std::printf(
      "\nreading guide: Tapestry matches Chord/CAN on balance and space\n"
      "while adding locality (low stretch); the central directory has the\n"
      "lowest hop count but no balance and diameter-bound latency; the\n"
      "blind-prefix ablation shows stretch comes from Property 2, not\n"
      "prefix routing itself; PRR v.0 trades stretch for generality.\n");
  return 0;
}
