// E4 — Nearest-neighbor list quality vs k (paper §3, Lemma 1 / Theorem 3).
//
// The incremental nearest-neighbor algorithm keeps the k closest nodes per
// prefix level; Theorem 3 proves k = O(log n) suffices w.h.p. for the
// resulting table to equal the static ground truth.  This experiment grows
// networks with k = scale · log2(n) for several scales and reports:
//   * Property 2 quality (fraction of slots whose primary is the true
//     closest matching node),
//   * the rate at which each node's overall nearest neighbor appears in
//     its level-0 row,
//   * the insertion cost paid for that quality (the k knob's price).
#include "bench_util.h"
#include "src/metric/analysis.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

constexpr std::size_t kNodes = 512;

struct Result {
  double k_scale;
  unsigned k;
  double quality;
  double nn_found_rate;
  double msgs_per_join;
};

Result measure(double k_scale, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", kNodes + 8, rng);
  TapestryParams params = default_params();
  params.k_scale = k_scale;
  params.k_min = 2;

  auto net = std::make_unique<Network>(*space, params, seed);
  Trace joins;
  net->bootstrap(0);
  for (std::size_t i = 1; i < kNodes; ++i) net->join(i, std::nullopt, &joins);

  // How often is the true nearest node present as a level-0 primary?
  std::size_t found = 0, total = 0;
  for (const NodeId& id : net->node_ids()) {
    const auto order = nearest_sorted(*space, net->node(id).location());
    NodeId nearest{};
    for (const Location loc : order) {
      for (const NodeId& other : net->node_ids())
        if (!(other == id) && net->node(other).location() == loc) {
          nearest = other;
          break;
        }
      if (nearest.valid()) break;
    }
    if (!nearest.valid()) continue;
    ++total;
    const auto prim = net->node(id).table().primary(0, nearest.digit(0));
    if (prim.has_value() &&
        net->distance(id, *prim) <= net->distance(id, nearest) + 1e-12)
      ++found;
  }

  Result r;
  r.k_scale = k_scale;
  r.k = params.effective_k(kNodes);
  r.quality = net->property2_quality();
  r.nn_found_rate = double(found) / double(total);
  r.msgs_per_join = double(joins.messages()) / double(kNodes - 1);
  return r;
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E4 — nearest-neighbor quality vs k",
               "Lemma 1 / Theorem 3: k = O(log n) per-level lists build the "
               "correct (locality-optimal) neighbor table w.h.p.");

  const std::vector<double> scales{0.25, 0.5, 1.0, 2.0, 3.0, 4.0};
  const auto results = run_trials<Result>(scales.size(), [&](std::size_t i) {
    return measure(scales[i], 2024 + i);
  });

  TextTable table({"k_scale", "k", "property2 quality", "NN in table",
                   "msgs/join"});
  for (const Result& r : results)
    table.add_row({fmt(r.k_scale, 2), fmt(std::size_t{r.k}),
                   fmt(r.quality * 100.0, 2) + "%",
                   fmt(r.nn_found_rate * 100.0, 2) + "%",
                   fmt(r.msgs_per_join, 0)});
  table.print();
  std::printf(
      "\nreading guide: this implementation builds each table row from the\n"
      "digit-complete union of the queried tables' rows, so Property 1/2\n"
      "quality is near-perfect even for k below log2(n) = %0.1f, with the\n"
      "residual misses at the smallest k; what k buys past that point —\n"
      "and what Theorem 3's O(log n) prices in — is the recursion's\n"
      "robustness, paid for linearly in msgs/join.  The knee sits at a\n"
      "small multiple of log n, as the theorem predicts.\n",
      std::log2(double(kNodes)));
  return 0;
}
