// bench_hotspot — zipf locate path: per-node hop caches + demand-driven
// replica placement (ISSUE 6).
//
// Two experiments, both seed-deterministic:
//
//   A. Static 256-node mesh over a 16-digit binary ID space (the deep-walk
//      regime where a hop cache has room to cut: routes resolve one bit
//      per hop, so walks run ~7-11 messages), 128 objects, 16k zipf(1.0)
//      lookups from random clients.  Three configurations over identical
//      workloads: uncached (the seed's locate path), per-node locate
//      cache, and cache + demand-driven hotspot replication.  Because hop
//      counts are message counts on a quiescent mesh, the p99 comparison
//      is machine-independent.  The cached run executes twice and must
//      fingerprint identically (exact determinism gate).
//
//   B. Flash crowd under churn: a uniform-popularity ChurnDriver baseline
//      vs a zipf run where one object's popularity spikes 1000x mid-run
//      with cache + hotspot replication enabled.  Gate: availability with
//      the skewed, flash-crowded workload is no worse than the uniform
//      baseline's.
//
// perf-smoke gates (tools/check_bench.py, bench/baselines/
// bench_hotspot.json): determinism and found-agreement exact; cached p99
// hops strictly below uncached (ratio floor); hotspot load spread
// (max/mean queries absorbed per resolver) below the uncached spread;
// flash availability ratio floor.
#include <cstring>
#include <memory>
#include <unordered_map>

#include "bench_util.h"
#include "src/sim/churn_driver.h"

namespace {

using namespace tap;
using namespace tap::bench;

constexpr std::uint64_t kSeed = 617;
constexpr std::size_t kNodes = 256;
constexpr std::size_t kObjects = 128;
constexpr std::size_t kQueries = 16'000;
constexpr double kZipfS = 1.0;
constexpr std::size_t kCache = 128;

struct StaticOut {
  Summary hops;
  std::size_t queries = 0, found = 0;
  std::size_t load_max = 0, load_nodes = 0;
  LocateCache::Stats cache{};
  std::size_t promotions = 0;
  std::uint64_t fingerprint = 0;

  [[nodiscard]] double spread() const {
    if (load_nodes == 0 || found == 0) return 0.0;
    const double mean = static_cast<double>(found) /
                        static_cast<double>(load_nodes);
    return static_cast<double>(load_max) / mean;
  }
};

/// One full static experiment: identical overlay, objects and query
/// schedule for every configuration; only the cache size and the hotspot
/// manager differ.
StaticOut run_static(std::size_t cache_size, bool hotspot) {
  Rng rng(kSeed);
  auto space = make_space("ring", 2 * kNodes, rng);
  TapestryParams params = default_params();
  params.id = IdSpec{1, 16};  // one bit per hop: deep walks (see header)
  params.locate_cache_size = cache_size;
  auto net = build_static(*space, kNodes, params, kSeed);
  const auto ids = net->node_ids();

  Rng wl(kSeed ^ 0x407);
  std::vector<Guid> objects;
  objects.reserve(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) {
    const Guid g = bench_guid(*net, i);
    objects.push_back(g);
    net->publish(ids[wl.next_u64(ids.size())], g);
  }

  // Synchronous manager, promotions fire inside record_query; no event
  // queue runs, so there is no decay and no demotion tick — exactly the
  // steady-state-demand regime experiment A measures.
  std::unique_ptr<HotspotManager> mgr;
  if (hotspot) {
    HotspotParams hp;
    hp.max_extra_replicas = 2;
    mgr = std::make_unique<HotspotManager>(net->registry(), net->directory(),
                                           net->events(), hp,
                                           /*synchronous=*/true);
  }

  const PopularityDist pop = PopularityDist::zipf(kObjects, kZipfS);
  Rng qr(kSeed ^ 0xbeef);
  std::unordered_map<std::uint64_t, std::size_t> load;
  StaticOut out;
  out.queries = kQueries;
  out.fingerprint = 0xcbf29ce484222325ull;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const Guid& target = objects[pop.draw(qr)];
    const NodeId client = ids[qr.next_u64(ids.size())];
    const LocateResult r = net->locate(client, target);
    if (r.found) {
      ++out.found;
      out.hops.add(static_cast<double>(r.hops));
      ++load[r.pointer_node.value()];
    }
    if (mgr != nullptr) mgr->record_query(target, client, r.found);
    out.fingerprint = splitmix64(out.fingerprint ^ (r.hops * 2 + r.found));
    out.fingerprint = splitmix64(out.fingerprint ^ r.pointer_node.value());
  }
  for (const auto& [node, n] : load) {
    out.load_max = std::max(out.load_max, n);
    (void)node;
  }
  out.load_nodes = load.size();
  out.cache = net->directory().locate_cache().stats();
  if (mgr != nullptr) out.promotions = mgr->stats().promotions;
  return out;
}

struct FlashOut {
  double availability = 0.0;
  double post_failure = 0.0;
  double hops_p99 = 0.0;
  std::size_t promotions = 0;
};

/// One churn run; `flash` switches from the uniform baseline to the
/// zipf + flash-crowd + cache + hotspot configuration.
FlashOut run_flash(bool flash) {
  Rng rng(kSeed + 1);
  auto space = make_space("ring", 256, rng);
  TapestryParams params = default_params();
  params.pointer_ttl = 8.0;
  if (flash) params.locate_cache_size = kCache;
  auto net = build_static(*space, 128, params, kSeed + 1);

  ChurnScenario sc;
  sc.horizon = 20.0;
  sc.epoch = 5.0;
  sc.join_rate = 0.4;
  sc.leave_rate = 0.3;
  sc.fail_rate = 0.3;
  sc.min_nodes = 64;
  sc.query_rate = 30.0;
  sc.objects = 64;
  sc.replicas = 1;
  sc.republish_interval = 4.0;
  sc.expiry_interval = 1.0;
  sc.heartbeat_interval = 4.0;
  sc.seed = kSeed + 1;
  if (flash) {
    sc.popularity = ChurnScenario::Popularity::kZipf;
    sc.zipf_s = kZipfS;
    sc.flash_at = 10.0;
    sc.flash_factor = 1000.0;
    sc.flash_index = 0;
    sc.hotspot_replication = true;
  }

  ChurnDriver driver(*net, sc);
  const ChurnReport rep = driver.run();
  FlashOut out;
  out.availability = rep.availability();
  out.post_failure = rep.availability_post_failure();
  out.hops_p99 = rep.hops.empty() ? 0.0 : rep.hops.percentile(99);
  out.promotions = rep.hotspot_promotions;
  return out;
}

int run(bool json) {
  const StaticOut uncached = run_static(0, false);
  const StaticOut cached = run_static(kCache, false);
  const StaticOut cached2 = run_static(kCache, false);
  const StaticOut hot = run_static(kCache, true);

  const bool deterministic = cached.fingerprint == cached2.fingerprint;
  const bool agreement =
      uncached.found == cached.found && cached.found == hot.found;
  const double p99_uncached = uncached.hops.percentile(99);
  const double p99_cached = cached.hops.percentile(99);
  const double p99_hot = hot.hops.percentile(99);
  const double p99_improvement =
      p99_cached == 0.0 ? 0.0 : p99_uncached / p99_cached;
  const double hit_rate =
      cached.cache.hits + cached.cache.misses == 0
          ? 0.0
          : static_cast<double>(cached.cache.hits) /
                static_cast<double>(cached.cache.hits + cached.cache.misses);
  const double spread_improvement =
      hot.spread() == 0.0 ? 0.0 : uncached.spread() / hot.spread();

  const FlashOut uniform = run_flash(false);
  const FlashOut flashed = run_flash(true);
  const double flash_ratio = uniform.availability == 0.0
                                 ? 0.0
                                 : flashed.availability /
                                       uniform.availability;

  if (json) {
    std::printf(
        "{\"bench\":\"bench_hotspot\",\"metrics\":{"
        "\"determinism\":%d,\"found_agreement\":%d,"
        "\"uncached_p99_hops\":%.2f,\"cached_p99_hops\":%.2f,"
        "\"hotspot_p99_hops\":%.2f,\"p99_improvement\":%.3f,"
        "\"cache_hit_rate\":%.3f,\"cache_fallbacks\":%zu,"
        "\"load_spread_uncached\":%.2f,\"load_spread_hotspot\":%.2f,"
        "\"spread_improvement\":%.3f,\"hotspot_promotions\":%zu,"
        "\"uniform_availability\":%.4f,\"flash_availability\":%.4f,"
        "\"flash_vs_uniform_availability\":%.4f,"
        "\"flash_hotspot_promotions\":%zu}}\n",
        deterministic ? 1 : 0, agreement ? 1 : 0, p99_uncached, p99_cached,
        p99_hot, p99_improvement, hit_rate, cached.cache.fallbacks,
        uncached.spread(), hot.spread(), spread_improvement, hot.promotions,
        uniform.availability, flashed.availability, flash_ratio,
        flashed.promotions);
    return deterministic && agreement ? 0 : 1;
  }

  print_header("E15 — zipf locate path: hop caches + hotspot replication",
               "ISSUE 6: per-node locate caches cut p99 hops on skewed "
               "workloads; demand-driven replicas bound per-node load; a "
               "flash crowd stays as available as the uniform baseline");
  std::printf("A. static mesh: %zu nodes, 16-digit binary ids, %zu objects, "
              "%zu zipf(%.1f) lookups, cache %zu entries/node\n\n",
              kNodes, kObjects, kQueries, kZipfS, kCache);
  std::printf("  %-16s %8s %8s %8s %10s %8s\n", "config", "found", "p50",
              "p99", "load max", "spread");
  auto row = [](const char* name, const StaticOut& o) {
    std::printf("  %-16s %8zu %8.1f %8.1f %10zu %8.2f\n", name, o.found,
                o.hops.percentile(50), o.hops.percentile(99), o.load_max,
                o.spread());
  };
  row("uncached", uncached);
  row("cached", cached);
  row("cached+hotspot", hot);
  std::printf("\n  cache: %.1f%% hit rate (%zu hits, %zu fallbacks); "
              "determinism %s, found agreement %s\n",
              hit_rate * 100.0, cached.cache.hits, cached.cache.fallbacks,
              deterministic ? "exact" : "BROKEN",
              agreement ? "exact" : "BROKEN");
  std::printf("  p99 hops %.1f -> %.1f cached (%.2fx); load spread "
              "%.2f -> %.2f with %zu promotions (%.2fx)\n",
              p99_uncached, p99_cached, p99_improvement, uncached.spread(),
              hot.spread(), hot.promotions, spread_improvement);
  std::printf("\nB. flash crowd under churn (one object spikes 1000x at "
              "t=10):\n\n");
  std::printf("  %-16s %14s %14s %8s\n", "workload", "availability",
              "post-failure", "p99");
  std::printf("  %-16s %13.2f%% %13.2f%% %8.1f\n", "uniform",
              uniform.availability * 100.0, uniform.post_failure * 100.0,
              uniform.hops_p99);
  std::printf("  %-16s %13.2f%% %13.2f%% %8.1f\n", "zipf+flash+hot",
              flashed.availability * 100.0, flashed.post_failure * 100.0,
              flashed.hops_p99);
  std::printf("\n  flash vs uniform availability: %.3fx "
              "(%zu hotspot promotions during the run)\n",
              flash_ratio, flashed.promotions);
  return deterministic && agreement ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "usage: bench_hotspot [--json]\n");
      return 2;
    }
  }
  return run(json);
}
