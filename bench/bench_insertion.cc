// E3 — Node insertion cost scaling (paper §3.3 and §4.5).
//
// Claims reproduced:
//   * O(log^2 n) messages per insertion w.h.p. (§4.5);
//   * O(d log n) total network latency for building the neighbor table,
//     where d is the network diameter (§3.3) — the level radii decrease
//     geometrically, so total distance is dominated by the top level;
//   * the acknowledged multicast contacts the α-prefix set, small in
//     expectation (§4.5).
//
// We grow networks of doubling size, measure the cost of fresh joins at
// each size, and fit messages against log2(n) and log2^2(n): the log^2 fit
// should win (higher R^2) once past the small-n constant-dominated regime.
#include "bench_util.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

struct Point {
  std::size_t n;
  double msgs;
  double latency;
  double diameter;
};

Point measure(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", n + 16, rng);
  auto net = grow(*space, n, default_params(), seed);
  Summary msgs, latency;
  for (std::size_t i = 0; i < 12; ++i) {
    Trace t;
    net->join(n + i, std::nullopt, &t);
    msgs.add(double(t.messages()));
    latency.add(t.latency());
  }
  return Point{n, msgs.mean(), latency.mean(), 0.5 /* ring diameter */};
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E3 — insertion cost vs n",
               "§4.5: O(log^2 n) messages per insert w.h.p.; §3.3: O(d log n)"
               " latency for neighbor-table construction");

  const std::vector<std::size_t> sizes{64, 128, 256, 512, 1024, 2048};
  const auto points = run_trials<Point>(sizes.size(), [&](std::size_t i) {
    return measure(sizes[i], 1000 + i);
  });

  TextTable table({"n", "msgs/join", "latency/join", "latency / (d·log2 n)"});
  std::vector<double> lg, lg2, msgs;
  for (const Point& p : points) {
    const double l = std::log2(double(p.n));
    lg.push_back(l);
    lg2.push_back(l * l);
    msgs.push_back(p.msgs);
    table.add_row({fmt(p.n), fmt(p.msgs, 1), fmt(p.latency, 2),
                   fmt(p.latency / (p.diameter * l), 2)});
  }
  table.print();

  const LinearFit fit_log = fit_linear(lg, msgs);
  const LinearFit fit_log2 = fit_linear(lg2, msgs);
  std::printf("\nscaling fits for msgs/join:\n");
  std::printf("  vs log2(n)   : slope %.1f, R^2 %.4f\n", fit_log.slope,
              fit_log.r_squared);
  std::printf("  vs log2(n)^2 : slope %.2f, R^2 %.4f\n", fit_log2.slope,
              fit_log2.r_squared);
  std::printf(
      "\nreading guide: both fits are good at these sizes (constants\n"
      "dominate below saturation of the per-level candidate neighborhood);\n"
      "the growth factor between successive doublings falls well below 2,\n"
      "ruling out linear cost.  The latency column normalized by d·log2 n\n"
      "should be roughly flat (the §3.3 O(d log n) shape).\n");
  return 0;
}
