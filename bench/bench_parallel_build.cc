// E13 — Parallel overlay construction.
//
// The paper assumes overlays of massive size; this bench proves the repo
// can stand one up concurrently.  It builds the same overlay twice — once
// with one worker, once with --threads workers — through the bulk pipeline
// (register_bulk + parallel rebuild_static_tables + publish_batch), checks
// the two results are bit-identical (the pipeline's determinism contract:
// same seed + any thread count => identical tables), and reports the
// wall-clock speedup.
//
// Flags: --nodes=N [50000]  --objects=M [nodes/10]  --threads=T [4]
//        --seed=S [1]  --json (machine-readable metrics for CI)
//
// JSON metrics (tools/check_bench.py compares them against
// bench/baselines/bench_parallel_build.json):
//   tables_match / stores_match   determinism contract, exact
//   total_table_entries           deterministic table mass, exact
//   locate_found                  query success over the batch-published
//                                 workload, exact
//   build_speedup                 wall-clock serial/parallel ratio; a
//                                 floor gate — it depends on the runner's
//                                 core count (1.0 on a single-core box)
#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "src/sim/thread_pool.h"
#include "src/tapestry/fingerprint.h"

namespace tap::bench {
namespace {

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct BuildResult {
  double build_ms = 0.0;
  double publish_ms = 0.0;
  std::uint64_t tables_fp = 0;
  std::uint64_t stores_fp = 0;
  std::size_t entries = 0;
  std::unique_ptr<Network> net;  // the built overlay, for further probing
};

BuildResult build_once(const MetricSpace& space, const TapestryParams& params,
                       std::size_t nodes, std::size_t objects,
                       std::size_t workers, std::uint64_t seed) {
  BuildResult r;
  r.net = std::make_unique<Network>(space, params, seed);
  Network& net = *r.net;
  std::vector<Location> locs(nodes);
  for (std::size_t i = 0; i < nodes; ++i) locs[i] = i;

  auto t0 = std::chrono::steady_clock::now();
  net.insert_static_bulk(locs, workers);
  net.rebuild_static_tables(workers);
  r.build_ms = wall_ms(t0);

  Rng wl(seed ^ 0xb47c);
  const auto ids = net.node_ids();
  std::vector<ObjectDirectory::PublishRequest> pubs;
  pubs.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i)
    pubs.push_back({ids[wl.next_u64(ids.size())], bench_guid(net, i)});
  t0 = std::chrono::steady_clock::now();
  net.publish_batch(pubs, workers);
  r.publish_ms = wall_ms(t0);

  r.tables_fp = fingerprint_tables(net);
  r.stores_fp = fingerprint_stores(net);
  r.entries = net.total_table_entries();
  return r;
}

}  // namespace
}  // namespace tap::bench

int main(int argc, char** argv) {
  using namespace tap;
  using namespace tap::bench;

  std::size_t nodes = 50'000, objects = 0, threads = 4;
  std::uint64_t seed = 1;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) nodes = std::stoul(argv[i] + 8);
    else if (std::strncmp(argv[i], "--objects=", 10) == 0)
      objects = std::stoul(argv[i] + 10);
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = std::stoul(argv[i] + 10);
    else if (std::strncmp(argv[i], "--seed=", 7) == 0)
      seed = std::stoull(argv[i] + 7);
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (objects == 0) objects = nodes / 10;

  Rng rng(seed);
  auto space = make_space("ring", nodes + 8, rng);
  const TapestryParams params = default_params();

  const BuildResult serial =
      build_once(*space, params, nodes, objects, 1, seed);
  const BuildResult parallel =
      build_once(*space, params, nodes, objects, threads, seed);

  const bool tables_match = serial.tables_fp == parallel.tables_fp;
  const bool stores_match = serial.stores_fp == parallel.stores_fp;
  const double build_speedup = parallel.build_ms > 0.0
                                   ? serial.build_ms / parallel.build_ms
                                   : 1.0;
  const double publish_speedup = parallel.publish_ms > 0.0
                                     ? serial.publish_ms / parallel.publish_ms
                                     : 1.0;

  // Query the parallel-built overlay: every batched publish must resolve.
  Network& net = *parallel.net;
  const auto ids = net.node_ids();
  Rng wl(seed ^ 0x9ead);
  const std::size_t probes = std::min<std::size_t>(objects, 2000);
  std::size_t found = 0;
  for (std::size_t q = 0; q < probes; ++q)
    if (net.locate(ids[wl.next_u64(ids.size())], bench_guid(net, q)).found)
      ++found;
  const double locate_found =
      probes == 0 ? 1.0 : double(found) / double(probes);

  if (json) {
    std::printf(
        "{\"bench\":\"bench_parallel_build\",\"metrics\":{"
        "\"tables_match\":%d,\"stores_match\":%d,"
        "\"total_table_entries\":%zu,\"locate_found\":%.4f,"
        "\"build_speedup\":%.3f,\"publish_speedup\":%.3f,"
        "\"build_ms_serial\":%.1f,\"build_ms_parallel\":%.1f,"
        "\"threads\":%zu,\"hardware_threads\":%zu}}\n",
        tables_match ? 1 : 0, stores_match ? 1 : 0, serial.entries,
        locate_found, build_speedup, publish_speedup, serial.build_ms,
        parallel.build_ms, threads, default_worker_count());
    return tables_match && stores_match ? 0 : 1;
  }

  print_header("E13 — parallel overlay construction",
               "bulk pipeline determinism + build-time scaling "
               "(same seed, any thread count => identical tables)");
  print_space_info(*space, seed);
  TextTable table({"workers", "build ms", "publish ms", "tables", "stores"});
  table.add_row({"1", fmt(serial.build_ms, 0), fmt(serial.publish_ms, 1),
                 "-", "-"});
  table.add_row({fmt(threads), fmt(parallel.build_ms, 0),
                 fmt(parallel.publish_ms, 1),
                 tables_match ? "identical" : "MISMATCH!",
                 stores_match ? "identical" : "MISMATCH!"});
  table.print();
  std::printf(
      "\nbuild speedup %.2fx, publish speedup %.2fx at %zu workers "
      "(%zu hardware threads); %zu table entries; locate success %.1f%%\n"
      "reading guide: speedup tracks min(workers, cores); the fingerprints\n"
      "must match for every thread count — the determinism contract.\n",
      build_speedup, publish_speedup, threads, default_worker_count(),
      serial.entries, 100.0 * locate_found);
  return tables_match && stores_match ? 0 : 1;
}
