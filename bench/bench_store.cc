// bench_store — object-store backend comparison (ISSUE 4).
//
// Times the three ObjectStoreBackend implementations under the mixes the
// simulator actually generates — publish-path upserts, locate-path reads,
// expiry sweeps, and the publish_batch deposit drain — and emits the
// metrics the perf-smoke CI job gates via tools/check_bench.py
// (bench/baselines/bench_store.json):
//
//   * memory_vs_legacy_{upsert,findlive}: MemoryStore (through the virtual
//     interface) relative to an inlined copy of the pre-refactor
//     ObjectStore — the guard that the backend seam costs nothing on the
//     old hot paths.  Ratio gates, machine-independent.
//   * sharded_drain_speedup: a task-ordered deposit stream drained into
//     ShardedStores serially vs in parallel partitioned by lock stripe
//     (the publish_batch phase-2 scheme).  Floor gate, PR 3 style: ~1x on
//     a single hardware thread, the real win appears on multi-core CI.
//   * backend_agreement / drain_match / persist_roundtrip: exact gates
//     that every backend saw the same visible state, the parallel drain
//     matched the serial one, and the persistent store survived a close
//     -> reopen round trip bit-for-bit.
//   * replicated_kill_availability: overlay-level availability after
//     killing every published object's current root (and, for half the
//     objects, additionally its first replica holder) with no republish
//     running.  Floor gate at 1.0 for the replicated backend — quorum
//     reads must absorb every kill; the memory backend's figure under the
//     identical kill schedule is reported for contrast.
//
// Absolute throughput figures are reported as informational metrics.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>

#include "bench_util.h"
#include "src/metric/ring.h"
#include "src/sim/thread_pool.h"
#include "src/tapestry/network.h"
#include "src/tapestry/persistent_store.h"
#include "src/tapestry/replicated_store.h"
#include "src/tapestry/sharded_store.h"

namespace {

using namespace tap;
using namespace tap::bench;

// Verbatim copy of the pre-refactor ObjectStore (non-virtual, concrete):
// the baseline the MemoryStore backend must not regress against.
class LegacyStore {
 public:
  void upsert(const Guid& guid, const PointerRecord& record) {
    auto& vec = map_[guid];
    for (auto& r : vec) {
      if (r.server == record.server) {
        r = record;
        return;
      }
    }
    vec.push_back(record);
    ++count_;
  }
  [[nodiscard]] std::vector<PointerRecord> find_live(const Guid& guid,
                                                     double now) const {
    std::vector<PointerRecord> out;
    auto it = map_.find(guid);
    if (it == map_.end()) return out;
    for (const auto& r : it->second)
      if (r.expires_at >= now) out.push_back(r);
    return out;
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  std::unordered_map<Guid, std::vector<PointerRecord>> map_;
  std::size_t count_ = 0;
};

constexpr IdSpec kSpec{4, 8};
constexpr std::size_t kGuids = 4096;
constexpr std::size_t kServers = 4;
constexpr std::size_t kUpserts = 300'000;
constexpr std::size_t kReadPasses = 24;
constexpr std::size_t kDrainDeposits = 400'000;
constexpr std::size_t kDrainStores = 2;

Guid guid_at(std::uint64_t i) {
  const std::uint64_t mask = (std::uint64_t{1} << kSpec.total_bits()) - 1;
  return Guid(kSpec, splitmix64(i ^ 0x5701) & mask);
}
NodeId server_at(std::uint64_t i) {
  const std::uint64_t mask = (std::uint64_t{1} << kSpec.total_bits()) - 1;
  return NodeId(kSpec, splitmix64(i ^ 0xbead) & mask);
}

struct Op {
  std::uint32_t guid;
  std::uint32_t server;
  double expires;
};

std::vector<Op> make_ops(std::size_t n, std::uint64_t seed) {
  std::vector<Op> ops(n);
  Rng rng(seed);
  for (auto& op : ops) {
    op.guid = static_cast<std::uint32_t>(rng.next_u64(kGuids));
    op.server = static_cast<std::uint32_t>(rng.next_u64(kServers));
    // Half the records are past-deadline by sweep time (t = 50).
    op.expires = rng.next_double() * 100.0;
  }
  return ops;
}

double best_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < best) best = ms;
  }
  return best;
}

template <typename Store>
void apply_ops(Store& store, const std::vector<Op>& ops) {
  for (const Op& op : ops)
    store.upsert(guid_at(op.guid),
                 PointerRecord{server_at(op.server), std::nullopt, 0, false,
                               op.expires});
}

/// Locate-path read: best live record per guid (max server value stands in
/// for the distance ranking).  Legacy flavor: find_live copy then scan.
std::uint64_t read_pass_legacy(const LegacyStore& store) {
  std::uint64_t sum = 0;
  for (std::size_t g = 0; g < kGuids; ++g) {
    const auto recs = store.find_live(guid_at(g), 50.0);
    std::uint64_t best = 0;
    for (const auto& r : recs) best = std::max(best, r.server.value());
    sum = sum * 31 + best + recs.size();
  }
  return sum;
}

/// Backend flavor: the for_each_of visitor the directory's locate uses.
std::uint64_t read_pass_visitor(const ObjectStoreBackend& store) {
  std::uint64_t sum = 0;
  for (std::size_t g = 0; g < kGuids; ++g) {
    std::uint64_t best = 0;
    std::size_t live = 0;
    store.for_each_of(guid_at(g),
                      [&](const Guid&, const PointerRecord& r) {
                        if (r.expires_at < 50.0) return;
                        best = std::max(best, r.server.value());
                        ++live;
                      });
    sum = sum * 31 + best + live;
  }
  return sum;
}

std::uint64_t store_fingerprint(const ObjectStoreBackend& store) {
  auto snap = store.snapshot();
  std::sort(snap.begin(), snap.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.server < b.second.server;
  });
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [g, r] : snap) {
    h = splitmix64(h ^ g.value());
    h = splitmix64(h ^ r.server.value());
    h = splitmix64(h ^ static_cast<std::uint64_t>(r.expires_at * 1e6));
  }
  return h;
}

// ---- availability under root/holder kills (static overlay, no timers) ----

struct KillRun {
  double availability = 1.0;
  std::size_t queries = 0;
  std::size_t kills = 0;
};

/// Builds a static 128-node overlay on `backend`, publishes 24 objects,
/// kills each object's current surrogate root (skipping roots that serve
/// the object themselves), additionally kills the first replica holder of
/// every odd object when the backend has one, then locates everything
/// from remote clients.  No republish or expiry timers run, so the only
/// recovery path is the quorum read.  Deterministic: same seeds, same
/// kill schedule for every backend.
KillRun kill_availability_run(StoreBackend backend) {
  constexpr std::size_t kNodes = 128, kObjects = 24;
  TapestryParams p;
  p.id = kSpec;
  p.redundancy = 3;
  p.store_backend = backend;
  Rng rng(11);
  RingMetric space(kNodes + 8, rng);
  Network net(space, p, 51);
  for (std::size_t i = 0; i < kNodes; ++i) net.insert_static(i);
  net.rebuild_static_tables();
  const auto ids = net.node_ids();

  std::vector<Guid> guids;
  Rng wl(5);
  for (std::size_t i = 0; i < kObjects; ++i) {
    guids.push_back(guid_at(0x900 + i));
    net.publish(ids[wl.next_u64(ids.size())], guids.back());
  }

  KillRun out;
  QuorumReplicator* repl = net.directory().replicator();
  auto kill_unless_server = [&](const NodeId& victim, const Guid& object) {
    if (!net.registry().is_live(victim)) return;
    const auto servers = net.servers_of(object);
    if (std::find(servers.begin(), servers.end(), victim) != servers.end())
      return;  // the object would legitimately vanish with its server
    net.fail(victim);
    ++out.kills;
  };
  for (std::size_t i = 0; i < guids.size(); ++i) {
    const Guid salted = salted_guid(guids[i], 0);
    kill_unless_server(net.surrogate_root(salted), guids[i]);
    if (i % 2 == 1 && repl != nullptr) {
      if (const auto* hs = repl->holders(salted);
          hs != nullptr && !hs->empty())
        kill_unless_server(hs->front(), guids[i]);
    }
  }

  std::size_t found = 0;
  for (const Guid& g : guids) {
    const auto servers = net.servers_of(g);
    if (servers.empty() || !net.registry().is_live(servers[0]))
      continue;  // collateral server death: not a replication loss
    NodeId client = servers[0];
    for (const NodeId& id : ids) {
      if (net.registry().is_live(id) && !(id == servers[0])) {
        client = id;
        break;
      }
    }
    ++out.queries;
    if (net.locate(client, g).found) ++found;
  }
  out.availability =
      out.queries == 0
          ? 1.0
          : static_cast<double>(found) / static_cast<double>(out.queries);
  return out;
}

int run(bool json, std::size_t threads) {
  const auto ops = make_ops(kUpserts, 42);

  // ---- upsert throughput (fresh store per rep) ----
  LegacyStore legacy_keep;
  const double legacy_upsert_ms = best_ms(
      [&] {
        LegacyStore s;
        apply_ops(s, ops);
        if (s.size() > 0) legacy_keep = std::move(s);
      },
      3);
  double mem_upsert_ms = 0.0, shard_upsert_ms = 0.0, persist_upsert_ms = 0.0;
  std::unique_ptr<ObjectStoreBackend> mem, shard, persist;
  const std::string persist_dir = "tapestry_store.bench";
  std::filesystem::remove_all(persist_dir);
  {
    mem_upsert_ms = best_ms(
        [&] {
          mem = std::make_unique<MemoryStore>();
          apply_ops(*mem, ops);
        },
        3);
    shard_upsert_ms = best_ms(
        [&] {
          shard = std::make_unique<ShardedStore>();
          apply_ops(*shard, ops);
        },
        3);
    persist_upsert_ms = best_ms(
        [&] {
          std::filesystem::remove_all(persist_dir);
          persist = std::make_unique<PersistentStore>(persist_dir,
                                                      server_at(7), kSpec);
          apply_ops(*persist, ops);
        },
        3);
  }

  // ---- locate-path reads ----
  std::uint64_t sum_legacy = 0, sum_mem = 0, sum_shard = 0, sum_persist = 0;
  const double legacy_read_ms = best_ms(
      [&] {
        for (std::size_t p = 0; p < kReadPasses; ++p)
          sum_legacy = read_pass_legacy(legacy_keep);
      },
      3);
  const double mem_read_ms = best_ms(
      [&] {
        for (std::size_t p = 0; p < kReadPasses; ++p)
          sum_mem = read_pass_visitor(*mem);
      },
      3);
  const double shard_read_ms = best_ms(
      [&] {
        for (std::size_t p = 0; p < kReadPasses; ++p)
          sum_shard = read_pass_visitor(*shard);
      },
      3);
  const double persist_read_ms = best_ms(
      [&] {
        for (std::size_t p = 0; p < kReadPasses; ++p)
          sum_persist = read_pass_visitor(*persist);
      },
      3);
  const bool agreement = sum_legacy == sum_mem && sum_mem == sum_shard &&
                         sum_shard == sum_persist;

  // ---- persistent round trip (flushed state reopens bit-identically) ----
  const std::uint64_t persist_fp_before = store_fingerprint(*persist);
  const StoreStats persist_stats = persist->stats();
  persist.reset();  // close files
  double recover_ms = 0.0;
  bool roundtrip = false;
  {
    const auto t0 = std::chrono::steady_clock::now();
    PersistentStore revived(persist_dir, server_at(7), kSpec);
    recover_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    roundtrip = store_fingerprint(revived) == persist_fp_before &&
                revived.size() == mem->size();
  }
  std::filesystem::remove_all(persist_dir);

  // ---- expiry sweep ----
  const double mem_expire_ms = best_ms([&] { mem->remove_expired(50.0); }, 1);
  const double shard_expire_ms =
      best_ms([&] { shard->remove_expired(50.0); }, 1);

  // ---- publish_batch deposit drain: serial vs stripe-parallel ----
  const auto deposits = make_ops(kDrainDeposits, 77);
  std::array<ShardedStore, kDrainStores> serial_stores;
  const double drain_serial_ms = best_ms(
      [&] {
        for (std::size_t i = 0; i < deposits.size(); ++i) {
          const Op& op = deposits[i];
          serial_stores[i % kDrainStores].upsert(
              guid_at(op.guid),
              PointerRecord{server_at(op.server), std::nullopt, 0, false,
                            op.expires});
        }
      },
      1);
  // Group (deposit index) by guid stripe, preserving task order within a
  // group — the exact partition ObjectDirectory::publish_batch phase 2
  // uses for the sharded backend.
  std::array<std::vector<std::uint32_t>, ShardedStore::kStripeCount> groups;
  for (std::size_t i = 0; i < deposits.size(); ++i)
    groups[ShardedStore::stripe_of(guid_at(deposits[i].guid))].push_back(
        static_cast<std::uint32_t>(i));
  std::array<ShardedStore, kDrainStores> parallel_stores;
  const double drain_parallel_ms = best_ms(
      [&] {
        parallel_for(
            ShardedStore::kStripeCount,
            [&](std::size_t stripe) {
              for (const std::uint32_t i : groups[stripe]) {
                const Op& op = deposits[i];
                parallel_stores[i % kDrainStores].upsert(
                    guid_at(op.guid),
                    PointerRecord{server_at(op.server), std::nullopt, 0,
                                  false, op.expires});
              }
            },
            threads);
      },
      1);
  bool drain_match = true;
  for (std::size_t s = 0; s < kDrainStores; ++s)
    drain_match = drain_match && store_fingerprint(serial_stores[s]) ==
                                     store_fingerprint(parallel_stores[s]);

  const double upsert_ratio = mem_upsert_ms / legacy_upsert_ms;
  const double read_ratio = mem_read_ms / legacy_read_ms;
  const double drain_speedup = drain_serial_ms / drain_parallel_ms;

  // ---- availability under kills: replicated must dominate memory ----
  const KillRun kill_mem = kill_availability_run(StoreBackend::kMemory);
  const KillRun kill_repl = kill_availability_run(StoreBackend::kReplicated);
  const bool kill_ok = kill_repl.availability >= kill_mem.availability;

  if (json) {
    std::printf(
        "{\"bench\":\"bench_store\",\"metrics\":{"
        "\"backend_agreement\":%d,\"drain_match\":%d,"
        "\"persist_roundtrip\":%d,"
        "\"memory_vs_legacy_upsert\":%.3f,"
        "\"memory_vs_legacy_findlive\":%.3f,"
        "\"sharded_drain_speedup\":%.3f,"
        "\"upsert_ms_legacy\":%.2f,\"upsert_ms_memory\":%.2f,"
        "\"upsert_ms_sharded\":%.2f,\"upsert_ms_persist\":%.2f,"
        "\"read_ms_legacy\":%.2f,\"read_ms_memory\":%.2f,"
        "\"read_ms_sharded\":%.2f,\"read_ms_persist\":%.2f,"
        "\"expire_ms_memory\":%.2f,\"expire_ms_sharded\":%.2f,"
        "\"drain_serial_ms\":%.2f,\"drain_parallel_ms\":%.2f,"
        "\"persist_wal_mb\":%.2f,\"persist_compactions\":%zu,"
        "\"persist_recover_ms\":%.2f,"
        "\"replicated_kill_availability\":%.4f,"
        "\"memory_kill_availability\":%.4f,"
        "\"kill_count\":%zu}}\n",
        agreement ? 1 : 0, drain_match ? 1 : 0, roundtrip ? 1 : 0,
        upsert_ratio, read_ratio, drain_speedup, legacy_upsert_ms,
        mem_upsert_ms, shard_upsert_ms, persist_upsert_ms, legacy_read_ms,
        mem_read_ms, shard_read_ms, persist_read_ms, mem_expire_ms,
        shard_expire_ms, drain_serial_ms, drain_parallel_ms,
        static_cast<double>(persist_stats.wal_bytes) / (1024.0 * 1024.0),
        persist_stats.compactions, recover_ms, kill_repl.availability,
        kill_mem.availability, kill_repl.kills);
    return agreement && drain_match && roundtrip && kill_ok ? 0 : 1;
  }

  print_header("E14 — object-store backends",
               "ISSUE 4: memory / sharded / persistent object stores "
               "behind the ObjectDirectory seam");
  std::printf("workload: %zu upserts over %zu guids x %zu servers; "
              "%zu read passes; %zu drain deposits; %zu threads\n\n",
              kUpserts, kGuids, kServers, kReadPasses, kDrainDeposits,
              threads == 0 ? default_worker_count() : threads);
  std::printf("  %-9s %12s %12s %12s\n", "backend", "upsert ms", "read ms",
              "expire ms");
  std::printf("  %-9s %12.1f %12.1f %12s\n", "legacy", legacy_upsert_ms,
              legacy_read_ms, "-");
  std::printf("  %-9s %12.1f %12.1f %12.2f\n", "memory", mem_upsert_ms,
              mem_read_ms, mem_expire_ms);
  std::printf("  %-9s %12.1f %12.1f %12.2f\n", "sharded", shard_upsert_ms,
              shard_read_ms, shard_expire_ms);
  std::printf("  %-9s %12.1f %12.1f %12s\n", "persist", persist_upsert_ms,
              persist_read_ms, "-");
  std::printf("\nmemory vs legacy: upsert %.2fx, locate-read %.2fx "
              "(<= 1 + noise: the seam is free)\n",
              upsert_ratio, read_ratio);
  std::printf("sharded drain: serial %.1f ms, stripe-parallel %.1f ms "
              "(%.2fx), match %s\n",
              drain_serial_ms, drain_parallel_ms, drain_speedup,
              drain_match ? "exact" : "BROKEN");
  std::printf("persist: %.1f MB WAL, %zu compactions, recover %.1f ms, "
              "round trip %s\n",
              static_cast<double>(persist_stats.wal_bytes) /
                  (1024.0 * 1024.0),
              persist_stats.compactions, recover_ms,
              roundtrip ? "exact" : "BROKEN");
  std::printf("read agreement across backends: %s\n",
              agreement ? "exact" : "BROKEN");
  std::printf("availability after %zu root/holder kills: replicated %.2f%% "
              "vs memory %.2f%% over %zu locates (%s)\n",
              kill_repl.kills, kill_repl.availability * 100.0,
              kill_mem.availability * 100.0, kill_repl.queries,
              kill_ok ? "replicated dominates" : "BROKEN");
  return agreement && drain_match && roundtrip && kill_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = std::stoul(argv[i] + 10);
    else {
      std::fprintf(stderr, "usage: bench_store [--json] [--threads=N]\n");
      return 2;
    }
  }
  return run(json, threads);
}
