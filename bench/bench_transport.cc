// Transport seam microbench: codec throughput, wire-size accounting, and
// the cost of the loopback (serialize/queue/parse) path versus direct
// delivery on a real overlay workload.
//
// Deterministic metrics (exact gates in bench/baselines/bench_transport.json):
//   * wire_kinds — the message-kind count; moves only when the enum grows;
//   * wire_bytes_fixture — total encoded size of a seeded 128-message-per-
//     kind corpus, pinning the layout of every kind at once;
//   * loopback_messages / loopback_wire_bytes — the loopback transport's
//     lifetime counters after a fixed same-seed overlay workload (grow,
//     publish, locate, multicast, fail + heartbeat sweep), proving every
//     layer's traffic crosses the wire and the volume is reproducible.
//
// Timed metrics (tolerant gates):
//   * codec_mps — encode+decode round-trips per second over the corpus;
//   * loopback_overhead_ratio — wall time of the overlay workload under
//     loopback over direct (min-of-3 each, interleaved); the budget the
//     serialization seam is allowed to cost.
#include <chrono>
#include <cstring>
#include <limits>

#include "bench_util.h"
#include "src/tapestry/transport.h"
#include "src/tapestry/wire.h"

namespace tap::bench {
namespace {

constexpr IdSpec kSpec{4, 8};

std::uint64_t id_mask() {
  return kSpec.total_bits() == 64
             ? ~std::uint64_t{0}
             : (std::uint64_t{1} << kSpec.total_bits()) - 1;
}

NodeId rand_id(Rng& rng) { return NodeId(kSpec, rng() & id_mask()); }

double rand_deadline(Rng& rng) {
  switch (rng.next_u64(4)) {
    case 0: return std::numeric_limits<double>::infinity();
    case 1: return 0.0;
    default: return static_cast<double>(rng.next_u64(1u << 20)) / 16.0;
  }
}

PointerRecord rand_record(Rng& rng) {
  PointerRecord rec;
  rec.server = rand_id(rng);
  if (rng.next_u64(2) == 0) rec.last_hop = rand_id(rng);
  rec.level = static_cast<unsigned>(rng.next_u64(9));
  rec.past_hole = rng.next_u64(2) == 0;
  rec.expires_at = rand_deadline(rng);
  return rec;
}

Message rand_message(MessageKind kind, Rng& rng) {
  Message m = make_message(kind, rand_id(rng), rand_id(rng),
                           Id(kSpec, rng() & id_mask()));
  switch (kind) {
    case MessageKind::kRouteHop:
    case MessageKind::kLocateStep:
      m.level = static_cast<unsigned>(rng.next_u64(9));
      m.flag = rng.next_u64(2) == 0;
      break;
    case MessageKind::kPublishDeposit:
    case MessageKind::kPointerOptimize:
    case MessageKind::kReplicaWrite: {
      const PointerRecord rec = rand_record(rng);
      m.server = rec.server;
      m.last_hop = rec.last_hop;
      m.level = rec.level;
      m.flag = rec.past_hole;
      m.expires_at = rec.expires_at;
      break;
    }
    case MessageKind::kUnpublish:
    case MessageKind::kLocateFound:
    case MessageKind::kDeleteBackward:
    case MessageKind::kReplicaRemove:
      m.server = rand_id(rng);
      break;
    case MessageKind::kMulticastForward:
    case MessageKind::kMulticastAck:
      m.level = static_cast<unsigned>(rng.next_u64(9));
      break;
    case MessageKind::kHeartbeatProbe:
    case MessageKind::kReplicaRead:
      break;
    case MessageKind::kHeartbeatAck:
    case MessageKind::kReplicaWriteAck:
      m.flag = rng.next_u64(2) == 0;
      break;
    case MessageKind::kReplicaReadReply: {
      const std::size_t n = rng.next_u64(5);
      for (std::size_t i = 0; i < n; ++i)
        m.records.push_back(rand_record(rng));
      break;
    }
  }
  return m;
}

/// The seeded corpus every codec measurement runs over: 128 messages of
/// each kind, in kind order.  Same seed → same bytes, always.
std::vector<Message> corpus() {
  Rng rng(0xda7a6a);
  std::vector<Message> msgs;
  msgs.reserve(128 * kWireKindCount);
  for (std::size_t k = 0; k < kWireKindCount; ++k)
    for (int i = 0; i < 128; ++i)
      msgs.push_back(rand_message(static_cast<MessageKind>(k), rng));
  return msgs;
}

std::uint64_t corpus_wire_bytes(const std::vector<Message>& msgs) {
  std::uint64_t total = 0;
  for (const Message& m : msgs) total += encode(m).size();
  return total;
}

/// Encode+decode round-trips per second over the corpus (best of 3
/// passes, enough repetitions to dominate clock granularity).
double codec_throughput(const std::vector<Message>& msgs) {
  constexpr int kReps = 24;
  double best = 1e300;
  for (int pass = 0; pass < 3; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t sink = 0;
    for (int rep = 0; rep < kReps; ++rep)
      for (const Message& m : msgs) {
        const Datagram dg = encode(m);
        sink += decode(dg).level;
      }
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (sink == ~std::uint64_t{0}) std::printf("impossible\n");  // keep sink
    best = std::min(best, dt);
  }
  return static_cast<double>(msgs.size()) * kReps / best;
}

/// The overlay workload both transports run: grow 64 nodes, publish 32
/// objects, locate each from 4 clients, multicast, fail one node, sweep.
/// Every protocol family sends traffic, so the loopback counters cover
/// routing, directory, multicast, heartbeat and reroute kinds.
struct WorkloadResult {
  double seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
};

WorkloadResult run_workload(TransportKind kind) {
  Rng rng(4242);
  auto space = make_space("ring", 128, rng);
  TapestryParams params = default_params();
  params.transport = kind;

  const auto t0 = std::chrono::steady_clock::now();
  auto net = grow(*space, 64, params, 4242);
  const std::vector<NodeId> ids = net->node_ids();
  std::vector<Guid> guids;
  for (std::uint64_t i = 0; i < 32; ++i) {
    guids.push_back(bench_guid(*net, i));
    net->publish(ids[i % ids.size()], guids.back());
  }
  for (std::size_t q = 0; q < guids.size(); ++q)
    for (std::size_t c = 0; c < 4; ++c)
      (void)net->locate(ids[(q * 7 + c * 13 + 1) % ids.size()], guids[q]);
  (void)net->multicast(ids[0], ids[0], 0, [](NodeId) {});
  net->fail(ids[5]);
  net->heartbeat_sweep();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  WorkloadResult r;
  r.seconds = dt;
  r.messages = net->transport().stats().messages.load();
  r.wire_bytes = net->transport().stats().bytes.load();
  return r;
}

int run_json() {
  const std::vector<Message> msgs = corpus();
  const std::uint64_t fixture_bytes = corpus_wire_bytes(msgs);
  const double mps = codec_throughput(msgs) / 1e6;

  double best_direct = 1e300;
  double best_loopback = 1e300;
  WorkloadResult loop{};
  for (int rep = 0; rep < 3; ++rep) {
    best_direct = std::min(best_direct, run_workload(TransportKind::kDirect).seconds);
    loop = run_workload(TransportKind::kLoopback);
    best_loopback = std::min(best_loopback, loop.seconds);
  }
  const double ratio = best_direct <= 0.0 ? 1.0 : best_loopback / best_direct;

  std::printf("{\"bench\":\"bench_transport\",\"metrics\":{"
              "\"wire_kinds\":%zu,\"wire_bytes_fixture\":%llu,"
              "\"codec_mps\":%.3f,\"loopback_messages\":%llu,"
              "\"loopback_wire_bytes\":%llu,"
              "\"loopback_overhead_ratio\":%.4f}}\n",
              kWireKindCount,
              static_cast<unsigned long long>(fixture_bytes), mps,
              static_cast<unsigned long long>(loop.messages),
              static_cast<unsigned long long>(loop.wire_bytes), ratio);
  return 0;
}

}  // namespace
}  // namespace tap::bench

int main(int argc, char** argv) {
  using namespace tap;
  using namespace tap::bench;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "usage: bench_transport [--json]\n");
      return 2;
    }
  }
  if (json) return run_json();

  print_header("Transport seam — codec and loopback overhead",
               "docs/transport.md: lossless wire format for every RPC; "
               "loopback (encode/enqueue/decode) vs direct delivery");

  const std::vector<Message> msgs = corpus();
  const std::uint64_t fixture_bytes = corpus_wire_bytes(msgs);
  const double mps = codec_throughput(msgs) / 1e6;
  const WorkloadResult direct = run_workload(TransportKind::kDirect);
  const WorkloadResult loop = run_workload(TransportKind::kLoopback);

  TextTable table({"metric", "value"});
  table.add_row({"message kinds", fmt(kWireKindCount)});
  table.add_row({"corpus wire bytes (128/kind)", fmt(fixture_bytes)});
  table.add_row({"avg bytes/message",
                 fmt(static_cast<double>(fixture_bytes) / msgs.size(), 1)});
  table.add_row({"codec round-trips/s (M)", fmt(mps, 2)});
  table.add_row({"workload msgs (loopback)", fmt(loop.messages)});
  table.add_row({"workload wire bytes", fmt(loop.wire_bytes)});
  table.add_row({"direct workload (s)", fmt(direct.seconds, 3)});
  table.add_row({"loopback workload (s)", fmt(loop.seconds, 3)});
  table.add_row({"loopback/direct ratio",
                 fmt(direct.seconds > 0 ? loop.seconds / direct.seconds : 1.0,
                     2)});
  table.print();
  std::printf(
      "\nreading guide: the loopback row re-runs the identical same-seed\n"
      "workload with every inter-node message serialized, queued, and\n"
      "parsed back; the direct transport reports zero wire bytes because\n"
      "it never encodes.  Results (availability, hops, pointers) are\n"
      "identical either way — the wire format is lossless.\n");
  return 0;
}
