// E11 — Continual optimization under network drift (paper §6.4).
//
// Internet routes shift (BGP, ISP policy, IGP recomputation), so measured
// distances drift and Property 2 erodes.  §6.4 sketches four heuristics:
//   1. re-rank primaries among the R stored links,
//   2. rerun the full nearest-neighbor construction,
//   3. (level-list replay — subsumed by 2 in this implementation), and
//   4. gossip level rows with level neighbors.
//
// This experiment relocates 25% of nodes (the drift model), then measures
// each heuristic's recovered table quality, the resulting locate stretch,
// and its message price.
#include "bench_util.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

constexpr std::size_t kNodes = 384;

struct Result {
  std::string heuristic;
  double quality_after_drift;
  double quality_after_fix;
  double stretch_after_fix;
  double msgs_per_node;
};

Result run(const std::string& heuristic, std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space("ring", kNodes * 2, rng);
  auto net = grow(*space, kNodes, default_params(), seed);

  // Publish a workload before the drift.
  Rng wl(seed ^ 0xd21f7);
  std::vector<std::pair<Guid, NodeId>> objects;
  {
    const auto ids = net->node_ids();
    for (int i = 0; i < 96; ++i) {
      const Guid g = bench_guid(*net, 800 + i);
      const NodeId server = ids[wl.next_u64(ids.size())];
      net->publish(server, g);
      objects.emplace_back(g, server);
    }
  }

  // Drift: move a quarter of the nodes to fresh locations.
  {
    const auto ids = net->node_ids();
    for (std::size_t i = 0; i < kNodes / 4; ++i)
      net->relocate(ids[wl.next_u64(ids.size())], kNodes + i);
  }
  const double drifted = net->property2_quality();

  Trace cost;
  if (heuristic == "primary-rerank") {
    for (const NodeId& id : net->node_ids()) net->optimize_primaries(id, &cost);
  } else if (heuristic == "gossip") {
    for (int round = 0; round < 2; ++round)
      for (const NodeId& id : net->node_ids()) net->optimize_gossip(id, &cost);
  } else if (heuristic == "full-rebuild") {
    for (const NodeId& id : net->node_ids())
      net->rebuild_neighbor_table(id, &cost);
  }  // "none": leave the drift in place
  net->republish_all();

  Summary stretch;
  {
    const auto ids = net->node_ids();
    for (int q = 0; q < 600; ++q) {
      const auto& [guid, server] = objects[wl.next_u64(objects.size())];
      const NodeId client = ids[wl.next_u64(ids.size())];
      if (client == server) continue;
      const LocateResult r = net->locate(client, guid);
      if (!r.found) continue;
      const double direct = net->distance(client, server);
      if (direct > 1e-9) stretch.add(r.latency / direct);
    }
  }

  Result res;
  res.heuristic = heuristic;
  res.quality_after_drift = drifted;
  res.quality_after_fix = net->property2_quality();
  res.stretch_after_fix = stretch.mean();
  res.msgs_per_node = double(cost.messages()) / double(kNodes);
  return res;
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E11 — continual optimization under drift",
               "§6.4: heuristics trade maintenance traffic for restored "
               "routing locality after network distances change");

  const std::vector<std::string> heuristics{"none", "primary-rerank",
                                            "gossip", "full-rebuild"};
  const auto results =
      run_trials<Result>(heuristics.size(), [&](std::size_t i) {
        return run(heuristics[i], 31415 + i);
      });

  TextTable table({"heuristic", "quality after drift", "quality after fix",
                   "locate stretch", "msgs/node"});
  for (const Result& r : results)
    table.add_row({r.heuristic, fmt(r.quality_after_drift * 100, 1) + "%",
                   fmt(r.quality_after_fix * 100, 1) + "%",
                   fmt(r.stretch_after_fix, 2), fmt(r.msgs_per_node, 0)});
  table.print();
  std::printf(
      "\nreading guide: 'none' shows the drift damage; primary re-ranking\n"
      "is nearly free but can only shuffle the R stored links; gossip\n"
      "recovers most quality at moderate cost; the full nearest-neighbor\n"
      "rebuild recovers the most at the highest price — §6.4's menu,\n"
      "quantified.\n");
  return 0;
}
