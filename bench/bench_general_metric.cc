// E8 — Object location in general metric spaces (paper §7, Theorem 7).
//
// Claims reproduced:
//   * the PRR v.0 sampling scheme always finds published objects in any
//     metric (the anchor level is a deterministic backstop);
//   * stretch is polylogarithmic — the distance to the answering
//     representative is O(d·log n) w.h.p., total latency O(d·log^2 n) —
//     even on spaces whose expansion constant destroys the §3 machinery
//     (high-dimensional cubes, two separated clusters);
//   * average space is O(log^2 n) pointers per node.
//
// For contrast the same workloads run over Tapestry, whose stretch
// guarantee silently degrades on such spaces (§6.3's worst case: it still
// finds objects in O(log n) hops, but with no stretch bound).
#include "bench_util.h"
#include "src/baselines/general_metric.h"
#include "src/baselines/tapestry_scheme.h"
#include "src/sim/thread_pool.h"

namespace tap::bench {
namespace {

constexpr std::size_t kNodes = 512;

struct Result {
  std::string space_name;
  std::string scheme;
  double stretch_mean;
  double stretch_p95;
  double stretch_max;
  double state_per_node;
  double found_rate;
};

Result run(const std::string& space_kind, bool use_prr_v0,
           std::uint64_t seed) {
  Rng rng(seed);
  auto space = make_space(space_kind, kNodes + 8, rng);
  std::unique_ptr<LocationScheme> scheme;
  if (use_prr_v0)
    scheme = std::make_unique<GeneralMetricScheme>(*space, seed);
  else
    scheme = std::make_unique<TapestryScheme>(*space, default_params(), seed);
  for (std::size_t i = 0; i < kNodes; ++i) scheme->add_node(i, nullptr);
  scheme->finalize();

  Rng wl(seed ^ 0x777);
  Summary stretch;
  std::size_t found = 0, queries = 0;
  for (int q = 0; q < 1500; ++q) {
    const std::uint64_t key = 3000 + q;
    const std::size_t server = wl.next_u64(kNodes);
    const std::size_t client = wl.next_u64(kNodes);
    if (server == client) continue;
    scheme->publish(server, key, nullptr);
    const SchemeLocate r = scheme->locate(client, key, nullptr);
    ++queries;
    if (!r.found) continue;
    ++found;
    const double direct = space->distance(client, server);
    if (direct > 1e-9) stretch.add(r.latency / direct);
  }

  Result res;
  res.space_name = space->name();
  res.scheme = scheme->name();
  res.stretch_mean = stretch.mean();
  res.stretch_p95 = stretch.percentile(95);
  res.stretch_max = stretch.max();
  res.state_per_node = double(scheme->total_state()) / double(kNodes);
  res.found_rate = double(found) / double(queries);
  return res;
}

}  // namespace
}  // namespace tap::bench

int main() {
  using namespace tap;
  using namespace tap::bench;
  print_header("E8 — general-metric object location (PRR v.0)",
               "§7 / Theorem 7: polylog stretch and O(log^2 n) average space "
               "in arbitrary metrics");

  std::vector<std::pair<std::string, bool>> configs;
  for (const std::string& s :
       {std::string("euclid6d"), std::string("two-cluster"),
        std::string("ring")})
    for (const bool prr : {true, false}) configs.emplace_back(s, prr);

  const auto results = run_trials<Result>(configs.size(), [&](std::size_t i) {
    return run(configs[i].first, configs[i].second, 4000 + i);
  });

  const double lg = std::log2(double(kNodes));
  TextTable table({"space", "scheme", "stretch mean", "p95", "max",
                   "state/node", "log2^2 n", "success"});
  for (const Result& r : results)
    table.add_row({r.space_name, r.scheme, fmt(r.stretch_mean, 2),
                   fmt(r.stretch_p95, 1), fmt(r.stretch_max, 0),
                   fmt(r.state_per_node, 0), fmt(lg * lg, 0),
                   fmt(r.found_rate * 100.0, 1) + "%"});
  table.print();
  std::printf(
      "\nreading guide: prr-v0's stretch stays within a small multiple of\n"
      "log n on every space (Theorem 7), with state/node tracking\n"
      "log2^2 n; tapestry is better on the growth-restricted ring but its\n"
      "worst-case stretch blows up on the two-cluster space, where the\n"
      "expansion property fails — exactly why §7 exists.\n");
  return 0;
}
