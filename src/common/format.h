// Small text-table formatting helpers shared by the benchmark binaries so
// that every experiment prints its results in the same aligned style.
#pragma once

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/assert.h"

namespace tap {

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// with a header rule, e.g.
///
///   scheme     | hops  | stretch
///   -----------+-------+--------
///   tapestry   | 4.20  | 1.35
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {
    TAP_CHECK(!header_.empty(), "TextTable needs at least one column");
  }

  void add_row(std::vector<std::string> row) {
    TAP_CHECK(row.size() == header_.size(),
              "TextTable row width must match header");
    rows_.push_back(std::move(row));
  }

  [[nodiscard]] std::string render() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
        if (c + 1 < row.size()) os << " | ";
      }
      os << '\n';
    };
    emit(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(width[c], '-');
      if (c + 1 < header_.size()) os << "-+-";
    }
    os << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
  }

  void print() const { std::fputs(render().c_str(), stdout); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (default 3 significant-ish
/// decimal places), trimming the noise a raw operator<< would add.
[[nodiscard]] inline std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

[[nodiscard]] inline std::string fmt(std::size_t v) { return std::to_string(v); }
[[nodiscard]] inline std::string fmt(int v) { return std::to_string(v); }

}  // namespace tap
