// Deterministic, seedable pseudo-random number generation.
//
// Everything stochastic in this repository — node identifiers, metric-space
// point placement, workload generation, event jitter — draws from tap::Rng so
// that every test and benchmark is reproducible bit-for-bit from its seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64, which is the conventional pairing: splitmix64 decorrelates
// low-entropy seeds (0, 1, 2, ...) before they reach the xoshiro state.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.h"

namespace tap {

/// splitmix64 step: used for seeding and as a cheap stateless hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes two 64-bit values into one; used to derive per-object salts
/// (e.g. GUID -> root-set member i) and per-trial sub-seeds.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x = splitmix64(x);
      s = x;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  [[nodiscard]] std::uint64_t next_u64(std::uint64_t bound) {
    TAP_CHECK(bound > 0, "next_u64 bound must be positive");
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    TAP_CHECK(lo < hi, "uniform: lo must be < hi");
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) noexcept {
    return next_double() < p;
  }

  /// Exponentially distributed waiting time with the given rate
  /// (used by the churn workload's Poisson arrival processes).
  [[nodiscard]] double exponential(double rate);

  /// A uniformly random permutation of {0, 1, ..., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Fisher-Yates shuffle of an arbitrary vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = next_u64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each parallel
  /// benchmark trial its own stream.
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tap
