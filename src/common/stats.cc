#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/assert.h"

namespace tap {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Summary::mean() const {
  TAP_CHECK(!empty(), "mean of empty Summary");
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::variance() const {
  TAP_CHECK(samples_.size() >= 2, "variance needs >= 2 samples");
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return acc / static_cast<double>(samples_.size() - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  TAP_CHECK(!empty(), "min of empty Summary");
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  TAP_CHECK(!empty(), "max of empty Summary");
  ensure_sorted();
  return sorted_.back();
}

double Summary::percentile(double p) const {
  TAP_CHECK(!empty(), "percentile of empty Summary");
  TAP_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Summary::describe() const {
  std::ostringstream os;
  if (empty()) {
    os << "(no samples)";
    return os.str();
  }
  os.precision(4);
  os << mean();
  if (samples_.size() >= 2) os << " ±" << stddev();
  os << " (p50=" << median() << ", p99=" << percentile(99)
     << ", n=" << count() << ")";
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  TAP_CHECK(lo < hi, "Histogram range must be non-empty");
  TAP_CHECK(bins > 0, "Histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(std::floor(t * static_cast<double>(counts_.size())));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  TAP_CHECK(i < counts_.size(), "Histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  TAP_CHECK(i < counts_.size(), "Histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os.precision(3);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  TAP_CHECK(x.size() == y.size(), "fit_linear: size mismatch");
  TAP_CHECK(x.size() >= 2, "fit_linear: need >= 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace tap
