// Invariant-checking macros used throughout the Tapestry implementation.
//
// TAP_ASSERT is for internal invariants (violations indicate a bug in this
// library); TAP_CHECK is for precondition validation on public API entry
// points (violations indicate caller error).  Both are always on — the
// simulator is a correctness artifact first and a performance artifact
// second, and the cost of the checks is negligible next to the algorithms
// they guard.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tap {

/// Exception thrown on TAP_CHECK failure.  Tests catch this to verify that
/// misuse of the public API is diagnosed.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "TAP_ASSERT failed: %s at %s:%d %s\n", expr, file,
               line, msg.c_str());
  std::abort();
}

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "TAP_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace tap

#define TAP_ASSERT(expr)                                        \
  do {                                                          \
    if (!(expr)) ::tap::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TAP_ASSERT_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) ::tap::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define TAP_CHECK(expr, msg)                                     \
  do {                                                           \
    if (!(expr)) ::tap::check_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
