// Lightweight descriptive statistics used by the benchmark harness and the
// metric-space analysis tools: running moments, exact percentiles, fixed-bin
// histograms and least-squares fits (for checking O(log n) / O(log^2 n)
// scaling shapes empirically).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tap {

/// Accumulates samples and answers summary queries.  Keeps all samples so
/// percentiles are exact; intended for experiment-scale data volumes.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< unbiased sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// "mean ± stddev (p50=..., p99=..., n=...)" for bench table cells.
  [[nodiscard]] std::string describe() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily maintained cache
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); samples outside are clamped to the
/// end bins so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering used in bench output.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ordinary least squares y = a + b*x.  Used to report empirical scaling
/// exponents: fitting measured cost against log n (or log^2 n) and reporting
/// the residual tells us whether the predicted asymptotic shape holds.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace tap
