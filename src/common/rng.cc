#include "src/common/rng.h"

#include <cmath>
#include <numeric>

namespace tap {

double Rng::exponential(double rate) {
  TAP_CHECK(rate > 0, "exponential: rate must be positive");
  // Inverse-CDF sampling; 1 - U avoids log(0).
  return -std::log(1.0 - next_double()) / rate;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(p);
  return p;
}

}  // namespace tap
