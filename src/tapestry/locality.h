// Stub-locality enhancement (paper §6.3).
//
// In transit-stub topologies, intra-stub latencies are an order of
// magnitude below wide-area latencies, so an object replicated inside the
// client's own stub should be found without the query ever crossing the
// transit network.  The optimization: publication that is about to route
// out of the stub spawns a "local branch" publish that surrogate-routes to
// a *local root* — a deterministic function of (stub, GUID) over the stub's
// membership — and terminates there; queries first try the local branch
// and resume wide-area routing only on a local miss.
//
// Local surrogate routing here is evaluated over the stub's member list
// directly (stubs hold a handful of nodes each, and their star topology
// makes any intra-stub path a gateway round-trip), rather than over
// per-stub routing sub-tables; DESIGN.md records this simplification.  The
// measurable behaviour §6.3 promises — local hits never leave the stub,
// remote queries pay a small bounded intra-stub detour — is preserved, and
// E9 quantifies it.
#pragma once

#include "src/metric/transit_stub.h"
#include "src/tapestry/network.h"

namespace tap {

class LocalityManager {
 public:
  /// `net` must have been built over `ts` (the same MetricSpace instance).
  LocalityManager(Network& net, const TransitStubMetric& ts);

  /// Publishes globally and, when the global path leaves the stub, also on
  /// the stub-local branch.
  void publish(NodeId server, const Guid& guid, Trace* trace = nullptr);

  /// Withdraws both the global and the local-branch pointers.
  void unpublish(NodeId server, const Guid& guid, Trace* trace = nullptr);

  /// Locates with the local-first policy: probe the stub's local root,
  /// fall back to wide-area location on a miss.
  LocateResult locate(NodeId client, const Guid& guid, Trace* trace = nullptr);

  /// Deterministic local root of a GUID within a stub: the member whose ID
  /// matches the GUID in the most digits, ties resolved by the Tapestry
  /// native next-digit rule.  All members compute the same answer.
  [[nodiscard]] NodeId local_root(std::size_t stub, const Guid& guid) const;

  /// Live members of a stub, in deterministic (id) order.
  [[nodiscard]] std::vector<NodeId> stub_members(std::size_t stub) const;

  [[nodiscard]] std::size_t stub_of(const NodeId& node) const;

 private:
  Network& net_;
  const TransitStubMetric& ts_;
};

}  // namespace tap
