#include "src/tapestry/wire.h"

namespace tap {
namespace {

// Per-record payload inside kReplicaReadReply:
// [u64 server][u8 has_last_hop]([u64 last_hop])[u32 level][u8 past_hole]
// [f64 expires_at] — 22 bytes without the optional hop, 30 with it.
constexpr std::size_t kRecordMinBytes = 8 + 1 + 4 + 1 + 8;

std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

/// Reconstructs an Id from wire fields, translating shape violations into
/// WireError (Id's own constructor reserves TAP_CHECK for caller bugs).
Id make_id(IdSpec spec, std::uint64_t value) {
  if (!spec.valid()) throw WireError("datagram carries invalid IdSpec");
  if (spec.total_bits() < 64 &&
      value >= (std::uint64_t{1} << spec.total_bits()))
    throw WireError("id value exceeds the namespace of its IdSpec");
  return Id(spec, value);
}

void encode_record_fields(Datagram& dg, const NodeId& server,
                          const std::optional<NodeId>& last_hop,
                          unsigned level, bool flag, double expires_at) {
  dg.add_u64(server.value());
  dg.add_bool(last_hop.has_value());
  if (last_hop.has_value()) dg.add_u64(last_hop->value());
  dg.add_u32(static_cast<std::uint32_t>(level));
  dg.add_bool(flag);
  dg.add_f64(expires_at);
}

PointerRecord decode_record_fields(DatagramIterator& it, IdSpec spec) {
  PointerRecord rec;
  rec.server = make_id(spec, it.get_u64());
  if (it.get_bool()) rec.last_hop = make_id(spec, it.get_u64());
  rec.level = it.get_u32();
  rec.past_hole = it.get_bool();
  rec.expires_at = it.get_f64();
  return rec;
}

bool record_equal(const PointerRecord& a, const PointerRecord& b) {
  return a.server == b.server && a.last_hop == b.last_hop &&
         a.level == b.level && a.past_hole == b.past_hole &&
         f64_bits(a.expires_at) == f64_bits(b.expires_at);
}

}  // namespace

const char* message_kind_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRouteHop: return "route_hop";
    case MessageKind::kPublishDeposit: return "publish_deposit";
    case MessageKind::kUnpublish: return "unpublish";
    case MessageKind::kLocateStep: return "locate_step";
    case MessageKind::kLocateFound: return "locate_found";
    case MessageKind::kPointerOptimize: return "pointer_optimize";
    case MessageKind::kDeleteBackward: return "delete_backward";
    case MessageKind::kMulticastForward: return "multicast_forward";
    case MessageKind::kMulticastAck: return "multicast_ack";
    case MessageKind::kHeartbeatProbe: return "heartbeat_probe";
    case MessageKind::kHeartbeatAck: return "heartbeat_ack";
    case MessageKind::kReplicaWrite: return "replica_write";
    case MessageKind::kReplicaWriteAck: return "replica_write_ack";
    case MessageKind::kReplicaRead: return "replica_read";
    case MessageKind::kReplicaReadReply: return "replica_read_reply";
    case MessageKind::kReplicaRemove: return "replica_remove";
  }
  return "unknown";
}

bool Message::operator==(const Message& o) const {
  if (kind != o.kind || src != o.src || dst != o.dst || target != o.target ||
      server != o.server || last_hop != o.last_hop || level != o.level ||
      flag != o.flag || f64_bits(expires_at) != f64_bits(o.expires_at) ||
      records.size() != o.records.size())
    return false;
  for (std::size_t i = 0; i < records.size(); ++i)
    if (!record_equal(records[i], o.records[i])) return false;
  return true;
}

Datagram encode(const Message& m) {
  // All endpoint and payload ids of one message share the overlay's
  // IdSpec; src is the canonical carrier (every message has a sender).
  const IdSpec spec = m.src.valid() ? m.src.spec() : m.target.spec();
  Datagram dg;
  dg.add_u8(static_cast<std::uint8_t>(m.kind));
  dg.add_u8(static_cast<std::uint8_t>(spec.digit_bits));
  dg.add_u8(static_cast<std::uint8_t>(spec.num_digits));
  dg.add_u64(m.src.value());
  dg.add_u64(m.dst.value());
  dg.add_u64(m.target.value());
  switch (m.kind) {
    case MessageKind::kRouteHop:
    case MessageKind::kLocateStep:
      dg.add_u32(static_cast<std::uint32_t>(m.level));
      dg.add_bool(m.flag);
      break;
    case MessageKind::kPublishDeposit:
    case MessageKind::kPointerOptimize:
    case MessageKind::kReplicaWrite:
      encode_record_fields(dg, m.server, m.last_hop, m.level, m.flag,
                           m.expires_at);
      break;
    case MessageKind::kUnpublish:
    case MessageKind::kLocateFound:
    case MessageKind::kDeleteBackward:
    case MessageKind::kReplicaRemove:
      dg.add_u64(m.server.value());
      break;
    case MessageKind::kMulticastForward:
    case MessageKind::kMulticastAck:
      dg.add_u32(static_cast<std::uint32_t>(m.level));
      break;
    case MessageKind::kHeartbeatProbe:
    case MessageKind::kReplicaRead:
      break;  // header only
    case MessageKind::kHeartbeatAck:
    case MessageKind::kReplicaWriteAck:
      dg.add_bool(m.flag);
      break;
    case MessageKind::kReplicaReadReply:
      dg.add_u32(static_cast<std::uint32_t>(m.records.size()));
      for (const PointerRecord& rec : m.records)
        encode_record_fields(dg, rec.server, rec.last_hop, rec.level,
                             rec.past_hole, rec.expires_at);
      break;
  }
  return dg;
}

Message decode(const std::uint8_t* data, std::size_t size) {
  DatagramIterator it(data, size);
  const std::uint8_t raw_kind = it.get_u8();
  if (raw_kind >= kWireKindCount)
    throw WireError("unknown message kind " + std::to_string(raw_kind));
  Message m;
  m.kind = static_cast<MessageKind>(raw_kind);
  IdSpec spec;
  spec.digit_bits = it.get_u8();
  spec.num_digits = it.get_u8();
  m.src = make_id(spec, it.get_u64());
  m.dst = make_id(spec, it.get_u64());
  m.target = make_id(spec, it.get_u64());
  switch (m.kind) {
    case MessageKind::kRouteHop:
    case MessageKind::kLocateStep:
      m.level = it.get_u32();
      m.flag = it.get_bool();
      break;
    case MessageKind::kPublishDeposit:
    case MessageKind::kPointerOptimize:
    case MessageKind::kReplicaWrite: {
      const PointerRecord rec = decode_record_fields(it, spec);
      m.server = rec.server;
      m.last_hop = rec.last_hop;
      m.level = rec.level;
      m.flag = rec.past_hole;
      m.expires_at = rec.expires_at;
      break;
    }
    case MessageKind::kUnpublish:
    case MessageKind::kLocateFound:
    case MessageKind::kDeleteBackward:
    case MessageKind::kReplicaRemove:
      m.server = make_id(spec, it.get_u64());
      break;
    case MessageKind::kMulticastForward:
    case MessageKind::kMulticastAck:
      m.level = it.get_u32();
      break;
    case MessageKind::kHeartbeatProbe:
    case MessageKind::kReplicaRead:
      break;
    case MessageKind::kHeartbeatAck:
    case MessageKind::kReplicaWriteAck:
      m.flag = it.get_bool();
      break;
    case MessageKind::kReplicaReadReply: {
      const std::uint32_t count = it.get_u32();
      // A record is at least kRecordMinBytes on the wire; reject counts
      // the remaining bytes cannot possibly satisfy before reserving.
      if (count > it.remaining() / kRecordMinBytes)
        throw WireError("replica_read_reply record count " +
                        std::to_string(count) +
                        " exceeds the remaining payload");
      m.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i)
        m.records.push_back(decode_record_fields(it, spec));
      break;
    }
  }
  it.expect_exhausted();
  return m;
}

}  // namespace tap
