// Table-link coherence, fail-stop + lazy repair (§5.2), the heartbeat
// sweep, and the continual-optimization heuristics (§6.4).  Insertion lives
// in join.cc, voluntary departure in leave.cc, the static oracle builder in
// static_build.cc — all methods of MaintenanceEngine.
#include "src/tapestry/maintenance.h"

#include <algorithm>

#include "src/sim/metrics.h"

namespace tap {

MaintenanceEngine::MaintenanceEngine(NodeRegistry& registry, Router& router,
                                     ObjectDirectory& directory,
                                     const TapestryParams& params,
                                     EventQueue& events, Rng& rng)
    : reg_(registry), router_(router), dir_(directory), params_(params),
      events_(events), rng_(rng) {}

// ---------------------------------------------------------------------
// Table-link coherence
// ---------------------------------------------------------------------

bool MaintenanceEngine::link(TapestryNode& owner, unsigned level,
                             TapestryNode& nbr) {
  TAP_ASSERT(!(owner.id() == nbr.id()));
  TAP_ASSERT_MSG(owner.id().matches_prefix(nbr.id(), level),
                 "neighbor does not share the slot's prefix");
  const unsigned digit = nbr.id().digit(level);
  auto res =
      owner.table().consider(level, digit, nbr.id(), reg_.dist(owner, nbr));
  if (res.evicted.has_value()) {
    if (TapestryNode* ev = reg_.find(*res.evicted); ev != nullptr)
      ev->table().remove_backpointer(level, owner.id());
  }
  if (res.inserted) nbr.table().add_backpointer(level, owner.id());
  return res.inserted;
}

void MaintenanceEngine::unlink(TapestryNode& owner, unsigned level,
                               NodeId nbr) {
  if (nbr == owner.id()) return;  // never drop self-entries
  if (owner.table().remove(level, nbr.digit(level), nbr)) {
    if (TapestryNode* n = reg_.find(nbr); n != nullptr)
      n->table().remove_backpointer(level, owner.id());
  }
}

bool MaintenanceEngine::add_to_table_if_closer(TapestryNode& host,
                                               TapestryNode& cand) {
  if (host.id() == cand.id()) return false;
  const unsigned gcp = host.id().common_prefix_len(cand.id());
  bool any = false;
  for (unsigned l = 0; l <= gcp && l < params_.id.num_digits; ++l)
    any = link(host, l, cand) || any;
  return any;
}

// ---------------------------------------------------------------------
// Fail-stop and lazy repair (§5.2)
// ---------------------------------------------------------------------

void MaintenanceEngine::fail(NodeId id) {
  reg_.mark_dead(reg_.live(id));
  // The tombstone keeps its table, store and backpointers: last-hop chains
  // crossing the corpse stay traversable for DELETEPOINTERSBACKWARD, and
  // lazy repair discovers the corpse exactly where a live system would —
  // by failing to talk to it.  Locate-cache hints involving the corpse are
  // dropped eagerly; queries already jumping toward it fail holder
  // verification and fall back to the walk on their own.
  dir_.invalidate_node_cache(id);
}

void MaintenanceEngine::purge_dead_neighbor(TapestryNode& at, NodeId dead,
                                            Trace* trace) {
  const auto before = dir_.snapshot_pointer_hops(at);
  const unsigned gcp = at.id().common_prefix_len(dead);
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l <= gcp && l < digits; ++l) {
    const unsigned digit = dead.digit(l);
    unlink(at, l, dead);
    if (at.table().slot_empty(l, digit)) {
      // A hole appeared; Property 1 obliges us to find a replacement or
      // establish that none exists (§5.2).
      if (auto rep = find_replacement(at, l, digit, trace); rep.has_value())
        link(at, l, reg_.live(*rep));
    }
    at.table().remove_backpointer(l, dead);
  }
  dir_.reroute_changed_pointers(at, before, trace);
}

std::optional<NodeId> MaintenanceEngine::find_replacement(TapestryNode& at,
                                                          unsigned level,
                                                          unsigned digit,
                                                          Trace* trace) {
  // Simple local search first: ask the remaining level-`level` contacts
  // (row members and backpointer holders — all of whom share our length-
  // `level` prefix) for their own entry in that slot.
  std::optional<NodeId> best;
  double best_dist = 0.0;
  auto offer = [&](const NodeId& cand) {
    if (cand == at.id() || !reg_.is_live(cand)) return;
    const double d = reg_.dist(at, reg_.checked(cand));
    if (!best.has_value() || d < best_dist ||
        (d == best_dist && cand < *best)) {
      best = cand;
      best_dist = d;
    }
  };

  std::vector<NodeId> peers = at.table().row_members(level);
  for (const NodeId& b : at.table().backpointers(level)) peers.push_back(b);
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  for (const NodeId& peer : peers) {
    if (peer == at.id() || !reg_.is_live(peer)) continue;
    TapestryNode& p = reg_.live(peer);
    reg_.acct(trace, at, p, 2);  // ask for its (level, digit) entries
    for (const auto& e : p.table().at(level, digit).entries()) offer(e.id);
  }
  if (best.has_value()) return best;

  // Fallback: acknowledged multicast over our length-`level` prefix,
  // collecting any node carrying `digit` at that position.  Expensive but
  // rare — it only runs when the local search came up empty.
  router_.multicast(
      at.id(), at.id(), level,
      [&](NodeId y) {
        if (reg_.checked(y).id().digit(level) == digit) offer(y);
      },
      trace, {});
  return best;
}

void MaintenanceEngine::heartbeat_sweep(Trace* trace) {
  metrics::heartbeat_sweeps_total().inc();
  const unsigned digits = params_.id.num_digits;
  const unsigned radix = params_.id.radix();

  // Pass 1: heartbeat probes.  Each node pings its table members; a failed
  // ping triggers the same lazy repair a failed routing step would.
  for (const auto& n : reg_.nodes()) {
    if (!n->alive) continue;
    bool again = true;
    while (again) {
      again = false;
      for (unsigned l = 0; l < digits && !again; ++l) {
        for (unsigned j = 0; j < radix && !again; ++j) {
          for (const auto& e : n->table().at(l, j).entries()) {
            if (e.id == n->id()) continue;
            const TapestryNode* other = reg_.find(e.id);
            TAP_ASSERT(other != nullptr);
            (void)transport_->deliver(make_message(
                MessageKind::kHeartbeatProbe, n->id(), e.id, e.id));
            reg_.acct(trace, *n, *other, 1);  // heartbeat probe
            if (!other->alive) {
              purge_dead_neighbor(*n, e.id, trace);
              again = true;  // iterators invalidated; rescan this node
              break;
            }
            Message ack = make_message(MessageKind::kHeartbeatAck, e.id,
                                       n->id(), n->id());
            ack.flag = true;  // alive
            (void)transport_->deliver(ack);
          }
        }
      }
    }
  }

  // Pass 2..k: purge-time replacement searches can miss while other tables
  // are still dirty; retry emptied slots until nothing changes.  A memo of
  // prefixes established (this sweep) to have no live node avoids
  // re-multicasting for genuinely empty digit classes.
  std::unordered_set<std::uint64_t> known_empty;
  auto slot_key = [&](const TapestryNode& n, unsigned l, unsigned j) {
    return (n.id().prefix_value(l) << params_.id.digit_bits | j) |
           (static_cast<std::uint64_t>(l + 1) << 56);
  };
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (const auto& n : reg_.nodes()) {
      if (!n->alive) continue;
      for (unsigned l = 0; l < digits; ++l) {
        for (unsigned j = 0; j < radix; ++j) {
          if (!n->table().slot_empty(l, j)) continue;
          const std::uint64_t key = slot_key(*n, l, j);
          if (known_empty.count(key) != 0) continue;
          const auto before = dir_.snapshot_pointer_hops(*n);
          if (auto rep = find_replacement(*n, l, j, trace); rep.has_value()) {
            link(*n, l, reg_.live(*rep));
            dir_.reroute_changed_pointers(*n, before, trace);
            changed = true;
          } else {
            known_empty.insert(key);
          }
        }
      }
    }
    if (!changed) break;
    known_empty.clear();  // new links may make old conclusions stale
  }
}

void MaintenanceEngine::start_heartbeats(double every, Trace* trace) {
  TAP_CHECK(every > 0.0, "heartbeat interval must be positive");
  stop_heartbeats();
  schedule_heartbeat_tick(every, trace);
}

void MaintenanceEngine::stop_heartbeats() {
  if (heartbeat_event_.has_value()) {
    events_.cancel(*heartbeat_event_);
    heartbeat_event_.reset();
  }
}

void MaintenanceEngine::schedule_heartbeat_tick(double every, Trace* trace) {
  heartbeat_event_ = events_.schedule_in(every, [this, every, trace] {
    heartbeat_event_.reset();
    heartbeat_sweep(trace);
    schedule_heartbeat_tick(every, trace);
  });
}

// ---------------------------------------------------------------------
// Continual optimization (§6.4)
// ---------------------------------------------------------------------

void MaintenanceEngine::relocate(NodeId id, Location loc) {
  TapestryNode& n = reg_.live(id);
  TAP_CHECK(loc < reg_.space().size(), "location outside the metric space");
  n.set_location(loc);
  // Deliberately no table fix-up: stored distances are now stale, exactly
  // the drift the §6.4 heuristics are designed to absorb.
}

void MaintenanceEngine::optimize_primaries(NodeId id, Trace* trace) {
  TapestryNode& n = reg_.live(id);
  const auto before = dir_.snapshot_pointer_hops(n);
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l < digits; ++l) {
    for (unsigned j = 0; j < params_.id.radix(); ++j) {
      // Re-measure every member and re-rank; consider() re-sorts in place.
      auto members = n.table().at(l, j).entries();  // copy: we mutate below
      for (const auto& e : members) {
        if (e.id == n.id()) continue;
        const TapestryNode* other = reg_.find(e.id);
        if (other == nullptr || !other->alive) {
          unlink(n, l, e.id);
          continue;
        }
        reg_.acct(trace, n, *other, 2);  // distance probe
        n.table().consider(l, j, e.id, reg_.dist(n, *other));
      }
    }
  }
  dir_.reroute_changed_pointers(n, before, trace);
}

void MaintenanceEngine::optimize_gossip(NodeId id, Trace* trace) {
  TapestryNode& n = reg_.live(id);
  const auto before = dir_.snapshot_pointer_hops(n);
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l < digits; ++l) {
    // Ask each level-l neighbor for its level-l row; adopt closer members
    // (the "local sharing of information" heuristic).
    const auto peers = n.table().row_members(l);
    for (const NodeId& m : peers) {
      if (m == n.id() || !reg_.is_live(m)) continue;
      TapestryNode& member = reg_.live(m);
      reg_.acct(trace, n, member, 2);  // row exchange
      for (const NodeId& x : member.table().row_members(l)) {
        if (x == n.id() || !reg_.is_live(x)) continue;
        link(n, l, reg_.live(x));
      }
    }
  }
  dir_.reroute_changed_pointers(n, before, trace);
}

void MaintenanceEngine::rebuild_neighbor_table(NodeId id, Trace* trace) {
  TapestryNode& n = reg_.live(id);
  const auto before = dir_.snapshot_pointer_hops(n);
  // Deepest level at which anyone shares our prefix; the multicast over
  // that prefix regenerates the first list exactly as at insertion time.
  unsigned max_level = 0;
  for (unsigned l = 0; l < params_.id.num_digits; ++l)
    if (n.table().row_has_other(l)) max_level = l;
  std::vector<NodeId> list;
  router_.multicast(
      id, n.id(), max_level,
      [&](NodeId y) {
        if (!(y == id)) list.push_back(y);
      },
      trace, {id});
  acquire_neighbor_table(n, max_level, std::move(list), trace);
  dir_.reroute_changed_pointers(n, before, trace);
}

}  // namespace tap
