// Router: localized surrogate routing (§2.3), both published variants, and
// the acknowledged multicast primitive (§4.1) built on the routing mesh.
//
// The router reads and (for lazy repair, §5.2) mutates routing tables but
// owns no state of its own beyond references: every routing decision is a
// function of the current node's table, exactly as in a deployment.  When a
// mutating walk trips over a corpse it hands the repair to the
// RepairHandler (implemented by MaintenanceEngine) — routing decides, the
// maintenance layer fixes; the narrow interface keeps the dependency cycle
// routing -> repair -> pointer-reroute -> routing explicit and one-way per
// layer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/tapestry/registry.h"
#include "src/tapestry/route_types.h"
#include "src/tapestry/transport.h"

namespace tap {

/// What the Router needs from the maintenance layer: purge one discovered
/// corpse from one node's table (promoting secondaries, hunting slot
/// replacements, re-routing affected object pointers).
class RepairHandler {
 public:
  virtual ~RepairHandler() = default;
  virtual void purge_dead_neighbor(TapestryNode& at, NodeId dead,
                                   Trace* trace) = 0;
};

class Router {
 public:
  /// Node-ids to route around, e.g. "as if the new node had not yet
  /// entered the network" during insertion (Figure 10).
  using ExcludeSet = std::unordered_set<std::uint64_t>;

  Router(NodeRegistry& registry, const TapestryParams& params);

  /// Wires the lazy-repair callback; must be called before any mutating
  /// walk can encounter a corpse.
  void bind_repair(RepairHandler* repair) noexcept { repair_ = repair; }

  /// Wires the transport every hop and multicast edge travels through
  /// (Network binds the overlay's; standalone routers use the shared
  /// direct fallback).
  void bind_transport(Transport* transport) noexcept {
    transport_ = transport;
  }
  [[nodiscard]] Transport& transport() const noexcept { return *transport_; }

  /// Scans row `level` of `at` for the slot serving `desired` under the
  /// configured routing mode.  Returns the chosen digit or nullopt if the
  /// whole row is empty (cannot happen while self-entries are intact).
  /// Driven by the row's occupancy bitmask: empty slots are skipped with
  /// O(1) bit scans, and a NeighborSet is only touched when an exclude set
  /// forces a member check.
  [[nodiscard]] std::optional<unsigned> select_slot(
      const TapestryNode& at, unsigned level, unsigned desired,
      bool& past_hole, const ExcludeSet* exclude = nullptr) const;

  /// The pre-bitmask linear slot scan, preserved verbatim as the
  /// correctness oracle: tests assert digit-for-digit agreement with
  /// select_slot, and bench_micro measures the speedup between the two.
  [[nodiscard]] std::optional<unsigned> select_slot_reference(
      const TapestryNode& at, unsigned level, unsigned desired,
      bool& past_hole, const ExcludeSet* exclude = nullptr) const;

  /// Mutating route step with lazy repair.
  std::optional<NodeId> route_step(TapestryNode& at, const Id& target,
                                   RouteState& state, Trace* trace,
                                   const ExcludeSet* exclude = nullptr);

  /// One routing decision at node `at` given cursor `state`: returns the
  /// next (different) node and advances the cursor past any self-matching
  /// levels, or nullopt when `at` is the root.  Pure peek — never repairs;
  /// dead primaries are skipped in favor of live members.
  [[nodiscard]] std::optional<NodeId> route_step_peek(const NodeId& at,
                                                      const Id& target,
                                                      RouteState& state) const;

  /// Surrogate-routes from `from` toward `target` (a GUID or node-ID) and
  /// returns the root reached (§2.3).  Repairs dead links lazily en route.
  RouteResult route_to_root(NodeId from, const Id& target,
                            Trace* trace = nullptr);

  /// Mutation-free surrogate route built on route_step_peek: walks the
  /// steady-state path (dead members skipped, nothing repaired, no locks
  /// taken) with the same cost accounting as route_to_root.  This is the
  /// read path concurrent builders and batched publishes use — any number
  /// of threads may walk a quiescent mesh simultaneously.
  RouteResult route_to_root_peek(NodeId from, const Id& target,
                                 Trace* trace = nullptr) const;

  /// route_to_root_peek for a mesh that is NOT quiescent: each routing
  /// decision runs under the current node's stripe in the registry's
  /// NodeLockTable, so the walk is safe against concurrent routing-table
  /// mutation (a thread-parallel join wave).  Exactly one stripe is held
  /// at a time — the per-hop granularity a real deployment has, where each
  /// hop observes whatever table state the contacted node holds right
  /// then.  On a quiescent mesh the result is identical to the peek walk.
  RouteResult route_to_root_guarded(NodeId from, const Id& target,
                                    Trace* trace = nullptr) const;

  /// The unique surrogate root for `target` (Theorem 2), computed from an
  /// arbitrary start without cost accounting.  Oracle-flavored convenience
  /// used by tests and the general-metric comparisons.
  [[nodiscard]] NodeId surrogate_root(const Id& target) const;

  /// Acknowledged multicast (Figure 8): applies `visit` exactly once on
  /// every live node whose ID starts with the first `prefix_len` digits of
  /// `pattern`.  `start` must carry that prefix.  Nodes in `exclude` are
  /// neither forwarded to nor visited.
  MulticastStats multicast(NodeId start, const Id& pattern,
                           unsigned prefix_len,
                           const std::function<void(NodeId)>& visit,
                           Trace* trace = nullptr,
                           const std::vector<NodeId>& exclude = {});

 private:
  /// Shared walk loop behind route_to_root_peek (locks == nullptr) and
  /// route_to_root_guarded (locks != nullptr): one copy of the hop /
  /// latency / surrogate-hop / path accounting, with the per-decision
  /// stripe lock as the only difference.
  RouteResult walk_to_root_peek(NodeId from, const Id& target, Trace* trace,
                                const NodeLockTable* locks) const;

  /// Live primary of a slot with lazy repair: prunes dead members it
  /// trips over (§5.2) and, if the slot empties, hunts a replacement.
  /// Private so the mutating-repair entry points stay at route_step /
  /// route_to_root, which re-select after a slot empties.
  std::optional<NodeId> live_primary_repair(
      TapestryNode& at, unsigned level, unsigned digit, Trace* trace,
      const ExcludeSet* exclude = nullptr);

  NodeRegistry& reg_;
  const TapestryParams& params_;
  RepairHandler* repair_ = nullptr;
  Transport* transport_ = default_transport();
};

}  // namespace tap
