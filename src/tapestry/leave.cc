// Voluntary delete (paper §5.1, Figure 12): the departing node notifies
// every backpointer holder, attaching replacement candidates for the slot
// it is vacating (the secondaries of its own-digit slot at that level —
// nodes sharing one more digit of its ID); holders re-route object pointers
// whose paths crossed the leaver; objects the leaver *served* are withdrawn
// (the application layer would migrate the data; the overlay's duty is
// pointer hygiene); objects the leaver *rooted* migrate to their new
// surrogates as a side effect of the holders' pointer re-routing.
//
// The involuntary-delete path (§5.2) — fail(), lazy repair, the heartbeat
// sweep — lives in maintenance.cc.
#include "src/tapestry/maintenance.h"

#include <algorithm>

namespace tap {

void MaintenanceEngine::leave(NodeId id, Trace* trace) {
  TapestryNode& a = reg_.live(id);

  // 0. Withdraw replicas this node serves (walks the publish paths while
  //    the node still routes normally).
  for (const Guid& g : dir_.guids_served_by(id)) dir_.unpublish(id, g, trace);

  // From here on the node is gone for routing purposes: repairs and
  // replacement searches must not hand it back out.  (The unpublishes
  // above already dropped every cached hint naming this node as replica;
  // this sweeps its own LRU and any hint naming it as pointer holder.)
  reg_.mark_dead(a);
  dir_.invalidate_node_cache(id);

  // 1. Notify every backpointer holder, level by level, with replacement
  //    candidates: the secondaries of our own-digit slot at that level
  //    share one more digit of our ID and are exactly what the holder's
  //    vacated slot requires.
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l < digits; ++l) {
    std::vector<NodeId> hints;
    for (const auto& e : a.table().at(l, a.id().digit(l)).entries())
      if (!(e.id == id) && reg_.is_live(e.id)) hints.push_back(e.id);

    const std::vector<NodeId> holders(a.table().backpointers(l).begin(),
                                      a.table().backpointers(l).end());
    for (const NodeId& holder : holders) {
      if (!reg_.is_live(holder)) continue;
      TapestryNode& b = reg_.live(holder);
      reg_.acct(trace, a, b, 1);  // LEAVINGNETWORK notification with hints
      const auto before = dir_.snapshot_pointer_hops(b);
      unlink(b, l, id);
      for (const NodeId& h : hints)
        if (!(h == holder) && reg_.is_live(h)) link(b, l, reg_.live(h));
      if (b.table().slot_empty(l, id.digit(l))) {
        if (auto rep = find_replacement(b, l, id.digit(l), trace);
            rep.has_value())
          link(b, l, reg_.live(*rep));
      }
      // Re-route local pointers that used to travel through the leaver —
      // including those the leaver *rooted*, which now flow onward to
      // their new surrogate roots.
      dir_.reroute_changed_pointers(b, before, trace);
    }
  }

  // 2. REMOVELINK: retract our own forward links so no one holds a
  //    backpointer to a ghost.
  for (unsigned l = 0; l < digits; ++l) {
    for (unsigned j = 0; j < params_.id.radix(); ++j) {
      const auto members = a.table().at(l, j).entries();  // copy
      for (const auto& e : members) {
        if (e.id == id) continue;
        if (TapestryNode* other = reg_.find(e.id); other != nullptr) {
          reg_.acct(trace, a, *other, 1);
          other->table().remove_backpointer(l, id);
        }
        a.table().remove(l, j, e.id);
      }
    }
  }
}

}  // namespace tap
