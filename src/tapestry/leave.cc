// Node deletion (paper §5).
//
// Voluntary delete (§5.1, Figure 12): the departing node notifies every
// backpointer holder, attaching replacement candidates for the slot it is
// vacating (the secondaries of its own-digit slot at that level — nodes
// sharing one more digit of its ID); holders re-route object pointers whose
// paths crossed the leaver; objects the leaver *served* are withdrawn (the
// application layer would migrate the data; the overlay's duty is pointer
// hygiene); objects the leaver *rooted* migrate to their new surrogates as
// a side effect of the holders' pointer re-routing.
//
// Involuntary delete (§5.2): nothing happens at failure time.  Every later
// operation that trips over the corpse repairs lazily: the discovering node
// removes the corpse from its slots, promotes secondaries, hunts a
// replacement when a slot empties (local search first, prefix multicast as
// the fallback), and re-routes its affected object pointers.  Objects
// rooted at the corpse stay unavailable until soft-state republish
// re-deposits them along live paths — the behaviour the churn experiment
// (E7) quantifies.
#include "src/tapestry/network.h"

#include <algorithm>

namespace tap {

void Network::fail(NodeId id) {
  TapestryNode& n = live(id);
  n.alive = false;
  --live_count_;
  // The tombstone keeps its table, store and backpointers: last-hop chains
  // crossing the corpse stay traversable for DELETEPOINTERSBACKWARD, and
  // lazy repair discovers the corpse exactly where a live system would —
  // by failing to talk to it.
}

std::optional<NodeId> Network::live_primary_repair(TapestryNode& at,
                                                   unsigned level,
                                                   unsigned digit,
                                                   Trace* trace,
                                                   const ExcludeSet* exclude) {
  for (;;) {
    // The primary for this step is the closest member not being routed
    // around (Figure 10's "as if the new node had not yet entered").
    std::optional<NodeId> prim;
    for (const auto& e : at.table().at(level, digit).entries()) {
      if (exclude != nullptr && exclude->count(e.id.value()) != 0) continue;
      prim = e.id;
      break;
    }
    if (!prim.has_value()) return std::nullopt;
    if (*prim == at.id()) return prim;
    TapestryNode* p = find(*prim);
    TAP_ASSERT(p != nullptr);
    if (p->alive) return prim;
    // Dead primary: the probe that discovered it cost one (unanswered)
    // message; then repair.
    acct(trace, at, *p, 1);
    purge_dead_neighbor(at, *prim, trace);
  }
}

void Network::purge_dead_neighbor(TapestryNode& at, NodeId dead,
                                  Trace* trace) {
  const auto before = snapshot_pointer_hops(at);
  const TapestryNode& corpse = node(dead);
  (void)corpse;
  const unsigned gcp = at.id().common_prefix_len(dead);
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l <= gcp && l < digits; ++l) {
    const unsigned digit = dead.digit(l);
    unlink(at, l, dead);
    if (at.table().at(l, digit).empty()) {
      // A hole appeared; Property 1 obliges us to find a replacement or
      // establish that none exists (§5.2).
      if (auto rep = find_replacement(at, l, digit, trace); rep.has_value())
        link(at, l, live(*rep));
    }
    at.table().remove_backpointer(l, dead);
  }
  reroute_changed_pointers(at, before, trace);
}

std::optional<NodeId> Network::find_replacement(TapestryNode& at,
                                                unsigned level, unsigned digit,
                                                Trace* trace) {
  // Simple local search first: ask the remaining level-`level` contacts
  // (row members and backpointer holders — all of whom share our length-
  // `level` prefix) for their own entry in that slot.
  std::optional<NodeId> best;
  double best_dist = 0.0;
  auto offer = [&](const NodeId& cand) {
    if (cand == at.id() || !is_live(cand)) return;
    const double d = dist_nodes(at, node(cand));
    if (!best.has_value() || d < best_dist ||
        (d == best_dist && cand < *best)) {
      best = cand;
      best_dist = d;
    }
  };

  std::vector<NodeId> peers = at.table().row_members(level);
  for (const NodeId& b : at.table().backpointers(level)) peers.push_back(b);
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  for (const NodeId& peer : peers) {
    if (peer == at.id() || !is_live(peer)) continue;
    TapestryNode& p = live(peer);
    acct(trace, at, p, 2);  // ask for its (level, digit) entries
    for (const auto& e : p.table().at(level, digit).entries()) offer(e.id);
  }
  if (best.has_value()) return best;

  // Fallback: acknowledged multicast over our length-`level` prefix,
  // collecting any node carrying `digit` at that position.  Expensive but
  // rare — it only runs when the local search came up empty.
  multicast(
      at.id(), at.id(), level,
      [&](NodeId y) {
        if (node(y).id().digit(level) == digit) offer(y);
      },
      trace, {});
  return best;
}

void Network::heartbeat_sweep(Trace* trace) {
  const unsigned digits = params_.id.num_digits;
  const unsigned radix = params_.id.radix();

  // Pass 1: heartbeat probes.  Each node pings its table members; a failed
  // ping triggers the same lazy repair a failed routing step would.
  for (auto& n : nodes_) {
    if (!n->alive) continue;
    bool again = true;
    while (again) {
      again = false;
      for (unsigned l = 0; l < digits && !again; ++l) {
        for (unsigned j = 0; j < radix && !again; ++j) {
          for (const auto& e : n->table().at(l, j).entries()) {
            if (e.id == n->id()) continue;
            const TapestryNode* other = find(e.id);
            TAP_ASSERT(other != nullptr);
            acct(trace, *n, *other, 1);  // heartbeat probe
            if (!other->alive) {
              purge_dead_neighbor(*n, e.id, trace);
              again = true;  // iterators invalidated; rescan this node
              break;
            }
          }
        }
      }
    }
  }

  // Pass 2..k: purge-time replacement searches can miss while other tables
  // are still dirty; retry emptied slots until nothing changes.  A memo of
  // prefixes established (this sweep) to have no live node avoids
  // re-multicasting for genuinely empty digit classes.
  std::unordered_set<std::uint64_t> known_empty;
  auto slot_key = [&](const TapestryNode& n, unsigned l, unsigned j) {
    return (n.id().prefix_value(l) << params_.id.digit_bits | j) |
           (static_cast<std::uint64_t>(l + 1) << 56);
  };
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (auto& n : nodes_) {
      if (!n->alive) continue;
      for (unsigned l = 0; l < digits; ++l) {
        for (unsigned j = 0; j < radix; ++j) {
          if (!n->table().at(l, j).empty()) continue;
          const std::uint64_t key = slot_key(*n, l, j);
          if (known_empty.count(key) != 0) continue;
          const auto before = snapshot_pointer_hops(*n);
          if (auto rep = find_replacement(*n, l, j, trace); rep.has_value()) {
            link(*n, l, live(*rep));
            reroute_changed_pointers(*n, before, trace);
            changed = true;
          } else {
            known_empty.insert(key);
          }
        }
      }
    }
    if (!changed) break;
    known_empty.clear();  // new links may make old conclusions stale
  }
}

void Network::leave(NodeId id, Trace* trace) {
  TapestryNode& a = live(id);

  // 0. Withdraw replicas this node serves (walks the publish paths while
  //    the node still routes normally).
  std::vector<Guid> served;
  for (const auto& [guid, servers] : registry_)
    if (std::find(servers.begin(), servers.end(), id) != servers.end())
      served.push_back(guid);
  for (const Guid& g : served) unpublish(id, g, trace);

  // From here on the node is gone for routing purposes: repairs and
  // replacement searches must not hand it back out.
  a.alive = false;
  --live_count_;

  // 1. Notify every backpointer holder, level by level, with replacement
  //    candidates: the secondaries of our own-digit slot at that level
  //    share one more digit of our ID and are exactly what the holder's
  //    vacated slot requires.
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l < digits; ++l) {
    std::vector<NodeId> hints;
    for (const auto& e : a.table().at(l, a.id().digit(l)).entries())
      if (!(e.id == id) && is_live(e.id)) hints.push_back(e.id);

    const std::vector<NodeId> holders(a.table().backpointers(l).begin(),
                                      a.table().backpointers(l).end());
    for (const NodeId& holder : holders) {
      if (!is_live(holder)) continue;
      TapestryNode& b = live(holder);
      acct(trace, a, b, 1);  // LEAVINGNETWORK notification with hints
      const auto before = snapshot_pointer_hops(b);
      unlink(b, l, id);
      for (const NodeId& h : hints)
        if (!(h == holder) && is_live(h)) link(b, l, live(h));
      if (b.table().at(l, id.digit(l)).empty()) {
        if (auto rep = find_replacement(b, l, id.digit(l), trace);
            rep.has_value())
          link(b, l, live(*rep));
      }
      // Re-route local pointers that used to travel through the leaver —
      // including those the leaver *rooted*, which now flow onward to
      // their new surrogate roots.
      reroute_changed_pointers(b, before, trace);
    }
  }

  // 2. REMOVELINK: retract our own forward links so no one holds a
  //    backpointer to a ghost.
  for (unsigned l = 0; l < digits; ++l) {
    for (unsigned j = 0; j < params_.id.radix(); ++j) {
      const auto members = a.table().at(l, j).entries();  // copy
      for (const auto& e : members) {
        if (e.id == id) continue;
        if (TapestryNode* other = find(e.id); other != nullptr) {
          acct(trace, a, *other, 1);
          other->table().remove_backpointer(l, id);
        }
        a.table().at(l, j).remove(e.id);
      }
    }
  }
}

}  // namespace tap
