// Shared result/cursor types of the routing and object-location layers.
// They sit below Router and ObjectDirectory so either can be used (and
// tested) without pulling in the other.
#pragma once

#include <cstddef>
#include <vector>

#include "src/tapestry/id.h"

namespace tap {

/// Outcome of routing toward a root (surrogate routing, §2.3).
struct RouteResult {
  NodeId root{};
  std::size_t hops = 0;            ///< network hops (self-advances excluded)
  std::size_t surrogate_hops = 0;  ///< hops taken at/after the first hole
  double latency = 0.0;
  std::vector<NodeId> path{};      ///< distinct nodes visited, source first
};

/// Outcome of an object location query (§2.2).
struct LocateResult {
  bool found = false;
  NodeId server{};        ///< replica the query resolved to
  NodeId pointer_node{};  ///< node at which the object pointer was found
  std::size_t hops = 0;   ///< total application-level hops
  double latency = 0.0;   ///< total distance traveled by the query
};

/// Cost profile of one acknowledged multicast (§4.1).
struct MulticastStats {
  std::size_t reached = 0;
  std::size_t messages = 0;  ///< forwards + acknowledgments
  double traffic = 0.0;      ///< summed distance over all messages
  double completion = 0.0;   ///< longest forward+ack chain (completion time)
};

/// Mutable routing cursor: the digit position being resolved and, for the
/// PRR-like variant, whether a hole has been passed (§2.3).
struct RouteState {
  unsigned level = 0;
  bool past_hole = false;
};

}  // namespace tap
