// Thread-parallel §5.1/§5.2 repair (see threaded_repair.h for the model,
// the locking discipline and the determinism contract).  The protocol
// steps mirror leave.cc / maintenance.cc; what differs is only *where*
// synchronisation comes from: per-node stripe locks instead of a single
// thread of control, plus the guarded §4.2 reroutes and the quiescent
// chain-repair pass that replace the serial path's in-line rerouting.
#include "src/tapestry/threaded_repair.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_set>

#include "src/sim/metrics.h"
#include "src/sim/thread_pool.h"
#include "src/tapestry/striped_links.h"

namespace tap {

ThreadedRepairDriver::ThreadedRepairDriver(NodeRegistry& registry,
                                           Router& router,
                                           ObjectDirectory& directory,
                                           const TapestryParams& params)
    : reg_(registry), router_(router), dir_(directory), params_(params),
      locks_(registry.node_locks()) {}

void ThreadedRepairDriver::index_live_nodes() {
  live_values_.clear();
  for (TapestryNode* n : reg_.nodes_snapshot())
    if (n->alive) live_values_.push_back(n->id().value());
  std::sort(live_values_.begin(), live_values_.end());
}

// ---------------------------------------------------------------------
// Voluntary delete (§5.1, Figure 12) on real threads
// ---------------------------------------------------------------------

void ThreadedRepairDriver::run_leave(const std::vector<NodeId>& victims,
                                     std::size_t workers, Trace* trace) {
  TAP_CHECK(!victims.empty(), "no leave victims");
  std::unordered_set<std::uint64_t> batch;
  for (const NodeId& v : victims) {
    TAP_CHECK(reg_.is_live(v), "leave victim must be a live node");
    TAP_CHECK(batch.insert(v.value()).second,
              "duplicate victim within the leave batch");
  }
  TAP_CHECK(victims.size() < reg_.live_count(),
            "leave_bulk would empty the network");

  // Serial preamble.  (a) Withdraw every victim's replicas while the mesh
  // still routes through them — the replica registry and the locate cache
  // have no internal synchronisation, so all of this stays on one thread.
  for (const NodeId& v : victims)
    for (const Guid& g : dir_.guids_served_by(v)) dir_.unpublish(v, g, trace);

  // (b) Mark every victim dead before capturing anything: hint and holder
  // lists must never name a co-departing node, no matter how the threads
  // would have interleaved.
  for (const NodeId& v : victims) {
    reg_.mark_dead(reg_.live(v));
    dir_.invalidate_node_cache(v);
  }
  index_live_nodes();

  // (c) Capture each victim's per-level replacement hints (live
  // secondaries of its own-digit slot — one more shared digit, exactly
  // what a holder's vacated slot requires) and live backpointer holders.
  const unsigned digits = params_.id.num_digits;
  std::vector<Session> sessions(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    Session& s = sessions[i];
    s.victim = victims[i];
    s.hints.resize(digits);
    s.holders.resize(digits);
    const TapestryNode& a = reg_.checked(s.victim);
    for (unsigned l = 0; l < digits; ++l) {
      for (const auto& e : a.table().at(l, s.victim.digit(l)).entries())
        if (!(e.id == s.victim) && reg_.is_live(e.id))
          s.hints[l].push_back(e.id);
      for (const NodeId& h : a.table().backpointers(l))
        if (reg_.is_live(h)) s.holders[l].push_back(h);
    }
  }

  parallel_for(
      sessions.size(), [&](std::size_t i) { leave_one(sessions[i]); },
      workers);

  finish_wave(workers, trace, &sessions);
}

void ThreadedRepairDriver::leave_one(Session& s) {
  TapestryNode& a = reg_.checked(s.victim);
  const unsigned digits = params_.id.num_digits;

  // 1. Notify every backpointer holder, level by level, with the hints.
  for (unsigned l = 0; l < digits; ++l) {
    const unsigned digit = s.victim.digit(l);
    for (const NodeId& holder : s.holders[l]) {
      TapestryNode* bp = reg_.find(holder);
      if (bp == nullptr || !bp->alive) continue;
      reg_.acct(&s.trace, a, *bp, 1);  // LEAVINGNETWORK with hints
      const auto before = dir_.snapshot_pointer_hops_guarded(*bp, locks_);
      striped::unlink(reg_, locks_, *bp, l, s.victim);
      for (const NodeId& hint : s.hints[l]) {
        if (hint == holder) continue;
        if (TapestryNode* h = reg_.find(hint); h != nullptr && h->alive)
          striped::link(reg_, locks_, *bp, l, *h);
      }
      bool empty;
      {
        NodeLockTable::Guard g(locks_, holder);
        empty = bp->table().slot_empty(l, digit);
      }
      if (empty) {
        if (auto rep = find_replacement(*bp, l, digit, &s.trace);
            rep.has_value())
          striped::link(reg_, locks_, *bp, l, reg_.live(*rep));
      }
      // §4.2 inside the wave: re-push local pointers whose paths crossed
      // the leaver — including those the leaver rooted, which now flow on
      // to their new surrogate roots.
      dir_.reroute_changed_pointers_guarded(*bp, before, locks_, &s.trace);
    }
  }

  // 2. REMOVELINK: retract the victim's own forward links so no one holds
  //    a backpointer to a ghost.
  for (unsigned l = 0; l < digits; ++l) {
    for (unsigned j = 0; j < params_.id.radix(); ++j) {
      std::vector<NodeId> members;
      {
        NodeLockTable::Guard g(locks_, s.victim);
        for (const auto& e : a.table().at(l, j).entries())
          members.push_back(e.id);
      }
      for (const NodeId& m : members) {
        if (m == s.victim) continue;
        TapestryNode* other = reg_.find(m);
        if (other != nullptr) reg_.acct(&s.trace, a, *other, 1);
        NodeLockTable::Guard g(locks_, s.victim, m);
        if (other != nullptr) other->table().remove_backpointer(l, s.victim);
        a.table().remove(l, j, m);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Fail-stop plus eager repair (§5.2) on real threads
// ---------------------------------------------------------------------

void ThreadedRepairDriver::run_fail(const std::vector<NodeId>& victims,
                                    std::size_t workers, Trace* trace) {
  TAP_CHECK(!victims.empty(), "no fail victims");
  std::unordered_set<std::uint64_t> batch;
  for (const NodeId& v : victims) {
    TAP_CHECK(reg_.is_live(v), "fail victim must be a live node");
    TAP_CHECK(batch.insert(v.value()).second,
              "duplicate victim within the fail batch");
  }
  TAP_CHECK(victims.size() < reg_.live_count(),
            "fail_and_repair_bulk would empty the network");

  // Serial preamble: all victims stop responding at once (tombstones keep
  // their tables and stores, as in fail()), then the holder lists are
  // captured — backpointer symmetry makes them exactly the set of nodes
  // lazy repair would eventually have discovered the corpse from.
  for (const NodeId& v : victims) {
    reg_.mark_dead(reg_.live(v));
    dir_.invalidate_node_cache(v);
  }
  index_live_nodes();

  std::vector<Session> sessions(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    Session& s = sessions[i];
    s.victim = victims[i];
    s.holders.resize(1);
    for (const NodeId& h : reg_.checked(s.victim).table().all_backpointers())
      if (reg_.is_live(h)) s.holders[0].push_back(h);
  }

  parallel_for(
      sessions.size(), [&](std::size_t i) { fail_one(sessions[i]); },
      workers);

  finish_wave(workers, trace, &sessions);
}

void ThreadedRepairDriver::fail_one(Session& s) {
  for (const NodeId& holder : s.holders[0]) {
    TapestryNode* bp = reg_.find(holder);
    if (bp == nullptr || !bp->alive) continue;
    purge_holder(*bp, s.victim, &s.trace);
  }
}

void ThreadedRepairDriver::purge_holder(TapestryNode& at, const NodeId& dead,
                                        Trace* trace) {
  const auto before = dir_.snapshot_pointer_hops_guarded(at, locks_);
  const unsigned gcp = at.id().common_prefix_len(dead);
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l <= gcp && l < digits; ++l) {
    const unsigned digit = dead.digit(l);
    striped::unlink(reg_, locks_, at, l, dead);
    bool empty;
    {
      NodeLockTable::Guard g(locks_, at.id());
      empty = at.table().slot_empty(l, digit);
    }
    if (empty) {
      // A hole appeared; Property 1 obliges us to find a replacement or
      // establish that none exists (§5.2).
      if (auto rep = find_replacement(at, l, digit, trace); rep.has_value())
        striped::link(reg_, locks_, at, l, reg_.live(*rep));
    }
    NodeLockTable::Guard g(locks_, at.id());
    at.table().remove_backpointer(l, dead);
  }
  dir_.reroute_changed_pointers_guarded(at, before, locks_, trace);
}

// ---------------------------------------------------------------------
// Replacement search
// ---------------------------------------------------------------------

std::optional<NodeId> ThreadedRepairDriver::find_replacement(TapestryNode& at,
                                                             unsigned level,
                                                             unsigned digit,
                                                             Trace* trace) {
  std::optional<NodeId> best;
  double best_dist = 0.0;
  auto offer = [&](const NodeId& cand) {
    if (cand == at.id() || !reg_.is_live(cand)) return;
    // Racy sources are filtered here rather than trusted structurally.
    if (cand.digit(level) != digit || !at.id().matches_prefix(cand, level))
      return;
    const double d = reg_.dist(at, reg_.checked(cand));
    if (!best.has_value() || d < best_dist ||
        (d == best_dist && cand < *best)) {
      best = cand;
      best_dist = d;
    }
  };

  // Local search first, as in the serial path: the remaining level-`level`
  // contacts all share our length-`level` prefix; ask each for its own
  // entry in the vacated slot.
  std::vector<NodeId> peers;
  {
    NodeLockTable::Guard g(locks_, at.id());
    peers = at.table().row_members(level);
    for (const NodeId& b : at.table().backpointers(level))
      peers.push_back(b);
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  for (const NodeId& peer : peers) {
    if (peer == at.id() || !reg_.is_live(peer)) continue;
    TapestryNode& p = reg_.live(peer);
    reg_.acct(trace, at, p, 2);  // ask for its (level, digit) entries
    std::vector<NodeId> cands;
    {
      NodeLockTable::Guard g(locks_, peer);
      for (const auto& e : p.table().at(level, digit).entries())
        cands.push_back(e.id);
    }
    for (const NodeId& c : cands) offer(c);
  }
  if (best.has_value()) return best;

  // Fallback, replacing the serial path's acknowledged multicast (an
  // unguarded recursive walk, unusable mid-wave): ids sharing our length-
  // `level` prefix with `digit` next occupy one contiguous value range, so
  // the sorted live-id index enumerates exactly the candidate set the
  // multicast would have visited — and the (distance, id) minimum is the
  // same winner regardless of enumeration order.
  const unsigned shift =
      (params_.id.num_digits - level - 1) * params_.id.digit_bits;
  const std::uint64_t lo =
      ((at.id().prefix_value(level) << params_.id.digit_bits) | digit)
      << shift;
  const std::uint64_t span = std::uint64_t{1} << shift;
  for (auto it =
           std::lower_bound(live_values_.begin(), live_values_.end(), lo);
       it != live_values_.end() && *it - lo < span; ++it) {
    const NodeId cand(params_.id, *it);
    if (cand == at.id()) continue;
    if (TapestryNode* c = reg_.find(cand); c != nullptr && c->alive) {
      reg_.acct(trace, at, *c, 1);  // the multicast-equivalent probe
      offer(cand);
    }
  }
  return best;
}

// ---------------------------------------------------------------------
// Threaded heartbeat sweep (§5.2, §6.5)
// ---------------------------------------------------------------------

bool ThreadedRepairDriver::sweep_node(TapestryNode& n, Trace* trace) {
  bool changed = false;
  const unsigned digits = params_.id.num_digits;
  const unsigned radix = params_.id.radix();

  // Probe pass: ping every table member under our own stripe, collect the
  // corpses, purge them after the guard drops (purge takes guards of its
  // own).  Replacements are always live, so one pass finds every corpse.
  std::vector<NodeId> corpses;
  {
    NodeLockTable::Guard g(locks_, n.id());
    for (unsigned l = 0; l < digits; ++l) {
      for (unsigned j = 0; j < radix; ++j) {
        for (const auto& e : n.table().at(l, j).entries()) {
          if (e.id == n.id()) continue;
          const TapestryNode* other = reg_.find(e.id);
          TAP_ASSERT(other != nullptr);
          (void)router_.transport().deliver(make_message(
              MessageKind::kHeartbeatProbe, n.id(), e.id, e.id));
          reg_.acct(trace, n, *other, 1);  // heartbeat probe
          if (!other->alive) {
            corpses.push_back(e.id);
          } else {
            Message ack = make_message(MessageKind::kHeartbeatAck, e.id,
                                       n.id(), n.id());
            ack.flag = true;  // alive
            (void)router_.transport().deliver(ack);
          }
        }
      }
    }
  }
  std::sort(corpses.begin(), corpses.end());
  corpses.erase(std::unique(corpses.begin(), corpses.end()), corpses.end());
  for (const NodeId& dead : corpses) {
    purge_holder(n, dead, trace);
    changed = true;
  }

  // Fill pass: every empty slot hunts a replacement.  The prefix-range
  // fallback makes the search complete, so one pass fills every slot that
  // has a live candidate at all — Property 1 at quiescence by
  // construction, independent of thread interleaving.
  for (unsigned l = 0; l < digits; ++l) {
    for (unsigned j = 0; j < radix; ++j) {
      bool empty;
      {
        NodeLockTable::Guard g(locks_, n.id());
        empty = n.table().slot_empty(l, j);
      }
      if (!empty) continue;
      if (auto rep = find_replacement(n, l, j, trace); rep.has_value()) {
        striped::link(reg_, locks_, n, l, reg_.live(*rep));
        changed = true;
      }
    }
  }
  return changed;
}

void ThreadedRepairDriver::run_sweep(std::size_t workers, Trace* trace) {
  index_live_nodes();
  const std::vector<TapestryNode*> nodes = reg_.nodes_snapshot();
  // The complete replacement search converges in one pass; the loop (with
  // the serial sweep's round cap) is belt and braces for interleavings
  // where a purge empties a slot after the fill pass walked it.
  for (int round = 0; round < 4; ++round) {
    std::atomic<bool> changed{false};
    std::vector<Trace> traces(nodes.size());
    parallel_for(
        nodes.size(),
        [&](std::size_t i) {
          if (!nodes[i]->alive) return;
          if (sweep_node(*nodes[i], &traces[i]))
            changed.store(true, std::memory_order_relaxed);
        },
        workers);
    if (trace != nullptr)
      for (const Trace& t : traces) trace->absorb(t);
    if (!changed.load()) break;
  }
}

void ThreadedRepairDriver::finish_wave(std::size_t workers, Trace* trace,
                                       std::vector<Session>* sessions) {
  // Merge per-victim traces in request order (deterministic counters up to
  // scheduling-dependent repair overlap; invariants never depend on them).
  if (sessions != nullptr && trace != nullptr)
    for (const Session& s : *sessions) trace->absorb(s.trace);
  // Quiesce Property 1 across the whole mesh, then close the one §4.2
  // window threads open that serial execution cannot (threaded_repair.h):
  // records deposited on a holder after that holder's snapshot was taken.
  run_sweep(workers, trace);
  dir_.repair_pointer_chains(trace);
}

// ---------------------------------------------------------------------
// MaintenanceEngine facade
// ---------------------------------------------------------------------

namespace {

// Wall-clock wave timing feeds a *volatile* metric: it is scrape-visible
// but excluded from deterministic snapshots (see metrics.h).
class WaveTimer {
 public:
  WaveTimer() : t0_(std::chrono::steady_clock::now()) {}
  ~WaveTimer() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    metrics::repair_wave_seconds().observe(
        std::chrono::duration<double>(dt).count());
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

void MaintenanceEngine::leave_bulk(const std::vector<NodeId>& victims,
                                   std::size_t workers, Trace* trace) {
  WaveTimer timer;
  ThreadedRepairDriver driver(reg_, router_, dir_, params_);
  driver.run_leave(victims, workers, trace);
}

void MaintenanceEngine::fail_and_repair_bulk(const std::vector<NodeId>& victims,
                                             std::size_t workers,
                                             Trace* trace) {
  WaveTimer timer;
  ThreadedRepairDriver driver(reg_, router_, dir_, params_);
  driver.run_fail(victims, workers, trace);
}

void MaintenanceEngine::heartbeat_sweep_bulk(std::size_t workers,
                                             Trace* trace) {
  WaveTimer timer;
  ThreadedRepairDriver driver(reg_, router_, dir_, params_);
  driver.run_sweep(workers, trace);
}

}  // namespace tap
