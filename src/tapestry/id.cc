#include "src/tapestry/id.h"

#include <sstream>

namespace tap {

std::string Id::to_string() const {
  if (!valid()) return "<invalid>";
  std::ostringstream os;
  static constexpr char kHex[] = "0123456789ABCDEF";
  const bool compact = spec_.digit_bits <= 4;
  for (unsigned i = 0; i < spec_.num_digits; ++i) {
    const unsigned d = digit(i);
    if (compact) {
      os << kHex[d];
    } else {
      if (i > 0) os << '.';
      os << d;
    }
  }
  return os.str();
}

Guid salted_guid(const Guid& guid, unsigned salt) {
  TAP_CHECK(guid.valid(), "salted_guid on invalid Id");
  if (salt == 0) return guid;
  const IdSpec spec = guid.spec();
  const std::uint64_t mask = spec.total_bits() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << spec.total_bits()) - 1;
  return Guid(spec, hash_combine(guid.value(), salt) & mask);
}

}  // namespace tap
