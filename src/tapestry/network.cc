// Core Network plumbing: node registry, table-link coherence, object
// publication/location (§2.2), soft state (§6.5), invariant checks.
#include "src/tapestry/network.h"

#include <algorithm>
#include <limits>

namespace tap {

Network::Network(const MetricSpace& space, TapestryParams params,
                 std::uint64_t seed)
    : space_(space), params_(params), rng_(seed) {
  TAP_CHECK(params_.id.valid(), "invalid IdSpec");
  TAP_CHECK(params_.redundancy >= 1, "redundancy must be >= 1");
  TAP_CHECK(params_.root_multiplicity >= 1, "need at least one root");
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TapestryNode* Network::find(const NodeId& id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : nodes_[it->second].get();
}

const TapestryNode* Network::find(const NodeId& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : nodes_[it->second].get();
}

TapestryNode& Network::checked(const NodeId& id) {
  TapestryNode* n = find(id);
  TAP_CHECK(n != nullptr, "unknown node " + id.to_string());
  return *n;
}

TapestryNode& Network::live(const NodeId& id) {
  TapestryNode& n = checked(id);
  TAP_CHECK(n.alive, "node " + id.to_string() + " is not alive");
  return n;
}

bool Network::is_live(const NodeId& id) const {
  const TapestryNode* n = find(id);
  return n != nullptr && n->alive;
}

bool Network::contains(const NodeId& id) const { return is_live(id); }

TapestryNode& Network::register_node(NodeId id, Location loc) {
  TAP_CHECK(id.valid() && id.spec() == params_.id,
            "node id does not match the network's IdSpec");
  TAP_CHECK(find(id) == nullptr, "duplicate node id " + id.to_string());
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  nodes_.push_back(std::make_unique<TapestryNode>(id, loc, params_));
  index_.emplace(id, nodes_.size() - 1);
  ++live_count_;
  return *nodes_.back();
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(live_count_);
  for (const auto& n : nodes_)
    if (n->alive) ids.push_back(n->id());
  return ids;
}

TapestryNode& Network::node(const NodeId& id) { return checked(id); }

const TapestryNode& Network::node(const NodeId& id) const {
  const TapestryNode* n = find(id);
  TAP_CHECK(n != nullptr, "unknown node " + id.to_string());
  return *n;
}

double Network::distance(const NodeId& a, const NodeId& b) const {
  return space_.distance(node(a).location(), node(b).location());
}

double Network::dist_nodes(const TapestryNode& a,
                           const TapestryNode& b) const {
  return space_.distance(a.location(), b.location());
}

void Network::acct(Trace* trace, const TapestryNode& a, const TapestryNode& b,
                   std::size_t msgs) const {
  if (trace == nullptr) return;
  const double d = dist_nodes(a, b);
  for (std::size_t i = 0; i < msgs; ++i) trace->hop(d);
}

NodeId Network::random_node_id(Rng& rng) const {
  return Id::random(params_.id, rng);
}

NodeId Network::fresh_node_id() {
  for (int attempt = 0; attempt < 1024; ++attempt) {
    NodeId id = Id::random(params_.id, rng_);
    if (find(id) == nullptr) return id;
  }
  TAP_CHECK(false, "identifier namespace exhausted");
}

std::size_t Network::total_table_entries() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive) n += node->table().total_entries();
  return n;
}

std::size_t Network::total_object_pointers() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive) n += node->store().size();
  return n;
}

// ---------------------------------------------------------------------
// Table maintenance: link coherence
// ---------------------------------------------------------------------

bool Network::link(TapestryNode& owner, unsigned level, TapestryNode& nbr) {
  TAP_ASSERT(!(owner.id() == nbr.id()));
  TAP_ASSERT_MSG(owner.id().matches_prefix(nbr.id(), level),
                 "neighbor does not share the slot's prefix");
  const unsigned digit = nbr.id().digit(level);
  auto res =
      owner.table().at(level, digit).consider(nbr.id(), dist_nodes(owner, nbr));
  if (res.evicted.has_value()) {
    if (TapestryNode* ev = find(*res.evicted); ev != nullptr)
      ev->table().remove_backpointer(level, owner.id());
  }
  if (res.inserted) nbr.table().add_backpointer(level, owner.id());
  return res.inserted;
}

void Network::unlink(TapestryNode& owner, unsigned level, NodeId nbr) {
  if (nbr == owner.id()) return;  // never drop self-entries
  if (owner.table().at(level, nbr.digit(level)).remove(nbr)) {
    if (TapestryNode* n = find(nbr); n != nullptr)
      n->table().remove_backpointer(level, owner.id());
  }
}

bool Network::add_to_table_if_closer(TapestryNode& host, TapestryNode& cand) {
  if (host.id() == cand.id()) return false;
  const unsigned gcp = host.id().common_prefix_len(cand.id());
  bool any = false;
  for (unsigned l = 0; l <= gcp && l < params_.id.num_digits; ++l)
    any = link(host, l, cand) || any;
  return any;
}

// ---------------------------------------------------------------------
// Objects: publish / locate / unpublish (§2.2) and soft state (§6.5)
// ---------------------------------------------------------------------

void Network::publish_one(TapestryNode& server, const Guid& salted,
                          Trace* trace) {
  const double expires = events_.now() + params_.pointer_ttl;
  RouteState state;
  TapestryNode* cur = &server;
  std::optional<NodeId> last_hop;  // none at the server itself
  for (;;) {
    cur->store().upsert(salted, PointerRecord{server.id(), last_hop,
                                              state.level, state.past_hole,
                                              expires});
    auto next = route_step(*cur, salted, state, trace);
    if (!next.has_value()) break;  // cur is the root
    // §2.4 PRR variant: also deposit on the secondaries of the slot being
    // routed through ("equivalent to publishing on all the secondary
    // neighbors"); queries under the same flag probe those secondaries.
    if (params_.prr_secondary_search && state.level >= 1) {
      const unsigned slot_level = state.level - 1;
      const unsigned digit = next->digit(slot_level);
      const auto members = cur->table().at(slot_level, digit).entries();
      for (const auto& member : members) {
        if (member.id == *next || member.id == cur->id()) continue;
        TapestryNode* m = find(member.id);
        if (m == nullptr || !m->alive) continue;
        acct(trace, *cur, *m, 1);
        m->store().upsert(salted,
                          PointerRecord{server.id(), cur->id(), state.level,
                                        state.past_hole, expires});
      }
    }
    TapestryNode& nxt = live(*next);
    acct(trace, *cur, nxt);
    last_hop = cur->id();
    cur = &nxt;
  }
}

void Network::publish(NodeId server, const Guid& guid, Trace* trace) {
  TapestryNode& s = live(server);
  TAP_CHECK(guid.valid() && guid.spec() == params_.id,
            "guid does not match the network's IdSpec");
  for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
    publish_one(s, salted_guid(guid, salt), trace);
  auto& servers = registry_[guid];
  if (std::find(servers.begin(), servers.end(), server) == servers.end())
    servers.push_back(server);
}

void Network::unpublish_one(TapestryNode& server, const Guid& salted,
                            Trace* trace) {
  RouteState state;
  TapestryNode* cur = &server;
  for (;;) {
    cur->store().remove(salted, server.id());
    auto next = route_step(*cur, salted, state, trace);
    if (!next.has_value()) break;
    if (params_.prr_secondary_search && state.level >= 1) {
      // Withdraw the secondary-deposited copies symmetrically.
      const unsigned slot_level = state.level - 1;
      const unsigned digit = next->digit(slot_level);
      const auto members = cur->table().at(slot_level, digit).entries();
      for (const auto& member : members) {
        if (member.id == *next || member.id == cur->id()) continue;
        if (TapestryNode* m = find(member.id); m != nullptr) {
          acct(trace, *cur, *m, 1);
          m->store().remove(salted, server.id());
        }
      }
    }
    TapestryNode& nxt = live(*next);
    acct(trace, *cur, nxt);
    cur = &nxt;
  }
}

void Network::unpublish(NodeId server, const Guid& guid, Trace* trace) {
  TapestryNode& s = checked(server);
  for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
    unpublish_one(s, salted_guid(guid, salt), trace);
  auto it = registry_.find(guid);
  if (it != registry_.end()) {
    auto& servers = it->second;
    servers.erase(std::remove(servers.begin(), servers.end(), server),
                  servers.end());
    if (servers.empty()) registry_.erase(it);
  }
}

std::optional<PointerRecord> Network::pick_live_replica(
    TapestryNode& holder, const Guid& target,
    const TapestryNode& relative_to) {
  auto records = holder.store().find_live(target, events_.now());
  // Prefer the replica closest to the reference node (§2.2); prune
  // pointers to dead servers as we discover them (lazy soft-state decay).
  std::sort(records.begin(), records.end(),
            [&](const PointerRecord& a, const PointerRecord& b) {
              const double da = distance(relative_to.id(), a.server);
              const double db = distance(relative_to.id(), b.server);
              if (da != db) return da < db;
              return a.server < b.server;
            });
  for (const auto& rec : records) {
    if (is_live(rec.server)) return rec;
    holder.store().remove(target, rec.server);
  }
  return std::nullopt;
}

LocateResult Network::locate_attempt(TapestryNode& client, const Guid& target,
                                     Trace* trace) {
  LocateResult res;
  Trace local(false);
  Trace* t = trace != nullptr ? trace : &local;
  const std::size_t msgs0 = t->messages();
  const double lat0 = t->latency();

  auto resolve = [&](TapestryNode& holder, const PointerRecord& rec) {
    res.found = true;
    res.pointer_node = holder.id();
    res.server = rec.server;
    // Forward the query along neighbor links to the replica.
    if (!(rec.server == holder.id())) {
      RouteResult leg = route_to_root(holder.id(), rec.server, t);
      TAP_ASSERT_MSG(leg.root == rec.server,
                     "exact-id routing must terminate at the server");
    }
    res.hops = t->messages() - msgs0;
    res.latency = t->latency() - lat0;
  };

  TapestryNode* cur = &client;
  RouteState state;
  std::unordered_set<std::uint64_t> visited;  // loop guard (§4.3)
  ExcludeSet excluded;  // inserting nodes we were bounced off (Figure 10)
  for (;;) {
    // Check the current node for a pointer before routing further.
    if (auto rec = pick_live_replica(*cur, target, *cur); rec.has_value()) {
      resolve(*cur, *rec);
      return res;
    }

    if (!visited.insert(cur->id().value()).second) break;  // loop -> miss

    const unsigned level_before = state.level;
    auto next = route_step(*cur, target, state, t,
                           excluded.empty() ? nullptr : &excluded);
    if (next.has_value()) {
      // §2.4 PRR variant: before taking the hop, probe the *secondary*
      // members of the slot being routed through for pointers (the
      // primary is about to be visited anyway).
      if (params_.prr_secondary_search) {
        TAP_ASSERT(state.level >= 1);
        const unsigned slot_level =
            state.level - 1 >= level_before ? state.level - 1 : level_before;
        const unsigned digit = next->digit(slot_level);
        // Copy: probing may prune dead members.
        const auto members = cur->table().at(slot_level, digit).entries();
        for (const auto& member : members) {
          if (member.id == *next || member.id == cur->id()) continue;
          TapestryNode* m = find(member.id);
          if (m == nullptr || !m->alive) continue;
          acct(t, *cur, *m, 2);  // probe round trip
          if (auto rec = pick_live_replica(*m, target, *cur);
              rec.has_value()) {
            resolve(*m, *rec);
            return res;
          }
        }
      }
      TapestryNode& nxt = live(*next);
      acct(t, *cur, nxt);
      cur = &nxt;
      continue;
    }

    // cur is the root and has no pointer.  If cur is still inserting, the
    // pointer may not have been transferred yet: send the request back out
    // at the hole level to the surrogate, which routes it as if the new
    // node had not yet entered the network (Figure 10).
    if (cur->inserting && cur->psurrogate.has_value() &&
        is_live(*cur->psurrogate)) {
      excluded.insert(cur->id().value());
      TapestryNode& sur = live(*cur->psurrogate);
      acct(t, *cur, sur);
      // Resume at the level of the hole the inserting node fills.  The
      // re-route may legally revisit earlier nodes; termination is
      // guaranteed because each bounce permanently excludes one more
      // inserting node.
      state.level = cur->id().common_prefix_len(sur.id());
      visited.clear();
      cur = &sur;
      continue;
    }
    break;  // definitive miss
  }

  res.hops = t->messages() - msgs0;
  res.latency = t->latency() - lat0;
  return res;
}

LocateResult Network::locate(NodeId client, const Guid& guid, Trace* trace) {
  TapestryNode& c = live(client);
  TAP_CHECK(guid.valid() && guid.spec() == params_.id,
            "guid does not match the network's IdSpec");
  // "At the beginning of the query, we select a root randomly from R_psi."
  const unsigned first = params_.root_multiplicity == 1
                             ? 0
                             : static_cast<unsigned>(
                                   rng_.next_u64(params_.root_multiplicity));
  // Observation 1: when enabled, a miss retries the remaining independent
  // root names, accumulating cost; the first hit wins.
  const unsigned attempts =
      params_.retry_all_roots ? params_.root_multiplicity : 1;
  Trace local(false);
  Trace* t = trace != nullptr ? trace : &local;
  LocateResult res;
  double spent_latency = 0.0;
  std::size_t spent_hops = 0;
  for (unsigned a = 0; a < attempts; ++a) {
    const unsigned salt = (first + a) % params_.root_multiplicity;
    res = locate_attempt(c, salted_guid(guid, salt), t);
    if (res.found) {
      res.hops += spent_hops;
      res.latency += spent_latency;
      return res;
    }
    spent_hops += res.hops;
    spent_latency += res.latency;
  }
  res.hops = spent_hops;
  res.latency = spent_latency;
  return res;
}

void Network::republish_server(NodeId server, Trace* trace) {
  if (!is_live(server)) return;
  for (const auto& [guid, servers] : registry_) {
    if (std::find(servers.begin(), servers.end(), server) != servers.end()) {
      TapestryNode& s = live(server);
      for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
        publish_one(s, salted_guid(guid, salt), trace);
    }
  }
}

void Network::republish_all(Trace* trace) {
  for (const auto& [guid, servers] : registry_) {
    for (const NodeId& server : servers) {
      if (!is_live(server)) continue;
      TapestryNode& s = live(server);
      for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
        publish_one(s, salted_guid(guid, salt), trace);
    }
  }
}

void Network::expire_pointers() {
  const double now = events_.now();
  for (const auto& n : nodes_)
    if (n->alive) n->store().remove_expired(now);
}

// ---------------------------------------------------------------------
// Ground truth / oracle accessors
// ---------------------------------------------------------------------

std::vector<NodeId> Network::servers_of(const Guid& guid) const {
  std::vector<NodeId> out;
  auto it = registry_.find(guid);
  if (it == registry_.end()) return out;
  for (const NodeId& s : it->second)
    if (is_live(s)) out.push_back(s);
  return out;
}

std::vector<std::pair<Guid, NodeId>> Network::published() const {
  std::vector<std::pair<Guid, NodeId>> out;
  for (const auto& [guid, servers] : registry_)
    for (const NodeId& s : servers) out.emplace_back(guid, s);
  return out;
}

double Network::distance_to_nearest_replica(const NodeId& client,
                                            const Guid& guid) const {
  double best = std::numeric_limits<double>::infinity();
  auto it = registry_.find(guid);
  if (it == registry_.end()) return best;
  for (const NodeId& s : it->second)
    if (is_live(s)) best = std::min(best, distance(client, s));
  return best;
}

// ---------------------------------------------------------------------
// Invariant checks
// ---------------------------------------------------------------------

void Network::check_property1() const {
  // Existing (prefix, digit) combinations among live nodes, keyed by
  // (len, prefix value).
  const unsigned digits = params_.id.num_digits;
  std::vector<std::unordered_set<std::uint64_t>> exists(digits + 1);
  for (const auto& n : nodes_) {
    if (!n->alive) continue;
    for (unsigned len = 1; len <= digits; ++len)
      exists[len].insert(n->id().prefix_value(len));
  }
  for (const auto& n : nodes_) {
    if (!n->alive) continue;
    for (unsigned l = 0; l < digits; ++l) {
      for (unsigned j = 0; j < params_.id.radix(); ++j) {
        const auto& set = n->table().at(l, j);
        bool has_live = false;
        for (const auto& e : set.entries())
          if (is_live(e.id)) has_live = true;
        if (has_live) continue;
        const std::uint64_t want =
            (n->id().prefix_value(l) << params_.id.digit_bits) | j;
        TAP_CHECK(exists[l + 1].find(want) == exists[l + 1].end(),
                  "Property 1 violated: node " + n->id().to_string() +
                      " has a hole at level " + std::to_string(l) +
                      " digit " + std::to_string(j) +
                      " although a matching live node exists");
      }
    }
  }
}

double Network::property2_quality() const {
  const unsigned digits = params_.id.num_digits;
  const unsigned radix = params_.id.radix();
  // Bucket live nodes by (len, prefix value) for candidate enumeration.
  std::unordered_map<std::uint64_t, std::vector<const TapestryNode*>> buckets;
  auto key = [&](unsigned len, std::uint64_t prefix) {
    return (static_cast<std::uint64_t>(len) << 56) | prefix;
  };
  for (const auto& n : nodes_) {
    if (!n->alive) continue;
    for (unsigned len = 1; len <= digits; ++len)
      buckets[key(len, n->id().prefix_value(len))].push_back(n.get());
  }
  std::size_t slots = 0, optimal = 0;
  for (const auto& n : nodes_) {
    if (!n->alive) continue;
    for (unsigned l = 0; l < digits; ++l) {
      for (unsigned j = 0; j < radix; ++j) {
        if (j == n->id().digit(l)) continue;  // self slot: trivially optimal
        auto it = buckets.find(
            key(l + 1, (n->id().prefix_value(l) << params_.id.digit_bits) | j));
        if (it == buckets.end()) continue;  // no candidates exist
        const auto& cands = it->second;
        double best = std::numeric_limits<double>::infinity();
        for (const TapestryNode* c : cands)
          best = std::min(best, dist_nodes(*n, *c));
        ++slots;
        const auto prim = n->table().primary(l, j);
        if (prim.has_value() && is_live(*prim) &&
            dist_nodes(*n, node(*prim)) <= best + 1e-12)
          ++optimal;
      }
    }
  }
  return slots == 0 ? 1.0 : static_cast<double>(optimal) /
                                static_cast<double>(slots);
}

void Network::check_property4() {
  const double now = events_.now();
  for (const auto& [guid, servers] : registry_) {
    for (const NodeId& server : servers) {
      if (!is_live(server)) continue;
      for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt) {
        const Guid target = salted_guid(guid, salt);
        RouteState state;
        TapestryNode* cur = &live(server);
        for (;;) {
          const auto recs = cur->store().find_live(target, now);
          bool has = false;
          for (const auto& r : recs)
            if (r.server == server) has = true;
          TAP_CHECK(has, "Property 4 violated: node " + cur->id().to_string() +
                             " on the publish path of " + target.to_string() +
                             " (server " + server.to_string() +
                             ") lacks the pointer");
          auto next = route_step(*cur, target, state, nullptr);
          if (!next.has_value()) break;
          cur = &live(*next);
        }
      }
    }
  }
}

void Network::check_backpointer_symmetry() const {
  const unsigned digits = params_.id.num_digits;
  for (const auto& n : nodes_) {
    if (!n->alive) continue;
    for (unsigned l = 0; l < digits; ++l) {
      for (unsigned j = 0; j < params_.id.radix(); ++j) {
        for (const auto& e : n->table().at(l, j).entries()) {
          if (e.id == n->id()) continue;
          const TapestryNode* other = find(e.id);
          TAP_CHECK(other != nullptr, "table entry references unknown node");
          TAP_CHECK(other->table().backpointers(l).count(n->id()) == 1,
                    "missing backpointer: " + e.id.to_string() +
                        " lacks backpointer to " + n->id().to_string() +
                        " at level " + std::to_string(l));
        }
      }
      // Converse: every backpointer corresponds to a forward link.
      for (const NodeId& holder : n->table().backpointers(l)) {
        const TapestryNode* h = find(holder);
        TAP_CHECK(h != nullptr, "backpointer references unknown node");
        TAP_CHECK(h->table().at(l, n->id().digit(l)).contains(n->id()),
                  "stale backpointer: " + holder.to_string() +
                      " does not actually point to " + n->id().to_string() +
                      " at level " + std::to_string(l));
      }
    }
  }
}

}  // namespace tap
