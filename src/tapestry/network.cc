// Facade wiring plus the global invariant checks (Properties 1 and 2,
// backpointer symmetry) that read every table at once — oracle views no
// single subsystem owns.
#include "src/tapestry/network.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace tap {

Network::Network(const MetricSpace& space, TapestryParams params,
                 std::uint64_t seed)
    : space_(space),
      params_(params),
      rng_(seed),
      transport_(make_transport(params_)),
      registry_(space_, params_, rng_),
      router_(registry_, params_),
      directory_(registry_, router_, params_, events_, rng_),
      maintenance_(registry_, router_, directory_, params_, events_, rng_) {
  TAP_CHECK(params_.id.valid(), "invalid IdSpec");
  TAP_CHECK(params_.redundancy >= 1, "redundancy must be >= 1");
  TAP_CHECK(params_.root_multiplicity >= 1, "need at least one root");
  router_.bind_repair(&maintenance_);
  router_.bind_transport(transport_.get());
  directory_.bind_transport(transport_.get());
  maintenance_.bind_transport(transport_.get());
}

NodeId Network::insert_static(Location loc, std::optional<NodeId> id) {
  NodeId nid = id.has_value() ? *id : registry_.fresh_node_id();
  registry_.register_node(nid, loc);
  return nid;
}

std::vector<NodeId> Network::insert_static_bulk(
    const std::vector<Location>& locs, std::size_t workers) {
  // Draw ids serially so the sequence equals n calls to insert_static with
  // the same rng state; uniqueness within the batch is enforced here (the
  // registry only sees already-registered ids via fresh_node_id).
  std::vector<std::pair<NodeId, Location>> batch;
  batch.reserve(locs.size());
  std::unordered_set<std::uint64_t> drawn;
  drawn.reserve(locs.size());
  for (const Location loc : locs) {
    NodeId id = registry_.fresh_node_id();
    while (!drawn.insert(id.value()).second) id = registry_.fresh_node_id();
    batch.emplace_back(id, loc);
  }
  registry_.register_bulk(batch, workers);
  std::vector<NodeId> ids;
  ids.reserve(batch.size());
  for (const auto& [id, loc] : batch) ids.push_back(id);
  return ids;
}

// ---------------------------------------------------------------------
// Invariant checks
// ---------------------------------------------------------------------

void Network::check_property1() const {
  // Existing (prefix, digit) combinations among live nodes, keyed by
  // (len, prefix value).
  const unsigned digits = params_.id.num_digits;
  std::vector<std::unordered_set<std::uint64_t>> exists(digits + 1);
  for (const auto& n : registry_.nodes()) {
    if (!n->alive) continue;
    for (unsigned len = 1; len <= digits; ++len)
      exists[len].insert(n->id().prefix_value(len));
  }
  for (const auto& n : registry_.nodes()) {
    if (!n->alive) continue;
    for (unsigned l = 0; l < digits; ++l) {
      for (unsigned j = 0; j < params_.id.radix(); ++j) {
        const auto& set = n->table().at(l, j);
        bool has_live = false;
        for (const auto& e : set.entries())
          if (registry_.is_live(e.id)) has_live = true;
        if (has_live) continue;
        const std::uint64_t want =
            (n->id().prefix_value(l) << params_.id.digit_bits) | j;
        TAP_CHECK(exists[l + 1].find(want) == exists[l + 1].end(),
                  "Property 1 violated: node " + n->id().to_string() +
                      " has a hole at level " + std::to_string(l) +
                      " digit " + std::to_string(j) +
                      " although a matching live node exists");
      }
    }
  }
}

double Network::property2_quality() const {
  const unsigned digits = params_.id.num_digits;
  const unsigned radix = params_.id.radix();
  // Bucket live nodes by (len, prefix value) for candidate enumeration.
  std::unordered_map<std::uint64_t, std::vector<const TapestryNode*>> buckets;
  auto key = [&](unsigned len, std::uint64_t prefix) {
    return (static_cast<std::uint64_t>(len) << 56) | prefix;
  };
  for (const auto& n : registry_.nodes()) {
    if (!n->alive) continue;
    for (unsigned len = 1; len <= digits; ++len)
      buckets[key(len, n->id().prefix_value(len))].push_back(n.get());
  }
  std::size_t slots = 0, optimal = 0;
  for (const auto& n : registry_.nodes()) {
    if (!n->alive) continue;
    for (unsigned l = 0; l < digits; ++l) {
      for (unsigned j = 0; j < radix; ++j) {
        if (j == n->id().digit(l)) continue;  // self slot: trivially optimal
        auto it = buckets.find(
            key(l + 1, (n->id().prefix_value(l) << params_.id.digit_bits) | j));
        if (it == buckets.end()) continue;  // no candidates exist
        const auto& cands = it->second;
        double best = std::numeric_limits<double>::infinity();
        for (const TapestryNode* c : cands)
          best = std::min(best, registry_.dist(*n, *c));
        ++slots;
        const auto prim = n->table().primary(l, j);
        if (prim.has_value() && registry_.is_live(*prim) &&
            registry_.dist(*n, registry_.checked(*prim)) <= best + 1e-12)
          ++optimal;
      }
    }
  }
  return slots == 0 ? 1.0 : static_cast<double>(optimal) /
                                static_cast<double>(slots);
}

void Network::check_backpointer_symmetry() const {
  const unsigned digits = params_.id.num_digits;
  for (const auto& n : registry_.nodes()) {
    if (!n->alive) continue;
    for (unsigned l = 0; l < digits; ++l) {
      for (unsigned j = 0; j < params_.id.radix(); ++j) {
        for (const auto& e : n->table().at(l, j).entries()) {
          if (e.id == n->id()) continue;
          const TapestryNode* other = registry_.find(e.id);
          TAP_CHECK(other != nullptr, "table entry references unknown node");
          TAP_CHECK(other->table().backpointers(l).count(n->id()) == 1,
                    "missing backpointer: " + e.id.to_string() +
                        " lacks backpointer to " + n->id().to_string() +
                        " at level " + std::to_string(l));
        }
      }
      // Converse: every backpointer corresponds to a forward link.
      for (const NodeId& holder : n->table().backpointers(l)) {
        const TapestryNode* h = registry_.find(holder);
        TAP_CHECK(h != nullptr, "backpointer references unknown node");
        TAP_CHECK(h->table().at(l, n->id().digit(l)).contains(n->id()),
                  "stale backpointer: " + holder.to_string() +
                      " does not actually point to " + n->id().to_string() +
                      " at level " + std::to_string(l));
      }
    }
  }
}

}  // namespace tap
