// NodeRegistry: node storage and identity for the overlay simulator.
//
// Owns every TapestryNode ever registered (dead nodes stay allocated as
// tombstones so lazy repair can discover them), the id -> node index, the
// live count, and the metric-space distance/cost-accounting helpers every
// other subsystem routes through.  The registry knows nothing about the
// distributed algorithms — it is the "hardware" the Router, ObjectDirectory
// and MaintenanceEngine run on.
//
// Concurrency model.  The id index is sharded by id prefix (the top bits
// of the identifier, i.e. the leading digit(s)); each shard publishes an
// immutable open-addressing table through an atomic pointer.  Readers —
// find / checked / live / is_live, which sit under every routing hot path —
// take no locks: they acquire-load the shard's current table and probe it.
// Writers (register_node / register_bulk) serialize per shard on a small
// mutex, insert in place where a slot is free (key store before a release
// store of the node pointer makes half-written entries invisible), and
// publish a grown copy when the load factor crosses its bound; superseded
// tables are retired, not freed, so a reader holding an old snapshot stays
// safe for the registry's lifetime (total retired memory is bounded by the
// doubling growth).  Deletions never happen — dead nodes are tombstones by
// design — which is what makes the scheme this simple.
//
// The insertion-order nodes() vector is append-only under its own mutex;
// iterating it concurrently with registration is the one operation that
// still requires quiescence (every current caller is a whole-network
// oracle/invariant pass that owns the simulator at that point).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"
#include "src/sim/trace.h"
#include "src/tapestry/node.h"
#include "src/tapestry/node_locks.h"
#include "src/tapestry/params.h"

namespace tap {

class NodeRegistry {
 public:
  /// Index shards; ids map to shards by their top kShardBits bits.
  static constexpr unsigned kShardBits = 4;
  static constexpr unsigned kShardCount = 1u << kShardBits;

  /// `params` and `rng` must outlive the registry (both live on Network).
  NodeRegistry(const MetricSpace& space, const TapestryParams& params,
               Rng& rng);
  ~NodeRegistry();

  NodeRegistry(const NodeRegistry&) = delete;
  NodeRegistry& operator=(const NodeRegistry&) = delete;

  // --- lookup (lock-free snapshot reads) ---
  [[nodiscard]] TapestryNode* find(const NodeId& id);
  [[nodiscard]] const TapestryNode* find(const NodeId& id) const;
  /// Node that must exist (alive or tombstone); throws CheckError otherwise.
  [[nodiscard]] TapestryNode& checked(const NodeId& id);
  [[nodiscard]] const TapestryNode& checked(const NodeId& id) const;
  /// Node that must exist and be alive; throws CheckError otherwise.
  [[nodiscard]] TapestryNode& live(const NodeId& id);
  [[nodiscard]] bool is_live(const NodeId& id) const;

  // --- membership bookkeeping ---
  /// Registers one node.  The optional insertion flags are set on the node
  /// *before* it is published to the lock-free index, so a concurrent
  /// reader can never observe a mid-insertion node with `inserting` still
  /// false (the §4.4 core-start rule depends on that flag being visible
  /// with the node).
  TapestryNode& register_node(NodeId id, Location loc, bool inserting = false,
                              std::optional<NodeId> psurrogate = std::nullopt);
  /// Registers a batch of nodes — ids must be fresh and unique — with node
  /// construction (the dominant cost: levels * radix neighbor sets each)
  /// fanned out across `workers` threads.  Insertion order and the final
  /// index are identical for every worker count; concurrent lock-free
  /// readers may observe any prefix of the batch while it lands.
  void register_bulk(const std::vector<std::pair<NodeId, Location>>& batch,
                     std::size_t workers = 0);
  /// Marks an alive node dead (tombstone); the caller owns protocol duties.
  void mark_dead(TapestryNode& node);

  [[nodiscard]] std::size_t live_count() const noexcept {
    return live_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<NodeId> node_ids() const;  ///< live nodes

  /// Every node ever registered, tombstones included, in insertion order.
  /// The container is registry-owned; callers may mutate the *nodes* (the
  /// simulator's algorithms do) but never the vector itself.  Iteration
  /// requires quiescence with respect to registration.
  [[nodiscard]] const std::vector<std::unique_ptr<TapestryNode>>& nodes()
      const noexcept {
    return nodes_;
  }

  /// Stable pointers to every node registered so far, copied under the
  /// append mutex — the safe way to enumerate nodes while registration may
  /// be running on other threads (a thread-parallel join wave).  The
  /// snapshot observes some prefix of the concurrent registrations; node
  /// pointers stay valid for the registry's lifetime.
  [[nodiscard]] std::vector<TapestryNode*> nodes_snapshot() const;

  /// Striped per-node mutexes guarding routing-table and insertion-flag
  /// access on the thread-parallel join path (see node_locks.h).  Serial
  /// (quiescent) callers never touch them.
  [[nodiscard]] const NodeLockTable& node_locks() const noexcept {
    return node_locks_;
  }

  /// Shard an id belongs to (by id prefix — its most significant bits).
  [[nodiscard]] unsigned shard_of(const NodeId& id) const noexcept {
    return static_cast<unsigned>(id.value() >> shard_shift_) &
           (kShardCount - 1);
  }

  // --- network partition model (fault-injection scenarios) ---
  /// Splits the overlay in two: nodes whose ids are in `side_b` can only
  /// exchange messages with other side-B nodes; everyone else forms side
  /// A.  The routing/locate layers skip unreachable-but-live peers
  /// *without purging them* — a partition is not a death, and tables must
  /// survive it intact so healing is instant at the membership layer.
  /// Ground-truth liveness (is_live, heartbeat sweeps, driver
  /// bookkeeping) is deliberately unaffected: the control plane of the
  /// simulation sees through the cut; only protocol traffic is blocked.
  /// Transitions require quiescence with respect to routing (the
  /// event-driven scenarios satisfy this trivially).
  void set_partition(const std::vector<NodeId>& side_b);
  void clear_partition();
  [[nodiscard]] bool partition_active() const noexcept {
    return partition_active_.load(std::memory_order_acquire);
  }
  /// May `a` and `b` exchange messages under the current partition?
  /// Always true when no partition is active.
  [[nodiscard]] bool reachable(const NodeId& a, const NodeId& b) const {
    if (!partition_active()) return true;
    return (partition_side_b_.count(a.value()) != 0) ==
           (partition_side_b_.count(b.value()) != 0);
  }

  // --- distances and cost accounting ---
  [[nodiscard]] double distance(const NodeId& a, const NodeId& b) const;
  [[nodiscard]] double dist(const TapestryNode& a,
                            const TapestryNode& b) const;
  /// Books `msgs` messages of distance dist(a, b) against `trace` (no-op on
  /// nullptr) — the single choke point for inter-node cost accounting.
  void acct(Trace* trace, const TapestryNode& a, const TapestryNode& b,
            std::size_t msgs = 1) const;

  // --- identifiers ---
  [[nodiscard]] NodeId random_node_id(Rng& rng) const;
  [[nodiscard]] NodeId fresh_node_id();  ///< random, unused id

  // --- aggregate accounting (Table 1 "space") ---
  [[nodiscard]] std::size_t total_table_entries() const;
  [[nodiscard]] std::size_t total_object_pointers() const;

  [[nodiscard]] const MetricSpace& space() const noexcept { return space_; }
  [[nodiscard]] const TapestryParams& params() const noexcept {
    return params_;
  }

 private:
  // One entry of a shard's open-addressing table.  `node` is the publish
  // gate: a reader that acquire-loads a non-null node pointer is guaranteed
  // to see the matching key (stored before the release).
  struct IndexSlot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<TapestryNode*> node{nullptr};
  };
  struct IndexTable {
    explicit IndexTable(std::size_t capacity_pow2)
        : slots(capacity_pow2), mask(capacity_pow2 - 1) {}
    std::vector<IndexSlot> slots;
    std::size_t mask;
    std::size_t used = 0;  // writer-side, guarded by the shard mutex
  };
  struct Shard {
    std::mutex mu;  // serializes writers; readers never take it
    std::atomic<IndexTable*> table{nullptr};
    // Every table ever published, current one last; superseded snapshots
    // are retired here (not freed) so readers holding them stay safe.
    std::vector<std::unique_ptr<IndexTable>> tables;
  };

  [[nodiscard]] TapestryNode* lookup(std::uint64_t key) const;
  /// Inserts under the shard's writer mutex, growing + republishing the
  /// table when the load factor crosses 70%.
  void shard_insert(Shard& shard, std::uint64_t key, TapestryNode* node);
  void validate_registration(const NodeId& id, Location loc) const;

  const MetricSpace& space_;
  const TapestryParams& params_;
  Rng& rng_;

  unsigned shard_shift_;  // id.value() >> shard_shift_ = shard index bits
  std::array<Shard, kShardCount> shards_;

  mutable std::mutex nodes_mu_;  // guards appends to nodes_
  std::vector<std::unique_ptr<TapestryNode>> nodes_;
  std::atomic<std::size_t> live_count_{0};
  NodeLockTable node_locks_;

  std::atomic<bool> partition_active_{false};
  std::unordered_set<std::uint64_t> partition_side_b_;
};

}  // namespace tap
