// NodeRegistry: node storage and identity for the overlay simulator.
//
// Owns every TapestryNode ever registered (dead nodes stay allocated as
// tombstones so lazy repair can discover them), the id -> node index, the
// live count, and the metric-space distance/cost-accounting helpers every
// other subsystem routes through.  The registry knows nothing about the
// distributed algorithms — it is the "hardware" the Router, ObjectDirectory
// and MaintenanceEngine run on.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"
#include "src/sim/trace.h"
#include "src/tapestry/node.h"
#include "src/tapestry/params.h"

namespace tap {

class NodeRegistry {
 public:
  /// `params` and `rng` must outlive the registry (both live on Network).
  NodeRegistry(const MetricSpace& space, const TapestryParams& params,
               Rng& rng);

  NodeRegistry(const NodeRegistry&) = delete;
  NodeRegistry& operator=(const NodeRegistry&) = delete;

  // --- lookup ---
  [[nodiscard]] TapestryNode* find(const NodeId& id);
  [[nodiscard]] const TapestryNode* find(const NodeId& id) const;
  /// Node that must exist (alive or tombstone); throws CheckError otherwise.
  [[nodiscard]] TapestryNode& checked(const NodeId& id);
  [[nodiscard]] const TapestryNode& checked(const NodeId& id) const;
  /// Node that must exist and be alive; throws CheckError otherwise.
  [[nodiscard]] TapestryNode& live(const NodeId& id);
  [[nodiscard]] bool is_live(const NodeId& id) const;

  // --- membership bookkeeping ---
  TapestryNode& register_node(NodeId id, Location loc);
  /// Marks an alive node dead (tombstone); the caller owns protocol duties.
  void mark_dead(TapestryNode& node);

  [[nodiscard]] std::size_t live_count() const noexcept { return live_count_; }
  [[nodiscard]] std::vector<NodeId> node_ids() const;  ///< live nodes

  /// Every node ever registered, tombstones included, in insertion order.
  /// The container is registry-owned; callers may mutate the *nodes* (the
  /// simulator's algorithms do) but never the vector itself.
  [[nodiscard]] const std::vector<std::unique_ptr<TapestryNode>>& nodes()
      const noexcept {
    return nodes_;
  }

  // --- distances and cost accounting ---
  [[nodiscard]] double distance(const NodeId& a, const NodeId& b) const;
  [[nodiscard]] double dist(const TapestryNode& a,
                            const TapestryNode& b) const;
  /// Books `msgs` messages of distance dist(a, b) against `trace` (no-op on
  /// nullptr) — the single choke point for inter-node cost accounting.
  void acct(Trace* trace, const TapestryNode& a, const TapestryNode& b,
            std::size_t msgs = 1) const;

  // --- identifiers ---
  [[nodiscard]] NodeId random_node_id(Rng& rng) const;
  [[nodiscard]] NodeId fresh_node_id();  ///< random, unused id

  // --- aggregate accounting (Table 1 "space") ---
  [[nodiscard]] std::size_t total_table_entries() const;
  [[nodiscard]] std::size_t total_object_pointers() const;

  [[nodiscard]] const MetricSpace& space() const noexcept { return space_; }
  [[nodiscard]] const TapestryParams& params() const noexcept {
    return params_;
  }

 private:
  const MetricSpace& space_;
  const TapestryParams& params_;
  Rng& rng_;

  std::vector<std::unique_ptr<TapestryNode>> nodes_;
  std::unordered_map<Id, std::size_t> index_;  // id -> nodes_ index
  std::size_t live_count_ = 0;
};

}  // namespace tap
