#include "src/tapestry/replicated_store.h"

#include <algorithm>
#include <limits>

#include "src/common/assert.h"
#include "src/sim/metrics.h"
#include "src/tapestry/registry.h"

namespace tap {

ReplicatedStore::ReplicatedStore(std::unique_ptr<ObjectStoreBackend> inner,
                                 const char* backend_name)
    : inner_(std::move(inner)), name_(backend_name) {
  TAP_CHECK(inner_ != nullptr, "ReplicatedStore needs an inner backend");
}

std::size_t ReplicatedStore::remove_expired(double now) {
  const std::size_t primary = inner_->remove_expired(now);
  replicas_.remove_expired(now);  // mirrors are soft state too (§6.5)
  return primary;
}

StoreStats ReplicatedStore::stats() const {
  StoreStats s = inner_->stats();
  s.backend = name_;
  return s;
}

QuorumReplicator::QuorumReplicator(NodeRegistry& registry,
                                   const TapestryParams& params)
    : reg_(registry), params_(params) {
  const ReplicationParams& rp = params.replication;
  TAP_CHECK(rp.k >= 1 && rp.w >= 1 && rp.r >= 1,
            "replication k/w/r must all be at least 1");
  TAP_CHECK(rp.w <= rp.k && rp.r <= rp.k,
            "replication quorums w and r cannot exceed k");
  TAP_CHECK(rp.w + rp.r > rp.k,
            "replication needs w + r > k so reads intersect writes");
}

ReplicatedStore* QuorumReplicator::replica_store_of(const NodeId& id) {
  TapestryNode* node = reg_.find(id);
  if (node == nullptr) return nullptr;
  return dynamic_cast<ReplicatedStore*>(&node->store());
}

std::vector<NodeId>& QuorumReplicator::holder_set(const TapestryNode& root,
                                                  const Guid& target) {
  const auto it = holder_sets_.find(target);
  if (it != holder_sets_.end()) return it->second;

  // First mirror for this (salted) guid: pick the k live nodes nearest to
  // the root, excluding the root itself.  node_ids() enumerates live
  // members in insertion order, which is identical across same-seed
  // replays, and ties on distance break toward the smaller id — so the
  // chosen set is a pure function of the membership.
  struct Candidate {
    double d;
    NodeId id;
  };
  std::vector<Candidate> candidates;
  for (const NodeId& id : reg_.node_ids()) {
    if (id == root.id()) continue;
    candidates.push_back(Candidate{reg_.distance(root.id(), id), id});
  }
  const std::size_t k = params_.replication.k;
  const std::size_t take = std::min<std::size_t>(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(),
                    [](const Candidate& a, const Candidate& b) {
                      if (a.d != b.d) return a.d < b.d;
                      return a.id < b.id;
                    });
  std::vector<NodeId> holders;
  holders.reserve(take);
  for (std::size_t i = 0; i < take; ++i) holders.push_back(candidates[i].id);
  return holder_sets_.emplace(target, std::move(holders)).first->second;
}

std::size_t QuorumReplicator::mirror_publish(const TapestryNode& root,
                                             const Guid& target,
                                             const PointerRecord& rec,
                                             Trace* trace) {
  std::size_t acks = 0;
  for (const NodeId& h : holder_set(root, target)) {
    TapestryNode* node = reg_.find(h);
    if (node == nullptr || !node->alive) continue;
    if (!reg_.reachable(root.id(), h)) continue;
    ReplicatedStore* store = replica_store_of(h);
    if (store == nullptr) continue;
    Message w = make_message(MessageKind::kReplicaWrite, root.id(), h, target);
    w.server = rec.server;
    w.last_hop = rec.last_hop;
    w.level = rec.level;
    w.flag = rec.past_hole;
    w.expires_at = rec.expires_at;
    w = transport_->deliver(w);
    reg_.acct(trace, root, *node, 2);  // mirrored write + its ack
    store->replica_upsert(target, PointerRecord{w.server, w.last_hop, w.level,
                                                w.flag, w.expires_at});
    Message ack =
        make_message(MessageKind::kReplicaWriteAck, h, root.id(), target);
    ack.flag = true;
    (void)transport_->deliver(ack);
    metrics::replica_writes_total().inc();
    ++stats_.replica_writes;
    ++acks;
  }
  return acks;
}

void QuorumReplicator::mirror_remove(const TapestryNode& root,
                                     const Guid& target, const NodeId& server,
                                     Trace* trace) {
  const auto it = holder_sets_.find(target);
  if (it == holder_sets_.end()) return;
  for (const NodeId& h : it->second) {
    TapestryNode* node = reg_.find(h);
    if (node == nullptr || !node->alive) continue;
    if (!reg_.reachable(root.id(), h)) continue;
    ReplicatedStore* store = replica_store_of(h);
    if (store == nullptr) continue;
    Message m =
        make_message(MessageKind::kReplicaRemove, root.id(), h, target);
    m.server = server;
    m = transport_->deliver(m);
    reg_.acct(trace, root, *node, 2);
    store->replica_remove(target, m.server);
  }
}

std::vector<PointerRecord> QuorumReplicator::quorum_read(
    const TapestryNode& root, const Guid& target, double now, Trace* trace) {
  const auto it = holder_sets_.find(target);
  if (it == holder_sets_.end()) return {};
  metrics::replica_quorum_reads_total().inc();
  ++stats_.quorum_reads;

  // Probe holders in set order until R respond.  A live reachable holder
  // with no record is still a response — "I have nothing" is an answer,
  // and with w + r > k a fresh copy is guaranteed among any r answers
  // when the write quorum was met.
  struct Responder {
    TapestryNode* node;
    ReplicatedStore* store;
    std::vector<PointerRecord> records;
  };
  std::vector<Responder> responders;
  for (const NodeId& h : it->second) {
    if (responders.size() >= params_.replication.r) break;
    TapestryNode* node = reg_.find(h);
    if (node == nullptr || !node->alive) continue;
    if (!reg_.reachable(root.id(), h)) continue;
    ReplicatedStore* store = replica_store_of(h);
    if (store == nullptr) continue;
    (void)transport_->deliver(
        make_message(MessageKind::kReplicaRead, root.id(), h, target));
    reg_.acct(trace, root, *node, 2);  // read request + reply
    Message reply =
        make_message(MessageKind::kReplicaReadReply, h, root.id(), target);
    reply.records = store->replica_all(target);
    reply = transport_->deliver(reply);
    responders.push_back(Responder{node, store, std::move(reply.records)});
  }

  // Merge: freshest live record per server wins — consuming the copies
  // that travelled back through the wire, not the holder's store directly.
  std::map<NodeId, PointerRecord> merged;
  for (const Responder& r : responders) {
    for (const PointerRecord& rec : r.records) {
      if (rec.expires_at < now) continue;
      auto [mit, inserted] = merged.emplace(rec.server, rec);
      if (!inserted && rec.expires_at > mit->second.expires_at) {
        mit->second = rec;
      }
    }
  }
  if (merged.empty()) return {};

  // Read-repair: every responder whose copy of a merged record is stale
  // or missing gets the fresh one pushed back.
  for (const Responder& r : responders) {
    for (const auto& [server, rec] : merged) {
      const auto have = r.store->replica_find(target, server);
      if (have.has_value() && have->expires_at >= rec.expires_at) continue;
      Message w = make_message(MessageKind::kReplicaWrite, root.id(),
                               r.node->id(), target);
      w.server = rec.server;
      w.last_hop = rec.last_hop;
      w.level = rec.level;
      w.flag = rec.past_hole;
      w.expires_at = rec.expires_at;
      w = transport_->deliver(w);
      reg_.acct(trace, root, *r.node, 1);
      r.store->replica_upsert(target, PointerRecord{w.server, w.last_hop,
                                                    w.level, w.flag,
                                                    w.expires_at});
      metrics::replica_read_repairs_total().inc();
      ++stats_.read_repairs;
    }
  }

  std::vector<PointerRecord> out;
  out.reserve(merged.size());
  for (const auto& [server, rec] : merged) out.push_back(rec);
  return out;
}

void QuorumReplicator::on_node_death(const NodeId& dead) {
  for (auto& [target, holders] : holder_sets_) {
    const auto pos = std::find(holders.begin(), holders.end(), dead);
    if (pos == holders.end()) continue;

    // Replacement: the live node nearest to the dead holder (its tombstone
    // keeps the location) that is not already in the set.  Same
    // deterministic scan-and-tiebreak as the initial selection.
    bool found = false;
    NodeId best{};
    double best_d = std::numeric_limits<double>::infinity();
    for (const NodeId& id : reg_.node_ids()) {
      if (id == dead) continue;
      if (std::find(holders.begin(), holders.end(), id) != holders.end()) {
        continue;
      }
      const double d = reg_.distance(dead, id);
      if (!found || d < best_d || (d == best_d && id < best)) {
        found = true;
        best = id;
        best_d = d;
      }
    }
    if (!found) {  // overlay too small to keep k holders; shrink the set
      holders.erase(pos);
      continue;
    }
    *pos = best;

    // Copy the merged surviving records onto the replacement so the set is
    // back to full strength before the next failure.
    ReplicatedStore* dst = replica_store_of(best);
    if (dst == nullptr) continue;
    std::map<NodeId, PointerRecord> merged;
    for (const NodeId& h : holders) {
      if (h == best) continue;
      TapestryNode* node = reg_.find(h);
      if (node == nullptr || !node->alive) continue;
      ReplicatedStore* src = replica_store_of(h);
      if (src == nullptr) continue;
      for (const PointerRecord& rec : src->replica_all(target)) {
        auto [mit, inserted] = merged.emplace(rec.server, rec);
        if (!inserted && rec.expires_at > mit->second.expires_at) {
          mit->second = rec;
        }
      }
    }
    for (const auto& [server, rec] : merged) dst->replica_upsert(target, rec);
    metrics::replica_rereplications_total().inc();
    ++stats_.rereplications;
  }
}

const std::vector<NodeId>* QuorumReplicator::holders(
    const Guid& target) const {
  const auto it = holder_sets_.find(target);
  return it == holder_sets_.end() ? nullptr : &it->second;
}

}  // namespace tap
