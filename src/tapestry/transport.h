// The pluggable transport seam: every inter-node RPC in the overlay is
// funneled through Transport::deliver as a typed wire Message.
//
// The overlay's layers (Router hop delivery, ObjectDirectory pointer
// traffic, MaintenanceEngine multicast/heartbeats, QuorumReplicator
// replica RPCs) never hand each other raw references across a node
// boundary any more: the sender packs the cross-node payload into a
// Message, passes it through the overlay's Transport, and continues
// from the *returned* message's fields.  Cost accounting
// (NodeRegistry::acct) is unchanged — the transport decides only how
// the payload travels, not what it costs in the paper's model.
//
// Two implementations, selected by TapestryParams::transport /
// `--transport=` (docs/transport.md):
//
//   DirectTransport    returns the message untouched — zero
//                      serialization, byte-identical to the
//                      pre-transport build on same-seed runs;
//   LoopbackTransport  encodes the message to Datagram bytes, enqueues
//                      it on the receiving side's inbox, pops and
//                      decodes it, and returns the decoded copy — the
//                      full serialize/queue/parse path of a real wire
//                      in one process.  Because the wire format is
//                      lossless, results are identical to direct; the
//                      existing conformance/churn/scenario matrix run
//                      under TAP_TRANSPORT=loopback is the proof.
//
// A socket transport for multi-process overlays slots in behind the
// same interface without touching protocol code (ROADMAP).
//
// Thread-safety: deliver() is called concurrently from batch publish
// walks and threaded repair waves.  Stats use relaxed atomics; the
// loopback inbox is thread-local (each simulated delivery completes on
// the calling thread, as today's synchronous calls do).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "src/tapestry/params.h"
#include "src/tapestry/wire.h"

namespace tap {

/// Lifetime message/byte tallies of one transport instance, per message
/// kind.  Written with relaxed atomics on the delivery path.
struct TransportStats {
  std::atomic<std::uint64_t> messages{0};  ///< deliver() calls completed
  std::atomic<std::uint64_t> bytes{0};     ///< wire bytes encoded (0: direct)
  std::array<std::atomic<std::uint64_t>, kWireKindCount> per_kind{};

  [[nodiscard]] std::uint64_t kind_count(MessageKind k) const {
    return per_kind[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }
};

/// Abstract wire layer.  deliver() moves one message from m.src to
/// m.dst and returns the message as the receiver observed it; callers
/// must continue from the returned copy (for a serializing transport
/// that is the decoded datagram, not the original object).
class Transport {
 public:
  virtual ~Transport() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual Message deliver(const Message& m) = 0;
  [[nodiscard]] const TransportStats& stats() const { return stats_; }

 protected:
  void count(const Message& m, std::uint64_t wire_bytes);

  TransportStats stats_;
};

/// Today's calls: the message is handed to the receiver by reference,
/// untouched.  Keeps every same-seed run byte-identical to the
/// pre-transport build.
class DirectTransport final : public Transport {
 public:
  [[nodiscard]] const char* name() const override { return "direct"; }
  [[nodiscard]] Message deliver(const Message& m) override;
};

/// A real wire boundary inside one process: encode → enqueue on the
/// destination inbox → dequeue → bounds-checked decode → dispatch the
/// decoded copy.  Lossless, so semantics match DirectTransport exactly.
class LoopbackTransport final : public Transport {
 public:
  [[nodiscard]] const char* name() const override { return "loopback"; }
  [[nodiscard]] Message deliver(const Message& m) override;
};

/// Shared process-wide DirectTransport: the fallback every layer binds
/// until a Network wires its own (mirrors the bind_repair pattern, so
/// subsystems constructed standalone in tests keep working).
[[nodiscard]] Transport* default_transport();

/// Instantiates the transport selected by params.transport.
/// TAP_CHECKs on an unknown enum value, listing the valid choices.
[[nodiscard]] std::unique_ptr<Transport> make_transport(
    const TapestryParams& params);

/// "direct" / "loopback" — flag values and bench labels.
[[nodiscard]] const char* transport_kind_name(TransportKind kind);

}  // namespace tap
