// Thread-parallel §4.4 insertion (see threaded_join.h for the model and
// the locking discipline).  The protocol steps mirror join.cc /
// parallel_join.cc; what differs is only *where* synchronisation comes
// from: per-node stripe locks instead of a single thread of control.
#include "src/tapestry/threaded_join.h"

#include <algorithm>

#include "src/sim/thread_pool.h"
#include "src/tapestry/parallel_join.h"
#include "src/tapestry/striped_links.h"

namespace tap {

ThreadedJoinDriver::ThreadedJoinDriver(NodeRegistry& registry, Router& router,
                                       const TapestryParams& params, Rng& rng)
    : reg_(registry), router_(router), params_(params), rng_(rng),
      locks_(registry.node_locks()) {}

std::vector<ThreadedJoinDriver::Outcome> ThreadedJoinDriver::run(
    const std::vector<JoinRequest>& requests, std::size_t workers) {
  TAP_CHECK(!requests.empty(), "no join requests");
  TAP_CHECK(reg_.live_count() > 0,
            "join_bulk requires a non-empty network; bootstrap first");
  TAP_CHECK(params_.id.radix() <= 64,
            "threaded join watch lists require radix <= 64");

  // Serial preamble: draw ids and gateways in request order so the drawn
  // sequence — and with it the final membership — is a function of the
  // seed alone, never of the worker count or thread scheduling.
  sessions_.assign(requests.size(), Session{});
  outcomes_.assign(requests.size(), Outcome{});
  const std::vector<NodeId> live = reg_.node_ids();
  std::unordered_set<std::uint64_t> batch_ids;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const JoinRequest& req = requests[i];
    Session& s = sessions_[i];
    s.nn = req.id.has_value() ? *req.id : reg_.fresh_node_id();
    TAP_CHECK(reg_.find(s.nn) == nullptr, "node id already in use");
    TAP_CHECK(batch_ids.insert(s.nn.value()).second,
              "duplicate node id within the join batch");
    s.gateway = req.gateway.has_value()
                    ? *req.gateway
                    : live[rng_.next_u64(live.size())];
    TAP_CHECK(reg_.is_live(s.gateway), "gateway must be a live node");
    s.loc = req.loc;
  }

  parallel_for(
      requests.size(), [this](std::size_t i) { do_join(i); }, workers);

  std::vector<Outcome> out;
  out.reserve(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    TAP_CHECK(sessions_[i].done, "a threaded join never completed");
    TAP_CHECK(sessions_[i].pinned_at.empty(),
              "a threaded join left pinned pointers behind");
    out.push_back(outcomes_[i]);
  }
  return out;
}

void ThreadedJoinDriver::do_join(std::size_t index) {
  Session& s = sessions_[index];

  // 1. ACQUIREPRIMARYSURROGATE: route from the gateway toward the new id
  //    under per-hop stripes.  If the root reached is itself mid-insertion
  //    the request bounces to *its* surrogate — multicasts must start at a
  //    core node (§4.4, Figure 10).  A bounce target always was core when
  //    recorded and core status is permanent, so the chain terminates.
  const RouteResult rr =
      router_.route_to_root_guarded(s.gateway, s.nn, &s.trace);
  NodeId sur = rr.root;
  for (unsigned guard = 0;; ++guard) {
    TAP_CHECK(guard < 64, "surrogate bounce chain too long");
    std::optional<NodeId> bounce;
    {
      NodeLockTable::Guard g(locks_, sur);
      const TapestryNode& n = reg_.checked(sur);
      if (n.inserting) {
        TAP_CHECK(n.psurrogate.has_value(),
                  "inserting node without a surrogate");
        bounce = n.psurrogate;
      }
    }
    if (!bounce.has_value()) break;
    s.trace.hop(reg_.distance(sur, *bounce));
    sur = *bounce;
  }

  // 2. Register pre-marked as inserting: any thread that finds the node
  //    in the index already sees the §4.3 transient state.
  TapestryNode& nn = reg_.register_node(s.nn, s.loc, /*inserting=*/true, sur);
  TapestryNode& surrogate = reg_.checked(sur);
  const unsigned alpha = s.nn.common_prefix_len(sur);
  s.surrogate = sur;
  s.alpha = alpha;
  s.hole_digit = s.nn.digit(alpha);
  outcomes_[index].id = s.nn;
  outcomes_[index].surrogate = sur;
  outcomes_[index].alpha = alpha;

  // 3. GETPRELIMNEIGHBORTABLE: one bulk RPC for the surrogate's table.
  copy_preliminary(s, nn, surrogate, alpha);

  // 4. Watch list: every slot the new node still knows no one for — the
  //    complement of its table's row occupancy masks.
  const unsigned radix = params_.id.radix();
  const std::uint64_t full_row =
      radix == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << radix) - 1;
  WatchList watch;
  watch.missing.assign(params_.id.num_digits, 0);
  {
    NodeLockTable::Guard g(locks_, s.nn);
    for (unsigned l = 0; l < params_.id.num_digits; ++l)
      watch.missing[l] = ~nn.table().row_mask64(l) & full_row;
  }

  // 5. Acknowledged multicast (Figure 11) as a synchronous depth-first
  //    walk: the recursion returning from a subtree IS that subtree's
  //    acknowledgement, and the pin release on return is Lemma 4's
  //    unlock-on-full-ack.
  s.trace.hop(reg_.distance(s.nn, sur));
  multicast_visit(s, sur, alpha, std::move(watch));
  // Defensive parity with the event coordinator: nothing should be left.
  const std::vector<std::uint64_t> leftovers(s.pinned_at.begin(),
                                             s.pinned_at.end());
  for (const std::uint64_t v : leftovers)
    release_pin(s, NodeId(params_.id, v));

  // 6. ACQUIRENEIGHBORTABLE over the α-list (§3, Figure 4).
  acquire_neighbor_table(s, nn, alpha, s.visited);

  // 7. Insertion complete (§4.3 transient state cleared under our stripe).
  {
    NodeLockTable::Guard g(locks_, s.nn);
    nn.inserting = false;
    nn.psurrogate.reset();
  }
  outcomes_[index].messages = s.trace.messages();
  s.done = true;
}

// ---------------------------------------------------------------------
// Locked table-link coherence: thin delegations to the shared striped
// primitives (striped_links.h) so joins and repairs run one copy of the
// lock discipline.
// ---------------------------------------------------------------------

bool ThreadedJoinDriver::link(TapestryNode& owner, unsigned level,
                              TapestryNode& nbr) {
  return striped::link(reg_, locks_, owner, level, nbr);
}

void ThreadedJoinDriver::sync_backpointer(const NodeId& owner,
                                          const NodeId& member,
                                          unsigned level) {
  striped::sync_backpointer(reg_, locks_, owner, member, level);
}

bool ThreadedJoinDriver::add_to_table_if_closer(TapestryNode& host,
                                                TapestryNode& cand) {
  return striped::add_to_table_if_closer(reg_, locks_, host, cand,
                                         params_.id.num_digits);
}

// ---------------------------------------------------------------------
// Protocol steps
// ---------------------------------------------------------------------

void ThreadedJoinDriver::copy_preliminary(Session& s, TapestryNode& nn,
                                          TapestryNode& surrogate,
                                          unsigned max_level) {
  reg_.acct(&s.trace, nn, surrogate, 2);  // request + bulk reply
  // Snapshot the surrogate's rows 0..max_level under its stripe (the bulk
  // RPC reply), then link the candidates into our table pair by pair.
  std::vector<std::pair<unsigned, NodeId>> cands;
  {
    NodeLockTable::Guard g(locks_, surrogate.id());
    const unsigned digits = params_.id.num_digits;
    for (unsigned l = 0; l <= max_level && l < digits; ++l)
      for (unsigned j = 0; j < params_.id.radix(); ++j)
        for (const auto& e : surrogate.table().at(l, j).entries())
          if (!(e.id == nn.id())) cands.emplace_back(l, e.id);
  }
  for (const auto& [l, id] : cands)
    if (TapestryNode* cand = reg_.find(id); cand != nullptr && cand->alive)
      link(nn, l, *cand);
  add_to_table_if_closer(nn, surrogate);
}

void ThreadedJoinDriver::check_watch_list(Session& s, TapestryNode& at,
                                          WatchList& watch) {
  TapestryNode& nn = reg_.checked(s.nn);
  const unsigned gcp = at.id().common_prefix_len(nn.id());
  // Find fillers under this node's stripe, then report them to the
  // inserting node (one message each) outside it.
  std::vector<std::pair<unsigned, NodeId>> fillers;
  {
    NodeLockTable::Guard g(locks_, at.id());
    for (unsigned l = 0; l < watch.missing.size() && l <= gcp; ++l) {
      if (watch.missing[l] == 0) continue;
      for (unsigned j = 0; j < params_.id.radix(); ++j) {
        if ((watch.missing[l] & (std::uint64_t{1} << j)) == 0) continue;
        for (const auto& e : at.table().at(l, j).entries()) {
          if (e.id == nn.id()) continue;
          const TapestryNode* filler = reg_.find(e.id);
          if (filler == nullptr || !filler->alive) continue;
          fillers.emplace_back(l, e.id);
          watch.missing[l] &= ~(std::uint64_t{1} << j);
          break;
        }
      }
    }
  }
  for (const auto& [l, id] : fillers) {
    s.trace.hop(reg_.distance(at.id(), nn.id()));  // the report message
    if (TapestryNode* filler = reg_.find(id); filler != nullptr &&
                                              filler->alive)
      link(nn, l, *filler);
  }
}

void ThreadedJoinDriver::multicast_visit(Session& s, NodeId at_id,
                                         unsigned prefix_len,
                                         WatchList watch) {
  // Duplicate suppression: a node that already ran FUNCTION for this
  // session acknowledges immediately (the caller's return IS the ack).
  if (!s.processed.insert(at_id.value()).second) return;

  TapestryNode& at = reg_.checked(at_id);
  TapestryNode& nn = reg_.checked(s.nn);

  // Watch-list service (Figure 11 line 1, Lemma 6).
  check_watch_list(s, at, watch);

  // Pin the inserting node into the slot it fills (§4.4, Lemma 4)...
  if (s.pinned_at.insert(at_id.value()).second) {
    NodeLockTable::Guard g(locks_, at_id, s.nn);
    at.table().pin(s.alpha, s.hole_digit, s.nn, reg_.dist(at, nn));
    nn.table().add_backpointer(s.alpha, at_id);
  }
  // ...and adopt it wherever it improves this node's table (Theorem 4).
  add_to_table_if_closer(at, nn);

  // Forwarding targets: the Lemma 4/5 rule shared with the event
  // coordinator (multicast_children in parallel_join.cc), computed from
  // this node's table under its stripe.
  std::vector<MulticastChild> children;
  {
    NodeLockTable::Guard g(locks_, at_id);
    children = multicast_children(reg_, at, s.nn, prefix_len, s.alpha,
                                  s.hole_digit, s.processed);
  }

  // FUNCTION applied: record this node on the α-list exactly once.
  s.visited.push_back(at_id);

  for (const MulticastChild& c : children) {
    s.trace.hop(reg_.distance(at_id, c.id));  // forward
    multicast_visit(s, c.id, c.prefix_len, watch);
    s.trace.hop(reg_.distance(c.id, at_id));  // ack
  }

  // Subtree fully acknowledged: unlock the pinned pointer (Lemma 4).
  release_pin(s, at_id);
}

void ThreadedJoinDriver::release_pin(Session& s, const NodeId& at_id) {
  if (s.pinned_at.erase(at_id.value()) == 0) return;
  std::vector<NodeId> evicted;
  {
    NodeLockTable::Guard g(locks_, at_id);
    reg_.checked(at_id).table().unpin(s.alpha, s.hole_digit, s.nn, evicted);
  }
  for (const NodeId& ev : evicted) sync_backpointer(at_id, ev, s.alpha);
}

// ---------------------------------------------------------------------
// Nearest-neighbor table construction (§3) under the stripe discipline
// ---------------------------------------------------------------------

void ThreadedJoinDriver::build_row_from_list(TapestryNode& nn,
                                             const std::vector<NodeId>& list,
                                             unsigned level) {
  for (const NodeId& x : list) {
    if (x == nn.id()) continue;
    TapestryNode* cand = reg_.find(x);
    if (cand == nullptr || !cand->alive) continue;
    TAP_ASSERT_MSG(nn.id().common_prefix_len(x) >= level,
                   "candidate does not share the row prefix");
    link(nn, level, *cand);
  }
}

std::vector<NodeId> ThreadedJoinDriver::get_next_list(
    Session& s, TapestryNode& nn, const std::vector<NodeId>& list,
    unsigned level, std::unordered_set<std::uint64_t>& met) {
  std::vector<NodeId> candidates;
  for (const NodeId& m : list) {
    TapestryNode* member = reg_.find(m);
    if (member == nullptr || !member->alive) continue;
    reg_.acct(&s.trace, nn, *member, 2);  // GETFORWARDANDBACKPOINTERS
    {
      NodeLockTable::Guard g(locks_, m);
      for (const NodeId& x : member->table().row_members(level))
        candidates.push_back(x);
      for (const NodeId& x : member->table().backpointers(level))
        candidates.push_back(x);
    }
    candidates.push_back(m);  // the member itself matches >= level digits
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](const NodeId& x) {
                                    return x == nn.id() || !reg_.is_live(x);
                                  }),
                   candidates.end());

  // Every first-met candidate is distance-probed, and the contacted node
  // simultaneously checks whether the new node improves its own table
  // (ADDTOTABLEIFCLOSER, Theorem 4).  Pointer redistribution is deferred
  // to the soft-state republish backstop (see threaded_join.h).
  for (const NodeId& x : candidates) {
    if (met.insert(x.value()).second) {
      TapestryNode* cand = reg_.find(x);
      if (cand == nullptr || !cand->alive) continue;
      reg_.acct(&s.trace, nn, *cand, 2);  // distance probe round trip
      add_to_table_if_closer(*cand, nn);
    }
  }
  return candidates;
}

void ThreadedJoinDriver::acquire_neighbor_table(
    Session& s, TapestryNode& nn, unsigned max_level,
    std::vector<NodeId> initial_list) {
  const std::size_t k = params_.effective_k(reg_.live_count());
  std::unordered_set<std::uint64_t> met;
  for (const NodeId& x : initial_list) met.insert(x.value());

  build_row_from_list(nn, initial_list, max_level);
  std::vector<NodeId> list = trim_closest_candidates(reg_, nn, std::move(initial_list), k);

  for (unsigned level = max_level; level-- > 0;) {
    std::vector<NodeId> candidates = get_next_list(s, nn, list, level, met);
    build_row_from_list(nn, candidates, level);
    list = trim_closest_candidates(reg_, nn, std::move(candidates), k);
  }
}

// ---------------------------------------------------------------------
// MaintenanceEngine facade
// ---------------------------------------------------------------------

std::vector<NodeId> MaintenanceEngine::join_bulk(
    const std::vector<JoinRequest>& requests, std::size_t workers) {
  ThreadedJoinDriver driver(reg_, router_, params_, rng_);
  const auto outcomes = driver.run(requests, workers);
  std::vector<NodeId> ids;
  ids.reserve(outcomes.size());
  for (const auto& o : outcomes) ids.push_back(o.id);
  return ids;
}

}  // namespace tap
