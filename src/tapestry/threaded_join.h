// Thread-parallel dynamic insertion: the §4.4 acknowledged-multicast join
// protocol executed on real threads instead of the simulated-time event
// coordinator (parallel_join.h).
//
// Each worker thread drives one join's complete state machine — surrogate
// acquisition, preliminary table copy, acknowledged multicast with pinned
// pointers / watch lists / filled-hole forwarding, pin release, and the §3
// nearest-neighbor table construction — synchronously, racing every other
// in-flight join through the registry's lock-free index snapshots and the
// per-node stripe locks of NodeLockTable.  Where the event coordinator
// interleaves *messages* in simulated time, this driver interleaves *real
// memory operations*: pinned-pointer insertion, filled-hole forwarding and
// watch-list reports from concurrent joins genuinely contend on the same
// RoutingTable mutation wrappers.
//
// Locking discipline (see node_locks.h): every access to a node's routing
// table or insertion flags takes that node's stripe; mutations that mirror
// into a second node's backpointers take both stripes in address order; a
// thread never holds more than one Guard, so the scheme is deadlock-free
// by construction.  Eviction side effects on third nodes are re-validated
// against the owner's current table after the locks drop
// (sync_backpointer) — the temporally last validation for a (owner,
// member, level) triple writes the truth, so forward links and
// backpointers mirror exactly at quiescence.
//
// Determinism contract: node ids and gateways are drawn serially before
// any thread starts, so same seed + any worker count produces the same
// membership — and therefore the same Property 1 occupancy pattern — while
// message orderings (and hence which of several equally valid neighbors a
// slot holds) may differ run to run.  Convergence is asserted on
// invariants (no lost pins, all watched holes resolved, surrogate
// agreement, backpointer symmetry), not on bit-identical transcripts;
// fingerprint_occupancy (fingerprint.h) is the cross-worker-count witness.
//
// Object pointers: the threaded *join* path does not do incremental §4.2
// pointer rerouting (a joining node holds no pointers yet, and the walks
// would couple every join to every store); the §6.5 soft-state republish
// is the designated backstop for join waves.  Threaded *repair* waves are
// different — leave_bulk / fail_and_repair_bulk (threaded_repair.h) reroute
// incrementally inside the wave, per holder, under the same stripe
// discipline, and do NOT rely on the republish backstop.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/tapestry/maintenance.h"

namespace tap {

class ThreadedJoinDriver {
 public:
  struct Outcome {
    NodeId id{};
    NodeId surrogate{};        ///< core node the multicast started from
    unsigned alpha = 0;        ///< prefix length of the filled hole
    std::size_t messages = 0;  ///< total messages attributed to this join
  };

  ThreadedJoinDriver(NodeRegistry& registry, Router& router,
                     const TapestryParams& params, Rng& rng);

  /// Runs every requested insertion to completion across `workers` real
  /// threads (0 = hardware concurrency) and returns per-join outcomes in
  /// request order.  The network must be quiescent apart from the racers
  /// that synchronise through the node-lock table (guarded publish
  /// batches, store expiry sweeps).
  std::vector<Outcome> run(const std::vector<JoinRequest>& requests,
                           std::size_t workers = 0);

 private:
  struct WatchList {
    // One bitmask per level: bit j set => slot (level, j) still unknown to
    // the inserting node (single-word rows; radix <= 64 checked at run()).
    std::vector<std::uint64_t> missing;
  };

  struct Session {
    NodeId nn{};
    NodeId gateway{};
    Location loc{};
    NodeId surrogate{};
    unsigned alpha = 0;
    unsigned hole_digit = 0;
    std::unordered_set<std::uint64_t> processed;  ///< multicast recipients
    std::unordered_set<std::uint64_t> pinned_at;  ///< nodes holding our pin
    std::vector<NodeId> visited;                  ///< the α-list being built
    Trace trace{};
    bool done = false;
  };

  void do_join(std::size_t index);
  void copy_preliminary(Session& s, TapestryNode& nn, TapestryNode& surrogate,
                        unsigned max_level);
  void multicast_visit(Session& s, NodeId at_id, unsigned prefix_len,
                       WatchList watch);
  void check_watch_list(Session& s, TapestryNode& at, WatchList& watch);
  void release_pin(Session& s, const NodeId& at_id);
  bool link(TapestryNode& owner, unsigned level, TapestryNode& nbr);
  bool add_to_table_if_closer(TapestryNode& host, TapestryNode& cand);
  void sync_backpointer(const NodeId& owner, const NodeId& member,
                        unsigned level);
  void acquire_neighbor_table(Session& s, TapestryNode& nn,
                              unsigned max_level,
                              std::vector<NodeId> initial_list);
  std::vector<NodeId> get_next_list(Session& s, TapestryNode& nn,
                                    const std::vector<NodeId>& list,
                                    unsigned level,
                                    std::unordered_set<std::uint64_t>& met);
  void build_row_from_list(TapestryNode& nn, const std::vector<NodeId>& list,
                           unsigned level);

  NodeRegistry& reg_;
  Router& router_;
  const TapestryParams& params_;
  Rng& rng_;
  const NodeLockTable& locks_;
  std::vector<Session> sessions_;
  std::vector<Outcome> outcomes_;
};

}  // namespace tap
