#include "src/tapestry/registry.h"

#include <unordered_set>

#include "src/sim/metrics.h"
#include "src/sim/thread_pool.h"

namespace tap {

NodeRegistry::NodeRegistry(const MetricSpace& space,
                           const TapestryParams& params, Rng& rng)
    : space_(space), params_(params), rng_(rng) {
  const unsigned total = params_.id.valid() ? params_.id.total_bits() : 64;
  shard_shift_ = total > kShardBits ? total - kShardBits : 0;
}

NodeRegistry::~NodeRegistry() = default;

// ---------------------------------------------------------------------
// Sharded index: lock-free reads, per-shard writer mutex
// ---------------------------------------------------------------------

TapestryNode* NodeRegistry::lookup(std::uint64_t key) const {
  const Shard& sh =
      shards_[static_cast<unsigned>(key >> shard_shift_) & (kShardCount - 1)];
  const IndexTable* t = sh.table.load(std::memory_order_acquire);
  if (t == nullptr) return nullptr;
  std::size_t i = splitmix64(key) & t->mask;
  for (;;) {
    // The release store of `node` (after `key`) is the publish gate: a
    // non-null pointer implies the matching key is visible.  A null slot
    // ends the probe chain — occupied slots never empty (no deletions).
    TapestryNode* n = t->slots[i].node.load(std::memory_order_acquire);
    if (n == nullptr) return nullptr;
    if (t->slots[i].key.load(std::memory_order_relaxed) == key) return n;
    i = (i + 1) & t->mask;
  }
}

void NodeRegistry::shard_insert(Shard& shard, std::uint64_t key,
                                TapestryNode* node) {
  std::lock_guard<std::mutex> lock(shard.mu);
  IndexTable* t = shard.table.load(std::memory_order_relaxed);
  if (t == nullptr || (t->used + 1) * 10 >= (t->mask + 1) * 7) {
    // Grow (or create) and republish: readers keep probing the old
    // snapshot until the release store below makes the new one visible.
    const std::size_t cap = t == nullptr ? 16 : 2 * (t->mask + 1);
    auto grown = std::make_unique<IndexTable>(cap);
    if (t != nullptr) {
      grown->used = t->used;
      for (const IndexSlot& s : t->slots) {
        TapestryNode* n = s.node.load(std::memory_order_relaxed);
        if (n == nullptr) continue;
        const std::uint64_t k = s.key.load(std::memory_order_relaxed);
        std::size_t i = splitmix64(k) & grown->mask;
        while (grown->slots[i].node.load(std::memory_order_relaxed) !=
               nullptr)
          i = (i + 1) & grown->mask;
        grown->slots[i].key.store(k, std::memory_order_relaxed);
        grown->slots[i].node.store(n, std::memory_order_relaxed);
      }
    }
    t = grown.get();
    shard.tables.push_back(std::move(grown));
    shard.table.store(t, std::memory_order_release);
  }
  std::size_t i = splitmix64(key) & t->mask;
  while (t->slots[i].node.load(std::memory_order_relaxed) != nullptr) {
    TAP_ASSERT_MSG(t->slots[i].key.load(std::memory_order_relaxed) != key,
                   "duplicate key in shard index");
    i = (i + 1) & t->mask;
  }
  t->slots[i].key.store(key, std::memory_order_relaxed);
  t->slots[i].node.store(node, std::memory_order_release);
  ++t->used;
}

// ---------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------

TapestryNode* NodeRegistry::find(const NodeId& id) {
  return lookup(id.value());
}

const TapestryNode* NodeRegistry::find(const NodeId& id) const {
  return lookup(id.value());
}

TapestryNode& NodeRegistry::checked(const NodeId& id) {
  TapestryNode* n = find(id);
  TAP_CHECK(n != nullptr, "unknown node " + id.to_string());
  return *n;
}

const TapestryNode& NodeRegistry::checked(const NodeId& id) const {
  const TapestryNode* n = find(id);
  TAP_CHECK(n != nullptr, "unknown node " + id.to_string());
  return *n;
}

TapestryNode& NodeRegistry::live(const NodeId& id) {
  TapestryNode& n = checked(id);
  TAP_CHECK(n.alive, "node " + id.to_string() + " is not alive");
  return n;
}

bool NodeRegistry::is_live(const NodeId& id) const {
  const TapestryNode* n = find(id);
  return n != nullptr && n->alive;
}

// ---------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------

void NodeRegistry::validate_registration(const NodeId& id,
                                         Location loc) const {
  TAP_CHECK(id.valid() && id.spec() == params_.id,
            "node id does not match the network's IdSpec");
  TAP_CHECK(find(id) == nullptr, "duplicate node id " + id.to_string());
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
}

TapestryNode& NodeRegistry::register_node(NodeId id, Location loc,
                                          bool inserting,
                                          std::optional<NodeId> psurrogate) {
  validate_registration(id, loc);
  auto owned = std::make_unique<TapestryNode>(id, loc, params_);
  TapestryNode* node = owned.get();
  // Insertion flags land before the index publish: a reader that finds the
  // node sees it already marked inserting (release/acquire on the index
  // slot orders these plain writes before any concurrent read).
  node->inserting = inserting;
  node->psurrogate = psurrogate;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes_.push_back(std::move(owned));
  }
  shard_insert(shards_[shard_of(id)], id.value(), node);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return *node;
}

std::vector<TapestryNode*> NodeRegistry::nodes_snapshot() const {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  std::vector<TapestryNode*> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.get());
  return out;
}

void NodeRegistry::register_bulk(
    const std::vector<std::pair<NodeId, Location>>& batch,
    std::size_t workers) {
  if (batch.empty()) return;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(batch.size());
  for (const auto& [id, loc] : batch) {
    validate_registration(id, loc);
    TAP_CHECK(seen.insert(id.value()).second,
              "duplicate node id within the batch");
  }

  // Reserve the insertion-order slots up front so construction can fan out
  // while the order stays exactly the batch order for every worker count.
  // nodes_mu_ stays held across the fill: the workers write disjoint
  // elements of a buffer whose stability the lock guarantees — a racing
  // register_node/register_bulk must not reallocate it mid-construction.
  // The raw pointers are captured under the lock too, so the index phase
  // below never touches nodes_ itself.
  std::vector<TapestryNode*> built(batch.size());
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    const std::size_t base = nodes_.size();
    nodes_.resize(base + batch.size());
    parallel_for(
        batch.size(),
        [&](std::size_t i) {
          nodes_[base + i] = std::make_unique<TapestryNode>(
              batch[i].first, batch[i].second, params_);
          built[i] = nodes_[base + i].get();
        },
        workers);
  }

  // Index inserts grouped per shard — one writer per shard, no contention.
  std::array<std::vector<std::size_t>, kShardCount> by_shard;
  for (std::size_t i = 0; i < batch.size(); ++i)
    by_shard[shard_of(batch[i].first)].push_back(i);
  parallel_for(
      kShardCount,
      [&](std::size_t s) {
        for (const std::size_t i : by_shard[s])
          shard_insert(shards_[s], batch[i].first.value(), built[i]);
      },
      workers);
  live_count_.fetch_add(batch.size(), std::memory_order_relaxed);
}

void NodeRegistry::mark_dead(TapestryNode& node) {
  TAP_CHECK(node.alive, "node " + node.id().to_string() + " is already dead");
  node.alive = false;
  live_count_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<NodeId> NodeRegistry::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(live_count());
  for (const auto& n : nodes_)
    if (n->alive) ids.push_back(n->id());
  return ids;
}

// ---------------------------------------------------------------------
// Distances, identifiers, aggregates
// ---------------------------------------------------------------------

double NodeRegistry::distance(const NodeId& a, const NodeId& b) const {
  return space_.distance(checked(a).location(), checked(b).location());
}

double NodeRegistry::dist(const TapestryNode& a, const TapestryNode& b) const {
  return space_.distance(a.location(), b.location());
}

void NodeRegistry::acct(Trace* trace, const TapestryNode& a,
                        const TapestryNode& b, std::size_t msgs) const {
  metrics::messages_total().inc(msgs);
  if (trace == nullptr) return;
  const double d = dist(a, b);
  for (std::size_t i = 0; i < msgs; ++i) trace->hop(d);
}

void NodeRegistry::set_partition(const std::vector<NodeId>& side_b) {
  partition_side_b_.clear();
  for (const NodeId& id : side_b) partition_side_b_.insert(id.value());
  partition_active_.store(true, std::memory_order_release);
  metrics::partition_transitions_total().inc();
}

void NodeRegistry::clear_partition() {
  partition_active_.store(false, std::memory_order_release);
  metrics::partition_transitions_total().inc();
}

NodeId NodeRegistry::random_node_id(Rng& rng) const {
  return Id::random(params_.id, rng);
}

NodeId NodeRegistry::fresh_node_id() {
  for (int attempt = 0; attempt < 1024; ++attempt) {
    NodeId id = Id::random(params_.id, rng_);
    if (find(id) == nullptr) return id;
  }
  TAP_CHECK(false, "identifier namespace exhausted");
}

std::size_t NodeRegistry::total_table_entries() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive) n += node->table().total_entries();
  return n;
}

std::size_t NodeRegistry::total_object_pointers() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive) n += node->store().size();
  return n;
}

}  // namespace tap
