#include "src/tapestry/registry.h"

namespace tap {

NodeRegistry::NodeRegistry(const MetricSpace& space,
                           const TapestryParams& params, Rng& rng)
    : space_(space), params_(params), rng_(rng) {}

TapestryNode* NodeRegistry::find(const NodeId& id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : nodes_[it->second].get();
}

const TapestryNode* NodeRegistry::find(const NodeId& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : nodes_[it->second].get();
}

TapestryNode& NodeRegistry::checked(const NodeId& id) {
  TapestryNode* n = find(id);
  TAP_CHECK(n != nullptr, "unknown node " + id.to_string());
  return *n;
}

const TapestryNode& NodeRegistry::checked(const NodeId& id) const {
  const TapestryNode* n = find(id);
  TAP_CHECK(n != nullptr, "unknown node " + id.to_string());
  return *n;
}

TapestryNode& NodeRegistry::live(const NodeId& id) {
  TapestryNode& n = checked(id);
  TAP_CHECK(n.alive, "node " + id.to_string() + " is not alive");
  return n;
}

bool NodeRegistry::is_live(const NodeId& id) const {
  const TapestryNode* n = find(id);
  return n != nullptr && n->alive;
}

TapestryNode& NodeRegistry::register_node(NodeId id, Location loc) {
  TAP_CHECK(id.valid() && id.spec() == params_.id,
            "node id does not match the network's IdSpec");
  TAP_CHECK(find(id) == nullptr, "duplicate node id " + id.to_string());
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  nodes_.push_back(std::make_unique<TapestryNode>(id, loc, params_));
  index_.emplace(id, nodes_.size() - 1);
  ++live_count_;
  return *nodes_.back();
}

void NodeRegistry::mark_dead(TapestryNode& node) {
  TAP_CHECK(node.alive, "node " + node.id().to_string() + " is already dead");
  node.alive = false;
  --live_count_;
}

std::vector<NodeId> NodeRegistry::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(live_count_);
  for (const auto& n : nodes_)
    if (n->alive) ids.push_back(n->id());
  return ids;
}

double NodeRegistry::distance(const NodeId& a, const NodeId& b) const {
  return space_.distance(checked(a).location(), checked(b).location());
}

double NodeRegistry::dist(const TapestryNode& a, const TapestryNode& b) const {
  return space_.distance(a.location(), b.location());
}

void NodeRegistry::acct(Trace* trace, const TapestryNode& a,
                        const TapestryNode& b, std::size_t msgs) const {
  if (trace == nullptr) return;
  const double d = dist(a, b);
  for (std::size_t i = 0; i < msgs; ++i) trace->hop(d);
}

NodeId NodeRegistry::random_node_id(Rng& rng) const {
  return Id::random(params_.id, rng);
}

NodeId NodeRegistry::fresh_node_id() {
  for (int attempt = 0; attempt < 1024; ++attempt) {
    NodeId id = Id::random(params_.id, rng_);
    if (find(id) == nullptr) return id;
  }
  TAP_CHECK(false, "identifier namespace exhausted");
}

std::size_t NodeRegistry::total_table_entries() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive) n += node->table().total_entries();
  return n;
}

std::size_t NodeRegistry::total_object_pointers() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive) n += node->store().size();
  return n;
}

}  // namespace tap
