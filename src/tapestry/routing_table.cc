#include "src/tapestry/routing_table.h"

#include <algorithm>

namespace tap {

RoutingTable::RoutingTable(IdSpec spec, NodeId self, unsigned redundancy)
    : self_(self), levels_(spec.num_digits), radix_(spec.radix()) {
  TAP_CHECK(spec.valid(), "invalid IdSpec");
  TAP_CHECK(self.valid() && self.spec() == spec, "self id must match spec");
  TAP_CHECK(redundancy >= 1, "redundancy (R) must be at least 1");
  slots_.reserve(static_cast<std::size_t>(levels_) * radix_);
  for (std::size_t i = 0; i < static_cast<std::size_t>(levels_) * radix_; ++i)
    slots_.emplace_back(redundancy);
  backptrs_.resize(levels_);
  // The owner is a (β, own-digit) node at distance zero for every prefix β
  // of its own ID; seed those self-entries.
  for (unsigned l = 0; l < levels_; ++l)
    slots_[index(l, self.digit(l))].consider(self, 0.0);
}

NeighborSet& RoutingTable::at(unsigned level, unsigned digit) {
  return slots_[index(level, digit)];
}

const NeighborSet& RoutingTable::at(unsigned level, unsigned digit) const {
  return slots_[index(level, digit)];
}

bool RoutingTable::row_has_other(unsigned level) const {
  for (unsigned j = 0; j < radix_; ++j) {
    for (const auto& e : at(level, j).entries())
      if (!(e.id == self_)) return true;
  }
  return false;
}

std::vector<NodeId> RoutingTable::row_members(unsigned level) const {
  std::vector<NodeId> out;
  for (unsigned j = 0; j < radix_; ++j)
    for (const auto& e : at(level, j).entries()) out.push_back(e.id);
  // A node appears in at most one slot per row, so no dedupe needed.
  return out;
}

std::vector<NodeId> RoutingTable::all_neighbors() const {
  std::set<NodeId> uniq;
  for (unsigned l = 0; l < levels_; ++l)
    for (unsigned j = 0; j < radix_; ++j)
      for (const auto& e : at(l, j).entries())
        if (!(e.id == self_)) uniq.insert(e.id);
  return {uniq.begin(), uniq.end()};
}

std::size_t RoutingTable::total_entries() const {
  std::size_t n = 0;
  for (unsigned l = 0; l < levels_; ++l)
    for (unsigned j = 0; j < radix_; ++j)
      for (const auto& e : at(l, j).entries())
        if (!(e.id == self_)) ++n;
  return n;
}

void RoutingTable::add_backpointer(unsigned level, NodeId who) {
  TAP_ASSERT(level < levels_);
  TAP_ASSERT_MSG(!(who == self_), "node cannot backpoint to itself");
  backptrs_[level].insert(who);
}

void RoutingTable::remove_backpointer(unsigned level, const NodeId& who) {
  TAP_ASSERT(level < levels_);
  backptrs_[level].erase(who);
}

const std::set<NodeId>& RoutingTable::backpointers(unsigned level) const {
  TAP_ASSERT(level < levels_);
  return backptrs_[level];
}

std::vector<NodeId> RoutingTable::all_backpointers() const {
  std::set<NodeId> uniq;
  for (const auto& level : backptrs_) uniq.insert(level.begin(), level.end());
  return {uniq.begin(), uniq.end()};
}

}  // namespace tap
