#include "src/tapestry/routing_table.h"

#include <algorithm>

namespace tap {

RoutingTable::RoutingTable(IdSpec spec, NodeId self, unsigned redundancy)
    : self_(self),
      levels_(spec.num_digits),
      radix_(spec.radix()),
      words_(occ::words_for(spec.radix())) {
  TAP_CHECK(spec.valid(), "invalid IdSpec");
  TAP_CHECK(self.valid() && self.spec() == spec, "self id must match spec");
  TAP_CHECK(redundancy >= 1, "redundancy (R) must be at least 1");
  slots_.reserve(static_cast<std::size_t>(levels_) * radix_);
  for (std::size_t i = 0; i < static_cast<std::size_t>(levels_) * radix_; ++i)
    slots_.emplace_back(redundancy);
  occupancy_.assign(static_cast<std::size_t>(levels_) * words_, 0);
  backptrs_.resize(levels_);
  // The owner is a (β, own-digit) node at distance zero for every prefix β
  // of its own ID; seed those self-entries.
  for (unsigned l = 0; l < levels_; ++l) {
    const unsigned d = self.digit(l);
    slots_[index(l, d)].consider(self, 0.0);
    sync_bit(l, d);
  }
}

NeighborSet::ConsiderResult RoutingTable::consider(unsigned level,
                                                   unsigned digit, NodeId id,
                                                   double dist) {
  auto res = slots_[index(level, digit)].consider(id, dist);
  if (res.inserted) sync_bit(level, digit);
  return res;
}

bool RoutingTable::remove(unsigned level, unsigned digit, const NodeId& id) {
  const bool removed = slots_[index(level, digit)].remove(id);
  if (removed) sync_bit(level, digit);
  return removed;
}

void RoutingTable::pin(unsigned level, unsigned digit, NodeId id,
                       double dist) {
  slots_[index(level, digit)].pin(id, dist);
  sync_bit(level, digit);
}

void RoutingTable::unpin(unsigned level, unsigned digit, const NodeId& id,
                         std::vector<NodeId>& evicted) {
  slots_[index(level, digit)].unpin(id, evicted);
  sync_bit(level, digit);
}

bool RoutingTable::row_has_other(unsigned level) const {
  const std::uint64_t* occ = row_occupancy(level);
  for (unsigned j = occ::next(occ, radix_, 0); j != occ::kNone;
       j = occ::next(occ, radix_, j + 1)) {
    for (const auto& e : at(level, j).entries())
      if (!(e.id == self_)) return true;
  }
  return false;
}

std::vector<NodeId> RoutingTable::row_members(unsigned level) const {
  std::vector<NodeId> out;
  const std::uint64_t* occ = row_occupancy(level);
  for (unsigned j = occ::next(occ, radix_, 0); j != occ::kNone;
       j = occ::next(occ, radix_, j + 1))
    for (const auto& e : at(level, j).entries()) out.push_back(e.id);
  // A node appears in at most one slot per row, so no dedupe needed.
  return out;
}

std::vector<NodeId> RoutingTable::all_neighbors() const {
  std::set<NodeId> uniq;
  for (unsigned l = 0; l < levels_; ++l)
    for (unsigned j = 0; j < radix_; ++j)
      for (const auto& e : at(l, j).entries())
        if (!(e.id == self_)) uniq.insert(e.id);
  return {uniq.begin(), uniq.end()};
}

std::size_t RoutingTable::total_entries() const {
  std::size_t n = 0;
  for (unsigned l = 0; l < levels_; ++l)
    for (unsigned j = 0; j < radix_; ++j)
      for (const auto& e : at(l, j).entries())
        if (!(e.id == self_)) ++n;
  return n;
}

void RoutingTable::add_backpointer(unsigned level, NodeId who) {
  TAP_ASSERT(level < levels_);
  TAP_ASSERT_MSG(!(who == self_), "node cannot backpoint to itself");
  backptrs_[level].insert(who);
}

void RoutingTable::remove_backpointer(unsigned level, const NodeId& who) {
  TAP_ASSERT(level < levels_);
  backptrs_[level].erase(who);
}

const std::set<NodeId>& RoutingTable::backpointers(unsigned level) const {
  TAP_ASSERT(level < levels_);
  return backptrs_[level];
}

std::vector<NodeId> RoutingTable::all_backpointers() const {
  std::set<NodeId> uniq;
  for (const auto& level : backptrs_) uniq.insert(level.begin(), level.end());
  return {uniq.begin(), uniq.end()};
}

}  // namespace tap
