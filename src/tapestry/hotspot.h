// Demand-aware locate acceleration: per-node pointer/hop caches and a
// query-rate-driven replica placement policy.
//
// Neither structure appears in the Tapestry paper itself; both implement
// the paper's locality story (§2.2, §3) for skewed workloads, where a hot
// object would otherwise pay the full O(log n) surrogate walk on every
// query while its root region absorbs the entire load.
//
//   * LocateCache — a bounded per-node LRU of "where was this object's
//     pointer found last time".  Entries are *hints*, never answers: a hit
//     jumps the query one message to the remembered pointer holder, where
//     the real store is re-read (pick_live_replica) before resolving.  A
//     holder that no longer has a live record — unpublish, pointer expiry,
//     §4.2 reroute moved it, replica crashed — fails the verification and
//     the query resumes the ordinary surrogate walk, so a cached locate
//     agrees with the uncached one on found/not-found by construction.
//
//   * HotspotManager — exponentially decayed per-object query-rate
//     estimates, fed by the traffic drivers from locate completions.
//     Sustained demand publishes extra replicas at the querying nodes
//     (content replication where the demand is); decayed demand withdraws
//     them again through the ordinary unpublish machinery.
//
// Both components are RNG-free, so enabling them cannot perturb a driver's
// workload random stream — replay determinism is preserved verbatim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/tapestry/id.h"
#include "src/tapestry/params.h"

namespace tap {

class NodeRegistry;
class ObjectDirectory;
class Trace;

/// Bounded per-node LRU cache of locate results, keyed by base guid.  One
/// instance serves the whole overlay (the directory owns it); each overlay
/// node gets an independent LRU of at most `capacity` entries, touched only
/// by queries that pass through that node — the state a real node would
/// keep locally.
class LocateCache {
 public:
  /// A remembered resolution: the salted root name the pointer was filed
  /// under, the node the pointer was found on, the replica it named, and
  /// the instant the hint stops being trustworthy (never later than the
  /// underlying record's soft-state deadline, so a hint can't outlive the
  /// pointer_ttl guarantees of §6.5).
  struct Entry {
    Guid target{};
    NodeId holder{};
    NodeId server{};
    double expires = 0.0;
  };

  struct Stats {
    std::size_t hits = 0;        ///< lookups that returned an entry
    std::size_t misses = 0;      ///< lookups with nothing usable
    std::size_t expired = 0;     ///< entries dropped at lookup for age
    std::size_t fallbacks = 0;   ///< hits whose holder verification failed
    std::size_t insertions = 0;  ///< upserts (refreshes included)
    std::size_t invalidated = 0; ///< entries dropped by invalidate_*
  };

  /// `capacity` == 0 disables the cache entirely (every call is a no-op and
  /// lookups never hit); `ttl` additionally caps every entry's lifetime
  /// below the record deadline it was learned from.
  LocateCache(std::size_t capacity, double ttl)
      : capacity_(capacity), ttl_(ttl) {}

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }

  /// Returns node `at`'s freshest entry for `base`, refreshing its LRU
  /// position; expired entries are dropped on the spot.
  std::optional<Entry> lookup(const NodeId& at, const Guid& base, double now);

  /// Upserts an entry into node `at`'s LRU, evicting the stalest entry
  /// past capacity.  The entry's expiry is clamped to now + ttl.
  void insert(const NodeId& at, const Guid& base, Entry entry, double now);

  /// Drops node `at`'s entry for `base` (failed verification).
  void erase(const NodeId& at, const Guid& base);

  /// Drops every node's entry for `base` (unpublish).
  void invalidate_object(const Guid& base);

  /// Drops the departed node's own cache and every entry anywhere that
  /// names it as pointer holder or replica (§5 node death/departure).
  void invalidate_node(const NodeId& dead);

  /// Records a hit whose holder verification failed (the caller fell back
  /// to the surrogate walk).
  void note_fallback() noexcept {
    ++stats_.fallbacks;
    metrics::cache_fallbacks_total().inc();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Total entries across all nodes (tests audit the LRU bound with
  /// entries_at).
  [[nodiscard]] std::size_t entries() const noexcept;
  [[nodiscard]] std::size_t entries_at(const NodeId& at) const;

 private:
  using Item = std::pair<Guid, Entry>;
  struct PerNode {
    std::list<Item> lru;  // front = most recently used
    std::unordered_map<Guid, std::list<Item>::iterator> index;
  };

  std::size_t capacity_;
  double ttl_;
  std::unordered_map<std::uint64_t, PerNode> nodes_;
  Stats stats_{};
};

/// Tracks decayed per-object query rates and converts sustained demand
/// into extra replicas near the clients generating it.  Fed explicitly by
/// the traffic driver (record_query from each locate completion); runs a
/// recurring decay/demotion tick on the event queue between start()/stop().
class HotspotManager {
 public:
  struct Stats {
    std::size_t promotions = 0;  ///< extra replicas published
    std::size_t demotions = 0;   ///< extra replicas withdrawn
    std::size_t tracked = 0;     ///< objects with live demand state
    std::size_t extra_live = 0;  ///< extra replicas currently registered
    std::size_t cold_evictions = 0;  ///< tracked states evicted at the cap
    std::size_t track_drops = 0;     ///< queries untracked (cap, no victim)
    std::size_t extra_pruned = 0;    ///< dead hosts dropped from `extra`
  };

  /// `synchronous` selects publish() over publish_async() for promotions —
  /// the driver's engine choice.  `trace` (if any) absorbs the replication
  /// traffic and must outlive the manager.
  HotspotManager(NodeRegistry& registry, ObjectDirectory& directory,
                 EventQueue& events, HotspotParams params, bool synchronous,
                 Trace* trace = nullptr);
  ~HotspotManager();

  HotspotManager(const HotspotManager&) = delete;
  HotspotManager& operator=(const HotspotManager&) = delete;

  /// Starts the recurring decay/demotion tick (check_interval <= 0
  /// disables it; tick() can still be driven manually).
  void start();
  void stop();

  /// One completed locate for `base` issued by `client`.  Promotion
  /// happens inline when the decayed rate crosses the threshold.
  void record_query(const Guid& base, const NodeId& client, bool found);

  /// Decayed demand estimate for `base` as of the event clock.
  [[nodiscard]] double demand(const Guid& base) const;

  /// One decay/demotion pass over all tracked objects (also reclaims
  /// states whose demand decayed to noise).
  void tick();

  [[nodiscard]] Stats stats() const;

 private:
  /// A demand site: one client's decayed share of an object's queries.
  struct Site {
    NodeId client{};
    double weight = 0.0;
  };
  struct ObjState {
    double weight = 0.0;  ///< decayed query count as of `stamp`
    double stamp = 0.0;
    std::vector<Site> sites;   ///< top querying clients (bounded)
    std::vector<NodeId> extra; ///< replicas this manager published
  };

  [[nodiscard]] double decay_factor(double age) const;
  void consider_promote(const Guid& base, ObjState& s);
  void demote_last(const Guid& base, ObjState& s);
  void schedule_tick();
  /// Reclaims the coldest tracked state that owns no extra replicas; false
  /// when every tracked object still holds replicas (nothing evictable).
  bool evict_coldest();
  /// Drops `dead` from every object's `extra` list (node-death hook).
  void prune_dead_extras(const NodeId& dead);

  NodeRegistry& reg_;
  ObjectDirectory& dir_;
  EventQueue& events_;
  HotspotParams hp_;
  bool synchronous_;
  Trace* trace_;

  std::unordered_map<Guid, ObjState> states_;
  std::size_t promotions_ = 0;
  std::size_t demotions_ = 0;
  std::size_t cold_evictions_ = 0;
  std::size_t track_drops_ = 0;
  std::size_t extra_pruned_ = 0;
  std::optional<EventId> tick_event_;
};

}  // namespace tap
