// RoutingTable: a Tapestry node's neighbor sets and backpointers (§2.1).
//
// Level l (0-based here; the paper's levels are 1-based) holds, for each
// digit j, the neighbor set N_{β,j} where β is the first l digits of the
// owner's node-ID.  A node X can therefore appear in at most one slot per
// level — slot (l, X.digit(l)) — which makes backpointers per (level, node)
// unambiguous.
//
// The owner occupies its own slot at every level (it is a (β, own-digit)
// node at distance 0), so every row has at least one filled slot; the
// surrogate-routing stop rule ("current node is the only node left at and
// above this level") then falls out of plain next-filled-slot traversal.
//
// For each forward link A -> B, node B keeps a backpointer (level, A);
// the Network layer keeps the two sides coherent.
//
// Occupancy bitmasks: each row carries a bitmask with bit j set iff slot
// (l, j) is non-empty, so the routing hot path (Router::select_slot /
// route_step) skips empty slots with O(1) bit scans instead of probing
// every NeighborSet.  To keep the masks trustworthy, *all* slot mutations
// funnel through the RoutingTable wrappers below (consider / remove / pin /
// unpin); the non-const per-slot accessor was removed so no caller can
// desynchronise a mask.  Rows wider than 64 digits (digit_bits > 6) span
// multiple mask words; the occ:: helpers hide the word walk.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/assert.h"
#include "src/tapestry/id.h"
#include "src/tapestry/neighbor_set.h"

namespace tap {

/// Bit-scan helpers over a row occupancy mask of `radix` bits stored in
/// ceil(radix/64) contiguous words, bit j of word j/64 = slot j occupied.
namespace occ {

inline constexpr unsigned kNone = ~0u;

[[nodiscard]] inline constexpr unsigned words_for(unsigned radix) noexcept {
  return (radix + 63u) / 64u;
}

[[nodiscard]] inline bool test(const std::uint64_t* w, unsigned j) noexcept {
  return (w[j >> 6] >> (j & 63u)) & 1u;
}

/// First occupied slot >= `from` (no wrap), or kNone.
[[nodiscard]] inline unsigned next(const std::uint64_t* w, unsigned radix,
                                   unsigned from) noexcept {
  if (from >= radix) return kNone;
  const unsigned nwords = words_for(radix);
  unsigned word = from >> 6;
  std::uint64_t cur = w[word] & (~std::uint64_t{0} << (from & 63u));
  for (;;) {
    if (cur != 0) {
      const unsigned j =
          (word << 6) + static_cast<unsigned>(__builtin_ctzll(cur));
      return j < radix ? j : kNone;
    }
    if (++word >= nwords) return kNone;
    cur = w[word];
  }
}

/// Last occupied slot <= `from`, or kNone.
[[nodiscard]] inline unsigned prev(const std::uint64_t* w, unsigned radix,
                                   unsigned from) noexcept {
  if (from >= radix) from = radix - 1;
  unsigned word = from >> 6;
  std::uint64_t cur =
      w[word] & (~std::uint64_t{0} >> (63u - (from & 63u)));
  for (;;) {
    if (cur != 0)
      return (word << 6) + 63u -
             static_cast<unsigned>(__builtin_clzll(cur));
    if (word == 0) return kNone;
    cur = w[--word];
  }
}

/// First occupied slot at or after `start`, wrapping around the digit
/// alphabet (the Tapestry Native hole rule); kNone iff the row is empty.
[[nodiscard]] inline unsigned next_wrap(const std::uint64_t* w,
                                        unsigned radix,
                                        unsigned start) noexcept {
  const unsigned j = next(w, radix, start);
  if (j != kNone) return j;
  return next(w, radix, 0);
}

}  // namespace occ

class RoutingTable {
 public:
  RoutingTable(IdSpec spec, NodeId self, unsigned redundancy);

  [[nodiscard]] unsigned levels() const noexcept { return levels_; }
  [[nodiscard]] unsigned radix() const noexcept { return radix_; }
  [[nodiscard]] const NodeId& self() const noexcept { return self_; }

  /// Read-only slot access.  Slot *mutations* go through the wrappers
  /// below so the occupancy masks stay in sync.
  [[nodiscard]] const NeighborSet& at(unsigned level, unsigned digit) const {
    return slots_[index(level, digit)];
  }

  // --- occupancy masks ---
  /// Words per row mask (1 for radix <= 64).
  [[nodiscard]] unsigned occupancy_words() const noexcept { return words_; }
  /// Pointer to the row's mask words; bit j set <=> slot (level, j)
  /// non-empty.  Stable for the table's lifetime (moves rebind it).
  [[nodiscard]] const std::uint64_t* row_occupancy(unsigned level) const {
    TAP_ASSERT(level < levels_);
    return occupancy_.data() + static_cast<std::size_t>(level) * words_;
  }
  /// The row mask as a single word (requires radix <= 64; true for every
  /// configuration with digit_bits <= 6, e.g. the default hex digits).
  [[nodiscard]] std::uint64_t row_mask64(unsigned level) const {
    TAP_ASSERT(words_ == 1);
    return *row_occupancy(level);
  }
  /// O(1) emptiness test off the mask.
  [[nodiscard]] bool slot_empty(unsigned level, unsigned digit) const {
    TAP_ASSERT(level < levels_ && digit < radix_);
    return !occ::test(row_occupancy(level), digit);
  }

  // --- slot mutations (the only write path; masks kept in sync) ---
  /// Offers a candidate to slot (level, digit); see NeighborSet::consider.
  NeighborSet::ConsiderResult consider(unsigned level, unsigned digit,
                                       NodeId id, double dist);
  /// Removes a member from slot (level, digit); true when it was present.
  bool remove(unsigned level, unsigned digit, const NodeId& id);
  /// Pins a member into slot (level, digit) (§4.4 simultaneous insertion).
  void pin(unsigned level, unsigned digit, NodeId id, double dist);
  /// Clears a pin; over-capacity evictions are appended to `evicted`.
  void unpin(unsigned level, unsigned digit, const NodeId& id,
             std::vector<NodeId>& evicted);

  /// Primary neighbor of a slot, if the slot is non-empty.
  [[nodiscard]] std::optional<NodeId> primary(unsigned level,
                                              unsigned digit) const {
    return at(level, digit).primary();
  }

  /// True when some slot in the row holds a node other than the owner —
  /// i.e. the owner is *not* the only node with its length-`level` prefix
  /// (the multicast NOTONLYNODEWITHPREFIX test, Figure 8).
  [[nodiscard]] bool row_has_other(unsigned level) const;

  /// Unique members across all slots of a row, owner included.  These are
  /// the "forward pointers at level l" handed out during GETNEXTLIST.
  [[nodiscard]] std::vector<NodeId> row_members(unsigned level) const;

  /// Unique members across the whole table, owner excluded.
  [[nodiscard]] std::vector<NodeId> all_neighbors() const;

  /// Total stored links, owner-self entries excluded — the space figure
  /// reported in Table 1 comparisons.
  [[nodiscard]] std::size_t total_entries() const;

  // --- backpointers ---
  void add_backpointer(unsigned level, NodeId who);
  void remove_backpointer(unsigned level, const NodeId& who);
  [[nodiscard]] const std::set<NodeId>& backpointers(unsigned level) const;
  /// Unique nodes holding any backpointer to the owner.
  [[nodiscard]] std::vector<NodeId> all_backpointers() const;

 private:
  [[nodiscard]] std::size_t index(unsigned level, unsigned digit) const {
    TAP_ASSERT(level < levels_ && digit < radix_);
    return static_cast<std::size_t>(level) * radix_ + digit;
  }
  /// Re-derives the mask bit of one slot from its contents.
  void sync_bit(unsigned level, unsigned digit) {
    std::uint64_t& word =
        occupancy_[static_cast<std::size_t>(level) * words_ + (digit >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (digit & 63u);
    if (slots_[index(level, digit)].empty())
      word &= ~bit;
    else
      word |= bit;
  }

  NodeId self_;
  unsigned levels_;
  unsigned radix_;
  unsigned words_;  // mask words per row
  std::vector<NeighborSet> slots_;
  std::vector<std::uint64_t> occupancy_;    // levels_ * words_ mask words
  std::vector<std::set<NodeId>> backptrs_;  // per level
};

}  // namespace tap
