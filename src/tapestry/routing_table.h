// RoutingTable: a Tapestry node's neighbor sets and backpointers (§2.1).
//
// Level l (0-based here; the paper's levels are 1-based) holds, for each
// digit j, the neighbor set N_{β,j} where β is the first l digits of the
// owner's node-ID.  A node X can therefore appear in at most one slot per
// level — slot (l, X.digit(l)) — which makes backpointers per (level, node)
// unambiguous.
//
// The owner occupies its own slot at every level (it is a (β, own-digit)
// node at distance 0), so every row has at least one filled slot; the
// surrogate-routing stop rule ("current node is the only node left at and
// above this level") then falls out of plain next-filled-slot traversal.
//
// For each forward link A -> B, node B keeps a backpointer (level, A);
// the Network layer keeps the two sides coherent.
#pragma once

#include <set>
#include <vector>

#include "src/common/assert.h"
#include "src/tapestry/id.h"
#include "src/tapestry/neighbor_set.h"

namespace tap {

class RoutingTable {
 public:
  RoutingTable(IdSpec spec, NodeId self, unsigned redundancy);

  [[nodiscard]] unsigned levels() const noexcept { return levels_; }
  [[nodiscard]] unsigned radix() const noexcept { return radix_; }
  [[nodiscard]] const NodeId& self() const noexcept { return self_; }

  [[nodiscard]] NeighborSet& at(unsigned level, unsigned digit);
  [[nodiscard]] const NeighborSet& at(unsigned level, unsigned digit) const;

  /// Primary neighbor of a slot, if the slot is non-empty.
  [[nodiscard]] std::optional<NodeId> primary(unsigned level,
                                              unsigned digit) const {
    return at(level, digit).primary();
  }

  /// True when some slot in the row holds a node other than the owner —
  /// i.e. the owner is *not* the only node with its length-`level` prefix
  /// (the multicast NOTONLYNODEWITHPREFIX test, Figure 8).
  [[nodiscard]] bool row_has_other(unsigned level) const;

  /// Unique members across all slots of a row, owner included.  These are
  /// the "forward pointers at level l" handed out during GETNEXTLIST.
  [[nodiscard]] std::vector<NodeId> row_members(unsigned level) const;

  /// Unique members across the whole table, owner excluded.
  [[nodiscard]] std::vector<NodeId> all_neighbors() const;

  /// Total stored links, owner-self entries excluded — the space figure
  /// reported in Table 1 comparisons.
  [[nodiscard]] std::size_t total_entries() const;

  // --- backpointers ---
  void add_backpointer(unsigned level, NodeId who);
  void remove_backpointer(unsigned level, const NodeId& who);
  [[nodiscard]] const std::set<NodeId>& backpointers(unsigned level) const;
  /// Unique nodes holding any backpointer to the owner.
  [[nodiscard]] std::vector<NodeId> all_backpointers() const;

 private:
  [[nodiscard]] std::size_t index(unsigned level, unsigned digit) const {
    TAP_ASSERT(level < levels_ && digit < radix_);
    return static_cast<std::size_t>(level) * radix_ + digit;
  }

  NodeId self_;
  unsigned levels_;
  unsigned radix_;
  std::vector<NeighborSet> slots_;
  std::vector<std::set<NodeId>> backptrs_;  // per level
};

}  // namespace tap
