#include "src/tapestry/hotspot.h"

#include <algorithm>
#include <cmath>

#include "src/sim/metrics.h"
#include "src/tapestry/object_directory.h"
#include "src/tapestry/registry.h"

namespace tap {

// ---------------------------------------------------------------------
// LocateCache
// ---------------------------------------------------------------------

std::optional<LocateCache::Entry> LocateCache::lookup(const NodeId& at,
                                                      const Guid& base,
                                                      double now) {
  if (!enabled()) return std::nullopt;
  auto nit = nodes_.find(at.value());
  if (nit == nodes_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  PerNode& pn = nit->second;
  auto it = pn.index.find(base);
  if (it == pn.index.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  // The expiry edge is inclusive to match the store's (§6.5 conformance:
  // now == expires_at is already expired), so a hint can never name a
  // pointer that the holder's own sweep would refuse to return.
  if (it->second->second.expires <= now) {
    pn.lru.erase(it->second);
    pn.index.erase(it);
    ++stats_.expired;
    ++stats_.misses;
    return std::nullopt;
  }
  pn.lru.splice(pn.lru.begin(), pn.lru, it->second);  // refresh LRU position
  ++stats_.hits;
  metrics::cache_hits_total().inc();
  return it->second->second;
}

void LocateCache::insert(const NodeId& at, const Guid& base, Entry entry,
                         double now) {
  if (!enabled()) return;
  entry.expires = std::min(entry.expires, now + ttl_);
  if (entry.expires <= now) return;  // born dead; nothing worth remembering
  PerNode& pn = nodes_[at.value()];
  ++stats_.insertions;
  if (auto it = pn.index.find(base); it != pn.index.end()) {
    it->second->second = entry;
    pn.lru.splice(pn.lru.begin(), pn.lru, it->second);
    return;
  }
  pn.lru.emplace_front(base, entry);
  pn.index.emplace(base, pn.lru.begin());
  if (pn.lru.size() > capacity_) {
    pn.index.erase(pn.lru.back().first);
    pn.lru.pop_back();
  }
}

void LocateCache::erase(const NodeId& at, const Guid& base) {
  auto nit = nodes_.find(at.value());
  if (nit == nodes_.end()) return;
  PerNode& pn = nit->second;
  auto it = pn.index.find(base);
  if (it == pn.index.end()) return;
  pn.lru.erase(it->second);
  pn.index.erase(it);
}

void LocateCache::invalidate_object(const Guid& base) {
  for (auto& [node, pn] : nodes_) {
    auto it = pn.index.find(base);
    if (it == pn.index.end()) continue;
    pn.lru.erase(it->second);
    pn.index.erase(it);
    ++stats_.invalidated;
  }
}

void LocateCache::invalidate_node(const NodeId& dead) {
  if (auto nit = nodes_.find(dead.value()); nit != nodes_.end()) {
    stats_.invalidated += nit->second.lru.size();
    nodes_.erase(nit);
  }
  for (auto& [node, pn] : nodes_) {
    for (auto it = pn.lru.begin(); it != pn.lru.end();) {
      if (it->second.holder == dead || it->second.server == dead) {
        pn.index.erase(it->first);
        it = pn.lru.erase(it);
        ++stats_.invalidated;
      } else {
        ++it;
      }
    }
  }
}

std::size_t LocateCache::entries() const noexcept {
  std::size_t n = 0;
  for (const auto& [node, pn] : nodes_) n += pn.lru.size();
  return n;
}

std::size_t LocateCache::entries_at(const NodeId& at) const {
  auto nit = nodes_.find(at.value());
  return nit == nodes_.end() ? 0 : nit->second.lru.size();
}

// ---------------------------------------------------------------------
// HotspotManager
// ---------------------------------------------------------------------

HotspotManager::HotspotManager(NodeRegistry& registry,
                               ObjectDirectory& directory, EventQueue& events,
                               HotspotParams params, bool synchronous,
                               Trace* trace)
    : reg_(registry), dir_(directory), events_(events), hp_(params),
      synchronous_(synchronous), trace_(trace) {
  TAP_CHECK(hp_.half_life > 0.0, "hotspot half_life must be positive");
  TAP_CHECK(hp_.demote_threshold < hp_.promote_threshold,
            "hotspot demote_threshold must sit below promote_threshold");
  // Node death reaches the directory (invalidate_node_cache) before any
  // other replication bookkeeping runs; piggyback on it so dead hosts are
  // dropped from `extra` the moment they die, not at the next promotion.
  dir_.set_node_death_hook(
      [this](const NodeId& dead) { prune_dead_extras(dead); });
}

HotspotManager::~HotspotManager() {
  stop();
  dir_.set_node_death_hook(nullptr);
}

double HotspotManager::decay_factor(double age) const {
  return age <= 0.0 ? 1.0 : std::exp2(-age / hp_.half_life);
}

void HotspotManager::start() {
  stop();
  if (hp_.check_interval > 0.0) schedule_tick();
}

void HotspotManager::stop() {
  if (tick_event_.has_value()) {
    events_.cancel(*tick_event_);
    tick_event_.reset();
  }
}

void HotspotManager::schedule_tick() {
  tick_event_ = events_.schedule_in(hp_.check_interval, [this] {
    tick_event_.reset();
    tick();
    schedule_tick();
  });
}

void HotspotManager::record_query(const Guid& base, const NodeId& client,
                                  bool found) {
  auto it = states_.find(base);
  if (it == states_.end()) {
    // At the tracking cap, reclaim the coldest entry that holds no extra
    // replicas rather than silently ignoring the newcomer — a flash crowd
    // on a fresh guid after warm-up must still be able to earn replicas.
    if (states_.size() >= hp_.max_tracked && !evict_coldest()) {
      ++track_drops_;
      return;
    }
    it = states_.emplace(base, ObjState{}).first;
  }
  ObjState& s = it->second;
  const double now = events_.now();
  const double f = decay_factor(now - s.stamp);
  s.weight = s.weight * f + 1.0;
  s.stamp = now;
  for (Site& site : s.sites) site.weight *= f;

  auto sit = std::find_if(s.sites.begin(), s.sites.end(),
                          [&](const Site& x) { return x.client == client; });
  if (sit != s.sites.end()) {
    sit->weight += 1.0;
  } else if (s.sites.size() < hp_.demand_sites) {
    s.sites.push_back(Site{client, 1.0});
  } else {
    // Full: displace the lightest remembered site if the newcomer's single
    // query already outweighs it (deterministic: first minimum wins).
    auto lightest = std::min_element(
        s.sites.begin(), s.sites.end(),
        [](const Site& a, const Site& b) { return a.weight < b.weight; });
    if (lightest->weight < 1.0) *lightest = Site{client, 1.0};
  }

  // Promotion needs a live replica to copy from — a miss proves nothing is
  // fetchable right now, so only successful queries can trigger it.
  if (found) consider_promote(base, s);
}

bool HotspotManager::evict_coldest() {
  const double now = events_.now();
  auto coldest = states_.end();
  double coldest_w = 0.0;
  for (auto it = states_.begin(); it != states_.end(); ++it) {
    const ObjState& s = it->second;
    if (!s.extra.empty()) continue;  // owns replicas; demotion reclaims it
    const double w = s.weight * decay_factor(now - s.stamp);
    // Min by (decayed weight, guid) so the victim is independent of
    // unordered_map iteration order.
    if (coldest == states_.end() || w < coldest_w ||
        (w == coldest_w && it->first < coldest->first)) {
      coldest = it;
      coldest_w = w;
    }
  }
  if (coldest == states_.end()) return false;
  states_.erase(coldest);
  ++cold_evictions_;
  return true;
}

void HotspotManager::prune_dead_extras(const NodeId& dead) {
  for (auto& [g, s] : states_) {
    auto tail = std::remove(s.extra.begin(), s.extra.end(), dead);
    extra_pruned_ += static_cast<std::size_t>(s.extra.end() - tail);
    s.extra.erase(tail, s.extra.end());
  }
}

void HotspotManager::consider_promote(const Guid& base, ObjState& s) {
  // Replica slots must name live hosts: an extra whose node crashed since
  // promotion would otherwise pin the max_extra_replicas cap forever while
  // serving nothing, blocking re-promotion of a still-hot object.
  auto tail = std::remove_if(s.extra.begin(), s.extra.end(),
                             [&](const NodeId& n) { return !reg_.is_live(n); });
  extra_pruned_ += static_cast<std::size_t>(s.extra.end() - tail);
  s.extra.erase(tail, s.extra.end());
  while (s.extra.size() < hp_.max_extra_replicas &&
         s.weight >= hp_.promote_threshold *
                         static_cast<double>(s.extra.size() + 1)) {
    // Place the replica at the heaviest live demand site that is not
    // already serving the object (ties: first in insertion order).  The
    // `extra` list is checked too: an async publish may not have
    // registered with servers_of yet.
    const auto servers = dir_.servers_of(base);
    const Site* best = nullptr;
    for (const Site& site : s.sites) {
      if (!reg_.is_live(site.client)) continue;
      if (std::find(servers.begin(), servers.end(), site.client) !=
              servers.end() ||
          std::find(s.extra.begin(), s.extra.end(), site.client) !=
              s.extra.end())
        continue;
      if (best == nullptr || site.weight > best->weight) best = &site;
    }
    if (best == nullptr) return;  // nowhere useful to put one
    if (synchronous_)
      dir_.publish(best->client, base, trace_);
    else
      dir_.publish_async(best->client, base, trace_);
    s.extra.push_back(best->client);
    ++promotions_;
    metrics::hotspot_promotions_total().inc();
  }
}

void HotspotManager::demote_last(const Guid& base, ObjState& s) {
  const NodeId victim = s.extra.back();
  s.extra.pop_back();
  // A crashed extra replica needs no withdrawal: its pointers die with the
  // soft state and servers_of already ignores it.
  if (reg_.is_live(victim)) dir_.unpublish(victim, base, trace_);
  ++demotions_;
  metrics::hotspot_demotions_total().inc();
}

void HotspotManager::tick() {
  const double now = events_.now();
  // Snapshot and sort the keys so the demotion (and its unpublish traffic)
  // order is independent of hash-map iteration order.
  std::vector<Guid> keys;
  keys.reserve(states_.size());
  for (const auto& [g, s] : states_) keys.push_back(g);
  std::sort(keys.begin(), keys.end());
  for (const Guid& g : keys) {
    ObjState& s = states_[g];
    s.weight *= decay_factor(now - s.stamp);
    s.stamp = now;
    if (!s.extra.empty() && s.weight < hp_.demote_threshold)
      demote_last(g, s);  // one per tick: flash crowds drain gradually
    if (s.extra.empty() && s.weight < 1e-3) states_.erase(g);
  }
}

double HotspotManager::demand(const Guid& base) const {
  auto it = states_.find(base);
  if (it == states_.end()) return 0.0;
  return it->second.weight * decay_factor(events_.now() - it->second.stamp);
}

HotspotManager::Stats HotspotManager::stats() const {
  Stats st;
  st.promotions = promotions_;
  st.demotions = demotions_;
  st.tracked = states_.size();
  st.cold_evictions = cold_evictions_;
  st.track_drops = track_drops_;
  st.extra_pruned = extra_pruned_;
  for (const auto& [g, s] : states_) st.extra_live += s.extra.size();
  return st;
}

}  // namespace tap
