#include "src/tapestry/transport.h"

#include <deque>
#include <utility>
#include <vector>

#include "src/common/assert.h"
#include "src/sim/metrics.h"

namespace tap {

void Transport::count(const Message& m, std::uint64_t wire_bytes) {
  stats_.messages.fetch_add(1, std::memory_order_relaxed);
  stats_.per_kind[static_cast<std::size_t>(m.kind)].fetch_add(
      1, std::memory_order_relaxed);
  metrics::transport_messages_total().inc();
  if (wire_bytes != 0) {
    stats_.bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
    metrics::transport_bytes_total().inc(wire_bytes);
  }
}

Message DirectTransport::deliver(const Message& m) {
  count(m, 0);
  return m;
}

Message LoopbackTransport::deliver(const Message& m) {
  // One inbox per thread: a synchronous delivery completes on the calling
  // thread (like today's direct calls), and concurrent batch/repair
  // threads never contend on a shared queue.  The queue still exercises
  // the enqueue/dequeue discipline a socket transport will need.
  thread_local std::deque<std::vector<std::uint8_t>> inbox;
  Datagram dg = encode(m);
  count(m, dg.size());
  inbox.push_back(dg.release());
  const std::vector<std::uint8_t> frame = std::move(inbox.front());
  inbox.pop_front();
  return decode(frame);
}

Transport* default_transport() {
  static DirectTransport t;
  return &t;
}

std::unique_ptr<Transport> make_transport(const TapestryParams& params) {
  switch (params.transport) {
    case TransportKind::kDirect:
      return std::make_unique<DirectTransport>();
    case TransportKind::kLoopback:
      return std::make_unique<LoopbackTransport>();
  }
  TAP_CHECK(false, "unknown TransportKind (valid: direct, loopback)");
  return nullptr;  // unreachable
}

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kDirect: return "direct";
    case TransportKind::kLoopback: return "loopback";
  }
  return "unknown";
}

}  // namespace tap
