#include "src/tapestry/persistent_store.h"

#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "src/common/assert.h"

namespace tap {

namespace {

constexpr std::size_t kLineMax = 160;

/// Compaction once the log holds this many records AND dwarfs the live set.
constexpr std::size_t kCompactMinRecords = 256;

int format_upsert(char* buf, std::size_t n, const Guid& guid,
                  const PointerRecord& rec) {
  return std::snprintf(
      buf, n, "U %llx %llx %d %llx %u %d %.17g\n",
      static_cast<unsigned long long>(guid.value()),
      static_cast<unsigned long long>(rec.server.value()),
      rec.last_hop.has_value() ? 1 : 0,
      static_cast<unsigned long long>(
          rec.last_hop.has_value() ? rec.last_hop->value() : 0),
      rec.level, rec.past_hole ? 1 : 0, rec.expires_at);
}

}  // namespace

PersistentStore::PersistentStore(std::string dir, NodeId id, IdSpec spec)
    : dir_(std::move(dir)), id_(id), spec_(spec) {
  TAP_CHECK(id_.valid() && id_.spec() == spec_,
            "PersistentStore: node id must match the IdSpec");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  TAP_CHECK(!ec, "PersistentStore: cannot create " + dir_);
  char name[32];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(id_.value()));
  wal_path_ = dir_ + "/" + name + ".wal";
  snap_path_ = dir_ + "/" + name + ".snap";
  recover();
}

PersistentStore::~PersistentStore() {
  if (wal_ != nullptr) {
    std::fflush(wal_);
    std::fclose(wal_);
  }
}

void PersistentStore::replay_file(const std::string& path, bool is_wal,
                                  std::uint64_t snap_gen) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  TAP_CHECK(f != nullptr, "PersistentStore: cannot read " + path);
  char line[kLineMax];
  bool saw_header = false;
  long tail = 0;  // offset of the first unreplayed byte (torn-tail cut)
  while (true) {
    tail = std::ftell(f);
    if (std::fgets(line, sizeof line, f) == nullptr) break;
    // A record that did not make it to disk whole — no trailing newline,
    // or fields cut off — is the expected signature of a kill between
    // flushes.  In the log we stop replaying there and truncate, exactly
    // like any WAL; in a snapshot (written + renamed atomically) it is
    // genuine corruption and recovery must fail loudly.
    const bool complete = std::strchr(line, '\n') != nullptr;
    bool parsed = complete;
    bool stale_wal = false;
    if (parsed && line[0] == 'H') {
      unsigned digit_bits = 0, num_digits = 0;
      unsigned long long gen = 0;
      parsed = std::sscanf(line, "H %u %u %llu", &digit_bits, &num_digits,
                           &gen) == 3;
      if (parsed) {
        TAP_CHECK((IdSpec{digit_bits, num_digits} == spec_),
                  "PersistentStore: IdSpec mismatch in " + path);
        if (is_wal) {
          gen_ = gen;
          // A log no newer than the snapshot means a crash struck between
          // snapshot rename and log truncation: everything in it is
          // already folded into the snapshot; replaying would
          // double-apply.
          stale_wal = gen <= snap_gen;
        }
        saw_header = true;
      }
    } else if (parsed) {
      parsed = saw_header;
      if (parsed && line[0] == 'U') {
        unsigned long long g = 0, srv = 0, lh = 0;
        int has_lh = 0, past_hole = 0;
        unsigned level = 0;
        char num[48];
        parsed = std::sscanf(line, "U %llx %llx %d %llx %u %d %47s", &g,
                             &srv, &has_lh, &lh, &level, &past_hole,
                             num) == 7;
        if (parsed) {
          PointerRecord rec;
          rec.server = NodeId(spec_, srv);
          if (has_lh != 0) rec.last_hop = NodeId(spec_, lh);
          rec.level = level;
          rec.past_hole = past_hole != 0;
          rec.expires_at = std::strtod(num, nullptr);
          mirror_.upsert(Guid(spec_, g), rec);
        }
      } else if (parsed && line[0] == 'R') {
        unsigned long long g = 0, srv = 0;
        parsed = std::sscanf(line, "R %llx %llx", &g, &srv) == 2;
        if (parsed) mirror_.remove(Guid(spec_, g), NodeId(spec_, srv));
      } else if (parsed && line[0] == 'X') {
        char num[48];
        parsed = std::sscanf(line, "X %47s", num) == 1;
        if (parsed) mirror_.remove_expired(std::strtod(num, nullptr));
      } else if (parsed) {
        parsed = line[0] == '\n' || line[0] == '\0';
      }
      if (parsed && is_wal) ++wal_records_;
    }
    if (!parsed) {
      TAP_CHECK(is_wal, "PersistentStore: corrupt record in " + path);
      break;  // torn WAL tail: keep everything before it
    }
    if (stale_wal) {
      std::fclose(f);
      return;
    }
  }
  const bool torn = std::fgetc(f) != EOF || tail != std::ftell(f);
  std::fclose(f);
  if (is_wal && torn && tail >= 0) {
    // Cut the log at the last whole record so post-recovery appends never
    // concatenate onto torn bytes mid-line.
    std::error_code ec;
    std::filesystem::resize_file(path, static_cast<std::uintmax_t>(tail),
                                 ec);
    TAP_CHECK(!ec, "PersistentStore: cannot truncate torn tail of " + path);
  }
}

void PersistentStore::recover() {
  if (wal_ != nullptr) {
    std::fflush(wal_);
    std::fclose(wal_);
    wal_ = nullptr;
  }
  mirror_ = MemoryStore{};
  wal_records_ = 0;
  gen_ = 0;

  std::uint64_t snap_gen = 0;
  if (std::filesystem::exists(snap_path_)) {
    // Peek the snapshot generation first (the log replay fences on it).
    std::FILE* f = std::fopen(snap_path_.c_str(), "r");
    TAP_CHECK(f != nullptr, "PersistentStore: cannot read " + snap_path_);
    char line[kLineMax];
    unsigned db = 0, nd = 0;
    unsigned long long gen = 0;
    TAP_CHECK(std::fgets(line, sizeof line, f) != nullptr &&
                  std::sscanf(line, "H %u %u %llu", &db, &nd, &gen) == 3,
              "PersistentStore: bad snapshot header in " + snap_path_);
    std::fclose(f);
    snap_gen = gen;
    replay_file(snap_path_, /*is_wal=*/false, 0);
  }
  const bool have_wal = std::filesystem::exists(wal_path_);
  if (have_wal) replay_file(wal_path_, /*is_wal=*/true, snap_gen);

  if (have_wal && gen_ > snap_gen) {
    // Usable log: keep appending to it.
    wal_ = std::fopen(wal_path_.c_str(), "a");
    TAP_CHECK(wal_ != nullptr, "PersistentStore: cannot append " + wal_path_);
  } else {
    // No log, or a stale one: start a fresh generation.
    gen_ = snap_gen + 1;
    wal_records_ = 0;
    open_wal_for_append();
  }
}

void PersistentStore::open_wal_for_append() {
  wal_ = std::fopen(wal_path_.c_str(), "w");
  TAP_CHECK(wal_ != nullptr, "PersistentStore: cannot write " + wal_path_);
  char header[64];
  const int n = std::snprintf(header, sizeof header, "H %u %u %llu\n",
                              spec_.digit_bits, spec_.num_digits,
                              static_cast<unsigned long long>(gen_));
  std::fputs(header, wal_);
  wal_bytes_ += static_cast<std::size_t>(n);
}

void PersistentStore::append_record(const char* line) {
  TAP_ASSERT(wal_ != nullptr);
  std::fputs(line, wal_);
  wal_bytes_ += std::strlen(line);
  ++wal_records_;
  maybe_compact();
}

void PersistentStore::maybe_compact() {
  if (wal_records_ < kCompactMinRecords ||
      wal_records_ < 4 * (mirror_.size() + 1) ||
      wal_records_ < compact_backoff_)
    return;
  // Write the mirror to a fresh snapshot stamped with the current log
  // generation, publish it atomically, then open a newer-generation log.
  // Every write is verified before the rename: publishing a truncated
  // snapshot and then truncating the log it folded in would be silent,
  // permanent data loss (e.g. on a full disk).  On failure the old
  // snapshot + log stay authoritative and we back off retrying.
  const std::string tmp = snap_path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  TAP_CHECK(f != nullptr, "PersistentStore: cannot write " + tmp);
  std::fprintf(f, "H %u %u %llu\n", spec_.digit_bits, spec_.num_digits,
               static_cast<unsigned long long>(gen_));
  char line[kLineMax];
  mirror_.for_each([&](const Guid& g, const PointerRecord& r) {
    format_upsert(line, sizeof line, g, r);
    std::fputs(line, f);
  });
  const bool wrote = std::fflush(f) == 0 && std::ferror(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    compact_backoff_ = wal_records_ * 2;  // don't rewrite on every append
    return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, snap_path_, ec);
  TAP_CHECK(!ec, "PersistentStore: cannot publish " + snap_path_);

  std::fclose(wal_);
  ++gen_;
  wal_records_ = 0;
  compact_backoff_ = 0;
  open_wal_for_append();
  ++compactions_;
}

void PersistentStore::upsert(const Guid& guid, const PointerRecord& record) {
  mirror_.upsert(guid, record);  // validates first; nothing logged on throw
  ++upserts_;
  char line[kLineMax];
  format_upsert(line, sizeof line, guid, record);
  append_record(line);
}

bool PersistentStore::remove(const Guid& guid, const NodeId& server) {
  if (!mirror_.remove(guid, server)) return false;
  ++removes_;
  char line[kLineMax];
  std::snprintf(line, sizeof line, "R %llx %llx\n",
                static_cast<unsigned long long>(guid.value()),
                static_cast<unsigned long long>(server.value()));
  append_record(line);
  return true;
}

std::size_t PersistentStore::remove_expired(double now) {
  const std::size_t removed = mirror_.remove_expired(now);
  if (removed == 0) return 0;  // replaying nothing is the same as this
  expired_ += removed;
  char line[kLineMax];
  std::snprintf(line, sizeof line, "X %.17g\n", now);
  append_record(line);
  return removed;
}

void PersistentStore::flush() {
  if (wal_ == nullptr) return;
  // A checkpoint that could not land its WAL appends must not pretend it
  // did — the manifest written next would describe records recovery can
  // never rebuild.
  TAP_CHECK(std::fflush(wal_) == 0 && std::ferror(wal_) == 0,
            "PersistentStore: WAL write failed for " + wal_path_);
}

StoreStats PersistentStore::stats() const {
  StoreStats s;
  s.backend = "persist";
  s.records = mirror_.size();
  s.upserts = upserts_;
  s.removes = removes_;
  s.expired = expired_;
  s.wal_records = wal_records_;
  s.wal_bytes = wal_bytes_;
  s.compactions = compactions_;
  return s;
}

}  // namespace tap
