#include "src/tapestry/parallel_join.h"

#include <algorithm>

namespace tap {

std::vector<MulticastChild> multicast_children(
    NodeRegistry& reg, const TapestryNode& at, const NodeId& nn,
    unsigned prefix_len, unsigned alpha, unsigned hole_digit,
    const std::unordered_set<std::uint64_t>& processed) {
  const NodeId at_id = at.id();
  const unsigned digits = reg.params().id.num_digits;
  const unsigned radix = reg.params().id.radix();
  std::vector<MulticastChild> children;

  // Walk our own prefix chain, collecting forwarding targets row by row;
  // self-messages are free and immediate, so the levels where we are the
  // chosen recipient collapse into the caller's single visit.  Per slot
  // the recipients are one unpinned member plus ALL pinned members
  // (Lemma 4); the inserter itself is never forwarded to.
  for (unsigned l = prefix_len; l < digits; ++l) {
    bool row_has_other = false;
    for (unsigned j = 0; j < radix; ++j) {
      bool unpinned_taken = false;
      for (const auto& e : at.table().at(l, j).entries()) {
        if (e.id == nn) continue;
        if (e.id == at_id) {
          unpinned_taken = true;  // the self-message collapses into here
          continue;
        }
        const TapestryNode* m = reg.find(e.id);
        if (m == nullptr || !m->alive) continue;
        row_has_other = true;
        if (e.pinned) {
          children.push_back({e.id, l + 1});
        } else if (!unpinned_taken) {
          unpinned_taken = true;
          children.push_back({e.id, l + 1});
        }
      }
    }
    if (!row_has_other) break;  // alone from this level on: we are a leaf
  }

  // MULTICASTTOFILLEDHOLE (Figure 11 line 9): if the hole this session
  // fills is already occupied by someone else, forward to them too so
  // conflicting inserters learn of each other (Lemma 5).
  for (const auto& e : at.table().at(alpha, hole_digit).entries()) {
    if (e.id == nn || e.id == at_id) continue;
    if (processed.count(e.id.value()) != 0) continue;
    const TapestryNode* m = reg.find(e.id);
    if (m == nullptr || !m->alive) continue;
    children.push_back({e.id, alpha + 1});
  }
  return children;
}

ParallelJoinCoordinator::ParallelJoinCoordinator(Network& net, double jitter)
    : net_(net), jitter_(jitter) {
  TAP_CHECK(jitter >= 0.0, "jitter must be non-negative");
}

double ParallelJoinCoordinator::delay(const NodeId& a, const NodeId& b) {
  double d = net_.distance(a, b);
  if (jitter_ > 0.0) d += net_.rng().uniform(0.0, jitter_);
  // Zero-delay messages still take a scheduling step so ordering stays
  // observable.
  return d > 0.0 ? d : 1e-9;
}

std::vector<ParallelJoinCoordinator::Outcome> ParallelJoinCoordinator::run(
    const std::vector<Request>& requests) {
  TAP_CHECK(!requests.empty(), "no join requests");
  sessions_.clear();
  outcomes_.clear();
  pending_.clear();
  sessions_.resize(requests.size());
  outcomes_.resize(requests.size());
  pending_.resize(requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request req = requests[i];
    net_.events().schedule_at(std::max(req.start_time, net_.events().now()),
                              [this, i, req] { start_join(i, req); });
  }
  net_.events().run();

  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    TAP_CHECK(sessions_[i].multicast_done,
              "a join's multicast never completed");
    outcomes_[i].messages = sessions_[i].trace.messages();
  }
  return outcomes_;
}

void ParallelJoinCoordinator::start_join(std::size_t index,
                                         const Request& req) {
  Session& s = sessions_[index];
  s.index = index;

  NodeId nid = req.id.has_value() ? *req.id : net_.fresh_node_id();

  // 1. Acquire the primary surrogate from the gateway.  If routing lands on
  //    a node that is itself still inserting, bounce to *its* surrogate —
  //    multicasts must start at a core node (§4.4).
  const RouteResult rr = net_.route_to_root(req.gateway, nid, &s.trace);
  NodeId sur = rr.root;
  for (unsigned guard = 0; net_.node(sur).inserting; ++guard) {
    TAP_CHECK(guard < 64, "surrogate bounce chain too long");
    const auto& ps = net_.node(sur).psurrogate;
    TAP_CHECK(ps.has_value(), "inserting node without a surrogate");
    s.trace.hop(net_.distance(sur, *ps));
    sur = *ps;
  }

  TapestryNode& nn = net_.registry().register_node(nid, req.loc);
  nn.inserting = true;
  nn.psurrogate = sur;
  TapestryNode& surrogate = net_.registry().live(sur);
  const unsigned alpha = nid.common_prefix_len(sur);

  s.nn = nid;
  s.surrogate = sur;
  s.alpha = alpha;
  s.hole_digit = nid.digit(alpha);

  Outcome& out = outcomes_[index];
  out.id = nid;
  out.surrogate = sur;
  out.alpha = alpha;
  out.start_time = net_.events().now();

  // 2. Preliminary table copy from the surrogate.
  net_.maintenance().copy_preliminary_table(nn, surrogate, alpha, &s.trace);

  // 3. Watch list: every slot the new node still knows no one for — the
  //    complement of its table's row occupancy masks.
  const unsigned radix = net_.params().id.radix();
  TAP_CHECK(radix <= 64, "parallel join watch lists require radix <= 64");
  const std::uint64_t full_row =
      radix == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << radix) - 1;
  WatchList watch;
  watch.missing.assign(net_.params().id.num_digits, 0);
  for (unsigned l = 0; l < net_.params().id.num_digits; ++l)
    watch.missing[l] = ~nn.table().row_mask64(l) & full_row;

  // 4. Launch the acknowledged multicast at the surrogate.
  deliver_multicast(index, sur, std::nullopt, alpha, std::move(watch));
}

void ParallelJoinCoordinator::deliver_multicast(std::size_t session_idx,
                                                NodeId to,
                                                std::optional<NodeId> parent,
                                                unsigned prefix_len,
                                                WatchList watch) {
  Session& s = sessions_[session_idx];
  const NodeId from = parent.has_value() ? *parent : s.nn;
  const double d = delay(from, to);
  s.trace.hop(net_.distance(from, to));
  net_.events().schedule_in(
      d, [this, session_idx, to, parent, prefix_len,
          watch = std::move(watch)]() mutable {
        handle_multicast(session_idx, to, parent, prefix_len,
                         std::move(watch));
      });
}

void ParallelJoinCoordinator::check_watch_list(std::size_t session_idx,
                                               TapestryNode& at,
                                               WatchList& watch) {
  Session& s = sessions_[session_idx];
  TapestryNode& nn = net_.registry().live(s.nn);
  const unsigned gcp = at.id().common_prefix_len(nn.id());
  for (unsigned l = 0; l < watch.missing.size() && l <= gcp; ++l) {
    if (watch.missing[l] == 0) continue;
    for (unsigned j = 0; j < net_.params().id.radix(); ++j) {
      if ((watch.missing[l] & (std::uint64_t{1} << j)) == 0) continue;
      // Can this node fill slot (l, j) of the inserter?  Its own (l, j)
      // entries share prefix nn[0..l)·j because l <= gcp.
      for (const auto& e : at.table().at(l, j).entries()) {
        if (e.id == nn.id()) continue;
        TapestryNode* filler = net_.registry().find(e.id);
        if (filler == nullptr || !filler->alive) continue;
        // Report the filler to the inserting node (one message) and mark
        // the watch slot found before forwarding onward.
        s.trace.hop(net_.distance(at.id(), nn.id()));
        net_.maintenance().link(nn, l, *filler);
        watch.missing[l] &= ~(std::uint64_t{1} << j);
        break;
      }
    }
  }
}

void ParallelJoinCoordinator::handle_multicast(std::size_t session_idx,
                                               NodeId at_id,
                                               std::optional<NodeId> parent,
                                               unsigned prefix_len,
                                               WatchList watch) {
  Session& s = sessions_[session_idx];
  TapestryNode& at = net_.node(at_id);

  // Duplicate suppression: a node that already handled this session's
  // multicast just acknowledges so its parent can unblock.
  if (!s.processed.insert(at_id.value()).second) {
    if (parent.has_value()) deliver_ack(session_idx, at_id, *parent);
    else finish_multicast(session_idx);
    return;
  }

  TapestryNode& nn = net_.registry().live(s.nn);

  // Watch list service (Figure 11 line 1).  Fillers reported to the
  // inserter change its table, so its pointer paths are re-checked.
  const auto nn_before = net_.directory().snapshot_pointer_hops(nn);
  check_watch_list(session_idx, at, watch);
  net_.directory().reroute_changed_pointers(nn, nn_before, &s.trace);

  // Pin the inserting node into the slot it fills (§4.4) and adopt it
  // wherever it improves this node's table; both change this node's
  // forward routes, so pointer paths are snapshotted around the pair.
  const auto at_before = net_.directory().snapshot_pointer_hops(at);
  if (s.pinned_at.insert(at_id.value()).second) {
    at.table().pin(s.alpha, s.hole_digit, nn.id(),
                   net_.distance(at_id, nn.id()));
    nn.table().add_backpointer(s.alpha, at_id);
  }
  net_.maintenance().add_to_table_if_closer(at, nn);
  net_.directory().reroute_changed_pointers(at, at_before, &s.trace);

  // Forwarding targets: the Lemma 4/5 rule shared with the threaded
  // driver (multicast_children above).
  const std::vector<MulticastChild> children =
      multicast_children(net_.registry(), at, s.nn, prefix_len, s.alpha,
                         s.hole_digit, s.processed);

  // FUNCTION (LINKANDXFERROOT) was applied inline above — link plus
  // pointer transfer; record this node on the α-list exactly once.
  s.visited.push_back(at_id);

  if (children.empty()) {
    release_pin(session_idx, at_id);
    if (parent.has_value()) deliver_ack(session_idx, at_id, *parent);
    else finish_multicast(session_idx);
    return;
  }

  pending_[session_idx][at_id.value()] =
      PendingAcks{children.size(), parent, net_.events().now()};
  for (const MulticastChild& c : children)
    deliver_multicast(session_idx, c.id, at_id, c.prefix_len, watch);
}

void ParallelJoinCoordinator::deliver_ack(std::size_t session_idx, NodeId from,
                                          NodeId to) {
  Session& s = sessions_[session_idx];
  const double d = delay(from, to);
  s.trace.hop(net_.distance(from, to));
  net_.events().schedule_in(
      d, [this, session_idx, to] { handle_ack(session_idx, to); });
}

void ParallelJoinCoordinator::handle_ack(std::size_t session_idx, NodeId at) {
  auto& pmap = pending_[session_idx];
  auto it = pmap.find(at.value());
  TAP_ASSERT_MSG(it != pmap.end(), "ack for a node with no pending state");
  TAP_ASSERT(it->second.remaining > 0);
  if (--it->second.remaining > 0) return;

  const std::optional<NodeId> parent = it->second.parent;
  pmap.erase(it);

  // Subtree fully acknowledged: unlock the pinned pointer (Lemma 4) and
  // acknowledge upward.
  release_pin(session_idx, at);
  if (parent.has_value()) deliver_ack(session_idx, at, *parent);
  else finish_multicast(session_idx);
}

void ParallelJoinCoordinator::release_pin(std::size_t session_idx,
                                          const NodeId& at) {
  Session& s = sessions_[session_idx];
  if (s.pinned_at.erase(at.value()) == 0) return;
  std::vector<NodeId> evicted;
  net_.node(at).table().unpin(s.alpha, s.hole_digit, s.nn, evicted);
  for (const NodeId& ev : evicted)
    if (TapestryNode* n = net_.registry().find(ev); n != nullptr)
      n->table().remove_backpointer(s.alpha, at);
}

void ParallelJoinCoordinator::finish_multicast(std::size_t session_idx) {
  Session& s = sessions_[session_idx];
  TAP_ASSERT(!s.multicast_done);
  s.multicast_done = true;
  outcomes_[session_idx].core_time = net_.events().now();

  // Defensive unpin of any leftovers (a leaf start node acks synchronously
  // and may never enter the pending map).
  const std::vector<std::uint64_t> leftovers(s.pinned_at.begin(),
                                             s.pinned_at.end());
  for (const std::uint64_t v : leftovers)
    release_pin(session_idx, NodeId(net_.params().id, v));

  // The α-list is the set of nodes that ran FUNCTION; finish the insertion
  // with the synchronous nearest-neighbor descent (one logical batch of
  // RPCs at this instant).  The descent rewrites the new node's table, so
  // any pointers already transferred to it are re-checked afterwards.
  TapestryNode& nn = net_.registry().live(s.nn);
  const auto before = net_.directory().snapshot_pointer_hops(nn);
  net_.maintenance().acquire_neighbor_table(nn, s.alpha, s.visited, &s.trace);
  net_.directory().reroute_changed_pointers(nn, before, &s.trace);
  nn.inserting = false;
  nn.psurrogate.reset();
  outcomes_[session_idx].done_time = net_.events().now();
}

}  // namespace tap
