// Network: facade over the Tapestry overlay simulator's four subsystems.
//
//   NodeRegistry      node storage, id index, liveness, distances/accounting
//   Router            surrogate routing (§2.3) + acknowledged multicast (§4.1)
//   ObjectDirectory   publish/locate/unpublish (§2.2), pointer reroute (§4.2),
//                     soft state (§6.5)
//   MaintenanceEngine join/leave/fail/heartbeat (§3-§5), table coherence,
//                     continual optimization (§6.4), static oracle builder
//
// In a deployment each public method below is an RPC handler (or a chain of
// them) running *on* the named nodes; here the subsystems are layers of one
// simulator object so costs can be accounted and invariants checked, but
// every inter-node touch goes through Trace::hop with the metric distance
// between the endpoints, and no algorithm ever reads state its real
// counterpart could not.  The exceptions — oracle accessors used only by
// tests and benchmark ground truth — are grouped at the bottom and named
// accordingly.
//
// Method -> paper map:
//   route_to_root / route_step   §2.3 surrogate routing (both variants)
//   publish / locate / unpublish §2.2 object publication and location
//   multicast                    §4.1 acknowledged multicast (Figure 8)
//   join / join_via              §4   node insertion (Figure 7) using the
//                                §3   nearest-neighbor algorithm (Figure 4)
//   leave                        §5.1 voluntary delete (Figure 12)
//   fail + lazy repair           §5.2 involuntary delete
//   optimize_pointer / delete_backward  §4.2 (Figure 9)
//   republish_all / expire_pointers     §6.5 soft state
//   relocate / optimize_*        §6.4 continual optimization
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"
#include "src/sim/event_queue.h"
#include "src/sim/trace.h"
#include "src/tapestry/maintenance.h"
#include "src/tapestry/node.h"
#include "src/tapestry/object_directory.h"
#include "src/tapestry/params.h"
#include "src/tapestry/registry.h"
#include "src/tapestry/route_types.h"
#include "src/tapestry/router.h"

namespace tap {

class Network {
 public:
  /// The space determines message costs; nodes join at locations within it.
  /// All randomness (salts, root choice, id generation) flows from `seed`.
  Network(const MetricSpace& space, TapestryParams params,
          std::uint64_t seed = 1);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ------------------------------------------------------------------
  // Subsystems.  The facade methods below cover the common surface; the
  // coordinators (ParallelJoinCoordinator, LocalityManager) and tests that
  // need a layer's full interface reach it here.
  // ------------------------------------------------------------------
  [[nodiscard]] NodeRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const NodeRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] Router& router() noexcept { return router_; }
  [[nodiscard]] const Router& router() const noexcept { return router_; }
  [[nodiscard]] ObjectDirectory& directory() noexcept { return directory_; }
  [[nodiscard]] const ObjectDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] MaintenanceEngine& maintenance() noexcept {
    return maintenance_;
  }
  [[nodiscard]] const MaintenanceEngine& maintenance() const noexcept {
    return maintenance_;
  }
  /// The wire layer every inter-node message crosses, selected by
  /// TapestryParams::transport and bound into each subsystem at
  /// construction (see docs/transport.md).
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const Transport& transport() const noexcept {
    return *transport_;
  }

  // ------------------------------------------------------------------
  // Membership
  // ------------------------------------------------------------------

  /// Creates the first node of the overlay.  `id` defaults to random.
  NodeId bootstrap(Location loc, std::optional<NodeId> id = std::nullopt) {
    return maintenance_.bootstrap(loc, id);
  }

  /// Full dynamic insertion (Figure 7) via a uniformly random live gateway.
  NodeId join(Location loc, std::optional<NodeId> id = std::nullopt,
              Trace* trace = nullptr) {
    return maintenance_.join(loc, id, trace);
  }

  /// Full dynamic insertion via a specific gateway node.
  NodeId join_via(NodeId gateway, Location loc,
                  std::optional<NodeId> id = std::nullopt,
                  Trace* trace = nullptr) {
    return maintenance_.join_via(gateway, loc, id, trace);
  }

  /// Thread-parallel dynamic insertion: the whole batch of §4.4 joins runs
  /// on real `sim/thread_pool` workers racing each other through per-node
  /// stripe locks (see MaintenanceEngine::join_bulk for the determinism
  /// contract).  Returns the new node ids in request order.
  std::vector<NodeId> join_bulk(const std::vector<JoinRequest>& requests,
                                std::size_t workers = 0) {
    return maintenance_.join_bulk(requests, workers);
  }

  /// Voluntary departure (§5.1): notifies backpointer holders with
  /// replacement hints, re-roots object pointers, then disconnects.
  void leave(NodeId node, Trace* trace = nullptr) {
    maintenance_.leave(node, trace);
  }

  /// Involuntary fail-stop (§5.2): the node simply stops responding; the
  /// rest of the network repairs lazily as it discovers the corpse.
  void fail(NodeId node) { maintenance_.fail(node); }

  /// Thread-parallel voluntary departure: every victim's §5.1 protocol
  /// runs on real `sim/thread_pool` workers under the per-node stripe
  /// locks, §4.2 rerouting included inside the wave (see
  /// MaintenanceEngine::leave_bulk for the determinism contract).
  void leave_bulk(const std::vector<NodeId>& victims, std::size_t workers = 0,
                  Trace* trace = nullptr) {
    maintenance_.leave_bulk(victims, workers, trace);
  }

  /// Thread-parallel fail-stop plus eager §5.2 repair: victims stop at
  /// once, holders purge in parallel, a threaded sweep restores Property 1
  /// and objects stay locatable without a republish.
  void fail_and_repair_bulk(const std::vector<NodeId>& victims,
                            std::size_t workers = 0, Trace* trace = nullptr) {
    maintenance_.fail_and_repair_bulk(victims, workers, trace);
  }

  /// heartbeat_sweep across `workers` real threads (membership must be
  /// quiescent; guarded store racers are fine).
  void heartbeat_sweep_bulk(std::size_t workers = 0, Trace* trace = nullptr) {
    maintenance_.heartbeat_sweep_bulk(workers, trace);
  }

  // ------------------------------------------------------------------
  // Fault injection: network partition
  // ------------------------------------------------------------------

  /// Splits the overlay into side A (everyone else) and side B (`side_b`).
  /// Protocol traffic stops crossing the cut; tables and pointer records
  /// survive it untouched (see NodeRegistry::set_partition).
  void set_partition(const std::vector<NodeId>& side_b) {
    registry_.set_partition(side_b);
  }
  /// Heals the cut: all live nodes can talk again instantly; stale
  /// side-local pointer state decays via the §6.5 soft-state machinery.
  void heal_partition() { registry_.clear_partition(); }
  [[nodiscard]] bool partition_active() const noexcept {
    return registry_.partition_active();
  }

  // ------------------------------------------------------------------
  // Objects
  // ------------------------------------------------------------------

  /// Publishes `guid` stored at `server`: routes a publish message toward
  /// each root in the root set, depositing an object pointer at every hop
  /// (§2.2, Figure 2).  Re-publishing refreshes soft state.
  void publish(NodeId server, const Guid& guid, Trace* trace = nullptr) {
    directory_.publish(server, guid, trace);
  }

  /// Batched publish for bulk overlay construction: publish paths walked
  /// concurrently through the Router's mutation-free read path, deposits
  /// drained per registry shard (see ObjectDirectory::publish_batch).
  /// `guarded` takes the per-node stripe locks on each routing decision —
  /// required when the batch deliberately races a join_bulk wave.
  void publish_batch(const std::vector<ObjectDirectory::PublishRequest>& batch,
                     std::size_t workers = 0, Trace* trace = nullptr,
                     bool guarded = false) {
    directory_.publish_batch(batch, workers, trace, guarded);
  }

  /// Removes the replica mapping (guid -> server) along its root paths.
  void unpublish(NodeId server, const Guid& guid, Trace* trace = nullptr) {
    directory_.unpublish(server, guid, trace);
  }

  /// Routes a query from `client` toward a (randomly chosen) root until an
  /// object pointer is found, then on to the closest replica (§2.2,
  /// Figure 3).
  LocateResult locate(NodeId client, const Guid& guid, Trace* trace = nullptr) {
    return directory_.locate(client, guid, trace);
  }

  /// Soft state (§6.5): re-publishes every (guid, server) pair currently
  /// registered, refreshing pointer expiry deadlines.
  void republish_all(Trace* trace = nullptr) {
    directory_.republish_all(trace);
  }

  /// Republishes the objects stored at one server (its periodic timer).
  void republish_server(NodeId server, Trace* trace = nullptr) {
    directory_.republish_server(server, trace);
  }

  /// Drops expired pointers everywhere (driven by the event clock).
  /// `workers` > 1 fans the per-node sweeps out through sim/thread_pool
  /// (requires quiescence, like every whole-network pass).
  void expire_pointers(std::size_t workers = 1) {
    directory_.expire_pointers(workers);
  }

  /// Flushes every node's store and writes `dir`/manifest: clock, live
  /// membership, replica registry (see ObjectDirectory::checkpoint).
  /// Meaningful with StoreBackend::kPersistent — the basis of the
  /// kill-and-resume experiments.
  void checkpoint_stores(const std::string& dir) {
    directory_.checkpoint(dir);
  }
  /// Reloads the replica registry from `dir`/manifest (membership must
  /// already be rebuilt); returns the checkpoint clock.
  double restore_directory(const std::string& dir) {
    return directory_.restore(dir);
  }

  /// Soft-state heartbeat maintenance (§5.2, §6.5): every node probes its
  /// table entries, purging corpses it discovers, then slots emptied by
  /// failures hunt replacements until a fixpoint.
  void heartbeat_sweep(Trace* trace = nullptr) {
    maintenance_.heartbeat_sweep(trace);
  }

  // ------------------------------------------------------------------
  // Event-driven execution (per-hop on the EventQueue)
  // ------------------------------------------------------------------

  /// Event-driven publish: the replica registers immediately, the pointer
  /// deposits walk each root path one hop per event (delay = link distance
  /// * params.hop_delay_scale), interleaving with everything else queued.
  void publish_async(NodeId server, const Guid& guid, Trace* trace = nullptr,
                     ObjectDirectory::PublishCallback done = nullptr) {
    directory_.publish_async(server, guid, trace, std::move(done));
  }

  /// Event-driven locate: one routing decision per event; `done` fires at
  /// completion with the same LocateResult the synchronous path returns.
  void locate_async(NodeId client, const Guid& guid,
                    ObjectDirectory::LocateCallback done,
                    Trace* trace = nullptr) {
    directory_.locate_async(client, guid, std::move(done), trace);
  }

  /// Publishes/locates currently in flight on the event queue.
  [[nodiscard]] std::size_t async_in_flight() const noexcept {
    return directory_.async_in_flight();
  }

  /// Soft-state timers (§6.5) as recurring events: event-driven republish
  /// of every live replica each `republish_every`, expiry sweep each
  /// `expiry_every` (zero disables either).  The timers hold `trace` until
  /// stop_soft_state(): it must outlive them (unlike the one-shot APIs,
  /// where the pointer only lives for the call).
  void start_soft_state(double republish_every, double expiry_every,
                        Trace* trace = nullptr) {
    directory_.start_soft_state(republish_every, expiry_every, trace);
  }
  void stop_soft_state() { directory_.stop_soft_state(); }

  /// Periodic heartbeat sweep (§5.2) as a recurring event.  `trace` must
  /// outlive the timer (see start_soft_state).
  void start_heartbeats(double every, Trace* trace = nullptr) {
    maintenance_.start_heartbeats(every, trace);
  }
  void stop_heartbeats() { maintenance_.stop_heartbeats(); }

  // ------------------------------------------------------------------
  // Routing primitives
  // ------------------------------------------------------------------

  /// Surrogate-routes from `from` toward `target` (a GUID or node-ID) and
  /// returns the root reached (§2.3).  Repairs dead links lazily en route.
  RouteResult route_to_root(NodeId from, const Id& target,
                            Trace* trace = nullptr) {
    return router_.route_to_root(from, target, trace);
  }

  /// One routing decision at node `at` given cursor `state`.  Pure peek —
  /// never repairs; dead primaries are skipped in favor of live members.
  [[nodiscard]] std::optional<NodeId> route_step_peek(const NodeId& at,
                                                      const Id& target,
                                                      RouteState& state) const {
    return router_.route_step_peek(at, target, state);
  }

  /// The unique surrogate root for `target` (Theorem 2), computed from an
  /// arbitrary start without cost accounting.  Oracle-flavored convenience
  /// used by tests and the general-metric comparisons.
  [[nodiscard]] NodeId surrogate_root(const Id& target) const {
    return router_.surrogate_root(target);
  }

  /// Acknowledged multicast (Figure 8): applies `visit` exactly once on
  /// every live node whose ID starts with the first `prefix_len` digits of
  /// `pattern`.  `start` must carry that prefix.  Nodes in `exclude` are
  /// neither forwarded to nor visited.
  MulticastStats multicast(NodeId start, const Id& pattern,
                           unsigned prefix_len,
                           const std::function<void(NodeId)>& visit,
                           Trace* trace = nullptr,
                           const std::vector<NodeId>& exclude = {}) {
    return router_.multicast(start, pattern, prefix_len, visit, trace,
                             exclude);
  }

  // ------------------------------------------------------------------
  // Continual optimization (§6.4)
  // ------------------------------------------------------------------

  /// Moves a node to a new underlay location (network drift model).
  /// Tables are NOT fixed up — that is what the heuristics below are for.
  void relocate(NodeId node, Location loc) { maintenance_.relocate(node, loc); }

  /// Heuristic 1: re-rank every neighbor set of `node` by current distance
  /// (re-choosing primaries among the R links).
  void optimize_primaries(NodeId node, Trace* trace = nullptr) {
    maintenance_.optimize_primaries(node, trace);
  }

  /// Heuristic 4: ask each level-l neighbor for its level-l row and adopt
  /// closer members (the gossip scheme of §6.4 / Pastry / Tapestry [37]).
  void optimize_gossip(NodeId node, Trace* trace = nullptr) {
    maintenance_.optimize_gossip(node, trace);
  }

  /// Heuristic 2: rerun the full nearest-neighbor table construction for
  /// an existing node.
  void rebuild_neighbor_table(NodeId node, Trace* trace = nullptr) {
    maintenance_.rebuild_neighbor_table(node, trace);
  }

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept {
    return registry_.live_count();
  }
  [[nodiscard]] bool contains(const NodeId& id) const {
    return registry_.is_live(id);
  }
  [[nodiscard]] std::vector<NodeId> node_ids() const {  ///< live nodes
    return registry_.node_ids();
  }
  [[nodiscard]] TapestryNode& node(const NodeId& id) {
    return registry_.checked(id);
  }
  [[nodiscard]] const TapestryNode& node(const NodeId& id) const {
    return registry_.checked(id);
  }
  [[nodiscard]] double distance(const NodeId& a, const NodeId& b) const {
    return registry_.distance(a, b);
  }
  [[nodiscard]] const MetricSpace& space() const noexcept { return space_; }
  [[nodiscard]] const TapestryParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] EventQueue& events() noexcept { return events_; }
  [[nodiscard]] const EventQueue& events() const noexcept { return events_; }
  [[nodiscard]] double now() const noexcept { return events_.now(); }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] NodeId random_node_id(Rng& rng) const {
    return registry_.random_node_id(rng);
  }
  [[nodiscard]] NodeId fresh_node_id() {  ///< random, unused id
    return registry_.fresh_node_id();
  }

  /// Total routing-table links over live nodes (Table 1 "space").
  [[nodiscard]] std::size_t total_table_entries() const {
    return registry_.total_table_entries();
  }
  /// Total object-pointer records over live nodes.
  [[nodiscard]] std::size_t total_object_pointers() const {
    return registry_.total_object_pointers();
  }

  // ------------------------------------------------------------------
  // Ground truth / oracle accessors (tests and benches only)
  // ------------------------------------------------------------------

  /// Registered replica servers of a (base) guid, live ones only.
  [[nodiscard]] std::vector<NodeId> servers_of(const Guid& guid) const {
    return directory_.servers_of(guid);
  }
  /// All registered (guid, server) pairs, including dead servers.
  [[nodiscard]] std::vector<std::pair<Guid, NodeId>> published() const {
    return directory_.published();
  }
  /// Base guids whose replica registry lists `server` (dead or alive).
  [[nodiscard]] std::vector<Guid> guids_served_by(const NodeId& server) const {
    return directory_.guids_served_by(server);
  }
  /// Distance from client to the nearest live replica (stretch denominator).
  [[nodiscard]] double distance_to_nearest_replica(const NodeId& client,
                                                   const Guid& guid) const {
    return directory_.distance_to_nearest_replica(client, guid);
  }

  /// Oracle membership: registers a node without running the join
  /// protocol.  Pair with rebuild_static_tables() — this is the paper's
  /// static PRR preprocessing, used as ground truth by tests.
  NodeId insert_static(Location loc, std::optional<NodeId> id = std::nullopt);
  /// Bulk oracle membership: draws one fresh id per location (serially,
  /// so the id sequence matches repeated insert_static calls), then
  /// registers the whole batch with node construction fanned out across
  /// `workers` threads.  Returns the ids in location order.
  std::vector<NodeId> insert_static_bulk(const std::vector<Location>& locs,
                                         std::size_t workers = 0);
  /// Rebuilds every live node's table from global knowledge (Property 1+2
  /// by construction); `workers` > 1 fans the per-node work out with a
  /// bit-identical result (see MaintenanceEngine::rebuild_static_tables).
  void rebuild_static_tables(std::size_t workers = 1) {
    maintenance_.rebuild_static_tables(workers);
  }

  // ------------------------------------------------------------------
  // Invariant checks (throw tap::CheckError on violation)
  // ------------------------------------------------------------------

  /// Property 1 (consistency): an empty slot implies no live node with
  /// that prefix+digit exists.
  void check_property1() const;
  /// Property 2 (locality): fraction of non-empty slots whose primary is
  /// the true closest live node with that prefix+digit (1.0 = perfect).
  [[nodiscard]] double property2_quality() const;
  /// Property 4: every node on each (server -> root) publish path holds
  /// the pointer.  Non-const because walking routes may prune dead links.
  void check_property4() { directory_.check_property4(); }
  /// Forward links and backpointers mirror each other exactly.
  void check_backpointer_symmetry() const;

 private:
  const MetricSpace& space_;
  TapestryParams params_;
  Rng rng_;
  EventQueue events_;

  // Construction order matters: each layer takes references to the ones
  // above it; the router's repair hook and the transport seam are bound
  // in the constructor body.
  std::unique_ptr<Transport> transport_;
  NodeRegistry registry_;
  Router router_;
  ObjectDirectory directory_;
  MaintenanceEngine maintenance_;
};

}  // namespace tap
