// Network: the Tapestry overlay simulator — registry of nodes plus every
// distributed algorithm of the paper, instrumented for cost accounting.
//
// In a deployment each public method below is an RPC handler (or a chain of
// them) running *on* the named nodes; here they are methods of one object
// so that the simulator can account costs and check invariants, but every
// inter-node touch goes through Trace::hop with the metric distance between
// the endpoints, and no algorithm ever reads state its real counterpart
// could not.  The exceptions — oracle accessors used only by tests and
// benchmark ground truth — are grouped at the bottom and named accordingly.
//
// Method -> paper map:
//   route_to_root / route_step   §2.3 surrogate routing (both variants)
//   publish / locate / unpublish §2.2 object publication and location
//   multicast                    §4.1 acknowledged multicast (Figure 8)
//   join / join_via              §4   node insertion (Figure 7) using the
//                                §3   nearest-neighbor algorithm (Figure 4)
//   leave                        §5.1 voluntary delete (Figure 12)
//   fail + lazy repair           §5.2 involuntary delete
//   optimize_pointer / delete_backward  §4.2 (Figure 9)
//   republish_all / expire_pointers     §6.5 soft state
//   relocate / optimize_*        §6.4 continual optimization
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"
#include "src/sim/event_queue.h"
#include "src/sim/trace.h"
#include "src/tapestry/node.h"
#include "src/tapestry/params.h"

namespace tap {

/// Outcome of routing toward a root (surrogate routing, §2.3).
struct RouteResult {
  NodeId root{};
  std::size_t hops = 0;            ///< network hops (self-advances excluded)
  std::size_t surrogate_hops = 0;  ///< hops taken at/after the first hole
  double latency = 0.0;
  std::vector<NodeId> path{};      ///< distinct nodes visited, source first
};

/// Outcome of an object location query (§2.2).
struct LocateResult {
  bool found = false;
  NodeId server{};        ///< replica the query resolved to
  NodeId pointer_node{};  ///< node at which the object pointer was found
  std::size_t hops = 0;   ///< total application-level hops
  double latency = 0.0;   ///< total distance traveled by the query
};

/// Cost profile of one acknowledged multicast (§4.1).
struct MulticastStats {
  std::size_t reached = 0;
  std::size_t messages = 0;  ///< forwards + acknowledgments
  double traffic = 0.0;      ///< summed distance over all messages
  double completion = 0.0;   ///< longest forward+ack chain (completion time)
};

/// Mutable routing cursor: the digit position being resolved and, for the
/// PRR-like variant, whether a hole has been passed (§2.3).
struct RouteState {
  unsigned level = 0;
  bool past_hole = false;
};

class Network {
 public:
  /// The space determines message costs; nodes join at locations within it.
  /// All randomness (salts, root choice, id generation) flows from `seed`.
  Network(const MetricSpace& space, TapestryParams params,
          std::uint64_t seed = 1);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ------------------------------------------------------------------
  // Membership
  // ------------------------------------------------------------------

  /// Creates the first node of the overlay.  `id` defaults to random.
  NodeId bootstrap(Location loc, std::optional<NodeId> id = std::nullopt);

  /// Full dynamic insertion (Figure 7) via a uniformly random live gateway.
  NodeId join(Location loc, std::optional<NodeId> id = std::nullopt,
              Trace* trace = nullptr);

  /// Full dynamic insertion via a specific gateway node.
  NodeId join_via(NodeId gateway, Location loc,
                  std::optional<NodeId> id = std::nullopt,
                  Trace* trace = nullptr);

  /// Voluntary departure (§5.1): notifies backpointer holders with
  /// replacement hints, re-roots object pointers, then disconnects.
  void leave(NodeId node, Trace* trace = nullptr);

  /// Involuntary fail-stop (§5.2): the node simply stops responding; the
  /// rest of the network repairs lazily as it discovers the corpse.
  void fail(NodeId node);

  // ------------------------------------------------------------------
  // Objects
  // ------------------------------------------------------------------

  /// Publishes `guid` stored at `server`: routes a publish message toward
  /// each root in the root set, depositing an object pointer at every hop
  /// (§2.2, Figure 2).  Re-publishing refreshes soft state.
  void publish(NodeId server, const Guid& guid, Trace* trace = nullptr);

  /// Removes the replica mapping (guid -> server) along its root paths.
  void unpublish(NodeId server, const Guid& guid, Trace* trace = nullptr);

  /// Routes a query from `client` toward a (randomly chosen) root until an
  /// object pointer is found, then on to the closest replica (§2.2,
  /// Figure 3).
  LocateResult locate(NodeId client, const Guid& guid, Trace* trace = nullptr);

  /// Soft state (§6.5): re-publishes every (guid, server) pair currently
  /// registered, refreshing pointer expiry deadlines.
  void republish_all(Trace* trace = nullptr);

  /// Republishes the objects stored at one server (its periodic timer).
  void republish_server(NodeId server, Trace* trace = nullptr);

  /// Drops expired pointers everywhere (driven by the event clock).
  void expire_pointers();

  /// Soft-state heartbeat maintenance (§5.2, §6.5): every node probes its
  /// table entries, purging corpses it discovers, then slots emptied by
  /// failures hunt replacements until a fixpoint.  This is the periodic
  /// beacon pass a deployed Tapestry runs continuously; the churn
  /// experiments invoke it at each maintenance boundary.
  void heartbeat_sweep(Trace* trace = nullptr);

  // ------------------------------------------------------------------
  // Routing primitives
  // ------------------------------------------------------------------

  /// Surrogate-routes from `from` toward `target` (a GUID or node-ID) and
  /// returns the root reached (§2.3).  Repairs dead links lazily en route.
  RouteResult route_to_root(NodeId from, const Id& target,
                            Trace* trace = nullptr);

  /// One routing decision at node `at` given cursor `state`: returns the
  /// next (different) node and advances the cursor past any self-matching
  /// levels, or nullopt when `at` is the root.  Pure peek — never repairs;
  /// dead primaries are skipped in favor of live members.
  [[nodiscard]] std::optional<NodeId> route_step_peek(const NodeId& at,
                                                      const Id& target,
                                                      RouteState& state) const;

  /// The unique surrogate root for `target` (Theorem 2), computed from an
  /// arbitrary start without cost accounting.  Oracle-flavored convenience
  /// used by tests and the general-metric comparisons.
  [[nodiscard]] NodeId surrogate_root(const Id& target) const;

  /// Acknowledged multicast (Figure 8): applies `visit` exactly once on
  /// every live node whose ID starts with the first `prefix_len` digits of
  /// `pattern`.  `start` must carry that prefix.  Nodes in `exclude` are
  /// neither forwarded to nor visited.
  MulticastStats multicast(NodeId start, const Id& pattern,
                           unsigned prefix_len,
                           const std::function<void(NodeId)>& visit,
                           Trace* trace = nullptr,
                           const std::vector<NodeId>& exclude = {});

  // ------------------------------------------------------------------
  // Continual optimization (§6.4)
  // ------------------------------------------------------------------

  /// Moves a node to a new underlay location (network drift model).
  /// Tables are NOT fixed up — that is what the heuristics below are for.
  void relocate(NodeId node, Location loc);

  /// Heuristic 1: re-rank every neighbor set of `node` by current distance
  /// (re-choosing primaries among the R links).
  void optimize_primaries(NodeId node, Trace* trace = nullptr);

  /// Heuristic 4: ask each level-l neighbor for its level-l row and adopt
  /// closer members (the gossip scheme of §6.4 / Pastry / Tapestry [37]).
  void optimize_gossip(NodeId node, Trace* trace = nullptr);

  /// Heuristic 2: rerun the full nearest-neighbor table construction for
  /// an existing node.
  void rebuild_neighbor_table(NodeId node, Trace* trace = nullptr);

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }
  [[nodiscard]] bool contains(const NodeId& id) const;
  [[nodiscard]] std::vector<NodeId> node_ids() const;  ///< live nodes
  [[nodiscard]] TapestryNode& node(const NodeId& id);
  [[nodiscard]] const TapestryNode& node(const NodeId& id) const;
  [[nodiscard]] double distance(const NodeId& a, const NodeId& b) const;
  [[nodiscard]] const MetricSpace& space() const noexcept { return space_; }
  [[nodiscard]] const TapestryParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] EventQueue& events() noexcept { return events_; }
  [[nodiscard]] double now() const noexcept { return events_.now(); }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] NodeId random_node_id(Rng& rng) const;
  [[nodiscard]] NodeId fresh_node_id();  ///< random, unused id

  /// Total routing-table links over live nodes (Table 1 "space").
  [[nodiscard]] std::size_t total_table_entries() const;
  /// Total object-pointer records over live nodes.
  [[nodiscard]] std::size_t total_object_pointers() const;

  // ------------------------------------------------------------------
  // Ground truth / oracle accessors (tests and benches only)
  // ------------------------------------------------------------------

  /// Registered replica servers of a (base) guid, live ones only.
  [[nodiscard]] std::vector<NodeId> servers_of(const Guid& guid) const;
  /// All registered (guid, server) pairs, including dead servers.
  [[nodiscard]] std::vector<std::pair<Guid, NodeId>> published() const;
  /// Distance from client to the nearest live replica (stretch denominator).
  [[nodiscard]] double distance_to_nearest_replica(const NodeId& client,
                                                   const Guid& guid) const;

  /// Oracle membership: registers a node without running the join
  /// protocol.  Pair with rebuild_static_tables() — this is the paper's
  /// static PRR preprocessing, used as ground truth by tests.
  NodeId insert_static(Location loc, std::optional<NodeId> id = std::nullopt);
  /// Rebuilds every live node's table from global knowledge (Property 1+2
  /// by construction).
  void rebuild_static_tables();

  // ------------------------------------------------------------------
  // Invariant checks (throw tap::CheckError on violation)
  // ------------------------------------------------------------------

  /// Property 1 (consistency): an empty slot implies no live node with
  /// that prefix+digit exists.
  void check_property1() const;
  /// Property 2 (locality): fraction of non-empty slots whose primary is
  /// the true closest live node with that prefix+digit (1.0 = perfect).
  [[nodiscard]] double property2_quality() const;
  /// Property 4: every node on each (server -> root) publish path holds
  /// the pointer.  Non-const because walking routes may prune dead links.
  void check_property4();
  /// Forward links and backpointers mirror each other exactly.
  void check_backpointer_symmetry() const;

 private:
  friend class ParallelJoinCoordinator;  // event-driven insertion (§4.4)

  // --- registry internals ---
  TapestryNode* find(const NodeId& id);
  const TapestryNode* find(const NodeId& id) const;
  TapestryNode& checked(const NodeId& id);          // must exist
  TapestryNode& live(const NodeId& id);             // must exist and be alive
  [[nodiscard]] bool is_live(const NodeId& id) const;
  TapestryNode& register_node(NodeId id, Location loc);
  double dist_nodes(const TapestryNode& a, const TapestryNode& b) const;
  void acct(Trace* trace, const TapestryNode& a, const TapestryNode& b,
            std::size_t msgs = 1) const;

  // --- table maintenance ---
  /// owner.table slot (level, nbr.digit(level)) considers nbr; keeps
  /// backpointers coherent on insert and evict.  Returns true if inserted.
  bool link(TapestryNode& owner, unsigned level, TapestryNode& nbr);
  /// Removes nbr from owner's slot at `level` (if present).  NodeId is
  /// taken by value: callers often pass ids that live inside the very
  /// containers these routines mutate.
  void unlink(TapestryNode& owner, unsigned level, NodeId nbr);
  /// Offers `cand` to every slot of `host` it qualifies for (all levels
  /// l <= common prefix).  The paper's ADDTOTABLEIFCLOSER.
  bool add_to_table_if_closer(TapestryNode& host, TapestryNode& cand);

  // --- routing internals ---
  /// Node-ids to route around, e.g. "as if the new node had not yet
  /// entered the network" during insertion (Figure 10).
  using ExcludeSet = std::unordered_set<std::uint64_t>;
  /// Scans row `level` of `at` for the slot serving `desired` under the
  /// configured routing mode.  Returns the chosen digit or nullopt if the
  /// whole row is empty (cannot happen while self-entries are intact).
  [[nodiscard]] std::optional<unsigned> select_slot(
      const TapestryNode& at, unsigned level, unsigned desired,
      bool& past_hole, const ExcludeSet* exclude = nullptr) const;
  /// Live primary of a slot with lazy repair: prunes dead members it
  /// trips over (§5.2) and, if the slot empties, hunts a replacement.
  std::optional<NodeId> live_primary_repair(TapestryNode& at, unsigned level,
                                            unsigned digit, Trace* trace,
                                            const ExcludeSet* exclude = nullptr);
  /// Mutating route step with lazy repair.
  std::optional<NodeId> route_step(TapestryNode& at, const Id& target,
                                   RouteState& state, Trace* trace,
                                   const ExcludeSet* exclude = nullptr);

  // --- failure repair (§5.2) ---
  void purge_dead_neighbor(TapestryNode& at, NodeId dead, Trace* trace);
  std::optional<NodeId> find_replacement(TapestryNode& at, unsigned level,
                                         unsigned digit, Trace* trace);

  // --- pointer maintenance (§4.2, Figure 9) ---
  struct PendingReroute {
    Guid guid{};
    PointerRecord record{};
    std::optional<NodeId> next_hop{};  ///< hop at snapshot time
  };
  /// Snapshot the records of `at` whose next hop will change if tables
  /// change; used around table mutations.
  [[nodiscard]] std::vector<PendingReroute> snapshot_pointer_hops(
      const TapestryNode& at) const;
  /// Re-push the affected records along the new paths (OPTIMIZEOBJECTPTRS).
  void reroute_changed_pointers(TapestryNode& at,
                                const std::vector<PendingReroute>& before,
                                Trace* trace);
  void optimize_pointer(TapestryNode& from, const Guid& guid,
                        const PointerRecord& record, Trace* trace);
  void delete_backward(const NodeId& start, const Guid& guid,
                       const NodeId& server, const NodeId& changed,
                       Trace* trace);
  [[nodiscard]] std::optional<NodeId> pointer_next_hop(
      const TapestryNode& at, const Guid& guid,
      const PointerRecord& record) const;

  // --- join internals (§3-§4) ---
  void copy_preliminary_table(TapestryNode& nn, TapestryNode& surrogate,
                              unsigned max_level, Trace* trace);
  void link_and_xfer_root(TapestryNode& host, TapestryNode& nn, Trace* trace);
  void acquire_neighbor_table(TapestryNode& nn, unsigned max_level,
                              std::vector<NodeId> initial_list, Trace* trace);
  std::vector<NodeId> get_next_list(TapestryNode& nn,
                                    const std::vector<NodeId>& list,
                                    unsigned level,
                                    std::unordered_set<std::uint64_t>& contacted,
                                    Trace* trace);
  void build_row_from_list(TapestryNode& nn, const std::vector<NodeId>& list,
                           unsigned level);
  [[nodiscard]] std::vector<NodeId> trim_closest(const TapestryNode& nn,
                                                 std::vector<NodeId> list,
                                                 std::size_t k) const;

  // --- publish/locate internals ---
  void publish_one(TapestryNode& server, const Guid& salted, Trace* trace);
  void unpublish_one(TapestryNode& server, const Guid& salted, Trace* trace);
  /// One query attempt toward one (salted) root name.
  LocateResult locate_attempt(TapestryNode& client, const Guid& target,
                              Trace* trace);
  /// Picks the closest live replica among records; prunes dead-server
  /// records it trips over.  Returns nullopt when none is live.
  std::optional<PointerRecord> pick_live_replica(TapestryNode& holder,
                                                 const Guid& target,
                                                 const TapestryNode& relative_to);

  const MetricSpace& space_;
  TapestryParams params_;
  Rng rng_;
  EventQueue events_;

  std::vector<std::unique_ptr<TapestryNode>> nodes_;
  std::unordered_map<Id, std::size_t> index_;  // id -> nodes_ index
  std::size_t live_count_ = 0;

  // Ground-truth replica registry: base guid -> servers.  Drives
  // republish_all and the test oracles; the routing algorithms never read
  // it.
  std::unordered_map<Guid, std::vector<NodeId>> registry_;
};

}  // namespace tap
