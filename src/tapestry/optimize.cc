// Object-pointer redistribution (paper §4.2, Figure 9) and the continual
// optimization heuristics of §6.4.
//
// When the routing mesh changes the expected path from some object to its
// root (a closer primary was adopted, a node vanished, the new node filled
// a hole), the node whose forward route changed pushes the object pointer
// up the *new* path.  Where the new path meets the old one — detected by
// finding an existing record whose last-hop differs — a delete message
// walks the old path backward via the stored last-hop links, removing the
// outdated pointers (DELETEPOINTERSBACKWARD).  This keeps Property 4
// without republished-from-scratch traffic; plain soft-state republish
// remains as the backstop (§6.5).
#include "src/tapestry/network.h"

#include <algorithm>

namespace tap {

std::optional<NodeId> Network::pointer_next_hop(
    const TapestryNode& at, const Guid& guid,
    const PointerRecord& record) const {
  // Raw table walk: selection ignores liveness, exactly as the node itself
  // would route before discovering a corpse.  Deterministic in the table
  // contents, which is what "did the path change" must compare.
  RouteState state{record.level, record.past_hole};
  const unsigned digits = params_.id.num_digits;
  while (state.level < digits) {
    auto j = select_slot(at, state.level, guid.digit(state.level),
                         state.past_hole);
    TAP_ASSERT_MSG(j.has_value(), "routing row with no filled slot");
    const auto prim = at.table().at(state.level, *j).primary();
    TAP_ASSERT(prim.has_value());
    ++state.level;
    if (!(*prim == at.id())) return prim;
  }
  return std::nullopt;
}

std::vector<Network::PendingReroute> Network::snapshot_pointer_hops(
    const TapestryNode& at) const {
  std::vector<PendingReroute> out;
  for (const auto& [guid, rec] : at.store().snapshot())
    out.push_back(PendingReroute{guid, rec, pointer_next_hop(at, guid, rec)});
  return out;
}

void Network::reroute_changed_pointers(
    TapestryNode& at, const std::vector<PendingReroute>& before,
    Trace* trace) {
  for (const auto& p : before) {
    // The record may have been refreshed or dropped meanwhile; re-read.
    const PointerRecord* current = at.store().find(p.guid, p.record.server);
    if (current == nullptr) continue;
    const auto now_hop = pointer_next_hop(at, p.guid, *current);
    if (now_hop == p.next_hop) continue;
    optimize_pointer(at, p.guid, *current, trace);
  }
}

void Network::optimize_pointer(TapestryNode& from, const Guid& guid,
                               const PointerRecord& record, Trace* trace) {
  const NodeId changed = from.id();
  RouteState state{record.level, record.past_hole};
  TapestryNode* prev = &from;
  auto step = route_step(from, guid, state, trace);
  while (step.has_value()) {
    TapestryNode& v = live(*step);
    acct(trace, *prev, v);
    const PointerRecord* existing = v.store().find(guid, record.server);
    const std::optional<NodeId> old_sender =
        existing != nullptr ? existing->last_hop : std::nullopt;
    v.store().upsert(guid,
                     PointerRecord{record.server, prev->id(), state.level,
                                   state.past_hole, record.expires_at});
    if (existing != nullptr && old_sender.has_value() &&
        !(*old_sender == prev->id())) {
      // Converged onto the old path: above here nothing changed.  Prune the
      // outdated branch backward along last-hop links.
      if (!(*old_sender == changed))
        delete_backward(*old_sender, guid, record.server, changed, trace);
      return;
    }
    prev = &v;
    step = route_step(v, guid, state, trace);
  }
}

void Network::delete_backward(const NodeId& start, const Guid& guid,
                              const NodeId& server, const NodeId& changed,
                              Trace* trace) {
  // Two passes.  The paper's delete message walks the *changed node's* old
  // branch backward via last-hop links; but a record's last hop may belong
  // to a different deposit (the server's own publish path), in which case
  // walking blindly would destroy live pointers — including, ultimately,
  // the server's own record.  So first confirm that the chain actually
  // leads back to the changed node; only then delete it.  Unconfirmed
  // chains are left to soft-state expiry (§6.5) — under-deletion is safe,
  // over-deletion breaks Property 4.
  std::vector<NodeId> chain;
  bool confirmed = false;
  NodeId cur = start;
  for (unsigned i = 0; i <= params_.id.num_digits + 1; ++i) {
    if (cur == changed) {
      confirmed = true;
      break;
    }
    TapestryNode* w = find(cur);
    if (w == nullptr) break;
    const PointerRecord* rec = w->store().find(guid, server);
    if (rec == nullptr) break;
    if (!rec->last_hop.has_value()) break;  // reached the server's record
    chain.push_back(cur);
    cur = *rec->last_hop;
  }
  if (!confirmed) return;
  const TapestryNode* prev = nullptr;
  for (const NodeId& id : chain) {
    TapestryNode* w = find(id);
    TAP_ASSERT(w != nullptr);
    w->store().remove(guid, server);
    if (prev != nullptr) acct(trace, *prev, *w);
    prev = w;
  }
}

// ---------------------------------------------------------------------
// Continual optimization (§6.4)
// ---------------------------------------------------------------------

void Network::relocate(NodeId id, Location loc) {
  TapestryNode& n = live(id);
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  n.set_location(loc);
  // Deliberately no table fix-up: stored distances are now stale, exactly
  // the drift the §6.4 heuristics are designed to absorb.
}

void Network::optimize_primaries(NodeId id, Trace* trace) {
  TapestryNode& n = live(id);
  const auto before = snapshot_pointer_hops(n);
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l < digits; ++l) {
    for (unsigned j = 0; j < params_.id.radix(); ++j) {
      // Re-measure every member and re-rank; consider() re-sorts in place.
      auto members = n.table().at(l, j).entries();  // copy: we mutate below
      for (const auto& e : members) {
        if (e.id == n.id()) continue;
        const TapestryNode* other = find(e.id);
        if (other == nullptr || !other->alive) {
          unlink(n, l, e.id);
          continue;
        }
        acct(trace, n, *other, 2);  // distance probe
        n.table().at(l, j).consider(e.id, dist_nodes(n, *other));
      }
    }
  }
  reroute_changed_pointers(n, before, trace);
}

void Network::optimize_gossip(NodeId id, Trace* trace) {
  TapestryNode& n = live(id);
  const auto before = snapshot_pointer_hops(n);
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l < digits; ++l) {
    // Ask each level-l neighbor for its level-l row; adopt closer members
    // (the "local sharing of information" heuristic).
    const auto peers = n.table().row_members(l);
    for (const NodeId& m : peers) {
      if (m == n.id() || !is_live(m)) continue;
      TapestryNode& member = live(m);
      acct(trace, n, member, 2);  // row exchange
      for (const NodeId& x : member.table().row_members(l)) {
        if (x == n.id() || !is_live(x)) continue;
        link(n, l, live(x));
      }
    }
  }
  reroute_changed_pointers(n, before, trace);
}

void Network::rebuild_neighbor_table(NodeId id, Trace* trace) {
  TapestryNode& n = live(id);
  const auto before = snapshot_pointer_hops(n);
  // Deepest level at which anyone shares our prefix; the multicast over
  // that prefix regenerates the first list exactly as at insertion time.
  unsigned max_level = 0;
  for (unsigned l = 0; l < params_.id.num_digits; ++l)
    if (n.table().row_has_other(l)) max_level = l;
  std::vector<NodeId> list;
  multicast(
      id, n.id(), max_level,
      [&](NodeId y) {
        if (!(y == id)) list.push_back(y);
      },
      trace, {id});
  acquire_neighbor_table(n, max_level, std::move(list), trace);
  reroute_changed_pointers(n, before, trace);
}

}  // namespace tap
