#include "src/tapestry/locality.h"

#include <algorithm>

namespace tap {

LocalityManager::LocalityManager(Network& net, const TransitStubMetric& ts)
    : net_(net), ts_(ts) {
  TAP_CHECK(&net.space() == &ts,
            "LocalityManager requires the network's own transit-stub space");
}

std::size_t LocalityManager::stub_of(const NodeId& node) const {
  return ts_.stub_of(net_.node(node).location());
}

std::vector<NodeId> LocalityManager::stub_members(std::size_t stub) const {
  std::vector<NodeId> out;
  for (const NodeId& id : net_.node_ids())
    if (ts_.stub_of(net_.node(id).location()) == stub) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

NodeId LocalityManager::local_root(std::size_t stub, const Guid& guid) const {
  const std::vector<NodeId> members = stub_members(stub);
  TAP_CHECK(!members.empty(), "stub has no live members");
  // Longest prefix match first; among ties, the smallest wrap-around
  // next-digit offset (the Tapestry native rule), then the id itself.
  const unsigned radix = guid.radix();
  NodeId best = members.front();
  unsigned best_gcp = guid.common_prefix_len(best);
  auto offset = [&](const NodeId& m, unsigned gcp) -> unsigned {
    if (gcp >= guid.num_digits()) return 0;
    const unsigned want = guid.digit(gcp);
    const unsigned have = m.digit(gcp);
    return (have + radix - want) % radix;
  };
  for (const NodeId& m : members) {
    const unsigned g = guid.common_prefix_len(m);
    if (g > best_gcp ||
        (g == best_gcp && offset(m, g) < offset(best, best_gcp)) ||
        (g == best_gcp && offset(m, g) == offset(best, best_gcp) && m < best)) {
      best = m;
      best_gcp = g;
    }
  }
  return best;
}

void LocalityManager::publish(NodeId server, const Guid& guid, Trace* trace) {
  net_.publish(server, guid, trace);
  // Local branch: deposit a pointer at the stub's local root for every
  // salted name, so local queries resolve whichever root they pick.
  const std::size_t stub = stub_of(server);
  const double expires =
      net_.now() + net_.params().pointer_ttl;
  for (unsigned salt = 0; salt < net_.params().root_multiplicity; ++salt) {
    const Guid g = salted_guid(guid, salt);
    const NodeId root = local_root(stub, g);
    if (root == server) continue;  // the server already holds its own record
    if (trace != nullptr) trace->hop(net_.distance(server, root));
    net_.node(root).store().upsert(
        g, PointerRecord{server, server,
                         /*level=*/net_.params().id.num_digits,
                         /*past_hole=*/true, expires});
  }
}

void LocalityManager::unpublish(NodeId server, const Guid& guid, Trace* trace) {
  const std::size_t stub = stub_of(server);
  for (unsigned salt = 0; salt < net_.params().root_multiplicity; ++salt) {
    const Guid g = salted_guid(guid, salt);
    const NodeId root = local_root(stub, g);
    if (trace != nullptr) trace->hop(net_.distance(server, root));
    net_.node(root).store().remove(g, server);
  }
  net_.unpublish(server, guid, trace);
}

LocateResult LocalityManager::locate(NodeId client, const Guid& guid,
                                     Trace* trace) {
  // Local branch first: one round trip to the stub's local root.
  const std::size_t stub = stub_of(client);
  const Guid g0 = salted_guid(guid, 0);
  const NodeId root = local_root(stub, g0);
  Trace local(false);
  Trace* t = trace != nullptr ? trace : &local;
  const std::size_t msgs0 = t->messages();
  const double lat0 = t->latency();

  auto finish = [&](LocateResult r) {
    r.hops = t->messages() - msgs0;
    r.latency = t->latency() - lat0;
    return r;
  };

  if (!(root == client)) t->hop(net_.distance(client, root));
  auto records = net_.node(root).store().find_live(g0, net_.now());
  std::sort(records.begin(), records.end(),
            [&](const PointerRecord& a, const PointerRecord& b) {
              return net_.distance(client, a.server) <
                     net_.distance(client, b.server);
            });
  for (const auto& rec : records) {
    if (!net_.contains(rec.server)) continue;
    if (ts_.stub_of(net_.node(rec.server).location()) != stub) continue;
    // Local hit: hand the query straight to the replica.
    LocateResult r;
    r.found = true;
    r.pointer_node = root;
    r.server = rec.server;
    if (!(rec.server == root)) t->hop(net_.distance(root, rec.server));
    return finish(r);
  }

  // Local miss: resume wide-area location from the client.
  LocateResult wide = net_.locate(client, guid, t);
  return finish(wide);
}

}  // namespace tap
