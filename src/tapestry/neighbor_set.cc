#include "src/tapestry/neighbor_set.h"

#include <algorithm>

namespace tap {

namespace {
bool closer(const NeighborEntry& a, const NeighborEntry& b) {
  if (a.dist != b.dist) return a.dist < b.dist;
  return a.id < b.id;  // deterministic tiebreak
}
}  // namespace

void NeighborSet::insert_sorted(NeighborEntry e) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), e, closer);
  entries_.insert(it, e);
}

NeighborSet::ConsiderResult NeighborSet::consider(NodeId id, double dist) {
  TAP_CHECK(capacity_ > 0, "NeighborSet has zero capacity");
  ConsiderResult result;
  // Distance update path: remove and reinsert to keep order.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      if (it->dist == dist) {
        result.inserted = true;  // already a member, nothing to do
        return result;
      }
      NeighborEntry e = *it;
      entries_.erase(it);
      e.dist = dist;
      insert_sorted(e);
      result.inserted = true;
      return result;
    }
  }

  const std::size_t unpinned = unpinned_count();
  if (unpinned < capacity_) {
    insert_sorted(NeighborEntry{id, dist, false});
    result.inserted = true;
    return result;
  }

  // Find the farthest unpinned member; replace it if the candidate is
  // strictly closer (ties keep the incumbent for stability).
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it)
    if (!it->pinned) victim = it;  // entries_ sorted => last unpinned is farthest
  TAP_ASSERT(victim != entries_.end());
  if (closer(NeighborEntry{id, dist, false}, *victim)) {
    result.evicted = victim->id;
    entries_.erase(victim);
    insert_sorted(NeighborEntry{id, dist, false});
    result.inserted = true;
  }
  return result;
}

bool NeighborSet::remove(const NodeId& id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool NeighborSet::contains(const NodeId& id) const {
  for (const auto& e : entries_)
    if (e.id == id) return true;
  return false;
}

void NeighborSet::pin(NodeId id, double dist) {
  for (auto& e : entries_) {
    if (e.id == id) {
      e.pinned = true;
      return;
    }
  }
  insert_sorted(NeighborEntry{id, dist, true});
}

void NeighborSet::unpin(const NodeId& id, std::vector<NodeId>& evicted) {
  for (auto& e : entries_) {
    if (e.id == id) {
      e.pinned = false;
      enforce_capacity(evicted);
      return;
    }
  }
}

void NeighborSet::enforce_capacity(std::vector<NodeId>& evicted) {
  while (unpinned_count() > capacity_) {
    // Farthest unpinned member goes.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (!it->pinned) {
        evicted.push_back(it->id);
        entries_.erase(std::next(it).base());
        break;
      }
    }
  }
}

std::vector<NodeId> NeighborSet::pinned_members() const {
  std::vector<NodeId> out;
  for (const auto& e : entries_)
    if (e.pinned) out.push_back(e.id);
  return out;
}

std::size_t NeighborSet::unpinned_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (!e.pinned) ++n;
  return n;
}

}  // namespace tap
