// Striped table-link coherence primitives: the MaintenanceEngine
// link/unlink operations executed under the NodeLockTable discipline
// (node_locks.h), shared by every thread-parallel protocol driver —
// ThreadedJoinDriver (§4.4 joins) and ThreadedRepairDriver (§5.1 leaves,
// §5.2 fail repair, heartbeat sweeps).
//
// One copy of the rules so they cannot drift:
//   * a mutation of owner's slot plus the mirroring backpointer on the
//     other side happens under the two-node Guard (address-ordered,
//     deduplicated stripes);
//   * a third node touched as a side effect (the evictee of consider())
//     is never locked while two stripes are held — the pair is
//     re-validated after the locks drop (sync_backpointer), and the
//     temporally last validation for an (owner, member, level) triple
//     writes the truth;
//   * a thread holds at most one Guard at any instant, so the scheme is
//     deadlock-free by construction.
#pragma once

#include "src/tapestry/registry.h"

namespace tap::striped {

/// Validating backpointer mirror: sets member's backpointer to reflect
/// owner's *current* slot membership (not a replay of any one mutation).
inline void sync_backpointer(NodeRegistry& reg, const NodeLockTable& locks,
                             const NodeId& owner, const NodeId& member,
                             unsigned level) {
  TapestryNode* o = reg.find(owner);
  TapestryNode* m = reg.find(member);
  if (o == nullptr || m == nullptr) return;
  NodeLockTable::Guard g(locks, owner, member);
  if (o->table().at(level, member.digit(level)).contains(member))
    m->table().add_backpointer(level, owner);
  else
    m->table().remove_backpointer(level, owner);
}

/// MaintenanceEngine::link under the stripe discipline: consider + mirror
/// inside the pair guard, evictee re-synced after the guard drops.
inline bool link(NodeRegistry& reg, const NodeLockTable& locks,
                 TapestryNode& owner, unsigned level, TapestryNode& nbr) {
  TAP_ASSERT(!(owner.id() == nbr.id()));
  TAP_ASSERT_MSG(owner.id().matches_prefix(nbr.id(), level),
                 "neighbor does not share the slot's prefix");
  const unsigned digit = nbr.id().digit(level);
  NeighborSet::ConsiderResult res;
  {
    NodeLockTable::Guard g(locks, owner.id(), nbr.id());
    res = owner.table().consider(level, digit, nbr.id(),
                                 reg.dist(owner, nbr));
    if (res.inserted) nbr.table().add_backpointer(level, owner.id());
  }
  if (res.evicted.has_value())
    sync_backpointer(reg, locks, owner.id(), *res.evicted, level);
  return res.inserted;
}

/// MaintenanceEngine::unlink under the stripe discipline.  NodeId by
/// value: callers pass ids living inside the containers being mutated.
inline void unlink(NodeRegistry& reg, const NodeLockTable& locks,
                   TapestryNode& owner, unsigned level, NodeId nbr) {
  if (nbr == owner.id()) return;  // never drop self-entries
  NodeLockTable::Guard g(locks, owner.id(), nbr);
  if (owner.table().remove(level, nbr.digit(level), nbr)) {
    if (TapestryNode* n = reg.find(nbr))
      n->table().remove_backpointer(level, owner.id());
  }
}

/// The paper's ADDTOTABLEIFCLOSER over all shared-prefix levels.
inline bool add_to_table_if_closer(NodeRegistry& reg,
                                   const NodeLockTable& locks,
                                   TapestryNode& host, TapestryNode& cand,
                                   unsigned num_digits) {
  if (host.id() == cand.id()) return false;
  const unsigned gcp = host.id().common_prefix_len(cand.id());
  bool any = false;
  for (unsigned l = 0; l <= gcp && l < num_digits; ++l)
    any = link(reg, locks, host, l, cand) || any;
  return any;
}

}  // namespace tap::striped
