// PersistentStore: object pointers surviving node restarts (the DistHash
// direction in PAPERS.md — replicated/persistent object records).
//
// A MemoryStore mirror serves every read; each mutation is appended to a
// per-node write-ahead log before control returns.  When the log grows
// past a multiple of the live record count, the store compacts: it writes
// the mirror to a snapshot file (atomically, via tmp + rename) and starts
// a fresh log.  recover() — run automatically at construction — loads the
// snapshot and replays the log, rebuilding the exact visible state,
// including per-guid record order and bit-identical expiry deadlines
// (doubles round-trip through 17 significant digits).
//
// Files live under the scenario-named directory handed to the constructor:
//     <dir>/<node-id-hex>.snap     last compaction snapshot
//     <dir>/<node-id-hex>.wal      mutations since that snapshot
//
// Both files carry a header `H <digit_bits> <num_digits> <generation>`.
// The generation fences crash windows during compaction: a log is replayed
// only if its generation is newer than the snapshot's, so a crash between
// "snapshot renamed" and "log truncated" cannot double-apply the old log.
//
// Log records (text, one per line; doubles as %.17g, inf allowed):
//     U <guid> <server> <has_last_hop> <last_hop> <level> <past_hole> <expires>
//     R <guid> <server>                  remove
//     X <now>                            remove_expired sweep
//
// Durability model: appends are buffered; flush() (or destruction) pushes
// them to the OS.  The simulator's kill-and-resume experiments flush at
// checkpoint epochs — see ObjectDirectory::checkpoint.
#pragma once

#include <cstdio>
#include <string>

#include "src/tapestry/object_store.h"

namespace tap {

class PersistentStore : public ObjectStoreBackend {
 public:
  /// Opens (creating `dir` if needed) the files of node `id` and recovers
  /// whatever state they hold.  `spec` must match the ids in the files.
  PersistentStore(std::string dir, NodeId id, IdSpec spec);
  ~PersistentStore() override;

  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  void upsert(const Guid& guid, const PointerRecord& record) override;
  [[nodiscard]] std::optional<PointerRecord> find(
      const Guid& guid, const NodeId& server) const override {
    return mirror_.find(guid, server);
  }
  [[nodiscard]] std::vector<PointerRecord> find_all(
      const Guid& guid) const override {
    return mirror_.find_all(guid);
  }
  [[nodiscard]] std::vector<PointerRecord> find_live(
      const Guid& guid, double now) const override {
    return mirror_.find_live(guid, now);
  }
  void for_each_of(const Guid& guid, const Visitor& fn) const override {
    mirror_.for_each_of(guid, fn);
  }
  bool remove(const Guid& guid, const NodeId& server) override;
  std::size_t remove_expired(double now) override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return mirror_.size();
  }
  void for_each(const Visitor& fn) const override { mirror_.for_each(fn); }
  [[nodiscard]] std::vector<std::pair<Guid, PointerRecord>> snapshot()
      const override {
    return mirror_.snapshot();
  }
  [[nodiscard]] StoreStats stats() const override;
  void flush() override;

  /// Discards the mirror and rebuilds it from disk (snapshot + log
  /// replay).  Called by the constructor; exposed so tests can prove the
  /// round trip on a live store.  In-place recovery flushes the open log
  /// first, so every accepted mutation survives — the clean-restart path.
  /// Crash semantics (unflushed tail lost, torn final record truncated)
  /// apply when a *new* store opens files whose writer never flushed or
  /// closed; see the kill tests in tests/test_object_store.cc.
  void recover();

 private:
  void append_record(const char* line);
  void maybe_compact();
  void open_wal_for_append();
  void replay_file(const std::string& path, bool is_wal,
                   std::uint64_t snap_gen);

  std::string dir_;
  NodeId id_;
  IdSpec spec_;
  std::string wal_path_;
  std::string snap_path_;

  MemoryStore mirror_;
  std::FILE* wal_ = nullptr;
  std::uint64_t gen_ = 0;  ///< generation of the open log
  std::size_t wal_records_ = 0;
  std::size_t compact_backoff_ = 0;  ///< retry floor after a failed compact
  std::size_t wal_bytes_ = 0;
  std::size_t compactions_ = 0;
  std::size_t upserts_ = 0;
  std::size_t removes_ = 0;
  std::size_t expired_ = 0;
};

}  // namespace tap
