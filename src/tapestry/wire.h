// Wire format for inter-node messages (the Datagram transport seam).
//
// Every RPC that crosses a node boundary — routing hops (§3), publish /
// locate / unpublish pointer traffic (§2.2), the §4.1 acknowledged
// multicast, §6.5 heartbeats, §4.2 pointer reroutes, and the quorum
// replica protocol (docs/stores.md) — is describable as one `Message`: a
// typed header plus a kind-specific payload.  `Datagram` is the byte
// builder and `DatagramIterator` the bounds-checked reader (the Ardos
// shape); `encode`/`decode` map a Message to bytes and back losslessly,
// so a transport that round-trips through bytes produces results
// identical to direct calls.  docs/transport.md holds the layout table.
//
// Byte order is little-endian by construction (explicit shifts, no
// pointer punning), so encoded datagrams are portable across hosts and
// the accessors are ASan/UBSan-clean.  Doubles travel as their IEEE-754
// bit pattern (std::memcpy), which keeps simulated-time deadlines exact.
//
// Malformed input — truncated buffers, torn tails, unknown message
// kinds, invalid id shapes — raises WireError; it never invokes UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/tapestry/id.h"
#include "src/tapestry/object_store.h"

namespace tap {

/// Raised when a datagram cannot be decoded: truncation, unknown kind,
/// or an id shape the receiver cannot reconstruct.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Every inter-node RPC in the system, one tag per direction of each
/// exchange.  Keep kWireKindCount in sync and give each kind a row in
/// docs/transport.md.
enum class MessageKind : std::uint8_t {
  kRouteHop = 0,        ///< §3 surrogate-routing hop toward a target id
  kPublishDeposit,      ///< §2.2 publish: deposit a pointer at this hop
  kUnpublish,           ///< §2.2 unpublish: remove a pointer at this hop
  kLocateStep,          ///< §2.2 locate: query forwarded one hop rootward
  kLocateFound,         ///< §2.2 locate: pointer hit, forward to server
  kPointerOptimize,     ///< §4.2 OPTIMIZEOBJECTPTRS reroute deposit
  kDeleteBackward,      ///< §4.2 DELETEPOINTERSBACKWARD chain delete
  kMulticastForward,    ///< §4.1 acknowledged-multicast downward edge
  kMulticastAck,        ///< §4.1 acknowledged-multicast ack edge
  kHeartbeatProbe,      ///< §6.5 liveness probe
  kHeartbeatAck,        ///< §6.5 liveness probe response
  kReplicaWrite,        ///< quorum store: mirror a record to a holder
  kReplicaWriteAck,     ///< quorum store: holder write acknowledgement
  kReplicaRead,         ///< quorum store: read probe to a holder
  kReplicaReadReply,    ///< quorum store: holder's record set response
  kReplicaRemove,       ///< quorum store: withdraw a mirrored record
};

inline constexpr std::size_t kWireKindCount = 16;

/// Human-readable tag for counters, traces and docs.
[[nodiscard]] const char* message_kind_name(MessageKind kind);

/// One inter-node message: common header (kind, endpoints, target id)
/// plus the union of kind-specific fields.  Fields a kind does not use
/// stay default-initialized and are not encoded for it.
struct Message {
  MessageKind kind = MessageKind::kRouteHop;
  NodeId src{};                      ///< sending node
  NodeId dst{};                      ///< receiving node
  Id target{};                       ///< object guid or routing target
  NodeId server{};                   ///< storage server (pointer traffic)
  std::optional<NodeId> last_hop{};  ///< publish-path predecessor
  unsigned level = 0;                ///< routing level / multicast depth
  bool flag = false;                 ///< past_hole / alive / ack-ok bit
  double expires_at = 0.0;           ///< soft-state deadline (§6.5)
  std::vector<PointerRecord> records{};  ///< kReplicaReadReply payload

  [[nodiscard]] bool operator==(const Message& o) const;
};

/// Header-only constructor for the common case; callers fill the
/// kind-specific fields on the result before handing it to a transport.
[[nodiscard]] inline Message make_message(MessageKind kind, NodeId src,
                                          NodeId dst, Id target) {
  Message m;
  m.kind = kind;
  m.src = src;
  m.dst = dst;
  m.target = target;
  return m;
}

/// Append-only byte builder for one wire message.
class Datagram {
 public:
  void add_u8(std::uint8_t v) { buf_.push_back(v); }
  void add_bool(bool v) { add_u8(v ? 1 : 0); }
  void add_u16(std::uint16_t v) {
    add_u8(static_cast<std::uint8_t>(v & 0xff));
    add_u8(static_cast<std::uint8_t>(v >> 8));
  }
  void add_u32(std::uint32_t v) {
    add_u16(static_cast<std::uint16_t>(v & 0xffff));
    add_u16(static_cast<std::uint16_t>(v >> 16));
  }
  void add_u64(std::uint64_t v) {
    add_u32(static_cast<std::uint32_t>(v & 0xffffffffu));
    add_u32(static_cast<std::uint32_t>(v >> 32));
  }
  /// IEEE-754 bit pattern; exact round-trip for every finite and
  /// non-finite value (infinity is the default pointer TTL).
  void add_f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v, "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof bits);
    add_u64(bits);
  }

  [[nodiscard]] const std::uint8_t* data() const { return buf_.data(); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  /// Moves the underlying buffer out (the datagram is empty afterwards).
  [[nodiscard]] std::vector<std::uint8_t> release() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked sequential reader over an encoded datagram.  Every
/// accessor throws WireError instead of reading past the end.
class DatagramIterator {
 public:
  DatagramIterator(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit DatagramIterator(const Datagram& dg)
      : DatagramIterator(dg.data(), dg.size()) {}
  explicit DatagramIterator(const std::vector<std::uint8_t>& buf)
      : DatagramIterator(buf.data(), buf.size()) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t get_u8() {
    require(1);
    return data_[pos_++];
  }
  bool get_bool() { return get_u8() != 0; }
  std::uint16_t get_u16() {
    const std::uint16_t lo = get_u8();
    return static_cast<std::uint16_t>(lo |
                                      (std::uint16_t{get_u8()} << 8));
  }
  std::uint32_t get_u32() {
    const std::uint32_t lo = get_u16();
    return lo | (std::uint32_t{get_u16()} << 16);
  }
  std::uint64_t get_u64() {
    const std::uint64_t lo = get_u32();
    return lo | (std::uint64_t{get_u32()} << 32);
  }
  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Fails decoding unless exactly the declared payload was consumed —
  /// catches torn tails that truncate *between* fields as well as trailing
  /// garbage appended to a valid message.
  void expect_exhausted() const {
    if (pos_ != size_)
      throw WireError("datagram has " + std::to_string(size_ - pos_) +
                      " unconsumed trailing byte(s)");
  }

 private:
  void require(std::size_t n) const {
    if (size_ - pos_ < n)
      throw WireError("datagram truncated: need " + std::to_string(n) +
                      " byte(s) at offset " + std::to_string(pos_) +
                      " of " + std::to_string(size_));
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Serializes `m` into wire bytes.  Layout (docs/transport.md):
/// header [u8 kind][u8 digit_bits][u8 num_digits][u64 src][u64 dst]
/// [u64 target], then the kind-specific payload.
[[nodiscard]] Datagram encode(const Message& m);

/// Parses wire bytes back into a Message.  Throws WireError on any
/// malformed input; never exhibits UB on adversarial bytes.
[[nodiscard]] Message decode(const std::uint8_t* data, std::size_t size);
[[nodiscard]] inline Message decode(const Datagram& dg) {
  return decode(dg.data(), dg.size());
}
[[nodiscard]] inline Message decode(const std::vector<std::uint8_t>& buf) {
  return decode(buf.data(), buf.size());
}

}  // namespace tap
