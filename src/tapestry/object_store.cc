#include "src/tapestry/object_store.h"

#include "src/common/assert.h"

namespace tap {

void ObjectStore::upsert(const Guid& guid, const PointerRecord& record) {
  TAP_CHECK(guid.valid() && record.server.valid(),
            "upsert needs valid guid and server");
  auto& vec = map_[guid];
  for (auto& r : vec) {
    if (r.server == record.server) {
      r = record;
      return;
    }
  }
  vec.push_back(record);
  ++count_;
}

PointerRecord* ObjectStore::find(const Guid& guid, const NodeId& server) {
  auto it = map_.find(guid);
  if (it == map_.end()) return nullptr;
  for (auto& r : it->second)
    if (r.server == server) return &r;
  return nullptr;
}

const PointerRecord* ObjectStore::find(const Guid& guid,
                                       const NodeId& server) const {
  return const_cast<ObjectStore*>(this)->find(guid, server);
}

std::vector<PointerRecord> ObjectStore::find_all(const Guid& guid) const {
  auto it = map_.find(guid);
  if (it == map_.end()) return {};
  return it->second;
}

std::vector<PointerRecord> ObjectStore::find_live(const Guid& guid,
                                                  double now) const {
  std::vector<PointerRecord> out;
  auto it = map_.find(guid);
  if (it == map_.end()) return out;
  for (const auto& r : it->second)
    if (r.expires_at >= now) out.push_back(r);
  return out;
}

bool ObjectStore::remove(const Guid& guid, const NodeId& server) {
  auto it = map_.find(guid);
  if (it == map_.end()) return false;
  auto& vec = it->second;
  for (auto r = vec.begin(); r != vec.end(); ++r) {
    if (r->server == server) {
      vec.erase(r);
      --count_;
      if (vec.empty()) map_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t ObjectStore::remove_expired(double now) {
  std::size_t removed = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    auto& vec = it->second;
    for (auto r = vec.begin(); r != vec.end();) {
      if (r->expires_at < now) {
        r = vec.erase(r);
        ++removed;
        --count_;
      } else {
        ++r;
      }
    }
    it = vec.empty() ? map_.erase(it) : std::next(it);
  }
  return removed;
}

void ObjectStore::for_each(
    const std::function<void(const Guid&, const PointerRecord&)>& fn) const {
  for (const auto& [guid, vec] : map_)
    for (const auto& r : vec) fn(guid, r);
}

std::vector<std::pair<Guid, PointerRecord>> ObjectStore::snapshot() const {
  std::vector<std::pair<Guid, PointerRecord>> out;
  out.reserve(count_);
  for_each([&](const Guid& g, const PointerRecord& r) { out.emplace_back(g, r); });
  return out;
}

}  // namespace tap
