#include "src/tapestry/object_store.h"

#include "src/common/assert.h"
#include "src/tapestry/params.h"
#include "src/tapestry/persistent_store.h"
#include "src/tapestry/replicated_store.h"
#include "src/tapestry/sharded_store.h"

namespace tap {

void MemoryStore::upsert(const Guid& guid, const PointerRecord& record) {
  TAP_CHECK(guid.valid() && record.server.valid(),
            "upsert needs valid guid and server");
  ++upserts_;
  auto& vec = map_[guid];
  for (auto& r : vec) {
    if (r.server == record.server) {
      r = record;
      return;
    }
  }
  vec.push_back(record);
  ++count_;
}

std::optional<PointerRecord> MemoryStore::find(const Guid& guid,
                                               const NodeId& server) const {
  auto it = map_.find(guid);
  if (it == map_.end()) return std::nullopt;
  for (const auto& r : it->second)
    if (r.server == server) return r;
  return std::nullopt;
}

std::vector<PointerRecord> MemoryStore::find_all(const Guid& guid) const {
  auto it = map_.find(guid);
  if (it == map_.end()) return {};
  return it->second;
}

std::vector<PointerRecord> MemoryStore::find_live(const Guid& guid,
                                                  double now) const {
  std::vector<PointerRecord> out;
  auto it = map_.find(guid);
  if (it == map_.end()) return out;
  for (const auto& r : it->second)
    if (r.expires_at >= now) out.push_back(r);
  return out;
}

void MemoryStore::for_each_of(const Guid& guid, const Visitor& fn) const {
  auto it = map_.find(guid);
  if (it == map_.end()) return;
  for (const auto& r : it->second) fn(guid, r);
}

bool MemoryStore::remove(const Guid& guid, const NodeId& server) {
  auto it = map_.find(guid);
  if (it == map_.end()) return false;
  auto& vec = it->second;
  for (auto r = vec.begin(); r != vec.end(); ++r) {
    if (r->server == server) {
      vec.erase(r);
      --count_;
      ++removes_;
      if (vec.empty()) map_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t MemoryStore::remove_expired(double now) {
  std::size_t removed = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    auto& vec = it->second;
    for (auto r = vec.begin(); r != vec.end();) {
      if (r->expires_at < now) {
        r = vec.erase(r);
        ++removed;
        --count_;
      } else {
        ++r;
      }
    }
    it = vec.empty() ? map_.erase(it) : std::next(it);
  }
  expired_ += removed;
  return removed;
}

void MemoryStore::for_each(const Visitor& fn) const {
  for (const auto& [guid, vec] : map_)
    for (const auto& r : vec) fn(guid, r);
}

std::vector<std::pair<Guid, PointerRecord>> MemoryStore::snapshot() const {
  std::vector<std::pair<Guid, PointerRecord>> out;
  out.reserve(count_);
  for_each([&](const Guid& g, const PointerRecord& r) { out.emplace_back(g, r); });
  return out;
}

StoreStats MemoryStore::stats() const {
  StoreStats s;
  s.backend = "memory";
  s.records = count_;
  s.upserts = upserts_;
  s.removes = removes_;
  s.expired = expired_;
  return s;
}

std::unique_ptr<ObjectStoreBackend> make_object_store(
    const TapestryParams& params, const NodeId& id) {
  switch (params.store_backend) {
    case StoreBackend::kMemory:
      return std::make_unique<MemoryStore>();
    case StoreBackend::kSharded:
      return std::make_unique<ShardedStore>();
    case StoreBackend::kPersistent:
      TAP_CHECK(!params.store_dir.empty(),
                "StoreBackend::kPersistent requires params.store_dir");
      return std::make_unique<PersistentStore>(params.store_dir, id,
                                               params.id);
    case StoreBackend::kReplicated:
      return std::make_unique<ReplicatedStore>(std::make_unique<MemoryStore>(),
                                               "replicated");
    case StoreBackend::kReplicatedPersistent:
      TAP_CHECK(!params.store_dir.empty(),
                "StoreBackend::kReplicatedPersistent requires params.store_dir");
      return std::make_unique<ReplicatedStore>(
          std::make_unique<PersistentStore>(params.store_dir, id, params.id),
          "replicated+persist");
  }
  TAP_CHECK(false,
            "unknown StoreBackend (valid: memory, sharded, persist, "
            "replicated, replicated+persist)");
  return nullptr;  // unreachable
}

}  // namespace tap
