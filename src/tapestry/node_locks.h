// NodeLockTable: striped per-node mutexes for the thread-parallel
// protocol paths — §4.4 joins (threaded_join.h), §5.1 leaves / §5.2
// fail-stop repair / heartbeat sweeps (threaded_repair.h), and the
// guarded §4.2 pointer reroutes those repair waves perform inline
// (ObjectDirectory::*_guarded).
//
// The registry's index is already lock-free for readers, and the object
// stores bring their own synchronisation (ShardedStore's guid stripes) —
// what has none is the per-node *protocol* state: the RoutingTable (slots,
// occupancy masks, backpointers) and the transient insertion flags
// (`inserting`, `psurrogate`).  When joins run on real threads, every
// access to that state goes through this table: node ids hash onto a fixed
// array of mutexes, so the lock footprint is O(stripes) regardless of
// overlay size and nodes registered mid-wave are covered automatically.
//
// Deadlock discipline: a thread holds at most one Guard at a time.  The
// two-node Guard (table mutation + backpointer mirror on the other side)
// acquires its stripes in address order — the global order every thread
// shares — and collapses to a single lock when both ids hash to the same
// stripe.  Operations that would touch a third node (eviction side
// effects) drop their locks first and then re-synchronise the affected
// pair; see striped::sync_backpointer (striped_links.h), the one copy of
// these rules every threaded driver delegates to.
#pragma once

#include <array>
#include <mutex>

#include "src/common/rng.h"
#include "src/sim/metrics.h"
#include "src/tapestry/id.h"

namespace tap {

class NodeLockTable {
 public:
  static constexpr std::size_t kStripeCount = 1024;

  [[nodiscard]] std::mutex& stripe(const NodeId& id) const noexcept {
    return mu_[splitmix64(id.value()) & (kStripeCount - 1)];
  }

  /// RAII lock over one node's stripe, or over two nodes' stripes acquired
  /// in address order (deduplicated when they collide).
  class Guard {
   public:
    Guard(const NodeLockTable& t, const NodeId& a) : first_(&t.stripe(a)) {
      lock_counted(first_);
    }
    Guard(const NodeLockTable& t, const NodeId& a, const NodeId& b) {
      std::mutex* x = &t.stripe(a);
      std::mutex* y = &t.stripe(b);
      if (x == y) {
        first_ = x;
        lock_counted(first_);
        return;
      }
      if (x > y) std::swap(x, y);
      first_ = x;
      second_ = y;
      lock_counted(first_);
      lock_counted(second_);
    }
    ~Guard() {
      if (second_ != nullptr) second_->unlock();
      first_->unlock();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    // A failed try_lock is a contended acquisition — the volatile
    // contention counter measures real waiting, not lock traffic.
    static void lock_counted(std::mutex* m) {
      if (m->try_lock()) return;
      metrics::stripe_lock_contention_total().inc();
      m->lock();
    }

    std::mutex* first_ = nullptr;
    std::mutex* second_ = nullptr;
  };

 private:
  mutable std::array<std::mutex, kStripeCount> mu_;
};

}  // namespace tap
