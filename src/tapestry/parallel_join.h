// Simultaneous insertion (paper §4.4): event-driven acknowledged multicast
// with pinned pointers, watch lists, and filled-hole cross-notification
// (Figure 11), so that nodes inserting at overlapping times discover each
// other and Property 1 holds when the dust settles (Theorem 6).
//
// Mechanics reproduced from the paper:
//   * pinned pointers — a multicast recipient inserts the inserting node
//     into the slot it fills as a *pinned* table entry; pinned entries are
//     never evicted, and multicast forwarding for that slot goes to one
//     unpinned member plus ALL pinned members (Lemma 4); the pin is
//     released when the recipient's subtree is fully acknowledged;
//   * filled-hole forwarding — a leaf that notices the hole an inserter
//     fills is *already* filled forwards the multicast to the other
//     fillers, so conflicting same-hole inserters learn about each other
//     before either multicast completes (Lemma 5);
//   * watch lists — the multicast carries the set of table slots the
//     inserter knows no node for; any recipient able to fill a watched
//     slot reports the filler directly to the inserter and marks the slot
//     found before forwarding (Lemma 6);
//   * core-start rule — multicasts start at a core node: if the surrogate
//     reached by routing is itself still inserting, the request bounces to
//     that node's own surrogate (cf. Figure 10).
//
// Message interleaving is genuine: every forward, report, and ack is an
// EventQueue event whose delivery time is the metric distance (plus
// optional jitter), so two insertions racing for the same hole exercise
// the same orderings a real network would.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/tapestry/network.h"

namespace tap {

/// One forwarding target of the §4.4 acknowledged multicast.
struct MulticastChild {
  NodeId id{};
  unsigned prefix_len = 0;
};

/// The §4.4 forwarding-target rule, shared by the event coordinator and
/// the threaded driver so the two execute the SAME protocol: walking
/// `at`'s prefix chain from `prefix_len`, per slot one unpinned member
/// plus all pinned members (Lemma 4), stopping at the first row where
/// `at` is alone; plus the members already filling the session's
/// (alpha, hole_digit) slot so conflicting same-hole inserters learn of
/// each other (MULTICASTTOFILLEDHOLE, Lemma 5).  Pure function of the
/// node's table and the session constants; the caller provides whatever
/// synchronisation the read needs (the threaded driver holds `at`'s
/// stripe, the coordinator is single-threaded).
[[nodiscard]] std::vector<MulticastChild> multicast_children(
    NodeRegistry& reg, const TapestryNode& at, const NodeId& nn,
    unsigned prefix_len, unsigned alpha, unsigned hole_digit,
    const std::unordered_set<std::uint64_t>& processed);

class ParallelJoinCoordinator {
 public:
  struct Request {
    Location loc{};
    std::optional<NodeId> id{};
    double start_time = 0.0;   ///< absolute event-queue time
    NodeId gateway{};          ///< must be a core node at start_time
  };

  struct Outcome {
    NodeId id{};
    NodeId surrogate{};        ///< core node the multicast started from
    unsigned alpha = 0;        ///< prefix length of the filled hole
    double start_time = 0.0;
    double core_time = 0.0;    ///< multicast fully acknowledged (Def. 1)
    double done_time = 0.0;    ///< neighbor table complete
    std::size_t messages = 0;  ///< total messages attributed to this join
  };

  /// `jitter` adds uniform [0, jitter] extra delay to every message so that
  /// racing multicasts interleave in varied (but seeded) orders.
  explicit ParallelJoinCoordinator(Network& net, double jitter = 0.0);

  /// Schedules all requested insertions on the network's event queue, runs
  /// it to quiescence, and returns per-join outcomes in request order.
  std::vector<Outcome> run(const std::vector<Request>& requests);

 private:
  struct WatchList {
    // One bitmask per level: bit j set => slot (level, j) still unknown to
    // the inserting node.  Initialised as the complement of the new node's
    // routing-table occupancy masks (single-word rows; the coordinator
    // checks radix <= 64, which covers every digit_bits <= 6 IdSpec).
    std::vector<std::uint64_t> missing;
  };

  struct Session {
    std::size_t index = 0;  ///< position in the request/outcome vectors
    NodeId nn{};
    NodeId surrogate{};
    unsigned alpha = 0;
    unsigned hole_digit = 0;
    std::unordered_set<std::uint64_t> processed;  ///< nodes that ran FUNCTION
    std::unordered_set<std::uint64_t> pinned_at;  ///< nodes holding a pin
    std::vector<NodeId> visited;                  ///< the α-list being built
    Trace trace{};
    bool multicast_done = false;
  };

  // Per-(session, node) forwarding state: outstanding child acks + parent.
  struct PendingAcks {
    std::size_t remaining = 0;
    std::optional<NodeId> parent{};  ///< none at the session's start node
    double started = 0.0;
  };

  void start_join(std::size_t index, const Request& req);
  void deliver_multicast(std::size_t session_idx, NodeId to,
                         std::optional<NodeId> parent, unsigned prefix_len,
                         WatchList watch);
  void handle_multicast(std::size_t session_idx, NodeId at,
                        std::optional<NodeId> parent, unsigned prefix_len,
                        WatchList watch);
  void deliver_ack(std::size_t session_idx, NodeId from, NodeId to);
  void handle_ack(std::size_t session_idx, NodeId at);
  void release_pin(std::size_t session_idx, const NodeId& at);
  void finish_multicast(std::size_t session_idx);
  void check_watch_list(std::size_t session_idx, TapestryNode& at,
                        WatchList& watch);
  double delay(const NodeId& a, const NodeId& b);

  Network& net_;
  double jitter_;
  std::vector<Session> sessions_;
  std::vector<Outcome> outcomes_;
  // Keyed by (session << 32) ^ node-hash? Simpler: per session, map node
  // value -> PendingAcks.
  std::vector<std::unordered_map<std::uint64_t, PendingAcks>> pending_;
};

}  // namespace tap
