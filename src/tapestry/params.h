// Tunable parameters of the Tapestry overlay (paper §2-§4).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "src/tapestry/id.h"

namespace tap {

/// Which per-node object-store backend the overlay's nodes use (see
/// src/tapestry/object_store.h for the contract and the implementations).
enum class StoreBackend {
  kMemory,      ///< unordered_map; the conformance reference
  kSharded,     ///< striped internal locks; concurrent batch/expiry drains
  kPersistent,  ///< WAL + compacting snapshot; survives node restarts
  kReplicated,  ///< memory store + quorum-replicated mirrors at the root's
                ///< k-nearest neighbor set (replicated_store.{h,cc})
  kReplicatedPersistent,  ///< the same replication over a persistent inner
                          ///< store; needs `store_dir` like kPersistent
};

/// How inter-node messages travel (see src/tapestry/transport.h and
/// docs/transport.md for the wire format and the selection contract).
enum class TransportKind {
  kDirect,    ///< plain function calls; byte-identical to the pre-seam build
  kLoopback,  ///< every message encoded to Datagram bytes, queued, decoded
};

/// Which localized surrogate-routing variant to use (paper §2.3).
enum class RoutingMode {
  /// "Tapestry Native Routing": on a hole, route to the next filled entry
  /// in the same level, wrapping around digit values.
  kTapestryNative,
  /// "Distributed PRR-like Routing": before the first hole route exactly;
  /// at and after the first hole prefer digits matching in the most
  /// significant bits, breaking ties toward numerically higher digits.
  kPrrLike,
};

/// Knobs of the demand-driven replica placement policy (see
/// src/tapestry/hotspot.h).  All rates are exponentially decayed query
/// counts; time constants are in simulated time units.
struct HotspotParams {
  /// Half-life of the per-object demand estimate: a query contributes
  /// half its weight this long after it completed.
  double half_life = 4.0;
  /// Decayed query count at which the first extra replica is published;
  /// replica k+1 requires (k+1) times this, spacing promotions out as
  /// demand keeps climbing.
  double promote_threshold = 12.0;
  /// Decayed query count below which the newest extra replica is
  /// withdrawn again (one per decay tick, so flash crowds drain
  /// gradually).  Must be below promote_threshold or replicas thrash.
  double demote_threshold = 2.0;
  /// Cap on extra replicas per object (beyond those the workload
  /// published).
  unsigned max_extra_replicas = 2;
  /// Period of the recurring decay/demotion tick; <= 0 disables it.
  double check_interval = 2.0;
  /// Upper bound on concurrently tracked objects; demand for objects
  /// beyond it goes unrecorded until states decay away.
  std::size_t max_tracked = 4096;
  /// How many distinct querying clients to remember per object —
  /// promotion places the replica at the heaviest remembered one.
  std::size_t demand_sites = 8;
};

/// Knobs of the quorum-replicated pointer store (see
/// src/tapestry/replicated_store.h).  N = k holders per object; the
/// DistHash-style intersection property needs w + r > k so every quorum
/// read overlaps every acknowledged write.
struct ReplicationParams {
  /// Replica holders per published object: the k live nodes nearest to
  /// the object's root (excluding the root itself).
  unsigned k = 3;
  /// Replica writes that must succeed for a publish to count as
  /// replicated (the write quorum W).
  unsigned w = 2;
  /// Holder responses a quorum read gathers before merging (the read
  /// quorum R).
  unsigned r = 2;
};

struct TapestryParams {
  IdSpec id{};

  /// R (paper §2.1): each neighbor set N_{β,j} keeps at most `redundancy`
  /// members — the closest ones.  R > 1 provides the backup links used for
  /// fault-resilience (§2.4: current implementation keeps two backups, so
  /// R = 3 overall).
  unsigned redundancy = 3;

  /// k (paper §3): length of the per-level closest-node lists maintained
  /// while building a neighbor table.  0 = automatic: k = ceil(k_scale *
  /// log2(n)) clamped to [k_min, n], following Theorem 3's k = O(log n).
  unsigned list_size_k = 0;
  double k_scale = 3.0;
  unsigned k_min = 8;

  /// |R_psi| (paper §2.2, Observation 2): number of roots per object.
  unsigned root_multiplicity = 1;

  RoutingMode routing = RoutingMode::kTapestryNative;

  /// Soft-state TTL for object pointers in simulated time units (§6.5).
  /// Infinity disables expiry (static experiments).
  double pointer_ttl = std::numeric_limits<double>::infinity();

  /// Simulated transmission delay per unit of metric distance for the
  /// event-driven (async) operations: a hop across distance d occupies
  /// d * hop_delay_scale units on the EventQueue before the next step
  /// fires.  Cost accounting (hop counts, latency statistics) always uses
  /// the raw distances and is unaffected.  Kept small by default so that
  /// individual operations are fast relative to soft-state timers — the
  /// paper's model treats per-message delay as negligible against TTLs.
  double hop_delay_scale = 1e-3;

  /// Capacity of each node's locate cache (src/tapestry/hotspot.h): the
  /// per-node LRU of guid -> (pointer holder, replica) hints consulted by
  /// locate before routing onward.  0 (the default) disables caching —
  /// the locate path is then byte-identical to the uncached build.
  std::size_t locate_cache_size = 0;

  /// Additional age cap on locate-cache entries.  An entry never outlives
  /// the pointer record it was learned from; a finite value here tightens
  /// that further.  Infinity (default) defers entirely to pointer_ttl.
  double locate_cache_ttl = std::numeric_limits<double>::infinity();

  /// §2.4: "PRR searches on the primary and secondary neighbors before
  /// taking an additional hop towards the object root."  When set, a
  /// query that misses locally probes the secondary members of the slot
  /// it is about to route through (2 messages each) before hopping —
  /// PRR's object-location behaviour; off (Tapestry behaviour) queries
  /// only primaries.
  bool prr_secondary_search = false;

  /// Observation 1: with root_multiplicity > 1 and independent root
  /// names, a query that misses on one root retries the others, giving
  /// fault tolerance against root failures without waiting for soft
  /// state.  Off, locate tries a single randomly drawn root (the paper's
  /// base behaviour).
  bool retry_all_roots = false;

  /// Object-store backend every node of the overlay instantiates (via
  /// make_object_store).  kPersistent and kReplicatedPersistent
  /// additionally need `store_dir`.
  StoreBackend store_backend = StoreBackend::kMemory;

  /// Wire layer every inter-node message of the overlay travels through
  /// (via make_transport).  kDirect preserves today's call semantics;
  /// kLoopback serializes each message through the Datagram format.
  TransportKind transport = TransportKind::kDirect;

  /// Quorum knobs of the replicated backends; ignored by the others.
  ReplicationParams replication{};

  /// Directory holding the per-node WAL/snapshot files of the persistent
  /// backend (scenario-named by the drivers; ignored by other backends).
  std::string store_dir{};

  [[nodiscard]] unsigned effective_k(std::size_t n) const {
    if (list_size_k != 0) return list_size_k;
    const double lg = std::log2(static_cast<double>(n < 2 ? 2 : n));
    const auto k = static_cast<unsigned>(std::ceil(k_scale * lg));
    const auto clamped = k < k_min ? k_min : k;
    return n == 0 ? clamped
                  : static_cast<unsigned>(
                        std::min<std::size_t>(clamped, n));
  }
};

}  // namespace tap
