// NeighborSet: one (β, j) entry of a Tapestry routing table (paper §2.1).
//
// Holds up to R = `capacity` neighbors whose node-IDs share the prefix β·j,
// ordered by network distance; the closest is the *primary* neighbor, the
// rest are *secondary* (backup) neighbors.  Of all candidate nodes, the set
// keeps the closest — Property 2 (locality).  If the set holds fewer than R
// members it must hold *all* (β, j) nodes — Property 1 (consistency); that
// global property is maintained by the Network algorithms, not by this
// container.
//
// Pinned members (paper §4.4) are concurrently-inserting nodes whose
// multicasts have not yet been acknowledged.  A pinned member is never
// evicted and does not count against capacity: "X must keep at least one
// unpinned pointer and all pinned pointers."
#pragma once

#include <optional>
#include <vector>

#include "src/common/assert.h"
#include "src/tapestry/id.h"

namespace tap {

struct NeighborEntry {
  NodeId id{};
  double dist = 0.0;
  bool pinned = false;
};

class NeighborSet {
 public:
  explicit NeighborSet(unsigned capacity = 0) : capacity_(capacity) {}

  struct ConsiderResult {
    bool inserted = false;             ///< candidate is now a member
    std::optional<NodeId> evicted{};   ///< member displaced to make room
  };

  /// Offers a candidate.  Inserts it when the set has room or the candidate
  /// is closer than the farthest unpinned member (which is then evicted).
  /// Updating an existing member's distance is allowed (relocation, §6.4).
  ConsiderResult consider(NodeId id, double dist);

  /// Removes a member.  Returns true when it was present.
  bool remove(const NodeId& id);

  [[nodiscard]] bool contains(const NodeId& id) const;

  /// Closest member (the primary neighbor), if any.
  [[nodiscard]] std::optional<NodeId> primary() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.front().id;
  }

  /// Members ordered by distance (primary first).
  [[nodiscard]] const std::vector<NeighborEntry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] unsigned capacity() const noexcept { return capacity_; }

  /// Marks a member pinned, inserting it first if absent (never evicts
  /// anyone to do so — pinned members live outside the capacity budget).
  void pin(NodeId id, double dist);

  /// Clears the pinned mark.  If the set is now over capacity the farthest
  /// unpinned members are evicted; evicted ids are appended to `evicted`.
  void unpin(const NodeId& id, std::vector<NodeId>& evicted);

  [[nodiscard]] std::vector<NodeId> pinned_members() const;
  [[nodiscard]] std::size_t unpinned_count() const;

 private:
  void insert_sorted(NeighborEntry e);
  void enforce_capacity(std::vector<NodeId>& evicted);

  unsigned capacity_;
  std::vector<NeighborEntry> entries_;  // sorted by (dist, id)
};

}  // namespace tap
