// Object-pointer storage: the abstract per-node soft-state directory
// (paper §2.2, §6.5) and its reference in-memory backend.
//
// Publishing deposits, at every node on the path from a storage server to
// the object's root, a pointer  GUID -> server.  Unlike PRR, Tapestry keeps
// a pointer for *every* replica of a GUID (paper §2.4), so records are
// keyed by (salted GUID, server).
//
// Each record carries:
//   * last_hop — the previous node on the publish path, required by the
//     OPTIMIZEOBJECTPTRS / DELETEPOINTERSBACKWARD procedures of Figure 9;
//   * the routing level (and past-hole flag) at which this node processed
//     the publish, so the node can recompute its next hop for the pointer
//     (the paper's NEXTHOP(objPtr, level));
//   * a soft-state expiry deadline (§6.5): pointers are republished at
//     regular intervals and vanish if their publisher stops refreshing.
//
// The paper treats this per-node store as an abstract directory; here it is
// the ObjectStoreBackend interface, with the implementations selected per
// overlay through TapestryParams::store_backend (see make_object_store):
//
//   MemoryStore      unordered_map, the conformance reference — exactly the
//                    pre-refactor behaviour (object_store.cc);
//   ShardedStore     the same semantics behind striped internal locks, so
//                    batch drains and expiry sweeps may hit one node's
//                    store from several threads (sharded_store.{h,cc});
//   PersistentStore  MemoryStore mirror + append-only WAL and compacting
//                    snapshot on disk; recover() rebuilds identical visible
//                    state after a restart (persistent_store.{h,cc});
//   ReplicatedStore  decorator over a MemoryStore ("replicated") or a
//                    PersistentStore ("replicated+persist") that adds a
//                    private replica area for records mirrored here by the
//                    quorum replication layer (replicated_store.{h,cc};
//                    docs/stores.md has the k/W/R semantics).
//
// Visible-state contract (what the conformance suite in
// tests/test_object_store.cc pins down): after any single-threaded op
// sequence, all backends agree on size(), find(), find_all()/find_live()
// (per-guid record order = first-insertion order of each (guid, server)
// pair), and on snapshot() up to global ordering.  A record is live while
// `now <= expires_at` — the deadline itself is inclusive, matching
// remove_expired() which drops strictly-past records only.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/tapestry/id.h"

namespace tap {

struct TapestryParams;

struct PointerRecord {
  NodeId server{};
  std::optional<NodeId> last_hop{};  ///< absent at the storage server itself
  unsigned level = 0;                ///< routing level on arrival
  bool past_hole = false;            ///< PRR-like routing state on arrival
  double expires_at = std::numeric_limits<double>::infinity();
};

/// Counters a backend exposes for benchmarks and drivers.  Mutation
/// counters cover the store's lifetime; the WAL fields are zero for
/// non-persistent backends.
struct StoreStats {
  const char* backend = "";   ///< "memory" | "sharded" | "persist" |
                              ///< "replicated" | "replicated+persist"
  std::size_t records = 0;    ///< live records (== size())
  std::size_t upserts = 0;    ///< upsert() calls accepted
  std::size_t removes = 0;    ///< records dropped via remove()
  std::size_t expired = 0;    ///< records dropped via remove_expired()
  std::size_t stripes = 1;    ///< internal lock stripes (1 = unsynchronized)
  std::size_t wal_records = 0;   ///< WAL entries since the last compaction
  std::size_t wal_bytes = 0;     ///< bytes appended to the WAL (lifetime)
  std::size_t compactions = 0;   ///< snapshot rewrites performed
};

/// Abstract per-node object-pointer store.  Single ops are not required to
/// be thread-safe unless the backend says so (stats().stripes > 1); all
/// implementations must satisfy the visible-state contract above.
class ObjectStoreBackend {
 public:
  using Visitor = std::function<void(const Guid&, const PointerRecord&)>;

  virtual ~ObjectStoreBackend() = default;

  /// Inserts or replaces the record for (guid, record.server).
  virtual void upsert(const Guid& guid, const PointerRecord& record) = 0;

  /// Record for a specific (guid, server) pair, if present.
  [[nodiscard]] virtual std::optional<PointerRecord> find(
      const Guid& guid, const NodeId& server) const = 0;

  /// All records for a guid (possibly several replicas); empty if none.
  [[nodiscard]] virtual std::vector<PointerRecord> find_all(
      const Guid& guid) const = 0;

  /// Non-expired records for a guid at simulated time `now`.
  [[nodiscard]] virtual std::vector<PointerRecord> find_live(
      const Guid& guid, double now) const = 0;

  /// Visits every record of `guid` without materializing a vector — the
  /// locate hot path reads through this (see ObjectDirectory).  The
  /// callback must not mutate this store.
  virtual void for_each_of(const Guid& guid, const Visitor& fn) const = 0;

  /// Removes the record for (guid, server).  Returns true if present.
  virtual bool remove(const Guid& guid, const NodeId& server) = 0;

  /// Drops every record whose deadline has strictly passed; returns how
  /// many.  A record with expires_at == now survives (it is still live).
  virtual std::size_t remove_expired(double now) = 0;

  /// Total records held (the per-node directory load in Table 1 terms).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Visits every (guid, record) pair.  The callback must not mutate this
  /// store; callers snapshot first when they need to modify during
  /// iteration (see snapshot()).
  virtual void for_each(const Visitor& fn) const = 0;

  /// Copy of all (guid, record) pairs — safe to iterate while mutating.
  [[nodiscard]] virtual std::vector<std::pair<Guid, PointerRecord>> snapshot()
      const = 0;

  /// Lifetime counters (see StoreStats).
  [[nodiscard]] virtual StoreStats stats() const = 0;

  /// Pushes buffered durable state to disk.  No-op for volatile backends.
  virtual void flush() {}
};

/// The reference backend: exactly the pre-refactor ObjectStore.  Also the
/// in-memory mirror PersistentStore replays its log into.
class MemoryStore : public ObjectStoreBackend {
 public:
  void upsert(const Guid& guid, const PointerRecord& record) override;
  [[nodiscard]] std::optional<PointerRecord> find(
      const Guid& guid, const NodeId& server) const override;
  [[nodiscard]] std::vector<PointerRecord> find_all(
      const Guid& guid) const override;
  [[nodiscard]] std::vector<PointerRecord> find_live(
      const Guid& guid, double now) const override;
  void for_each_of(const Guid& guid, const Visitor& fn) const override;
  bool remove(const Guid& guid, const NodeId& server) override;
  std::size_t remove_expired(double now) override;
  [[nodiscard]] std::size_t size() const noexcept override { return count_; }
  void for_each(const Visitor& fn) const override;
  [[nodiscard]] std::vector<std::pair<Guid, PointerRecord>> snapshot()
      const override;
  [[nodiscard]] StoreStats stats() const override;

 private:
  std::unordered_map<Guid, std::vector<PointerRecord>> map_;
  std::size_t count_ = 0;
  std::size_t upserts_ = 0;
  std::size_t removes_ = 0;
  std::size_t expired_ = 0;
};

/// Builds the backend `params.store_backend` selects for the node `id`.
/// PersistentStore requires params.store_dir; the node's files live at
/// <store_dir>/<id-hex>.{wal,snap} and recover automatically when present.
[[nodiscard]] std::unique_ptr<ObjectStoreBackend> make_object_store(
    const TapestryParams& params, const NodeId& id);

}  // namespace tap
