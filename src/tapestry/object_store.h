// ObjectStore: the object pointers a node holds (paper §2.2, §4.2).
//
// Publishing deposits, at every node on the path from a storage server to
// the object's root, a pointer  GUID -> server.  Unlike PRR, Tapestry keeps
// a pointer for *every* replica of a GUID (paper §2.4), so records are
// keyed by (salted GUID, server).
//
// Each record carries:
//   * last_hop — the previous node on the publish path, required by the
//     OPTIMIZEOBJECTPTRS / DELETEPOINTERSBACKWARD procedures of Figure 9;
//   * the routing level (and past-hole flag) at which this node processed
//     the publish, so the node can recompute its next hop for the pointer
//     (the paper's NEXTHOP(objPtr, level));
//   * a soft-state expiry deadline (§6.5): pointers are republished at
//     regular intervals and vanish if their publisher stops refreshing.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/tapestry/id.h"

namespace tap {

struct PointerRecord {
  NodeId server{};
  std::optional<NodeId> last_hop{};  ///< absent at the storage server itself
  unsigned level = 0;                ///< routing level on arrival
  bool past_hole = false;            ///< PRR-like routing state on arrival
  double expires_at = std::numeric_limits<double>::infinity();
};

class ObjectStore {
 public:
  /// Inserts or replaces the record for (guid, record.server).
  void upsert(const Guid& guid, const PointerRecord& record);

  /// Record for a specific (guid, server) pair, or nullptr.
  [[nodiscard]] PointerRecord* find(const Guid& guid, const NodeId& server);
  [[nodiscard]] const PointerRecord* find(const Guid& guid,
                                          const NodeId& server) const;

  /// All records for a guid (possibly several replicas); empty if none.
  [[nodiscard]] std::vector<PointerRecord> find_all(const Guid& guid) const;

  /// Non-expired records for a guid at simulated time `now`.
  [[nodiscard]] std::vector<PointerRecord> find_live(const Guid& guid,
                                                     double now) const;

  /// Removes the record for (guid, server).  Returns true if present.
  bool remove(const Guid& guid, const NodeId& server);

  /// Drops every record whose deadline has passed; returns how many.
  std::size_t remove_expired(double now);

  /// Total records held (the per-node directory load in Table 1 terms).
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Visits every (guid, record) pair.  The callback must not mutate this
  /// store; callers snapshot first when they need to modify during
  /// iteration (see snapshot()).
  void for_each(
      const std::function<void(const Guid&, const PointerRecord&)>& fn) const;

  /// Copy of all (guid, record) pairs — safe to iterate while mutating.
  [[nodiscard]] std::vector<std::pair<Guid, PointerRecord>> snapshot() const;

 private:
  std::unordered_map<Guid, std::vector<PointerRecord>> map_;
  std::size_t count_ = 0;
};

}  // namespace tap
