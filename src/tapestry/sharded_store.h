// ShardedStore: the MemoryStore semantics behind striped internal locks.
//
// Guids hash onto kStripeCount independent stripes, each a (map, mutex)
// pair; the record count is a relaxed atomic.  Two threads touching
// *different guids* of one node's store may therefore run concurrently —
// this is what lets ObjectDirectory::publish_batch drain pointer deposits
// per (registry shard x guid stripe) instead of serializing each registry
// shard's stores behind a single worker (the PR 3 scheme), and what makes
// multi-threaded expiry sweeps safe against concurrent deposits.
//
// Determinism: all ordered state is per (guid, server) — per-guid record
// vectors keep first-insertion order exactly like MemoryStore — so any
// schedule that serializes same-guid operations (the batch drain does, by
// keying its partition on the stripe) produces the same visible state as
// the serial execution.  Whole-store iteration (for_each / snapshot) walks
// stripes in index order; the global order differs from MemoryStore's
// single hash map but the multiset of records is identical.
#pragma once

#include <array>
#include <atomic>
#include <mutex>

#include "src/tapestry/object_store.h"

namespace tap {

class ShardedStore : public ObjectStoreBackend {
 public:
  static constexpr unsigned kStripeCount = 16;

  /// Stripe a guid maps to; ObjectDirectory::publish_batch keys its
  /// concurrent drain partition on this, so it must stay a pure function
  /// of the guid.
  [[nodiscard]] static unsigned stripe_of(const Guid& guid) noexcept {
    // Multiplicative mix of the raw bits: guids that share long prefixes
    // (salted variants, adversarial test patterns) still spread.
    return static_cast<unsigned>((guid.value() * 0x9e3779b97f4a7c15ull) >>
                                 60) &
           (kStripeCount - 1);
  }

  void upsert(const Guid& guid, const PointerRecord& record) override;
  [[nodiscard]] std::optional<PointerRecord> find(
      const Guid& guid, const NodeId& server) const override;
  [[nodiscard]] std::vector<PointerRecord> find_all(
      const Guid& guid) const override;
  [[nodiscard]] std::vector<PointerRecord> find_live(
      const Guid& guid, double now) const override;
  void for_each_of(const Guid& guid, const Visitor& fn) const override;
  bool remove(const Guid& guid, const NodeId& server) override;
  std::size_t remove_expired(double now) override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return count_.load(std::memory_order_relaxed);
  }
  void for_each(const Visitor& fn) const override;
  [[nodiscard]] std::vector<std::pair<Guid, PointerRecord>> snapshot()
      const override;
  [[nodiscard]] StoreStats stats() const override;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Guid, std::vector<PointerRecord>> map;
    std::size_t upserts = 0;  // guarded by mu
    std::size_t removes = 0;
    std::size_t expired = 0;
  };

  std::array<Stripe, kStripeCount> stripes_;
  std::atomic<std::size_t> count_{0};
};

}  // namespace tap
