// Acknowledged multicast (paper §4.1, Figure 8): contacts every node whose
// ID carries a given prefix, exactly once, by recursively extending the
// prefix one digit at a time along routing-table entries.  Property 1
// guarantees coverage (Theorem 5): if an (α, j) node exists anywhere, every
// α-node's table has one.
//
// Messages a node sends to itself (its own-digit extension) cross no
// network link and cost nothing; collapsing them turns the message graph
// into a spanning tree of the prefix set, so a multicast reaching k nodes
// costs 2(k-1) messages (forward + acknowledgment per edge).  The
// synchronous recursion here computes acknowledgments implicitly; the
// completion time — the longest forward+ack chain — is accumulated
// separately since fan-out proceeds in parallel in a real network.
//
// The event-driven variant with pinned pointers and watch lists used by
// *simultaneous* insertion (§4.4, Figure 11) lives in parallel_join.cc.
#include "src/tapestry/router.h"

#include <algorithm>

namespace tap {

MulticastStats Router::multicast(NodeId start, const Id& pattern,
                                 unsigned prefix_len,
                                 const std::function<void(NodeId)>& visit,
                                 Trace* trace,
                                 const std::vector<NodeId>& exclude) {
  TapestryNode& s = reg_.live(start);
  TAP_CHECK(pattern.valid() && pattern.spec() == params_.id,
            "pattern does not match the network's IdSpec");
  TAP_CHECK(prefix_len <= params_.id.num_digits, "prefix too long");
  TAP_CHECK(s.id().matches_prefix(pattern, prefix_len),
            "multicast must start at a node carrying the prefix");

  MulticastStats stats;

  auto excluded = [&](const NodeId& id) {
    return std::find(exclude.begin(), exclude.end(), id) != exclude.end();
  };

  // Recursive lambda: handles the multicast message (prefix length l) at
  // node `cur`; returns the completion time of the subtree (forward + ack).
  std::function<double(TapestryNode&, unsigned)> mc =
      [&](TapestryNode& cur, unsigned l) -> double {
    const unsigned digits = params_.id.num_digits;
    const unsigned radix = params_.id.radix();

    // NOTONLYNODEWITHPREFIX: does cur know any other node sharing its
    // length-l prefix?  (All row-l members share it.)
    bool only = true;
    if (l < digits) {
      for (unsigned j = 0; j < radix && only; ++j)
        for (const auto& e : cur.table().at(l, j).entries())
          if (!(e.id == cur.id()) && reg_.is_live(e.id) && !excluded(e.id))
            only = false;
    }
    if (l >= digits || only) {
      visit(cur.id());
      ++stats.reached;
      return 0.0;
    }

    double completion = 0.0;
    for (unsigned j = 0; j < radix; ++j) {
      // One recipient per extension digit: the closest live member.
      const NeighborSet& set = cur.table().at(l, j);
      const TapestryNode* child = nullptr;
      for (const auto& e : set.entries()) {
        if (excluded(e.id)) continue;
        if (e.id == cur.id()) {
          child = &cur;
          break;
        }
        if (reg_.is_live(e.id)) {
          child = &reg_.live(e.id);
          break;
        }
      }
      if (child == nullptr) continue;
      if (child == &cur) {
        // Self-message: no network cost, continue at the next level.
        completion = std::max(completion, mc(cur, l + 1));
      } else {
        const double d = reg_.dist(cur, *child);
        stats.messages += 2;  // forward + acknowledgment
        stats.traffic += 2.0 * d;
        if (trace != nullptr) {
          trace->hop(d);
          trace->hop(d);
        }
        TapestryNode& c = reg_.live(child->id());
        // Forward travels the wire before the subtree runs; the ack
        // travels back once the subtree has completed (Figure 8).
        Message fwd = make_message(MessageKind::kMulticastForward, cur.id(),
                                   c.id(), pattern);
        fwd.level = l + 1;
        fwd = transport_->deliver(fwd);
        completion = std::max(completion, d + mc(c, fwd.level) + d);
        Message ack = make_message(MessageKind::kMulticastAck, c.id(),
                                   cur.id(), pattern);
        ack.level = l + 1;
        (void)transport_->deliver(ack);
      }
    }
    return completion;
  };

  stats.completion = mc(s, prefix_len);
  return stats;
}

}  // namespace tap
