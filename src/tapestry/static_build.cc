// Oracle construction of PRR/Tapestry tables from global knowledge — the
// static preprocessing the original PRR scheme assumes (paper §1, §4: "We
// would like the results of the insertion to be the same as if we had been
// able to build the network from static data").  Tests compare dynamically
// grown networks against this ground truth; benchmarks use it to stand up
// large overlays quickly when insertion cost is not what is being measured.
//
// The build parallelises in three phases, each deterministic for every
// worker count:
//   1. fresh tables     — per node, independent (table construction alone
//                         is levels * radix neighbor sets, a real cost at
//                         100k nodes);
//   2. forward tables   — per node, reading only the shared read-only
//                         candidate buckets; each slot keeps the R closest
//                         under the total order (distance, id), so the
//                         outcome does not depend on scan interleaving;
//   3. backpointers     — the inverse of the forward links, inserted into
//                         per-level ordered sets under striped per-target
//                         locks; set order canonicalises whatever insert
//                         order the scheduler produced.
// Phases 2+3 replace the serial link() walk (which interleaves forward
// inserts with backpointer bookkeeping on *other* nodes and therefore
// cannot fan out); the final tables are identical because link() ends at
// exactly "backpointers = inverse of forward links".
#include "src/tapestry/maintenance.h"

#include <mutex>
#include <unordered_map>

#include "src/sim/thread_pool.h"

namespace tap {

void MaintenanceEngine::rebuild_static_tables(std::size_t workers) {
  const unsigned digits = params_.id.num_digits;
  const unsigned bits = params_.id.digit_bits;

  std::vector<TapestryNode*> live;
  live.reserve(reg_.live_count());
  for (const auto& n : reg_.nodes())
    if (n->alive) live.push_back(n.get());

  // Phase 1: fresh tables (drops any dynamically accumulated state).
  parallel_for(
      live.size(),
      [&](std::size_t i) {
        live[i]->table() =
            RoutingTable(params_.id, live[i]->id(), params_.redundancy);
      },
      workers);

  // Bucket live nodes by (prefix length, prefix value) — read-only below.
  auto key = [&](unsigned len, std::uint64_t prefix) {
    return (static_cast<std::uint64_t>(len) << 56) | prefix;
  };
  std::unordered_map<std::uint64_t, std::vector<TapestryNode*>> buckets;
  for (TapestryNode* n : live)
    for (unsigned len = 1; len <= digits; ++len)
      buckets[key(len, n->id().prefix_value(len))].push_back(n);

  // Phase 2: every slot considers every qualifying node; NeighborSet
  // retains the R closest, which is Property 2 by construction, and no
  // slot with candidates stays empty, which is Property 1.  Each task
  // writes only its own node's table.
  parallel_for(
      live.size(),
      [&](std::size_t i) {
        TapestryNode* n = live[i];
        for (unsigned l = 0; l < digits; ++l) {
          const std::uint64_t base = n->id().prefix_value(l) << bits;
          for (unsigned j = 0; j < params_.id.radix(); ++j) {
            auto it = buckets.find(key(l + 1, base | j));
            if (it == buckets.end()) continue;
            for (TapestryNode* cand : it->second) {
              if (cand->id() == n->id()) continue;
              n->table().consider(l, j, cand->id(), reg_.dist(*n, *cand));
            }
          }
        }
      },
      workers);

  // Phase 3: derive backpointers from the settled forward links.  Inserts
  // touch *other* nodes' tables, so they stripe-lock on the target; the
  // per-level std::set makes the result order-independent.
  constexpr std::size_t kStripes = 256;
  std::vector<std::mutex> stripes(kStripes);
  parallel_for(
      live.size(),
      [&](std::size_t i) {
        TapestryNode* owner = live[i];
        for (unsigned l = 0; l < digits; ++l) {
          for (const NodeId& member : owner->table().row_members(l)) {
            if (member == owner->id()) continue;
            TapestryNode* target = reg_.find(member);
            TAP_ASSERT(target != nullptr);
            std::lock_guard<std::mutex> lock(
                stripes[splitmix64(member.value()) % kStripes]);
            target->table().add_backpointer(l, owner->id());
          }
        }
      },
      workers);
}

}  // namespace tap
