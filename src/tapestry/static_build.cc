// Oracle construction of PRR/Tapestry tables from global knowledge — the
// static preprocessing the original PRR scheme assumes (paper §1, §4: "We
// would like the results of the insertion to be the same as if we had been
// able to build the network from static data").  Tests compare dynamically
// grown networks against this ground truth; benchmarks use it to stand up
// large overlays quickly when insertion cost is not what is being measured.
#include "src/tapestry/maintenance.h"

#include <unordered_map>

namespace tap {

void MaintenanceEngine::rebuild_static_tables() {
  const unsigned digits = params_.id.num_digits;
  const unsigned bits = params_.id.digit_bits;

  // Fresh tables (drops any dynamically accumulated state).
  for (const auto& n : reg_.nodes()) {
    if (!n->alive) continue;
    n->table() = RoutingTable(params_.id, n->id(), params_.redundancy);
  }

  // Bucket live nodes by (prefix length, prefix value).
  auto key = [&](unsigned len, std::uint64_t prefix) {
    return (static_cast<std::uint64_t>(len) << 56) | prefix;
  };
  std::unordered_map<std::uint64_t, std::vector<TapestryNode*>> buckets;
  for (const auto& n : reg_.nodes()) {
    if (!n->alive) continue;
    for (unsigned len = 1; len <= digits; ++len)
      buckets[key(len, n->id().prefix_value(len))].push_back(n.get());
  }

  // Every slot considers every qualifying node; NeighborSet retains the R
  // closest, which is Property 2 by construction, and no slot with
  // candidates stays empty, which is Property 1.
  for (const auto& n : reg_.nodes()) {
    if (!n->alive) continue;
    for (unsigned l = 0; l < digits; ++l) {
      const std::uint64_t base = n->id().prefix_value(l) << bits;
      for (unsigned j = 0; j < params_.id.radix(); ++j) {
        auto it = buckets.find(key(l + 1, base | j));
        if (it == buckets.end()) continue;
        for (TapestryNode* cand : it->second) {
          if (cand->id() == n->id()) continue;
          link(*n, l, *cand);
        }
      }
    }
  }
}

}  // namespace tap
