// TapestryNode: one overlay participant — its identifier, its pin to a
// location in the underlying metric space, its routing table and its object
// pointer store, plus the transient state used while it is inserting
// itself (paper §4.3, Figure 10).
//
// Nodes are passive data holders; the distributed algorithms live in
// Network (each Network method corresponds to the RPC handler that would
// run on a node in a real deployment — the mapping is documented at each
// method).
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "src/metric/metric_space.h"
#include "src/tapestry/object_store.h"
#include "src/tapestry/params.h"
#include "src/tapestry/routing_table.h"

namespace tap {

class TapestryNode {
 public:
  TapestryNode(NodeId id, Location loc, const TapestryParams& params)
      : id_(id), loc_(loc), table_(params.id, id, params.redundancy),
        store_(make_object_store(params, id)) {}

  [[nodiscard]] const NodeId& id() const noexcept { return id_; }
  [[nodiscard]] Location location() const noexcept { return loc_; }
  void set_location(Location loc) noexcept { loc_ = loc; }  // §6.4 drift

  [[nodiscard]] RoutingTable& table() noexcept { return table_; }
  [[nodiscard]] const RoutingTable& table() const noexcept { return table_; }
  [[nodiscard]] ObjectStoreBackend& store() noexcept { return *store_; }
  [[nodiscard]] const ObjectStoreBackend& store() const noexcept {
    return *store_;
  }

  /// False once the node has failed (§5.2) or left (§5.1).  Dead nodes stay
  /// allocated as tombstones so lazy repair can discover them.  Atomic so
  /// guarded-peek walkers and repair waves may read liveness while a
  /// serial preamble on another thread marks victims dead (threaded repair
  /// kills nodes strictly before its parallel phase, so a reader sees a
  /// consistent value either way — the atomic only de-races the flag).
  std::atomic<bool> alive{true};

  /// True from registration until the insertion completes (§4.3): requests
  /// for objects the node does not hold are bounced to its surrogate.
  bool inserting = false;

  /// The primary surrogate contacted during insertion (Figure 7); valid
  /// while `inserting` is set.
  std::optional<NodeId> psurrogate{};

 private:
  NodeId id_;
  Location loc_;
  RoutingTable table_;
  std::unique_ptr<ObjectStoreBackend> store_;
};

}  // namespace tap
