// MaintenanceEngine: everything that changes the routing mesh.
//
// Membership — dynamic insertion (§3-§4), voluntary delete (§5.1),
// fail-stop plus lazy repair (§5.2), the periodic heartbeat sweep — and the
// continual-optimization heuristics of §6.4, plus the low-level table-link
// coherence primitives (link / unlink / ADDTOTABLEIFCLOSER) every mutation
// funnels through so forward links and backpointers stay mirrored.
//
// The engine implements the Router's RepairHandler interface: when a
// routing walk discovers a corpse, the purge (secondary promotion, slot
// replacement hunt, pointer re-route) happens here.  Pointer re-routing is
// delegated to the ObjectDirectory so Property 4 survives table churn.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/tapestry/object_directory.h"
#include "src/tapestry/registry.h"
#include "src/tapestry/router.h"

namespace tap {

/// One dynamic insertion of a thread-parallel join wave (see join_bulk).
struct JoinRequest {
  Location loc{};
  std::optional<NodeId> id{};       ///< default: fresh random id
  std::optional<NodeId> gateway{};  ///< default: uniformly random live node
};

/// The §3 k-list trim, shared by the serial join (join.cc) and the
/// threaded driver (threaded_join.cc) so both run the SAME rule: dedupe,
/// drop dead nodes and the node itself, order by (distance, id), keep the
/// k closest.  Pure reads — callers provide whatever synchronisation the
/// candidate list itself needed.
[[nodiscard]] std::vector<NodeId> trim_closest_candidates(
    const NodeRegistry& reg, const TapestryNode& nn, std::vector<NodeId> list,
    std::size_t k);

class MaintenanceEngine final : public RepairHandler {
 public:
  MaintenanceEngine(NodeRegistry& registry, Router& router,
                    ObjectDirectory& directory, const TapestryParams& params,
                    EventQueue& events, Rng& rng);

  /// Wires the transport heartbeat probes and acks travel through
  /// (Network binds the overlay's; standalone engines use the shared
  /// direct fallback).
  void bind_transport(Transport* transport) noexcept {
    transport_ = transport;
  }

  // --- membership (§3-§5) ---
  /// Creates the first node of the overlay.  `id` defaults to random.
  NodeId bootstrap(Location loc, std::optional<NodeId> id = std::nullopt);
  /// Full dynamic insertion (Figure 7) via a uniformly random live gateway.
  NodeId join(Location loc, std::optional<NodeId> id = std::nullopt,
              Trace* trace = nullptr);
  /// Full dynamic insertion via a specific gateway node.
  NodeId join_via(NodeId gateway, Location loc,
                  std::optional<NodeId> id = std::nullopt,
                  Trace* trace = nullptr);
  /// Thread-parallel dynamic insertion (§4.4 on real threads): drives the
  /// whole batch through ThreadedJoinDriver — each worker thread runs one
  /// join's multicast/watch-list/pin state machine synchronously, racing
  /// the others through the per-node stripe locks — and returns the new
  /// node ids in request order.  `workers` = 0 uses hardware concurrency.
  /// Determinism contract: ids/gateways are drawn serially up front, so
  /// same seed + any worker count yields the same membership and a table
  /// set satisfying the convergence invariants (Property 1, backpointer
  /// symmetry, no leftover pins, surrogate agreement) — message orderings,
  /// and therefore exact neighbor choices, may differ between runs.
  std::vector<NodeId> join_bulk(const std::vector<JoinRequest>& requests,
                                std::size_t workers = 0);

  /// Voluntary departure (§5.1): notifies backpointer holders with
  /// replacement hints, re-roots object pointers, then disconnects.
  void leave(NodeId node, Trace* trace = nullptr);
  /// Involuntary fail-stop (§5.2): the node simply stops responding.
  void fail(NodeId node);
  /// Thread-parallel voluntary departure (§5.1 on real threads): every
  /// victim leaves at once, each worker thread driving one victim's
  /// holder notifications, slot repair and REMOVELINK under the stripe
  /// discipline, with §4.2 rerouting performed incrementally inside the
  /// wave (no republish backstop).  Same determinism contract as
  /// join_bulk: victims are validated and marked serially up front, so
  /// same seed + any worker count yields identical surviving membership
  /// and identical fingerprint_occupancy at quiescence.
  void leave_bulk(const std::vector<NodeId>& victims, std::size_t workers = 0,
                  Trace* trace = nullptr);
  /// Thread-parallel fail-stop plus eager repair (§5.2 on real threads):
  /// all victims stop at once, then every backpointer holder is purged in
  /// parallel (slot removal, complete replacement hunt, in-wave reroute)
  /// and a threaded sweep restores Property 1 — locatability is back the
  /// moment the call returns, without republishing.
  void fail_and_repair_bulk(const std::vector<NodeId>& victims,
                            std::size_t workers = 0, Trace* trace = nullptr);
  /// heartbeat_sweep fanned out across `workers` real threads (one per
  /// node, striped locks).  Membership must be quiescent; guarded store
  /// racers (publish batches, expiry sweeps, peeked queries) are fine.
  void heartbeat_sweep_bulk(std::size_t workers = 0, Trace* trace = nullptr);
  /// Soft-state heartbeat maintenance (§5.2, §6.5): probe table entries,
  /// purge corpses, then hunt replacements for emptied slots to fixpoint.
  void heartbeat_sweep(Trace* trace = nullptr);

  /// Runs heartbeat_sweep as a recurring EventQueue event every `every`
  /// simulated time units (first firing at now + every), so lazy repair
  /// interleaves with in-flight publishes and queries.  Restarting
  /// replaces a running timer.  The recurring event holds `trace` until
  /// stop_heartbeats(): it must outlive the timer.
  void start_heartbeats(double every, Trace* trace = nullptr);
  void stop_heartbeats();
  [[nodiscard]] bool heartbeats_running() const noexcept {
    return heartbeat_event_.has_value();
  }

  // --- failure repair (§5.2) ---
  void purge_dead_neighbor(TapestryNode& at, NodeId dead,
                           Trace* trace) override;
  std::optional<NodeId> find_replacement(TapestryNode& at, unsigned level,
                                         unsigned digit, Trace* trace);

  // --- table-link coherence ---
  /// owner.table slot (level, nbr.digit(level)) considers nbr; keeps
  /// backpointers coherent on insert and evict.  Returns true if inserted.
  bool link(TapestryNode& owner, unsigned level, TapestryNode& nbr);
  /// Removes nbr from owner's slot at `level` (if present).  NodeId is
  /// taken by value: callers often pass ids that live inside the very
  /// containers these routines mutate.
  void unlink(TapestryNode& owner, unsigned level, NodeId nbr);
  /// Offers `cand` to every slot of `host` it qualifies for (all levels
  /// l <= common prefix).  The paper's ADDTOTABLEIFCLOSER.
  bool add_to_table_if_closer(TapestryNode& host, TapestryNode& cand);

  // --- continual optimization (§6.4) ---
  /// Moves a node to a new underlay location (network drift model).
  /// Tables are NOT fixed up — that is what the heuristics below are for.
  void relocate(NodeId node, Location loc);
  /// Heuristic 1: re-rank every neighbor set of `node` by current distance.
  void optimize_primaries(NodeId node, Trace* trace = nullptr);
  /// Heuristic 4: ask each level-l neighbor for its level-l row and adopt
  /// closer members (the gossip scheme of §6.4 / Pastry / Tapestry [37]).
  void optimize_gossip(NodeId node, Trace* trace = nullptr);
  /// Heuristic 2: rerun the full nearest-neighbor table construction.
  void rebuild_neighbor_table(NodeId node, Trace* trace = nullptr);

  // --- oracle construction (static PRR preprocessing) ---
  /// Rebuilds every live node's table from global knowledge (Property 1+2
  /// by construction), fanning the per-node work out across `workers`
  /// threads (0 = hardware concurrency).  The result is bit-identical for
  /// every worker count: forward tables are a per-node function of the
  /// global candidate buckets, and backpointers land in ordered sets, so
  /// scheduling cannot leak into the outcome.
  void rebuild_static_tables(std::size_t workers = 1);

  // --- join internals (§3-§4), shared with ParallelJoinCoordinator ---
  void copy_preliminary_table(TapestryNode& nn, TapestryNode& surrogate,
                              unsigned max_level, Trace* trace);
  void link_and_xfer_root(TapestryNode& host, TapestryNode& nn, Trace* trace);
  void acquire_neighbor_table(TapestryNode& nn, unsigned max_level,
                              std::vector<NodeId> initial_list, Trace* trace);

 private:
  std::vector<NodeId> get_next_list(
      TapestryNode& nn, const std::vector<NodeId>& list, unsigned level,
      std::unordered_set<std::uint64_t>& contacted, Trace* trace);
  void build_row_from_list(TapestryNode& nn, const std::vector<NodeId>& list,
                           unsigned level);
  [[nodiscard]] std::vector<NodeId> trim_closest(const TapestryNode& nn,
                                                 std::vector<NodeId> list,
                                                 std::size_t k) const;

  void schedule_heartbeat_tick(double every, Trace* trace);

  Transport* transport_ = default_transport();
  NodeRegistry& reg_;
  Router& router_;
  ObjectDirectory& dir_;
  const TapestryParams& params_;
  EventQueue& events_;
  Rng& rng_;
  std::optional<EventId> heartbeat_event_;
};

}  // namespace tap
