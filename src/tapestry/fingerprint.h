// Order-sensitive FNV-1a fingerprints over a network's routing and object
// state — the witness for the parallel pipeline's determinism contract
// (same seed + any thread count => identical fingerprints).  Defined once
// here so tests/test_parallel_build.cc and bench/bench_parallel_build.cc
// gate the *same* contract: extending the fingerprint (new slot state, new
// record fields) updates the test and the CI perf gate together.
//
// Both walks visit live nodes in registry insertion order and require
// quiescence (they read tables and stores without synchronisation).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/tapestry/network.h"

namespace tap {

namespace detail {
class Fnv1a {
 public:
  void mix(std::uint64_t v) noexcept {
    h_ ^= v;
    h_ *= 1099511628211ull;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};
}  // namespace detail

/// Every live node's routing state: occupancy masks, slot entries in
/// stored (distance) order with pin marks, and backpointer sets.
[[nodiscard]] inline std::uint64_t fingerprint_tables(const Network& net) {
  detail::Fnv1a h;
  for (const auto& n : net.registry().nodes()) {
    if (!n->alive) continue;
    h.mix(n->id().value());
    const RoutingTable& t = n->table();
    for (unsigned l = 0; l < t.levels(); ++l) {
      const std::uint64_t* row = t.row_occupancy(l);
      for (unsigned w = 0; w < t.occupancy_words(); ++w) h.mix(row[w]);
      for (unsigned j = 0; j < t.radix(); ++j)
        for (const auto& e : t.at(l, j).entries())
          h.mix(e.id.value() * 2 + (e.pinned ? 1 : 0));
      for (const NodeId& b : t.backpointers(l)) h.mix(b.value());
    }
  }
  return h.value();
}

/// Invariant-convergent fingerprint for the thread-parallel join wave:
/// live membership plus every node's row occupancy pattern, visited in
/// sorted id order so registry insertion order (which depends on thread
/// scheduling) cannot leak in.  Under Property 1 the occupancy pattern is
/// a pure function of the membership set — slot (l, j) of node n is
/// non-empty iff a live node with prefix n[0..l)·j exists — so two runs
/// with the same seed and ANY worker count must produce identical values
/// here even though the *members* filling each slot (and therefore
/// fingerprint_tables) may differ with message ordering.  This is the
/// §4.4 convergence witness: same membership, no unfilled watched holes.
[[nodiscard]] inline std::uint64_t fingerprint_occupancy(const Network& net) {
  std::vector<const TapestryNode*> live;
  for (const auto& n : net.registry().nodes())
    if (n->alive) live.push_back(n.get());
  std::sort(live.begin(), live.end(),
            [](const TapestryNode* a, const TapestryNode* b) {
              return a->id() < b->id();
            });
  detail::Fnv1a h;
  for (const TapestryNode* n : live) {
    h.mix(n->id().value());
    const RoutingTable& t = n->table();
    for (unsigned l = 0; l < t.levels(); ++l) {
      const std::uint64_t* row = t.row_occupancy(l);
      for (unsigned w = 0; w < t.occupancy_words(); ++w) h.mix(row[w]);
    }
  }
  return h.value();
}

/// Every live node's object pointers: (guid, server, last_hop) triples in
/// store iteration order.
[[nodiscard]] inline std::uint64_t fingerprint_stores(const Network& net) {
  detail::Fnv1a h;
  for (const auto& n : net.registry().nodes()) {
    if (!n->alive) continue;
    h.mix(n->id().value());
    for (const auto& [guid, rec] : n->store().snapshot()) {
      h.mix(guid.value());
      h.mix(rec.server.value());
      h.mix(rec.last_hop.has_value() ? rec.last_hop->value() + 1 : 0);
    }
  }
  return h.value();
}

}  // namespace tap
