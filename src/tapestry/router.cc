// Surrogate routing (paper §2.3): localized routing decisions that resolve
// a destination GUID one digit per level, adapting deterministically when
// the exact next-digit entry is a hole.  Both published variants are
// implemented:
//
//   Tapestry Native  — on a hole, take the next filled entry in the same
//                      level, wrapping around the digit alphabet;
//   Distributed PRR  — route exactly until the first hole; at the first
//                      hole prefer the filled digit sharing the most
//                      significant bits with the desired digit (ties to the
//                      numerically higher digit); after the first hole
//                      always take the numerically highest filled digit.
//
// Self-entries make the termination rule implicit: when the current node is
// the only node left at and above the current level, every remaining
// selection is a self-advance and the walk ends with the node as root.
// Theorem 2 (root uniqueness) is exercised by tests/test_routing.cc.
#include "src/tapestry/router.h"

namespace tap {

namespace {

/// Number of matching leading bits between two digit values of `bits` width.
unsigned leading_bit_match(unsigned a, unsigned b, unsigned bits) {
  unsigned n = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const unsigned mask = 1u << (bits - 1 - i);
    if ((a & mask) != (b & mask)) break;
    ++n;
  }
  return n;
}

}  // namespace

Router::Router(NodeRegistry& registry, const TapestryParams& params)
    : reg_(registry), params_(params) {}

std::optional<unsigned> Router::select_slot(const TapestryNode& at,
                                            unsigned level, unsigned desired,
                                            bool& past_hole,
                                            const ExcludeSet* exclude) const {
  const unsigned radix = params_.id.radix();
  const std::uint64_t* row = at.table().row_occupancy(level);
  // Occupancy answers "slot non-empty" exactly; an exclude set or an
  // active partition forces a look at the members themselves (and then
  // only for occupied slots).  Partitioned-away members are skipped but
  // never purged — the cut is not a death.
  const bool cut = reg_.partition_active();
  auto filled = [&](unsigned j) {
    if (exclude == nullptr && !cut) return true;  // callers only offer occupied j
    for (const auto& e : at.table().at(level, j).entries()) {
      if (exclude != nullptr && exclude->count(e.id.value()) != 0) continue;
      if (cut && !reg_.reachable(at.id(), e.id)) continue;
      return true;
    }
    return false;
  };

  if (params_.routing == RoutingMode::kTapestryNative) {
    // First occupied slot at or after `desired`, wrapping (§2.3).  Without
    // an exclude set this is a pure bit scan.
    const unsigned first = occ::next_wrap(row, radix, desired);
    if (first == occ::kNone) return std::nullopt;
    unsigned j = first;
    do {
      if (filled(j)) {
        if (j != desired) past_hole = true;
        return j;
      }
      j = occ::next_wrap(row, radix, (j + 1) % radix);
    } while (j != first);
    return std::nullopt;
  }

  // RoutingMode::kPrrLike.
  if (!past_hole) {
    if (occ::test(row, desired) && filled(desired)) return desired;
    past_hole = true;
    // First hole: best leading-bit match, ties to the higher digit.
    std::optional<unsigned> best;
    unsigned best_score = 0;
    for (unsigned j = occ::next(row, radix, 0); j != occ::kNone;
         j = occ::next(row, radix, j + 1)) {
      if (!filled(j)) continue;
      const unsigned score =
          leading_bit_match(j, desired, params_.id.digit_bits);
      if (!best.has_value() || score > best_score ||
          (score == best_score && j > *best)) {
        best = j;
        best_score = score;
      }
    }
    return best;
  }
  // After the first hole: numerically highest filled digit.
  for (unsigned j = occ::prev(row, radix, radix - 1); j != occ::kNone;
       j = (j == 0 ? occ::kNone : occ::prev(row, radix, j - 1)))
    if (filled(j)) return j;
  return std::nullopt;
}

std::optional<unsigned> Router::select_slot_reference(
    const TapestryNode& at, unsigned level, unsigned desired, bool& past_hole,
    const ExcludeSet* exclude) const {
  const unsigned radix = params_.id.radix();
  const bool cut = reg_.partition_active();
  auto filled = [&](unsigned j) {
    for (const auto& e : at.table().at(level, j).entries()) {
      if (exclude != nullptr && exclude->count(e.id.value()) != 0) continue;
      if (cut && !reg_.reachable(at.id(), e.id)) continue;
      return true;
    }
    return false;
  };

  if (params_.routing == RoutingMode::kTapestryNative) {
    for (unsigned off = 0; off < radix; ++off) {
      const unsigned j = (desired + off) % radix;
      if (filled(j)) {
        if (j != desired) past_hole = true;
        return j;
      }
    }
    return std::nullopt;
  }

  // RoutingMode::kPrrLike.
  if (!past_hole) {
    if (filled(desired)) return desired;
    past_hole = true;
    // First hole: best leading-bit match, ties to the higher digit.
    std::optional<unsigned> best;
    unsigned best_score = 0;
    for (unsigned j = 0; j < radix; ++j) {
      if (!filled(j)) continue;
      const unsigned score =
          leading_bit_match(j, desired, params_.id.digit_bits);
      if (!best.has_value() || score > best_score ||
          (score == best_score && j > *best)) {
        best = j;
        best_score = score;
      }
    }
    return best;
  }
  // After the first hole: numerically highest filled digit.
  for (unsigned j = radix; j-- > 0;)
    if (filled(j)) return j;
  return std::nullopt;
}

std::optional<NodeId> Router::live_primary_repair(TapestryNode& at,
                                                  unsigned level,
                                                  unsigned digit, Trace* trace,
                                                  const ExcludeSet* exclude) {
  for (;;) {
    // The primary for this step is the closest member not being routed
    // around (Figure 10's "as if the new node had not yet entered").
    std::optional<NodeId> prim;
    for (const auto& e : at.table().at(level, digit).entries()) {
      if (exclude != nullptr && exclude->count(e.id.value()) != 0) continue;
      // A partitioned-away member is unreachable but alive: route around
      // it without purging (the table must survive the cut intact).
      if (!reg_.reachable(at.id(), e.id)) continue;
      prim = e.id;
      break;
    }
    if (!prim.has_value()) return std::nullopt;
    if (*prim == at.id()) return prim;
    TapestryNode* p = reg_.find(*prim);
    TAP_ASSERT(p != nullptr);
    if (p->alive) return prim;
    // Dead primary: the probe that discovered it cost one (unanswered)
    // message; then repair.
    (void)transport_->deliver(
        make_message(MessageKind::kHeartbeatProbe, at.id(), *prim, *prim));
    reg_.acct(trace, at, *p, 1);
    TAP_ASSERT_MSG(repair_ != nullptr, "router has no repair handler bound");
    repair_->purge_dead_neighbor(at, *prim, trace);
  }
}

std::optional<NodeId> Router::route_step(TapestryNode& at, const Id& target,
                                         RouteState& state, Trace* trace,
                                         const ExcludeSet* exclude) {
  TAP_ASSERT(target.valid() && target.spec() == params_.id);
  const unsigned digits = params_.id.num_digits;
  while (state.level < digits) {
    for (;;) {
      const unsigned desired = target.digit(state.level);
      auto j = select_slot(at, state.level, desired, state.past_hole, exclude);
      // Self-entries guarantee at least one filled slot per row.
      TAP_ASSERT_MSG(j.has_value(), "routing row with no filled slot");
      auto p = live_primary_repair(at, state.level, *j, trace, exclude);
      if (!p.has_value()) continue;  // slot died under us; re-select
      if (*p == at.id()) {
        ++state.level;  // self-advance: resolve the digit locally
        break;
      }
      ++state.level;
      return p;
    }
  }
  return std::nullopt;  // `at` is the root
}

std::optional<NodeId> Router::route_step_peek(const NodeId& at,
                                              const Id& target,
                                              RouteState& state) const {
  const TapestryNode& n = reg_.checked(at);
  const unsigned digits = params_.id.num_digits;
  const unsigned radix = params_.id.radix();
  unsigned level = state.level;
  while (level < digits) {
    // Peek treats a slot as filled only if it has a live member; this is
    // the steady-state the repairing walk converges to.  The occupancy
    // mask prunes the scan to non-empty slots, and liveness is probed
    // per candidate slot — allocation-free, mutation-free, lock-free.
    const std::uint64_t* row = n.table().row_occupancy(level);
    auto live_primary = [&](unsigned j) -> const NodeId* {
      for (const auto& e : n.table().at(level, j).entries())
        if (reg_.is_live(e.id) && reg_.reachable(n.id(), e.id)) return &e.id;
      return nullptr;  // entries are distance-sorted; first live is primary
    };
    const unsigned desired = target.digit(level);
    std::optional<unsigned> pick;
    const NodeId* prim = nullptr;
    if (params_.routing == RoutingMode::kTapestryNative) {
      const unsigned first = occ::next_wrap(row, radix, desired);
      if (first != occ::kNone) {
        unsigned j = first;
        do {
          if ((prim = live_primary(j)) != nullptr) {
            if (j != desired) state.past_hole = true;
            pick = j;
            break;
          }
          j = occ::next_wrap(row, radix, (j + 1) % radix);
        } while (j != first);
      }
    } else {
      if (!state.past_hole && occ::test(row, desired) &&
          (prim = live_primary(desired)) != nullptr) {
        pick = desired;
      } else if (!state.past_hole) {
        state.past_hole = true;
        unsigned best_score = 0;
        for (unsigned j = occ::next(row, radix, 0); j != occ::kNone;
             j = occ::next(row, radix, j + 1)) {
          const NodeId* p = live_primary(j);
          if (p == nullptr) continue;
          const unsigned score =
              leading_bit_match(j, desired, params_.id.digit_bits);
          if (!pick.has_value() || score > best_score ||
              (score == best_score && j > *pick)) {
            pick = j;
            prim = p;
            best_score = score;
          }
        }
      } else {
        for (unsigned j = occ::prev(row, radix, radix - 1); j != occ::kNone;
             j = (j == 0 ? occ::kNone : occ::prev(row, radix, j - 1))) {
          if ((prim = live_primary(j)) != nullptr) {
            pick = j;
            break;
          }
        }
      }
    }
    // Reachable under failures before repair: every member of every slot
    // in this row is dead.  A real router would block on repair here; the
    // peek reports it as a checkable condition.
    TAP_CHECK(pick.has_value(), "peek: routing row with no live slot");
    const NodeId p = *prim;
    ++level;
    state.level = level;
    if (!(p == n.id())) return p;
  }
  state.level = level;
  return std::nullopt;
}

RouteResult Router::route_to_root(NodeId from, const Id& target,
                                  Trace* trace) {
  TapestryNode* cur = &reg_.live(from);
  RouteResult res;
  res.path.push_back(from);
  RouteState state;
  for (;;) {
    auto next = route_step(*cur, target, state, trace);
    if (!next.has_value()) {
      res.root = cur->id();
      return res;
    }
    TapestryNode& nxt = reg_.live(*next);
    // The hop itself is a wire message; continue from the delivered copy
    // (identical for the direct transport, decoded bytes for loopback).
    Message hop = make_message(MessageKind::kRouteHop, cur->id(), nxt.id(),
                               target);
    hop.level = state.level;
    hop.flag = state.past_hole;
    hop = transport_->deliver(hop);
    reg_.acct(trace, *cur, nxt);
    res.latency += reg_.dist(*cur, nxt);
    ++res.hops;
    if (hop.flag) ++res.surrogate_hops;
    res.path.push_back(nxt.id());
    cur = &nxt;
  }
}

RouteResult Router::walk_to_root_peek(NodeId from, const Id& target,
                                      Trace* trace,
                                      const NodeLockTable* locks) const {
  const TapestryNode* cur = &reg_.checked(from);
  {
    std::optional<NodeLockTable::Guard> g;
    if (locks != nullptr) g.emplace(*locks, from);
    TAP_CHECK(cur->alive, "route_to_root_peek: start node must be alive");
  }
  RouteResult res;
  res.path.push_back(from);
  RouteState state;
  for (;;) {
    // One stripe per routing decision in guarded mode: the step reads only
    // the current node's table (member liveness probes go through the
    // lock-free registry index).
    std::optional<NodeLockTable::Guard> g;
    if (locks != nullptr) g.emplace(*locks, cur->id());
    const auto next = route_step_peek(cur->id(), target, state);
    g.reset();
    if (!next.has_value()) {
      res.root = cur->id();
      return res;
    }
    const TapestryNode& nxt = reg_.checked(*next);
    Message hop = make_message(MessageKind::kRouteHop, cur->id(), nxt.id(),
                               target);
    hop.level = state.level;
    hop.flag = state.past_hole;
    hop = transport_->deliver(hop);
    reg_.acct(trace, *cur, nxt);
    res.latency += reg_.dist(*cur, nxt);
    ++res.hops;
    if (hop.flag) ++res.surrogate_hops;
    res.path.push_back(nxt.id());
    cur = &nxt;
  }
}

RouteResult Router::route_to_root_peek(NodeId from, const Id& target,
                                       Trace* trace) const {
  return walk_to_root_peek(from, target, trace, nullptr);
}

RouteResult Router::route_to_root_guarded(NodeId from, const Id& target,
                                          Trace* trace) const {
  return walk_to_root_peek(from, target, trace, &reg_.node_locks());
}

NodeId Router::surrogate_root(const Id& target) const {
  TAP_CHECK(reg_.live_count() > 0, "surrogate_root on empty network");
  const TapestryNode* start = nullptr;
  for (const auto& n : reg_.nodes()) {
    if (n->alive) {
      start = n.get();
      break;
    }
  }
  RouteState state;
  NodeId cur = start->id();
  for (;;) {
    auto next = route_step_peek(cur, target, state);
    if (!next.has_value()) return cur;
    cur = *next;
  }
}

}  // namespace tap
