// Object publication / location (§2.2), soft state (§6.5), and the
// object-pointer redistribution of §4.2 (Figure 9).
//
// Redistribution: when the routing mesh changes the expected path from some
// object to its root (a closer primary was adopted, a node vanished, a new
// node filled a hole), the node whose forward route changed pushes the
// object pointer up the *new* path.  Where the new path meets the old one —
// detected by finding an existing record whose last-hop differs — a delete
// message walks the old path backward via the stored last-hop links,
// removing the outdated pointers (DELETEPOINTERSBACKWARD).  This keeps
// Property 4 without republish-from-scratch traffic; plain soft-state
// republish remains as the backstop (§6.5).
#include "src/tapestry/object_directory.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "src/sim/metrics.h"
#include "src/sim/thread_pool.h"
#include "src/tapestry/replicated_store.h"
#include "src/tapestry/sharded_store.h"

namespace tap {

namespace {

void record_locate_metrics(const LocateResult& res) {
  metrics::locate_total().inc();
  if (res.found) metrics::locate_found_total().inc();
  metrics::locate_hops().observe(static_cast<double>(res.hops));
}

}  // namespace

ObjectDirectory::ObjectDirectory(NodeRegistry& registry, Router& router,
                                 const TapestryParams& params,
                                 EventQueue& events, Rng& rng)
    : reg_(registry), router_(router), params_(params), events_(events),
      rng_(rng), cache_(params.locate_cache_size, params.locate_cache_ttl) {
  if (params.store_backend == StoreBackend::kReplicated ||
      params.store_backend == StoreBackend::kReplicatedPersistent) {
    replicator_ = std::make_unique<QuorumReplicator>(registry, params);
  }
}

ObjectDirectory::~ObjectDirectory() = default;

void ObjectDirectory::bind_transport(Transport* transport) noexcept {
  transport_ = transport;
  if (replicator_) replicator_->bind_transport(transport);
}

void ObjectDirectory::invalidate_node_cache(const NodeId& id) {
  cache_.invalidate_node(id);
  if (replicator_) replicator_->on_node_death(id);
  if (node_death_hook_) node_death_hook_(id);
}

// ---------------------------------------------------------------------
// Publish / unpublish
// ---------------------------------------------------------------------

void ObjectDirectory::publish_one(TapestryNode& server, const Guid& salted,
                                  Trace* trace) {
  const double expires = events_.now() + params_.pointer_ttl;
  RouteState state;
  TapestryNode* cur = &server;
  // The record a node deposits is exactly the payload of the publish
  // message that arrived there (the server starts the chain locally);
  // each hop re-derives it from the delivered copy.
  PointerRecord arriving{server.id(), std::nullopt, 0, false, expires};
  for (;;) {
    cur->store().upsert(salted, arriving);
    auto next = router_.route_step(*cur, salted, state, trace);
    if (!next.has_value()) {  // cur is the root
      if (replicator_)
        replicator_->mirror_publish(*cur, salted, arriving, trace);
      break;
    }
    // §2.4 PRR variant: also deposit on the secondaries of the slot being
    // routed through ("equivalent to publishing on all the secondary
    // neighbors"); queries under the same flag probe those secondaries.
    if (params_.prr_secondary_search && state.level >= 1) {
      const unsigned slot_level = state.level - 1;
      const unsigned digit = next->digit(slot_level);
      const auto members = cur->table().at(slot_level, digit).entries();
      for (const auto& member : members) {
        if (member.id == *next || member.id == cur->id()) continue;
        TapestryNode* m = reg_.find(member.id);
        if (m == nullptr || !m->alive) continue;
        if (!reg_.reachable(cur->id(), member.id)) continue;
        reg_.acct(trace, *cur, *m, 1);
        m->store().upsert(salted,
                          PointerRecord{server.id(), cur->id(), state.level,
                                        state.past_hole, expires});
      }
    }
    TapestryNode& nxt = reg_.live(*next);
    Message m = make_message(MessageKind::kPublishDeposit, cur->id(),
                             nxt.id(), salted);
    m.server = server.id();
    m.last_hop = cur->id();
    m.level = state.level;
    m.flag = state.past_hole;
    m.expires_at = expires;
    m = transport_->deliver(m);
    reg_.acct(trace, *cur, nxt);
    arriving = PointerRecord{m.server, m.last_hop, m.level, m.flag,
                             m.expires_at};
    cur = &nxt;
  }
}

void ObjectDirectory::publish(NodeId server, const Guid& guid, Trace* trace) {
  TapestryNode& s = reg_.live(server);
  TAP_CHECK(guid.valid() && guid.spec() == params_.id,
            "guid does not match the network's IdSpec");
  metrics::publish_total().inc();
  for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
    publish_one(s, salted_guid(guid, salt), trace);
  auto& servers = replicas_[guid];
  if (std::find(servers.begin(), servers.end(), server) == servers.end())
    servers.push_back(server);
}

void ObjectDirectory::publish_batch(const std::vector<PublishRequest>& batch,
                                    std::size_t workers, Trace* trace,
                                    bool guarded) {
  if (batch.empty()) return;
  if (params_.prr_secondary_search) {
    // Secondary deposits mutate neighbor stores mid-walk; keep the serial
    // semantics rather than complicating the concurrent drain.  That
    // fallback routes with the unguarded mutating walk, so it must never
    // be reached from a caller racing a join wave.
    TAP_CHECK(!guarded,
              "publish_batch: guarded mode is incompatible with the "
              "prr_secondary_search serial fallback");
    for (const PublishRequest& r : batch) publish(r.server, r.guid, trace);
    return;
  }

  // Phase 0 (serial): validate and register every replica in batch order.
  for (const PublishRequest& r : batch) {
    TAP_CHECK(r.guid.valid() && r.guid.spec() == params_.id,
              "guid does not match the network's IdSpec");
    TAP_CHECK(reg_.is_live(r.server), "publish_batch: server must be alive");
    auto& servers = replicas_[r.guid];
    if (std::find(servers.begin(), servers.end(), r.server) == servers.end())
      servers.push_back(r.server);
  }
  const double expires = events_.now() + params_.pointer_ttl;

  // One task per (request, salt), grouped by the salted guid's leading
  // digit: every path in a group converges into the same root region.
  struct Task {
    NodeId server{};
    Guid target{};
  };
  struct Deposit {
    TapestryNode* at = nullptr;
    PointerRecord rec{};
  };
  const unsigned radix = params_.id.radix();
  // Tasks stay in request order — every later phase applies effects in
  // task order, which makes the result match the serial publish loop
  // (down to store iteration order; trace latency up to floating-point
  // summation order).  The per-root groups
  // only schedule phase 1: group g holds the indices of the tasks whose
  // salted guid leads with digit g, the root region their paths share.
  std::vector<Task> tasks;
  std::vector<std::vector<std::size_t>> groups(radix);
  for (const PublishRequest& r : batch) {
    for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt) {
      const Guid target = salted_guid(r.guid, salt);
      groups[target.digit(0)].push_back(tasks.size());
      tasks.push_back(Task{r.server, target});
    }
  }
  const std::size_t n_tasks = tasks.size();

  // Phase 1: walk every publish path with the mutation-free peek router —
  // any number of threads may read the quiescent mesh — collecting the
  // deposits and per-task cost accounting.  Drained group by group.  In
  // guarded mode each routing decision additionally takes the current
  // node's stripe lock, so the walk synchronises with a thread-parallel
  // join wave mutating the tables underneath it.
  std::vector<std::vector<Deposit>> deposits(n_tasks);
  std::vector<Trace> task_traces(n_tasks);
  const NodeLockTable& locks = reg_.node_locks();
  parallel_for(
      radix,
      [&](std::size_t d) {
        for (const std::size_t t : groups[d]) {
          const Task& task = tasks[t];
          TapestryNode* cur = &reg_.live(task.server);
          RouteState state;
          // As in publish_one: each deposit is the payload of the publish
          // message that arrived at the depositing node.
          PointerRecord arriving{task.server, std::nullopt, 0, false,
                                 expires};
          for (;;) {
            deposits[t].push_back(Deposit{cur, arriving});
            std::optional<NodeLockTable::Guard> g;
            if (guarded) g.emplace(locks, cur->id());
            const auto next =
                router_.route_step_peek(cur->id(), task.target, state);
            g.reset();
            if (!next.has_value()) break;  // cur is the root
            TapestryNode* nxt = reg_.find(*next);
            TAP_ASSERT(nxt != nullptr);
            Message m = make_message(MessageKind::kPublishDeposit, cur->id(),
                                     nxt->id(), task.target);
            m.server = task.server;
            m.last_hop = cur->id();
            m.level = state.level;
            m.flag = state.past_hole;
            m.expires_at = expires;
            m = transport_->deliver(m);
            reg_.acct(&task_traces[t], *cur, *nxt);
            arriving = PointerRecord{m.server, m.last_hop, m.level, m.flag,
                                     m.expires_at};
            cur = nxt;
          }
        }
      },
      workers);

  // Phase 2: drain the deposits concurrently.  The safety partition
  // depends on the backend: a plain store may only be touched by one
  // worker at a time, so deposits group by the registry shard of the
  // receiving node (the PR 3 scheme).  A striped backend (ShardedStore)
  // additionally splits each shard's work by the target guid's lock
  // stripe — workers hitting the same node's store then always hold
  // different stripes, so up to kShardCount * kStripeCount groups drain
  // at once instead of serializing whole shards.  Either way a given
  // (node, guid) pair always lands in exactly one group and each group
  // applies its deposits in task order, so the store contents match the
  // serial publish loop record for record, whatever the worker count.
  const std::size_t stripes =
      params_.store_backend == StoreBackend::kSharded
          ? ShardedStore::kStripeCount
          : 1;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> by_group(
      NodeRegistry::kShardCount * stripes);  // (task, deposit) indices
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const std::size_t stripe =
        stripes == 1 ? 0 : ShardedStore::stripe_of(tasks[t].target);
    for (std::size_t k = 0; k < deposits[t].size(); ++k)
      by_group[reg_.shard_of(deposits[t][k].at->id()) * stripes + stripe]
          .emplace_back(t, k);
  }
  parallel_for(
      by_group.size(),
      [&](std::size_t g) {
        for (const auto& [t, k] : by_group[g]) {
          const Deposit& dep = deposits[t][k];
          dep.at->store().upsert(tasks[t].target, dep.rec);
        }
      },
      workers);

  // Accounting lands in task order, independent of phase scheduling.
  if (trace != nullptr)
    for (const Trace& t : task_traces) trace->absorb(t);
}

void ObjectDirectory::unpublish_one(TapestryNode& server, const Guid& salted,
                                    Trace* trace) {
  RouteState state;
  TapestryNode* cur = &server;
  // The server named by the withdrawal rides the wire from hop to hop.
  NodeId victim = server.id();
  for (;;) {
    cur->store().remove(salted, victim);
    auto next = router_.route_step(*cur, salted, state, trace);
    if (!next.has_value()) {  // cur is the root
      if (replicator_) {
        replicator_->mirror_remove(*cur, salted, victim, trace);
      }
      break;
    }
    if (params_.prr_secondary_search && state.level >= 1) {
      // Withdraw the secondary-deposited copies symmetrically.
      const unsigned slot_level = state.level - 1;
      const unsigned digit = next->digit(slot_level);
      const auto members = cur->table().at(slot_level, digit).entries();
      for (const auto& member : members) {
        if (member.id == *next || member.id == cur->id()) continue;
        if (TapestryNode* m = reg_.find(member.id); m != nullptr) {
          reg_.acct(trace, *cur, *m, 1);
          m->store().remove(salted, victim);
        }
      }
    }
    TapestryNode& nxt = reg_.live(*next);
    Message m = make_message(MessageKind::kUnpublish, cur->id(), nxt.id(),
                             salted);
    m.server = victim;
    m = transport_->deliver(m);
    reg_.acct(trace, *cur, nxt);
    victim = m.server;
    cur = &nxt;
  }
}

void ObjectDirectory::unpublish(NodeId server, const Guid& guid,
                                Trace* trace) {
  TapestryNode& s = reg_.checked(server);
  metrics::unpublish_total().inc();
  for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
    unpublish_one(s, salted_guid(guid, salt), trace);
  auto it = replicas_.find(guid);
  if (it != replicas_.end()) {
    auto& servers = it->second;
    servers.erase(std::remove(servers.begin(), servers.end(), server),
                  servers.end());
    if (servers.empty()) replicas_.erase(it);
  }
  // Cached hints may name the withdrawn replica; drop them all rather than
  // letting every holder verification discover the removal one probe at a
  // time.  (Verification would still keep the answers correct — this is
  // the eager half of the invalidation contract.)
  cache_.invalidate_object(guid);
}

// ---------------------------------------------------------------------
// Locate
// ---------------------------------------------------------------------

std::optional<PointerRecord> ObjectDirectory::pick_live_replica(
    TapestryNode& holder, const Guid& target,
    const TapestryNode& relative_to) {
  // Prefer the replica closest to the reference node (§2.2); prune
  // pointers to dead servers that would have been examined on the way to
  // it (lazy soft-state decay).  One visitor pass over the backend instead
  // of copy-and-sort: the winner is the live record minimizing
  // (distance, server), and a dead record is pruned iff its key sorts
  // ahead of the winner's — exactly the records the old sorted loop
  // stepped over.  Each record's distance is computed once.
  const double now = events_.now();
  std::optional<PointerRecord> best;
  double best_d = 0.0;
  struct DeadRecord {
    double d;
    NodeId server;
  };
  std::vector<DeadRecord> dead;  // removal deferred: the visitor must not
                                 // mutate the store it is iterating
  holder.store().for_each_of(
      target, [&](const Guid&, const PointerRecord& r) {
        if (r.expires_at < now) return;  // expired records are invisible
        // A replica on the far side of an active partition is unavailable
        // but *alive*: skip it without pruning — its record must survive
        // the cut so healing restores it for free.
        if (!reg_.reachable(holder.id(), r.server)) return;
        const double d = reg_.distance(relative_to.id(), r.server);
        if (reg_.is_live(r.server)) {
          if (!best.has_value() || d < best_d ||
              (d == best_d && r.server < best->server)) {
            best = r;
            best_d = d;
          }
        } else {
          dead.push_back(DeadRecord{d, r.server});
        }
      });
  for (const auto& dr : dead) {
    if (best.has_value() &&
        !(dr.d < best_d || (dr.d == best_d && dr.server < best->server)))
      continue;  // sorts after the winner: the old loop never reached it
    holder.store().remove(target, dr.server);
  }
  return best;
}

void ObjectDirectory::cache_fill_path(const Guid& base,
                                      const std::vector<NodeId>& path,
                                      const Guid& via, const NodeId& holder,
                                      const PointerRecord& rec) {
  if (!cache_.enabled()) return;
  const double now = events_.now();
  for (const NodeId& at : path) {
    if (at == holder) continue;  // the holder has the real record
    cache_.insert(at, base,
                  LocateCache::Entry{via, holder, rec.server, rec.expires_at},
                  now);
  }
}

LocateResult ObjectDirectory::locate_attempt(TapestryNode& client,
                                             const Guid& target,
                                             Trace* trace, const Guid* base) {
  LocateResult res;
  Trace local(false);
  Trace* t = trace != nullptr ? trace : &local;
  const std::size_t msgs0 = t->messages();
  const double lat0 = t->latency();
  const bool use_cache = base != nullptr && cache_.enabled();
  std::vector<NodeId> walked;  // query path, for cache population

  auto resolve = [&](TapestryNode& holder, const PointerRecord& rec,
                     const Guid& via) {
    res.found = true;
    res.pointer_node = holder.id();
    // The pointer hit travels as a message naming the replica; the final
    // leg routes toward the server the delivered copy names.
    Message found = make_message(MessageKind::kLocateFound, holder.id(),
                                 rec.server, via);
    found.server = rec.server;
    found = transport_->deliver(found);
    res.server = found.server;
    if (use_cache) cache_fill_path(*base, walked, via, holder.id(), rec);
    // Forward the query along neighbor links to the replica.
    if (!(found.server == holder.id())) {
      RouteResult leg = router_.route_to_root(holder.id(), found.server, t);
      if (!(leg.root == found.server)) {
        // Only a partition can divert exact-id routing: the replica is
        // alive and same-side as the holder, but the side-local digit
        // path may lack the entries needed to land on it exactly.  The
        // query dead-ends at a surrogate — a miss, not a bug.
        TAP_ASSERT_MSG(reg_.partition_active(),
                       "exact-id routing must terminate at the server");
        res.found = false;
      }
    }
    res.hops = t->messages() - msgs0;
    res.latency = t->latency() - lat0;
  };

  TapestryNode* cur = &client;
  RouteState state;
  std::unordered_set<std::uint64_t> visited;  // loop guard (§4.3)
  Router::ExcludeSet excluded;  // inserting nodes we bounced off (Figure 10)
  for (;;) {
    // Check the current node for a pointer before routing further.
    if (auto rec = pick_live_replica(*cur, target, *cur); rec.has_value()) {
      walked.push_back(cur->id());
      resolve(*cur, *rec, target);
      return res;
    }

    // A remembered resolution short-circuits the walk: jump one message to
    // the cached pointer holder and re-read its real store there.  Success
    // resolves exactly as an uncached arrival at that holder would; failure
    // (holder dead, record gone/expired/rerouted, replica dead) erases the
    // hint, pays the probe round trip, and resumes the walk right here.
    if (use_cache) {
      if (auto ce = cache_.lookup(cur->id(), *base, events_.now());
          ce.has_value()) {
        TapestryNode* h = reg_.find(ce->holder);
        if (h != nullptr && h->alive && !(h->id() == cur->id()) &&
            reg_.reachable(cur->id(), h->id())) {
          wire(MessageKind::kLocateStep, cur->id(), h->id(), target);
          reg_.acct(t, *cur, *h);  // forward to the remembered holder
          if (auto rec = pick_live_replica(*h, ce->target, *h);
              rec.has_value()) {
            walked.push_back(cur->id());
            resolve(*h, *rec, ce->target);
            return res;
          }
          wire(MessageKind::kLocateStep, h->id(), cur->id(), target);
          reg_.acct(t, *h, *cur);  // verification failed: bounce back
          cache_.note_fallback();
        }
        cache_.erase(cur->id(), *base);
      }
    }

    walked.push_back(cur->id());
    if (!visited.insert(cur->id().value()).second) break;  // loop -> miss

    const unsigned level_before = state.level;
    auto next = router_.route_step(*cur, target, state, t,
                                   excluded.empty() ? nullptr : &excluded);
    if (next.has_value()) {
      // §2.4 PRR variant: before taking the hop, probe the *secondary*
      // members of the slot being routed through for pointers (the
      // primary is about to be visited anyway).
      if (params_.prr_secondary_search) {
        TAP_ASSERT(state.level >= 1);
        const unsigned slot_level =
            state.level - 1 >= level_before ? state.level - 1 : level_before;
        const unsigned digit = next->digit(slot_level);
        // Copy: probing may prune dead members.
        const auto members = cur->table().at(slot_level, digit).entries();
        for (const auto& member : members) {
          if (member.id == *next || member.id == cur->id()) continue;
          TapestryNode* m = reg_.find(member.id);
          if (m == nullptr || !m->alive) continue;
          if (!reg_.reachable(cur->id(), member.id)) continue;
          wire(MessageKind::kLocateStep, cur->id(), m->id(), target);
          reg_.acct(t, *cur, *m, 2);  // probe round trip
          if (auto rec = pick_live_replica(*m, target, *cur);
              rec.has_value()) {
            resolve(*m, *rec, target);
            return res;
          }
        }
      }
      TapestryNode& nxt = reg_.live(*next);
      Message q = make_message(MessageKind::kLocateStep, cur->id(), nxt.id(),
                               target);
      q.level = state.level;
      q.flag = state.past_hole;
      q = transport_->deliver(q);
      state.level = q.level;
      state.past_hole = q.flag;
      reg_.acct(t, *cur, nxt);
      cur = &nxt;
      continue;
    }

    // cur is the root and has no pointer.  If cur is still inserting, the
    // pointer may not have been transferred yet: send the request back out
    // at the hole level to the surrogate, which routes it as if the new
    // node had not yet entered the network (Figure 10).
    if (cur->inserting && cur->psurrogate.has_value() &&
        reg_.is_live(*cur->psurrogate)) {
      excluded.insert(cur->id().value());
      TapestryNode& sur = reg_.live(*cur->psurrogate);
      wire(MessageKind::kLocateStep, cur->id(), sur.id(), target);
      reg_.acct(t, *cur, sur);
      // Resume at the level of the hole the inserting node fills.  The
      // re-route may legally revisit earlier nodes; termination is
      // guaranteed because each bounce permanently excludes one more
      // inserting node.
      state.level = cur->id().common_prefix_len(sur.id());
      visited.clear();
      cur = &sur;
      continue;
    }

    // Quorum fallback: the root lost its records (typically it is a fresh
    // surrogate after the old root died).  Read R-of-N from the holder
    // set, install the merged records here so future queries hit the fast
    // path, and resolve as if the root had held them all along.
    if (replicator_ != nullptr) {
      const auto merged =
          replicator_->quorum_read(*cur, target, events_.now(), t);
      if (!merged.empty()) {
        for (const PointerRecord& r : merged) cur->store().upsert(target, r);
        if (auto rec = pick_live_replica(*cur, target, *cur);
            rec.has_value()) {
          resolve(*cur, *rec, target);
          return res;
        }
      }
    }
    break;  // definitive miss
  }

  res.hops = t->messages() - msgs0;
  res.latency = t->latency() - lat0;
  return res;
}

LocateResult ObjectDirectory::locate(NodeId client, const Guid& guid,
                                     Trace* trace) {
  TapestryNode& c = reg_.live(client);
  TAP_CHECK(guid.valid() && guid.spec() == params_.id,
            "guid does not match the network's IdSpec");
  // "At the beginning of the query, we select a root randomly from R_psi."
  const unsigned first = params_.root_multiplicity == 1
                             ? 0
                             : static_cast<unsigned>(
                                   rng_.next_u64(params_.root_multiplicity));
  // Observation 1: when enabled, a miss retries the remaining independent
  // root names, accumulating cost; the first hit wins.
  const unsigned attempts =
      params_.retry_all_roots ? params_.root_multiplicity : 1;
  Trace local(false);
  Trace* t = trace != nullptr ? trace : &local;
  LocateResult res;
  double spent_latency = 0.0;
  std::size_t spent_hops = 0;
  for (unsigned a = 0; a < attempts; ++a) {
    const unsigned salt = (first + a) % params_.root_multiplicity;
    res = locate_attempt(c, salted_guid(guid, salt), t, &guid);
    if (res.found) {
      res.hops += spent_hops;
      res.latency += spent_latency;
      record_locate_metrics(res);
      return res;
    }
    spent_hops += res.hops;
    spent_latency += res.latency;
  }
  res.hops = spent_hops;
  res.latency = spent_latency;
  record_locate_metrics(res);
  return res;
}

// ---------------------------------------------------------------------
// Event-driven publish / locate
// ---------------------------------------------------------------------
//
// The async variants run the same per-node logic as the synchronous code
// above, but as one EventQueue event per routing hop: between two hops of
// one operation, any number of other events — churn, repairs, republish
// refreshes, expiry sweeps, other operations' hops — may fire.  State that
// the synchronous code keeps on the stack lives in a shared_ptr'd op
// struct; each scheduled step captures the struct, never raw node
// pointers, and re-resolves nodes through the registry when it fires (the
// node a query is parked on may have died in the meantime).

struct ObjectDirectory::AsyncLocateOp {
  Guid base{};
  NodeId client{};
  unsigned first_salt = 0;
  unsigned attempts = 1;
  unsigned attempt = 0;
  // Per-attempt cursor (reset by begin_locate_attempt).
  Guid target{};
  NodeId cur{};
  RouteState state{};
  std::unordered_set<std::uint64_t> visited{};
  Router::ExcludeSet excluded{};
  // Nodes this attempt's walk has passed through; on success each one gets
  // a locate-cache hint pointing at the resolving holder.
  std::vector<NodeId> path{};
  // A cache hit in flight: the query jumped from cache_from toward the
  // remembered holder and will verify the real store there
  // (locate_cache_step); the hint's salted name rides along because it may
  // differ from this attempt's target.
  Guid cache_target{};
  NodeId cache_holder{};
  NodeId cache_from{};
  // Final pointer -> replica leg (§2.2, Figure 3), decomposed per hop like
  // the walk to the pointer: set once a pointer is found.  (Which phase a
  // query is in is encoded by the scheduled callback — locate_step vs
  // locate_replica_step — not by a flag.)
  NodeId replica_target{};
  RouteState leg_state{};
  // Accounting: everything lands here; absorbed into `external` at the end.
  Trace per_op{false};
  Trace* external = nullptr;
  LocateCallback done;
  LocateResult res{};
};

struct ObjectDirectory::AsyncPublishOp {
  NodeId server{};
  Guid base{};
  unsigned salt = 0;
  // Per-path cursor (reset by begin_publish_path).
  Guid target{};
  NodeId cur{};
  std::optional<NodeId> last_hop{};
  RouteState state{};
  double expires = 0.0;
  Trace per_op{false};
  Trace* external = nullptr;
  PublishCallback done;
};

void ObjectDirectory::publish_async(NodeId server, const Guid& guid,
                                    Trace* trace, PublishCallback done) {
  TAP_CHECK(guid.valid() && guid.spec() == params_.id,
            "guid does not match the network's IdSpec");
  TAP_CHECK(reg_.is_live(server), "publish_async: server must be alive");
  metrics::publish_total().inc();
  // The replica exists from this instant; the directory catches up hop by
  // hop (queries racing the deposit may legitimately miss meanwhile).
  auto& servers = replicas_[guid];
  if (std::find(servers.begin(), servers.end(), server) == servers.end())
    servers.push_back(server);
  auto op = std::make_shared<AsyncPublishOp>();
  op->server = server;
  op->base = guid;
  op->external = trace;
  op->done = std::move(done);
  ++in_flight_;
  begin_publish_path(op);
}

void ObjectDirectory::begin_publish_path(
    const std::shared_ptr<AsyncPublishOp>& op) {
  if (op->salt >= params_.root_multiplicity || !reg_.is_live(op->server)) {
    if (op->external != nullptr) op->external->absorb(op->per_op);
    --in_flight_;
    if (op->done) op->done();
    return;
  }
  op->target = salted_guid(op->base, op->salt);
  op->cur = op->server;
  op->last_hop.reset();
  op->state = RouteState{};
  op->expires = events_.now() + params_.pointer_ttl;
  events_.schedule_in(0.0, [this, op] { publish_step(op); });
}

void ObjectDirectory::publish_step(const std::shared_ptr<AsyncPublishOp>& op) {
  TapestryNode* cur = reg_.find(op->cur);
  if (cur == nullptr || !cur->alive) {
    // The carrier died under the message: this path is lost; soft-state
    // republish restores it (§6.5).  Continue with the next root name.
    ++op->salt;
    begin_publish_path(op);
    return;
  }
  const PointerRecord rec{op->server, op->last_hop, op->state.level,
                          op->state.past_hole, op->expires};
  cur->store().upsert(op->target, rec);
  auto next = router_.route_step(*cur, op->target, op->state, &op->per_op);
  if (!next.has_value()) {  // root reached and stamped
    if (replicator_) {
      replicator_->mirror_publish(*cur, op->target, rec, &op->per_op);
    }
    ++op->salt;
    begin_publish_path(op);
    return;
  }
  if (params_.prr_secondary_search && op->state.level >= 1) {
    // Mirror the synchronous path: deposit on the slot's secondaries too.
    const unsigned slot_level = op->state.level - 1;
    const unsigned digit = next->digit(slot_level);
    const auto members = cur->table().at(slot_level, digit).entries();
    for (const auto& member : members) {
      if (member.id == *next || member.id == cur->id()) continue;
      TapestryNode* m = reg_.find(member.id);
      if (m == nullptr || !m->alive) continue;
      if (!reg_.reachable(cur->id(), member.id)) continue;
      reg_.acct(&op->per_op, *cur, *m, 1);
      m->store().upsert(op->target,
                        PointerRecord{op->server, cur->id(), op->state.level,
                                      op->state.past_hole, op->expires});
    }
  }
  TapestryNode& nxt = reg_.live(*next);
  Message m = make_message(MessageKind::kPublishDeposit, cur->id(), nxt.id(),
                           op->target);
  m.server = op->server;
  m.last_hop = cur->id();
  m.level = op->state.level;
  m.flag = op->state.past_hole;
  m.expires_at = op->expires;
  m = transport_->deliver(m);
  reg_.acct(&op->per_op, *cur, nxt);
  op->last_hop = m.last_hop;
  op->state.level = m.level;
  op->state.past_hole = m.flag;
  op->expires = m.expires_at;
  op->cur = *next;
  events_.schedule_in(reg_.dist(*cur, nxt) * params_.hop_delay_scale,
                      [this, op] { publish_step(op); });
}

void ObjectDirectory::locate_async(NodeId client, const Guid& guid,
                                   LocateCallback done, Trace* trace) {
  TAP_CHECK(static_cast<bool>(done), "locate_async requires a callback");
  TAP_CHECK(guid.valid() && guid.spec() == params_.id,
            "guid does not match the network's IdSpec");
  TAP_CHECK(reg_.is_live(client), "locate_async: client must be alive");
  auto op = std::make_shared<AsyncLocateOp>();
  op->base = guid;
  op->client = client;
  op->first_salt = params_.root_multiplicity == 1
                       ? 0
                       : static_cast<unsigned>(
                             rng_.next_u64(params_.root_multiplicity));
  op->attempts = params_.retry_all_roots ? params_.root_multiplicity : 1;
  op->external = trace;
  op->done = std::move(done);
  ++in_flight_;
  begin_locate_attempt(op);
}

void ObjectDirectory::begin_locate_attempt(
    const std::shared_ptr<AsyncLocateOp>& op) {
  const unsigned salt =
      (op->first_salt + op->attempt) % params_.root_multiplicity;
  op->target = salted_guid(op->base, salt);
  op->cur = op->client;
  op->state = RouteState{};
  op->visited.clear();
  op->excluded.clear();
  op->path.clear();
  op->replica_target = NodeId{};
  op->leg_state = RouteState{};
  op->res = LocateResult{};  // a failed leg may have left partial fields
  events_.schedule_in(0.0, [this, op] { locate_step(op); });
}

void ObjectDirectory::next_locate_attempt(
    const std::shared_ptr<AsyncLocateOp>& op) {
  ++op->attempt;
  if (op->attempt >= op->attempts) {
    // A failed final leg may have left pointer_node/server populated;
    // a miss must not leak a stale "last known location".
    op->res = LocateResult{};
    finish_locate(op);
    return;
  }
  begin_locate_attempt(op);
}

void ObjectDirectory::finish_locate(const std::shared_ptr<AsyncLocateOp>& op) {
  op->res.hops = op->per_op.messages();
  op->res.latency = op->per_op.latency();
  record_locate_metrics(op->res);
  if (op->external != nullptr) op->external->absorb(op->per_op);
  --in_flight_;
  op->done(op->res);
}

void ObjectDirectory::locate_step(const std::shared_ptr<AsyncLocateOp>& op) {
  TapestryNode* curp = reg_.find(op->cur);
  if (curp == nullptr || !curp->alive) {
    // The node carrying the query died while the message was in flight:
    // this root attempt is lost.  (The synchronous path can never observe
    // this state — it completes atomically against a liveness snapshot.)
    next_locate_attempt(op);
    return;
  }
  TapestryNode& cur = *curp;
  Trace* t = &op->per_op;

  auto resolve = [&](TapestryNode& holder, const PointerRecord& rec,
                     const Guid& via) {
    op->res.pointer_node = holder.id();
    Message found = make_message(MessageKind::kLocateFound, holder.id(),
                                 rec.server, via);
    found.server = rec.server;
    found = transport_->deliver(found);
    op->res.server = found.server;
    cache_fill_path(op->base, op->path, via, holder.id(), rec);
    if (found.server == holder.id()) {  // the pointer holder is the replica
      op->res.found = true;
      finish_locate(op);
      return;
    }
    // Final leg to the replica: one routing decision per event, exactly
    // like the walk to the pointer, so a replica (or carrier) crash can
    // strike while the query is already heading for it — the §6.5
    // interleaving the atomic leg could never observe.
    op->replica_target = found.server;
    op->leg_state = RouteState{};
    op->cur = holder.id();
    events_.schedule_in(0.0, [this, op] { locate_replica_step(op); });
  };

  // Check the current node for a pointer before routing further.
  if (auto rec = pick_live_replica(cur, op->target, cur); rec.has_value()) {
    op->path.push_back(cur.id());
    resolve(cur, *rec, op->target);
    return;
  }

  // A remembered resolution short-circuits the walk: jump one message to
  // the cached holder and verify its real store when the message lands
  // (locate_cache_step) — the holder's state *then* decides, exactly as
  // for any other in-flight hop.  Checked after the authoritative store
  // and before the loop guard: a failed verification resumes the walk
  // here, and that resumption must not count as a revisit.
  if (cache_.enabled()) {
    if (auto ce = cache_.lookup(cur.id(), op->base, events_.now());
        ce.has_value()) {
      TapestryNode* h = reg_.find(ce->holder);
      if (h != nullptr && h->alive && !(h->id() == cur.id()) &&
          reg_.reachable(cur.id(), h->id())) {
        wire(MessageKind::kLocateStep, cur.id(), h->id(), op->target);
        reg_.acct(t, cur, *h);  // forward to the remembered holder
        op->path.push_back(cur.id());
        op->cache_target = ce->target;
        op->cache_holder = ce->holder;
        op->cache_from = cur.id();
        events_.schedule_in(reg_.dist(cur, *h) * params_.hop_delay_scale,
                            [this, op] { locate_cache_step(op); });
        return;
      }
      cache_.erase(cur.id(), op->base);
    }
  }

  op->path.push_back(cur.id());
  if (!op->visited.insert(cur.id().value()).second) {  // loop -> miss (§4.3)
    next_locate_attempt(op);
    return;
  }

  const unsigned level_before = op->state.level;
  auto next = router_.route_step(cur, op->target, op->state, t,
                                 op->excluded.empty() ? nullptr
                                                      : &op->excluded);
  if (next.has_value()) {
    if (params_.prr_secondary_search) {
      // §2.4: probe the secondaries of the slot being routed through.
      TAP_ASSERT(op->state.level >= 1);
      const unsigned slot_level = op->state.level - 1 >= level_before
                                      ? op->state.level - 1
                                      : level_before;
      const unsigned digit = next->digit(slot_level);
      const auto members = cur.table().at(slot_level, digit).entries();
      for (const auto& member : members) {
        if (member.id == *next || member.id == cur.id()) continue;
        TapestryNode* m = reg_.find(member.id);
        if (m == nullptr || !m->alive) continue;
        if (!reg_.reachable(cur.id(), member.id)) continue;
        wire(MessageKind::kLocateStep, cur.id(), m->id(), op->target);
        reg_.acct(t, cur, *m, 2);  // probe round trip
        if (auto rec = pick_live_replica(*m, op->target, cur);
            rec.has_value()) {
          resolve(*m, *rec, op->target);
          return;
        }
      }
    }
    TapestryNode& nxt = reg_.live(*next);
    Message hop = make_message(MessageKind::kLocateStep, cur.id(), nxt.id(),
                               op->target);
    hop.level = op->state.level;
    hop.flag = op->state.past_hole;
    hop = transport_->deliver(hop);
    op->state.level = hop.level;
    op->state.past_hole = hop.flag;
    reg_.acct(t, cur, nxt);
    op->cur = *next;
    events_.schedule_in(reg_.dist(cur, nxt) * params_.hop_delay_scale,
                        [this, op] { locate_step(op); });
    return;
  }

  // Root without a pointer; bounce to the surrogate if the root is still
  // inserting (Figure 10), exactly as in the synchronous path.
  if (cur.inserting && cur.psurrogate.has_value() &&
      reg_.is_live(*cur.psurrogate)) {
    op->excluded.insert(cur.id().value());
    TapestryNode& sur = reg_.live(*cur.psurrogate);
    wire(MessageKind::kLocateStep, cur.id(), sur.id(), op->target);
    reg_.acct(t, cur, sur);
    op->state.level = cur.id().common_prefix_len(sur.id());
    op->visited.clear();
    op->cur = sur.id();
    events_.schedule_in(reg_.dist(cur, sur) * params_.hop_delay_scale,
                        [this, op] { locate_step(op); });
    return;
  }

  // Quorum fallback, mirroring the synchronous path: a root with no
  // records asks its holder set before declaring a miss.
  if (replicator_ != nullptr) {
    const auto merged =
        replicator_->quorum_read(cur, op->target, events_.now(), t);
    if (!merged.empty()) {
      for (const PointerRecord& r : merged) cur.store().upsert(op->target, r);
      if (auto rec = pick_live_replica(cur, op->target, cur);
          rec.has_value()) {
        resolve(cur, *rec, op->target);
        return;
      }
    }
  }
  next_locate_attempt(op);  // definitive miss for this root
}

void ObjectDirectory::locate_cache_step(
    const std::shared_ptr<AsyncLocateOp>& op) {
  // The jump message has landed (or tried to): verify the remembered
  // holder's real store against the hint.  Everything may have changed
  // while the message flew — holder crashed, record unpublished, expired
  // or rerouted away, named replica dead — and each of those must behave
  // exactly as the uncached walk would have: resume routing, don't fail.
  TapestryNode* h = reg_.find(op->cache_holder);
  if (h != nullptr && h->alive) {
    if (auto rec = pick_live_replica(*h, op->cache_target, *h);
        rec.has_value()) {
      // Same resolution an uncached arrival at this holder would produce.
      op->res.pointer_node = h->id();
      Message found = make_message(MessageKind::kLocateFound, h->id(),
                                   rec->server, op->cache_target);
      found.server = rec->server;
      found = transport_->deliver(found);
      op->res.server = found.server;
      cache_fill_path(op->base, op->path, op->cache_target, h->id(), *rec);
      if (found.server == h->id()) {
        op->res.found = true;
        finish_locate(op);
        return;
      }
      op->replica_target = found.server;
      op->leg_state = RouteState{};
      op->cur = h->id();
      events_.schedule_in(0.0, [this, op] { locate_replica_step(op); });
      return;
    }
  }
  // Verification failed: drop the hint and bounce back to where the walk
  // left off.  If that node died meanwhile, the attempt is lost like any
  // other carrier death.
  cache_.erase(op->cache_from, op->base);
  cache_.note_fallback();
  TapestryNode* from = reg_.find(op->cache_from);
  if (from == nullptr || !from->alive) {
    next_locate_attempt(op);
    return;
  }
  double delay = 0.0;
  if (h != nullptr) {
    wire(MessageKind::kLocateStep, h->id(), from->id(), op->target);
    reg_.acct(&op->per_op, *h, *from);  // the bounce-back message
    delay = reg_.dist(*h, *from) * params_.hop_delay_scale;
  }
  op->cur = op->cache_from;
  events_.schedule_in(delay, [this, op] { locate_step(op); });
}

void ObjectDirectory::locate_replica_step(
    const std::shared_ptr<AsyncLocateOp>& op) {
  TapestryNode* curp = reg_.find(op->cur);
  if (curp == nullptr || !curp->alive) {
    // The node carrying the query died while the leg was in flight: this
    // root attempt is lost, like a carrier death on the walk to the
    // pointer.
    next_locate_attempt(op);
    return;
  }
  TapestryNode& cur = *curp;
  if (cur.id() == op->replica_target) {  // arrived at the replica
    op->res.found = true;
    finish_locate(op);
    return;
  }
  // One exact-id routing decision toward the replica per event.
  // route_step hands back live nodes only; if the replica crashed after
  // the pointer was read, lazy repair purges it and the walk terminates
  // at its surrogate instead — a lost attempt, retried on the remaining
  // roots like any other in-flight casualty.
  auto next = router_.route_step(cur, op->replica_target, op->leg_state,
                                 &op->per_op);
  if (!next.has_value()) {
    next_locate_attempt(op);
    return;
  }
  TapestryNode& nxt = reg_.live(*next);
  wire(MessageKind::kRouteHop, cur.id(), nxt.id(), op->replica_target);
  reg_.acct(&op->per_op, cur, nxt);
  op->cur = *next;
  events_.schedule_in(reg_.dist(cur, nxt) * params_.hop_delay_scale,
                      [this, op] { locate_replica_step(op); });
}

// ---------------------------------------------------------------------
// Soft state (§6.5)
// ---------------------------------------------------------------------

void ObjectDirectory::republish_server(NodeId server, Trace* trace) {
  if (!reg_.is_live(server)) return;
  for (const auto& [guid, servers] : replicas_) {
    if (std::find(servers.begin(), servers.end(), server) != servers.end()) {
      TapestryNode& s = reg_.live(server);
      for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
        publish_one(s, salted_guid(guid, salt), trace);
    }
  }
}

void ObjectDirectory::republish_all(Trace* trace) {
  for (const auto& [guid, servers] : replicas_) {
    for (const NodeId& server : servers) {
      if (!reg_.is_live(server)) continue;
      TapestryNode& s = reg_.live(server);
      for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt)
        publish_one(s, salted_guid(guid, salt), trace);
    }
  }
}

void ObjectDirectory::expire_pointers(std::size_t workers) {
  const double now = events_.now();
  // Snapshot under the registry's append mutex rather than iterating
  // nodes_ raw: a thread-parallel join wave may be registering nodes while
  // this sweep races it, and the snapshot pins a stable prefix (joins
  // never touch stores, so the per-node sweeps themselves race nothing —
  // with a striped backend not even concurrent guarded deposits).
  const std::vector<TapestryNode*> nodes = reg_.nodes_snapshot();
  if (workers <= 1) {
    for (TapestryNode* n : nodes)
      if (n->alive) n->store().remove_expired(now);
    return;
  }
  // Per-node sweeps are independent (one store each), so the fan-out is
  // safe with every backend and the result identical to the serial loop.
  parallel_for(
      nodes.size(),
      [&](std::size_t i) {
        if (nodes[i]->alive) nodes[i]->store().remove_expired(now);
      },
      workers);
}

// ---------------------------------------------------------------------
// Checkpoint / restore (persistent backend)
// ---------------------------------------------------------------------

void ObjectDirectory::checkpoint(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  TAP_CHECK(!ec, "checkpoint: cannot create " + dir);
  // Push every store's buffered durable state first: the manifest must
  // never describe records the WALs have not seen.
  for (const auto& n : reg_.nodes()) n->store().flush();

  const std::string tmp = dir + "/manifest.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  TAP_CHECK(f != nullptr, "checkpoint: cannot write " + tmp);
  std::fprintf(f, "T %.17g\n", events_.now());
  for (const auto& n : reg_.nodes())
    if (n->alive)
      std::fprintf(f, "N %llx %zu\n",
                   static_cast<unsigned long long>(n->id().value()),
                   n->location());
  for (const auto& [guid, servers] : replicas_)
    for (const NodeId& s : servers)
      std::fprintf(f, "O %llx %llx\n",
                   static_cast<unsigned long long>(guid.value()),
                   static_cast<unsigned long long>(s.value()));
  // Verify before the atomic publish: renaming a truncated manifest over
  // the previous good one would make the next restore silently rebuild a
  // smaller overlay.
  const bool wrote = std::fflush(f) == 0 && std::ferror(f) == 0;
  const bool closed = std::fclose(f) == 0;
  TAP_CHECK(wrote && closed, "checkpoint: manifest write failed in " + dir);
  std::filesystem::rename(tmp, dir + "/manifest", ec);
  TAP_CHECK(!ec, "checkpoint: cannot publish " + dir + "/manifest");
}

ObjectDirectory::CheckpointManifest ObjectDirectory::read_manifest(
    const std::string& dir) {
  CheckpointManifest m;
  const std::string path = dir + "/manifest";
  std::FILE* f = std::fopen(path.c_str(), "r");
  TAP_CHECK(f != nullptr, "read_manifest: cannot read " + path);
  char line[128];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (line[0] == 'T') {
      TAP_CHECK(std::sscanf(line, "T %lf", &m.time) == 1,
                "read_manifest: bad T line");
    } else if (line[0] == 'N') {
      unsigned long long id = 0;
      std::size_t loc = 0;
      TAP_CHECK(std::sscanf(line, "N %llx %zu", &id, &loc) == 2,
                "read_manifest: bad N line");
      m.nodes.emplace_back(id, loc);
    } else if (line[0] == 'O') {
      unsigned long long g = 0, s = 0;
      TAP_CHECK(std::sscanf(line, "O %llx %llx", &g, &s) == 2,
                "read_manifest: bad O line");
      m.replicas.emplace_back(g, s);
    } else {
      TAP_CHECK(line[0] == '\n' || line[0] == '\0',
                "read_manifest: unknown line kind in " + path);
    }
  }
  std::fclose(f);
  return m;
}

double ObjectDirectory::restore(const std::string& dir) {
  const CheckpointManifest m = read_manifest(dir);
  replicas_.clear();
  for (const auto& [g, s] : m.replicas)
    replicas_[Guid(params_.id, g)].push_back(NodeId(params_.id, s));
  return m.time;
}

void ObjectDirectory::start_soft_state(double republish_every,
                                       double expiry_every, Trace* trace) {
  stop_soft_state();
  if (republish_every > 0.0) schedule_republish_tick(republish_every, trace);
  if (expiry_every > 0.0) schedule_expiry_tick(expiry_every);
}

void ObjectDirectory::stop_soft_state() {
  if (republish_event_.has_value()) {
    events_.cancel(*republish_event_);
    republish_event_.reset();
  }
  if (expiry_event_.has_value()) {
    events_.cancel(*expiry_event_);
    expiry_event_.reset();
  }
}

void ObjectDirectory::schedule_republish_tick(double every, Trace* trace) {
  republish_event_ = events_.schedule_in(every, [this, every, trace] {
    republish_event_.reset();
    // Each live replica refreshes event-driven, so the refresh walks
    // interleave with everything else on the queue — unlike the atomic
    // republish_all the synchronous experiments use.  Snapshot first:
    // publish_async touches the registry we are iterating.
    const auto pairs = published();
    for (const auto& [guid, server] : pairs)
      if (reg_.is_live(server)) publish_async(server, guid, trace);
    schedule_republish_tick(every, trace);
  });
}

void ObjectDirectory::schedule_expiry_tick(double every) {
  expiry_event_ = events_.schedule_in(every, [this, every] {
    expiry_event_.reset();
    expire_pointers();
    schedule_expiry_tick(every);
  });
}

// ---------------------------------------------------------------------
// Pointer maintenance (§4.2, Figure 9)
// ---------------------------------------------------------------------

std::optional<NodeId> ObjectDirectory::pointer_next_hop(
    const TapestryNode& at, const Guid& guid,
    const PointerRecord& record) const {
  // Raw table walk: selection ignores liveness, exactly as the node itself
  // would route before discovering a corpse.  Deterministic in the table
  // contents, which is what "did the path change" must compare.
  RouteState state{record.level, record.past_hole};
  const unsigned digits = params_.id.num_digits;
  while (state.level < digits) {
    auto j = router_.select_slot(at, state.level, guid.digit(state.level),
                                 state.past_hole);
    TAP_ASSERT_MSG(j.has_value(), "routing row with no filled slot");
    const auto prim = at.table().at(state.level, *j).primary();
    TAP_ASSERT(prim.has_value());
    ++state.level;
    if (!(*prim == at.id())) return prim;
  }
  return std::nullopt;
}

std::vector<ObjectDirectory::PendingReroute>
ObjectDirectory::snapshot_pointer_hops(const TapestryNode& at) const {
  std::vector<PendingReroute> out;
  for (const auto& [guid, rec] : at.store().snapshot())
    out.push_back(PendingReroute{guid, rec, pointer_next_hop(at, guid, rec)});
  return out;
}

void ObjectDirectory::reroute_changed_pointers(
    TapestryNode& at, const std::vector<PendingReroute>& before,
    Trace* trace) {
  for (const auto& p : before) {
    // The record may have been refreshed or dropped meanwhile; re-read.
    const auto current = at.store().find(p.guid, p.record.server);
    if (!current.has_value()) continue;
    const auto now_hop = pointer_next_hop(at, p.guid, *current);
    if (now_hop == p.next_hop) continue;
    optimize_pointer(at, p.guid, *current, trace);
  }
}

void ObjectDirectory::optimize_pointer(TapestryNode& from, const Guid& guid,
                                       const PointerRecord& record,
                                       Trace* trace) {
  const NodeId changed = from.id();
  RouteState state{record.level, record.past_hole};
  TapestryNode* prev = &from;
  auto step = router_.route_step(from, guid, state, trace);
  while (step.has_value()) {
    TapestryNode& v = reg_.live(*step);
    Message m = make_message(MessageKind::kPointerOptimize, prev->id(),
                             v.id(), guid);
    m.server = record.server;
    m.last_hop = prev->id();
    m.level = state.level;
    m.flag = state.past_hole;
    m.expires_at = record.expires_at;
    m = transport_->deliver(m);
    reg_.acct(trace, *prev, v);
    const auto existing = v.store().find(guid, record.server);
    const std::optional<NodeId> old_sender =
        existing.has_value() ? existing->last_hop : std::nullopt;
    v.store().upsert(guid, PointerRecord{m.server, m.last_hop, m.level,
                                         m.flag, m.expires_at});
    if (existing.has_value() && old_sender.has_value() &&
        !(*old_sender == prev->id())) {
      // Converged onto the old path: above here nothing changed.  Prune the
      // outdated branch backward along last-hop links.
      if (!(*old_sender == changed))
        delete_backward(v.id(), *old_sender, guid, record.server, changed, trace);
      return;
    }
    prev = &v;
    step = router_.route_step(v, guid, state, trace);
  }
}

void ObjectDirectory::delete_backward(const NodeId& notifier,
                                      const NodeId& start, const Guid& guid,
                                      const NodeId& server,
                                      const NodeId& changed, Trace* trace) {
  // Two passes.  The paper's delete message walks the *changed node's* old
  // branch backward via last-hop links; but a record's last hop may belong
  // to a different deposit (the server's own publish path), in which case
  // walking blindly would destroy live pointers — including, ultimately,
  // the server's own record.  So first confirm that the chain actually
  // leads back to the changed node; only then delete it.  Unconfirmed
  // chains are left to soft-state expiry (§6.5) — under-deletion is safe,
  // over-deletion breaks Property 4.
  std::vector<NodeId> chain;
  bool confirmed = false;
  NodeId cur = start;
  for (unsigned i = 0; i <= params_.id.num_digits + 1; ++i) {
    if (cur == changed) {
      confirmed = true;
      break;
    }
    TapestryNode* w = reg_.find(cur);
    if (w == nullptr) break;
    const auto rec = w->store().find(guid, server);
    if (!rec.has_value()) break;
    if (!rec->last_hop.has_value()) break;  // reached the server's record
    chain.push_back(cur);
    cur = *rec->last_hop;
  }
  if (!confirmed) return;
  const TapestryNode* prev = nullptr;
  NodeId victim = server;
  NodeId sender = notifier;
  for (const NodeId& id : chain) {
    TapestryNode* w = reg_.find(id);
    TAP_ASSERT(w != nullptr);
    // Every link of the backward chain is a wire message — the converge
    // node originates the first; accounting stays on the chain links the
    // pre-seam code charged.
    Message m = make_message(MessageKind::kDeleteBackward, sender, id, guid);
    m.server = victim;
    m = transport_->deliver(m);
    victim = m.server;
    if (prev != nullptr) reg_.acct(trace, *prev, *w);
    w->store().remove(guid, victim);
    prev = w;
    sender = id;
  }
}

// ---------------------------------------------------------------------
// Guarded pointer maintenance (§4.2 inside thread-parallel repair waves)
// ---------------------------------------------------------------------

std::vector<ObjectDirectory::PendingReroute>
ObjectDirectory::snapshot_pointer_hops_guarded(
    const TapestryNode& at, const NodeLockTable& locks) const {
  // The store snapshot synchronises itself (sharded backend); the table
  // walk per record runs under `at`'s stripe so no concurrent repair
  // half-writes a row out from under the selector.
  const auto records = at.store().snapshot();
  std::vector<PendingReroute> out;
  out.reserve(records.size());
  NodeLockTable::Guard g(locks, at.id());
  for (const auto& [guid, rec] : records)
    out.push_back(PendingReroute{guid, rec, pointer_next_hop(at, guid, rec)});
  return out;
}

void ObjectDirectory::reroute_changed_pointers_guarded(
    TapestryNode& at, const std::vector<PendingReroute>& before,
    const NodeLockTable& locks, Trace* trace) {
  for (const auto& p : before) {
    const auto current = at.store().find(p.guid, p.record.server);
    if (!current.has_value()) continue;
    std::optional<NodeId> now_hop;
    {
      NodeLockTable::Guard g(locks, at.id());
      now_hop = pointer_next_hop(at, p.guid, *current);
    }
    if (now_hop == p.next_hop) continue;
    optimize_pointer_guarded(at, p.guid, *current, locks, trace);
  }
}

void ObjectDirectory::optimize_pointer_guarded(TapestryNode& from,
                                               const Guid& guid,
                                               const PointerRecord& record,
                                               const NodeLockTable& locks,
                                               Trace* trace) {
  // Same shape as optimize_pointer, but every routing decision uses the
  // mutation-free peek selector under the deciding node's stripe — never
  // the mutating route_step, whose lazy repair would re-enter the table
  // surgery that belongs to the wave itself.  Store writes go through the
  // backend's own synchronisation.  A row left transiently without a live
  // slot mid-wave aborts the walk; repair_pointer_chains() re-pushes
  // whatever was cut short once the wave settles.
  const NodeId changed = from.id();
  RouteState state{record.level, record.past_hole};
  TapestryNode* prev = &from;
  for (;;) {
    std::optional<NodeId> step;
    try {
      NodeLockTable::Guard g(locks, prev->id());
      step = router_.route_step_peek(prev->id(), guid, state);
    } catch (const CheckError&) {
      return;  // transiently unroutable under the race
    }
    if (!step.has_value()) return;
    TapestryNode& v = reg_.live(*step);
    Message m = make_message(MessageKind::kPointerOptimize, prev->id(),
                             v.id(), guid);
    m.server = record.server;
    m.last_hop = prev->id();
    m.level = state.level;
    m.flag = state.past_hole;
    m.expires_at = record.expires_at;
    m = transport_->deliver(m);
    reg_.acct(trace, *prev, v);
    const auto existing = v.store().find(guid, record.server);
    const std::optional<NodeId> old_sender =
        existing.has_value() ? existing->last_hop : std::nullopt;
    v.store().upsert(guid, PointerRecord{m.server, m.last_hop, m.level,
                                         m.flag, m.expires_at});
    if (existing.has_value() && old_sender.has_value() &&
        !(*old_sender == prev->id())) {
      // delete_backward touches only stores (backend-synchronised), never
      // routing tables, so the serial version is reusable as-is; its
      // confirm-then-delete structure keeps racy interleavings on the
      // under-deletion side, which soft-state expiry absorbs.
      if (!(*old_sender == changed))
        delete_backward(v.id(), *old_sender, guid, record.server, changed, trace);
      return;
    }
    prev = &v;
  }
}

std::size_t ObjectDirectory::repair_pointer_chains(Trace* trace) {
  // Serial, quiescent.  Interleaved guarded reroutes can strand a record:
  // thread A snapshots holder H, thread B's walk then deposits a record on
  // H, and A's table mutation + reroute never revisits it (A's snapshot
  // predates the deposit).  Detect exactly that — a record whose current
  // next hop does not hold it — and re-push forward from the holder.
  std::size_t fixed = 0;
  for (unsigned round = 0; round <= params_.id.num_digits; ++round) {
    std::size_t fixed_this_round = 0;
    for (const auto& n : reg_.nodes()) {
      if (!n->alive) continue;
      for (const auto& [guid, rec] : n->store().snapshot()) {
        const auto hop = pointer_next_hop(*n, guid, rec);
        if (!hop.has_value()) continue;  // at the record's root
        TapestryNode* h = reg_.find(*hop);
        if (h != nullptr && h->alive &&
            h->store().find(guid, rec.server).has_value())
          continue;
        optimize_pointer(*n, guid, rec, trace);
        ++fixed_this_round;
      }
    }
    fixed += fixed_this_round;
    if (fixed_this_round == 0) break;
  }
  return fixed;
}

// ---------------------------------------------------------------------
// Ground truth / oracle accessors
// ---------------------------------------------------------------------

std::vector<NodeId> ObjectDirectory::servers_of(const Guid& guid) const {
  std::vector<NodeId> out;
  auto it = replicas_.find(guid);
  if (it == replicas_.end()) return out;
  for (const NodeId& s : it->second)
    if (reg_.is_live(s)) out.push_back(s);
  return out;
}

std::vector<std::pair<Guid, NodeId>> ObjectDirectory::published() const {
  std::vector<std::pair<Guid, NodeId>> out;
  for (const auto& [guid, servers] : replicas_)
    for (const NodeId& s : servers) out.emplace_back(guid, s);
  return out;
}

std::vector<Guid> ObjectDirectory::guids_served_by(
    const NodeId& server) const {
  std::vector<Guid> out;
  for (const auto& [guid, servers] : replicas_)
    if (std::find(servers.begin(), servers.end(), server) != servers.end())
      out.push_back(guid);
  return out;
}

double ObjectDirectory::distance_to_nearest_replica(const NodeId& client,
                                                    const Guid& guid) const {
  double best = std::numeric_limits<double>::infinity();
  auto it = replicas_.find(guid);
  if (it == replicas_.end()) return best;
  for (const NodeId& s : it->second)
    if (reg_.is_live(s)) best = std::min(best, reg_.distance(client, s));
  return best;
}

void ObjectDirectory::check_property4() {
  const double now = events_.now();
  for (const auto& [guid, servers] : replicas_) {
    for (const NodeId& server : servers) {
      if (!reg_.is_live(server)) continue;
      for (unsigned salt = 0; salt < params_.root_multiplicity; ++salt) {
        const Guid target = salted_guid(guid, salt);
        RouteState state;
        TapestryNode* cur = &reg_.live(server);
        for (;;) {
          const auto recs = cur->store().find_live(target, now);
          bool has = false;
          for (const auto& r : recs)
            if (r.server == server) has = true;
          TAP_CHECK(has, "Property 4 violated: node " + cur->id().to_string() +
                             " on the publish path of " + target.to_string() +
                             " (server " + server.to_string() +
                             ") lacks the pointer");
          auto next = router_.route_step(*cur, target, state, nullptr);
          if (!next.has_value()) break;
          cur = &reg_.live(*next);
        }
      }
    }
  }
}

}  // namespace tap
