// Thread-parallel membership repair: voluntary delete (§5.1, Figure 12),
// fail-stop repair (§5.2) and the heartbeat sweep executed on real threads
// under the NodeLockTable stripe discipline — the repair-side counterpart
// of ThreadedJoinDriver (threaded_join.h).
//
// Each worker thread drives the complete repair protocol for one victim —
// for a leave: the LEAVINGNETWORK notifications to every backpointer
// holder with replacement hints, the holders' slot repair, and the final
// REMOVELINK retraction; for a failure: the proactive purge every holder
// would otherwise perform lazily — racing every other victim's repair
// through the shared striped primitives (striped_links.h).
//
// §4.2 pointer rerouting happens *incrementally inside the wave*: around
// each holder's table mutations the holder's pointer hops are snapshotted
// and re-pushed under the guarded directory variants
// (ObjectDirectory::snapshot_pointer_hops_guarded /
// reroute_changed_pointers_guarded), never deferred to the §6.5 republish
// backstop.  Two racing reroutes can strand a record that lands on a
// holder after that holder's snapshot was taken (impossible serially); the
// quiescent ObjectDirectory::repair_pointer_chains pass at the end of
// every wave closes exactly that window, so objects are locatable the
// moment the wave returns.
//
// Determinism contract (invariant-convergent, as for joins): victims are
// given and membership changes are applied serially before any thread
// starts, so same seed + any worker count produces identical membership;
// the replacement search is *complete* (local peers first, then a
// prefix-range probe of the live-id index standing in for the serial
// path's acknowledged multicast — same candidate set, same (distance, id)
// winner), so at quiescence a slot is occupied iff a live candidate
// exists, making the Property 1 occupancy fingerprint
// (fingerprint_occupancy) a function of membership alone.  Message
// orderings — and which of several equally good neighbors a slot holds —
// may differ run to run; convergence is asserted on invariants.
//
// Concurrency requirements: guarded reroutes write through the store
// backends, so waves racing other store users require
// StoreBackend::kSharded; the driver itself also relies on it when
// workers > 1 (per-holder snapshots race pointer deposits).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tapestry/maintenance.h"

namespace tap {

class ThreadedRepairDriver {
 public:
  ThreadedRepairDriver(NodeRegistry& registry, Router& router,
                       ObjectDirectory& directory,
                       const TapestryParams& params);

  /// Voluntary departure (§5.1) of every victim, fanned out over `workers`
  /// real threads (0 = hardware concurrency).  Serial preamble: withdraw
  /// the victims' replicas, mark all victims dead (so hints and holder
  /// lists never name a co-departing node), capture per-victim hint and
  /// holder lists.  Parallel phase: per-victim holder repair with in-wave
  /// rerouting, then REMOVELINK.  Ends with a threaded sweep plus the
  /// quiescent chain-repair pass.
  void run_leave(const std::vector<NodeId>& victims, std::size_t workers,
                 Trace* trace);

  /// Fail-stop (§5.2) of every victim followed by the full repair a lazy
  /// system would perform over time: all victims are marked dead serially,
  /// then every backpointer holder of each victim is purged in parallel
  /// (slot removal, replacement hunt, in-wave reroute), then the threaded
  /// sweep restores Property 1 and the chain-repair pass restores
  /// locatability — no republish involved.
  void run_fail(const std::vector<NodeId>& victims, std::size_t workers,
                Trace* trace);

  /// The heartbeat sweep (§5.2, §6.5) on real threads: every live node
  /// probes its table members and purges corpses, then empty slots hunt
  /// replacements via the prefix-range index; rounds repeat until nothing
  /// changes.  Requires membership quiescence (no joins/deaths during the
  /// sweep); racing guarded publishes/queries are fine.
  void run_sweep(std::size_t workers, Trace* trace);

 private:
  struct Session {
    NodeId victim{};
    /// Per level: the leaver's replacement hints (live secondaries of its
    /// own-digit slot) and the live backpointer holders to notify.
    std::vector<std::vector<NodeId>> hints;
    std::vector<std::vector<NodeId>> holders;
    Trace trace{};
  };

  void leave_one(Session& s);
  void fail_one(Session& s);
  /// purge_dead_neighbor under the stripe discipline, reroute included.
  void purge_holder(TapestryNode& at, const NodeId& dead, Trace* trace);
  /// Complete replacement search: level-`level` contacts first, then the
  /// prefix-range probe over the sorted live-id index (`live_values_`).
  std::optional<NodeId> find_replacement(TapestryNode& at, unsigned level,
                                         unsigned digit, Trace* trace);
  /// Rebuilds the sorted live-id index; call at each run's preamble (the
  /// live set is fixed for the duration of a wave).
  void index_live_nodes();
  /// One probe-and-fill pass for one node; true when anything changed.
  bool sweep_node(TapestryNode& n, Trace* trace);
  void finish_wave(std::size_t workers, Trace* trace,
                   std::vector<Session>* sessions);

  NodeRegistry& reg_;
  Router& router_;
  ObjectDirectory& dir_;
  const TapestryParams& params_;
  const NodeLockTable& locks_;
  std::vector<std::uint64_t> live_values_;  ///< sorted live ids (preamble)
};

}  // namespace tap
