// Identifiers: node-IDs and object GUIDs (paper §2).
//
// Tapestry names nodes and objects with strings of digits drawn from an
// alphabet of radix b.  IdSpec fixes the digit width and count at runtime
// (default: b = 16, 10 hex digits = a 40-bit namespace); Id packs the digit
// string into a uint64_t with digit 0 the most significant, so prefix
// comparisons are cheap mask operations.
//
// GUIDs and node-IDs deliberately share one type: surrogate routing (§2.3)
// treats an object GUID *as if it were a node-ID* and routes toward it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/assert.h"
#include "src/common/rng.h"

namespace tap {

/// Shape of the identifier space: digits of `digit_bits` bits each
/// (radix b = 2^digit_bits), `num_digits` of them.
struct IdSpec {
  unsigned digit_bits = 4;
  unsigned num_digits = 10;

  [[nodiscard]] constexpr unsigned radix() const noexcept {
    return 1u << digit_bits;
  }
  [[nodiscard]] constexpr unsigned total_bits() const noexcept {
    return digit_bits * num_digits;
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return digit_bits >= 1 && digit_bits <= 8 && num_digits >= 1 &&
           total_bits() <= 64;
  }
  constexpr bool operator==(const IdSpec& o) const noexcept {
    return digit_bits == o.digit_bits && num_digits == o.num_digits;
  }
  constexpr bool operator!=(const IdSpec& o) const noexcept {
    return !(*this == o);
  }
};

/// A digit string in the namespace defined by an IdSpec.  Value type;
/// default-constructed Ids are invalid placeholders (valid() == false).
class Id {
 public:
  constexpr Id() noexcept : bits_(0), spec_{0, 0} {}

  Id(IdSpec spec, std::uint64_t value) : bits_(value), spec_(spec) {
    TAP_CHECK(spec.valid(), "invalid IdSpec");
    if (spec.total_bits() < 64) {
      TAP_CHECK(value < (std::uint64_t{1} << spec.total_bits()),
                "Id value exceeds namespace");
    }
  }

  /// Uniformly random identifier — the paper assumes identifiers are
  /// uniformly distributed in the namespace.
  [[nodiscard]] static Id random(IdSpec spec, Rng& rng) {
    TAP_CHECK(spec.valid(), "invalid IdSpec");
    const std::uint64_t mask = spec.total_bits() == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << spec.total_bits()) - 1;
    return Id(spec, rng() & mask);
  }

  [[nodiscard]] bool valid() const noexcept { return spec_.num_digits != 0; }
  [[nodiscard]] IdSpec spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t value() const noexcept { return bits_; }
  [[nodiscard]] unsigned num_digits() const noexcept {
    return spec_.num_digits;
  }
  [[nodiscard]] unsigned radix() const noexcept { return spec_.radix(); }

  /// The i-th digit, 0 = most significant.
  [[nodiscard]] unsigned digit(unsigned i) const {
    TAP_ASSERT_MSG(valid(), "digit() on invalid Id");
    TAP_ASSERT(i < spec_.num_digits);
    const unsigned shift = (spec_.num_digits - 1 - i) * spec_.digit_bits;
    return static_cast<unsigned>((bits_ >> shift) & (spec_.radix() - 1));
  }

  /// True when the first `len` digits of this Id equal those of `other`.
  [[nodiscard]] bool matches_prefix(const Id& other, unsigned len) const {
    TAP_ASSERT(valid() && other.valid() && spec_ == other.spec_);
    TAP_ASSERT(len <= spec_.num_digits);
    if (len == 0) return true;
    const unsigned shift = (spec_.num_digits - len) * spec_.digit_bits;
    return (bits_ >> shift) == (other.bits_ >> shift);
  }

  /// Length of the greatest common prefix, in digits (paper's
  /// GREATESTCOMMONPREFIX).
  [[nodiscard]] unsigned common_prefix_len(const Id& other) const {
    TAP_ASSERT(valid() && other.valid() && spec_ == other.spec_);
    unsigned len = 0;
    while (len < spec_.num_digits && digit(len) == other.digit(len)) ++len;
    return len;
  }

  /// Numeric value of the first `len` digits; with `len` this keys
  /// prefix-bucket maps (used by invariant checks and the static builder).
  [[nodiscard]] std::uint64_t prefix_value(unsigned len) const {
    TAP_ASSERT(valid());
    TAP_ASSERT(len <= spec_.num_digits);
    if (len == 0) return 0;
    const unsigned shift = (spec_.num_digits - len) * spec_.digit_bits;
    return bits_ >> shift;
  }

  /// This Id with digit `pos` replaced by `d` (test helper for crafting
  /// adversarial prefix patterns).
  [[nodiscard]] Id with_digit(unsigned pos, unsigned d) const {
    TAP_ASSERT(valid());
    TAP_ASSERT(pos < spec_.num_digits);
    TAP_CHECK(d < spec_.radix(), "digit out of range");
    const unsigned shift = (spec_.num_digits - 1 - pos) * spec_.digit_bits;
    const std::uint64_t mask = std::uint64_t{spec_.radix() - 1} << shift;
    return Id(spec_, (bits_ & ~mask) | (std::uint64_t{d} << shift));
  }

  /// Digits rendered in base-16 (one character per digit for digit_bits <=
  /// 4, dot-separated decimal otherwise).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Id& a, const Id& b) noexcept {
    return a.bits_ == b.bits_ && a.spec_ == b.spec_;
  }
  friend bool operator!=(const Id& a, const Id& b) noexcept {
    return !(a == b);
  }
  /// Total order on the value; used for the PRR global tie-break order.
  friend bool operator<(const Id& a, const Id& b) noexcept {
    return a.bits_ < b.bits_;
  }

 private:
  std::uint64_t bits_;
  IdSpec spec_;
};

using NodeId = Id;
using Guid = Id;

/// Maps an object GUID to the i-th member of its root set (paper
/// Observation 2): a pseudo-random function of (GUID, i).  Salt 0 is the
/// identity so a root multiplicity of one matches the basic scheme.
[[nodiscard]] Guid salted_guid(const Guid& guid, unsigned salt);

}  // namespace tap

template <>
struct std::hash<tap::Id> {
  std::size_t operator()(const tap::Id& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
