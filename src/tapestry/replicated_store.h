// ReplicatedStore + QuorumReplicator: quorum-replicated pointer records
// over the root's k-nearest neighbor set (the DistHash direction in
// PAPERS.md — robust replicated objects in a DHT).
//
// In the paper a single root node owns every pointer record of an object:
// a root crash costs availability for each of its objects until the §6.5
// soft-state republish backstop refreshes the records at the new
// surrogate root.  This subsystem closes that window:
//
//   * Every record that a publish deposits at a root is mirrored across
//     the root's k nearest live neighbors (its holder set, chosen
//     deterministically per salted guid by network distance — the same
//     nearest-neighbor notion the §3 construction optimizes for).
//   * A publish counts as replicated once W of the k holders acknowledged
//     the mirrored write (ReplicationParams::w; the write quorum).
//   * A locate that reaches a root with no record — the new surrogate
//     after a root death, typically — performs an R-of-N quorum read over
//     the holder set, merges the freshest live copy per server, repairs
//     stale/missing responder copies (read-repair) and installs the
//     merged records at the root, so the locate resolves exactly as if
//     the root had never lost them.
//   * When a holder dies (reported through ObjectDirectory's node-death
//     seam, the same one HotspotManager uses), a replacement holder is
//     chosen and the surviving copies are merged onto it
//     (re-replication), keeping N holders ahead of further failures.
//
// With w + r > k (default k=3, W=2, R=2) every quorum read intersects
// every acknowledged write, so losing the root or any single holder
// between a publish and a locate loses zero locates — no republish
// needed.
//
// Split of responsibilities:
//
//   ReplicatedStore   per-node ObjectStoreBackend decorator.  The node's
//                     own records live in an inner backend (MemoryStore,
//                     or PersistentStore for `replicated+persist`) and
//                     the whole standard interface delegates to it, so
//                     the visible-state contract of object_store.h holds
//                     bit-for-bit.  Records mirrored TO this node on
//                     behalf of roots elsewhere live in a separate
//                     replica area reachable only through the replica_*
//                     methods — invisible to size()/find()/snapshot(),
//                     swept alongside the primary area on
//                     remove_expired() so mirrors obey §6.5 soft state.
//
//   QuorumReplicator  overlay-level coordinator owned by ObjectDirectory
//                     (constructed only when the replicated backend is
//                     selected; absent otherwise, leaving the default
//                     paths byte-identical).  Holds the holder sets and
//                     implements mirror/quorum-read/re-replicate against
//                     the registry, accounting every inter-node touch.
//
// All choices (holder selection, merge order, replacement hunt) are
// deterministic functions of registry state, so ChurnDriver replay stays
// seed-deterministic with replication enabled.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/tapestry/object_store.h"
#include "src/tapestry/transport.h"

namespace tap {

class NodeRegistry;
class TapestryNode;
class Trace;
struct TapestryParams;

/// Per-node store decorator: primary records in `inner`, mirrored records
/// in a private replica area.  Conformant to the ObjectStoreBackend
/// visible-state contract because every standard method delegates to the
/// inner backend untouched.
class ReplicatedStore : public ObjectStoreBackend {
 public:
  /// `backend_name` is what stats().backend reports ("replicated" or
  /// "replicated+persist"); `inner` must be non-null.
  ReplicatedStore(std::unique_ptr<ObjectStoreBackend> inner,
                  const char* backend_name);

  // --- standard interface: pure delegation to the inner backend ---
  void upsert(const Guid& guid, const PointerRecord& record) override {
    inner_->upsert(guid, record);
  }
  [[nodiscard]] std::optional<PointerRecord> find(
      const Guid& guid, const NodeId& server) const override {
    return inner_->find(guid, server);
  }
  [[nodiscard]] std::vector<PointerRecord> find_all(
      const Guid& guid) const override {
    return inner_->find_all(guid);
  }
  [[nodiscard]] std::vector<PointerRecord> find_live(
      const Guid& guid, double now) const override {
    return inner_->find_live(guid, now);
  }
  void for_each_of(const Guid& guid, const Visitor& fn) const override {
    inner_->for_each_of(guid, fn);
  }
  bool remove(const Guid& guid, const NodeId& server) override {
    return inner_->remove(guid, server);
  }
  /// Sweeps both areas; the return value counts primary records only, so
  /// backends agree with the reference under the conformance suite.
  std::size_t remove_expired(double now) override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return inner_->size();
  }
  void for_each(const Visitor& fn) const override { inner_->for_each(fn); }
  [[nodiscard]] std::vector<std::pair<Guid, PointerRecord>> snapshot()
      const override {
    return inner_->snapshot();
  }
  [[nodiscard]] StoreStats stats() const override;
  void flush() override { inner_->flush(); }

  // --- replica area (QuorumReplicator and tests only) ---
  void replica_upsert(const Guid& guid, const PointerRecord& record) {
    replicas_.upsert(guid, record);
  }
  [[nodiscard]] std::optional<PointerRecord> replica_find(
      const Guid& guid, const NodeId& server) const {
    return replicas_.find(guid, server);
  }
  [[nodiscard]] std::vector<PointerRecord> replica_all(
      const Guid& guid) const {
    return replicas_.find_all(guid);
  }
  bool replica_remove(const Guid& guid, const NodeId& server) {
    return replicas_.remove(guid, server);
  }
  [[nodiscard]] std::size_t replica_size() const noexcept {
    return replicas_.size();
  }

 private:
  std::unique_ptr<ObjectStoreBackend> inner_;
  const char* name_;
  // Mirrors held for roots elsewhere.  Volatile even under
  // replicated+persist: after a full restart the recovered primary
  // stores serve every locate, and the mirrors are rebuilt by the next
  // republish round.
  MemoryStore replicas_;
};

/// Overlay-level replication coordinator (one per ObjectDirectory).
class QuorumReplicator {
 public:
  /// Local operation counters, mirrored into the tapestry_replica_*
  /// metric family (src/sim/metrics.cc) as they grow.
  struct Stats {
    std::size_t replica_writes = 0;   ///< acknowledged mirror writes
    std::size_t quorum_reads = 0;     ///< quorum reads attempted at roots
    std::size_t read_repairs = 0;     ///< stale/missing copies repaired
    std::size_t rereplications = 0;   ///< holder replacements completed
  };

  /// `registry` and `params` must outlive the replicator (both live on
  /// Network).
  QuorumReplicator(NodeRegistry& registry, const TapestryParams& params);

  /// Wires the transport every mirror write, quorum probe and read-repair
  /// push travels through (forwarded from ObjectDirectory::bind_transport).
  void bind_transport(Transport* transport) noexcept {
    transport_ = transport;
  }

  /// A publish reached `root` for `target`: mirror `rec` to every live
  /// reachable holder (choosing the holder set on first contact).
  /// Returns the acknowledged write count; the caller may compare it to
  /// ReplicationParams::w.
  std::size_t mirror_publish(const TapestryNode& root, const Guid& target,
                             const PointerRecord& rec, Trace* trace);

  /// An unpublish reached `root`: withdraw server's mirrored record.
  void mirror_remove(const TapestryNode& root, const Guid& target,
                     const NodeId& server, Trace* trace);

  /// R-of-N quorum read at `root` after a definitive locate miss.
  /// Contacts holders in set order until R respond, merges the freshest
  /// live record per server, read-repairs responder copies that are
  /// stale or missing, and returns the merged records (empty = genuine
  /// miss).  The caller installs them at the root.
  std::vector<PointerRecord> quorum_read(const TapestryNode& root,
                                         const Guid& target, double now,
                                         Trace* trace);

  /// `dead` just died or departed: for every holder set containing it,
  /// pick a replacement holder and merge the surviving copies onto it.
  void on_node_death(const NodeId& dead);

  /// Holder set of `target`, if one was ever formed (tests/benches).
  [[nodiscard]] const std::vector<NodeId>* holders(const Guid& target) const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Existing holder set, or a fresh one: the k live nodes nearest to
  /// `root` (excluding it), ties broken by id — deterministic given the
  /// membership.
  std::vector<NodeId>& holder_set(const TapestryNode& root,
                                  const Guid& target);
  /// The node's store as a ReplicatedStore, or nullptr when the node is
  /// absent or runs a different backend.
  ReplicatedStore* replica_store_of(const NodeId& id);

  NodeRegistry& reg_;
  const TapestryParams& params_;
  Transport* transport_ = default_transport();
  // Ordered by guid so death-time scans visit sets in a deterministic
  // order regardless of insertion history.
  std::map<Guid, std::vector<NodeId>> holder_sets_;
  Stats stats_;
};

}  // namespace tap
