// ObjectDirectory: object publication, location and pointer maintenance.
//
// Covers the paper's object layer: publish / locate / unpublish (§2.2),
// object-pointer redistribution when the routing mesh changes (§4.2,
// Figure 9), and soft-state republish/expiry (§6.5).  It also owns the
// ground-truth replica registry (base guid -> servers) that drives
// republish_all and the test oracles; the routing algorithms never read it.
//
// The directory routes through the Router (so publishes and queries pay
// real routing costs and trigger the same lazy repair) and stores pointers
// in the per-node ObjectStores held by the registry.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/tapestry/hotspot.h"
#include "src/tapestry/registry.h"
#include "src/tapestry/router.h"

namespace tap {

class QuorumReplicator;

class ObjectDirectory {
 public:
  /// A pointer record paired with its next hop at snapshot time; used to
  /// detect path changes around table mutations (§4.2).
  struct PendingReroute {
    Guid guid{};
    PointerRecord record{};
    std::optional<NodeId> next_hop{};  ///< hop at snapshot time
  };

  ObjectDirectory(NodeRegistry& registry, Router& router,
                  const TapestryParams& params, EventQueue& events, Rng& rng);
  ~ObjectDirectory();  // out of line: replicator_ is incomplete here

  /// Wires the transport all pointer traffic (publish/locate/unpublish
  /// deposits, §4.2 reroutes, quorum replica RPCs) travels through and
  /// forwards it to the replicator when one exists.  Network binds the
  /// overlay's; standalone directories use the shared direct fallback.
  void bind_transport(Transport* transport) noexcept;

  // --- publication and location (§2.2) ---
  void publish(NodeId server, const Guid& guid, Trace* trace = nullptr);
  void unpublish(NodeId server, const Guid& guid, Trace* trace = nullptr);
  LocateResult locate(NodeId client, const Guid& guid, Trace* trace = nullptr);

  /// One replica registration for publish_batch.
  struct PublishRequest {
    NodeId server{};
    Guid guid{};
  };
  /// Batched publish for bulk overlay construction.  Registers every
  /// replica up front, then deposits the pointers in two concurrent
  /// phases drained through sim/thread_pool: the publish paths are walked
  /// with the Router's mutation-free peek (grouped by the salted guid's
  /// leading digit — the root region each path converges into), and the
  /// collected deposits land per registry shard, each shard applying its
  /// deposits in batch order.  The result is identical to calling
  /// publish() per request on a quiescent, fully-live mesh (the
  /// bulk-build setting): stores, replica registry and message counts
  /// match exactly; trace latency matches up to floating-point summation
  /// order.  The §2.4 secondary-deposit variant falls back to the serial
  /// loop.
  /// `guarded` switches the path walks from the lock-free peek to the
  /// per-hop node-stripe locks (the Router::route_to_root_guarded
  /// discipline): required when the mesh is NOT quiescent — i.e. when a
  /// thread-parallel join wave is mutating routing tables while this
  /// batch deliberately races it.  On a quiescent mesh the result is
  /// identical either way; under a race each hop observes whatever table
  /// state the contacted node holds at that instant, and the §6.5
  /// republish backstop restores Property 4 once the wave settles.
  void publish_batch(const std::vector<PublishRequest>& batch,
                     std::size_t workers = 0, Trace* trace = nullptr,
                     bool guarded = false);

  // --- event-driven publication and location ---
  // Per-hop decomposition of publish/locate onto the EventQueue: each
  // routing hop is a separate event, delayed by the link's metric distance
  // scaled by params.hop_delay_scale, so repairs, republishes and expiry
  // genuinely interleave with in-flight operations (the execution model
  // §6.5's churn results assume).  All cost accounting for one operation
  // lands in a private per-operation Trace and is absorbed into `trace` at
  // completion, so per-query hop/latency figures stay exact even when many
  // operations overlap.
  using LocateCallback = std::function<void(const LocateResult&)>;
  using PublishCallback = std::function<void()>;

  /// Event-driven publish.  The replica registration is immediate (the
  /// server stores the object from now on); the pointer deposits walk each
  /// salted root path hop by hop.  A path whose carrier node dies mid-walk
  /// aborts quietly — soft-state republish is the backstop, as in §6.5.
  void publish_async(NodeId server, const Guid& guid, Trace* trace = nullptr,
                     PublishCallback done = nullptr);

  /// Event-driven locate: one routing decision per event.  The query
  /// observes whatever directory state holds when each hop fires.  A query
  /// stranded on a node that dies mid-flight loses that root attempt (and
  /// retries remaining roots under retry_all_roots, like the sync path).
  void locate_async(NodeId client, const Guid& guid, LocateCallback done,
                    Trace* trace = nullptr);

  /// Operations currently in flight on the event queue (tests/drivers use
  /// this to drain deterministically).
  [[nodiscard]] std::size_t async_in_flight() const noexcept {
    return in_flight_;
  }

  // --- soft state (§6.5) ---
  void republish_all(Trace* trace = nullptr);
  void republish_server(NodeId server, Trace* trace = nullptr);
  /// Sweeps expired pointers from every live node's store.  `workers` > 1
  /// fans the per-node sweeps out through sim/thread_pool — safe with any
  /// backend (stores are per node) and deterministic (each sweep is
  /// independent); requires quiescence, like every whole-network pass.
  void expire_pointers(std::size_t workers = 1);

  // --- checkpoint / restore (persistent backend) ---
  /// Membership and replica-registry state a checkpoint records alongside
  /// the per-node store files; enough to rebuild an equivalent overlay.
  struct CheckpointManifest {
    double time = 0.0;  ///< simulated clock at checkpoint
    std::vector<std::pair<std::uint64_t, Location>> nodes;  ///< live (id, loc)
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
        replicas;  ///< registered (guid, server) pairs, manifest order
  };

  /// Flushes every node store to disk and writes `dir`/manifest (atomic
  /// tmp + rename): the checkpoint clock, the live membership, and the
  /// ground-truth replica registry.  Pairs with restore(); meaningful for
  /// the persistent backend (other backends flush nothing but the
  /// manifest still lets tests audit published() state).
  void checkpoint(const std::string& dir);
  /// Loads the replica registry from `dir`/manifest into this directory
  /// (replacing it) and returns the checkpoint clock.  The caller must
  /// already have rebuilt the membership (see read_manifest) so that the
  /// per-node persistent stores recovered their records at construction —
  /// and should then advance the event clock to the returned time
  /// (events().run_until): recovered PointerRecord deadlines are absolute,
  /// so resuming finite-TTL soft state at clock 0 would let every pointer
  /// outlive its deadline by the whole checkpoint time.
  double restore(const std::string& dir);
  /// Parses `dir`/manifest: checkpoint clock, live membership, replica
  /// registry.  The single reader of the format — restore() consumes it.
  [[nodiscard]] static CheckpointManifest read_manifest(
      const std::string& dir);

  /// Starts the §6.5 soft-state timers as recurring events: every
  /// `republish_every`, each registered live replica re-publishes
  /// (event-driven, so refresh traffic interleaves with queries); every
  /// `expiry_every`, expired pointers are swept.  Zero disables either
  /// timer.  Restarting replaces any running timers.  The recurring
  /// events hold `trace` until stop_soft_state(): it must outlive them.
  void start_soft_state(double republish_every, double expiry_every,
                        Trace* trace = nullptr);
  void stop_soft_state();

  // --- pointer maintenance (§4.2, Figure 9) ---
  /// Snapshot the records of `at` whose next hop will change if tables
  /// change; used around table mutations.
  [[nodiscard]] std::vector<PendingReroute> snapshot_pointer_hops(
      const TapestryNode& at) const;
  /// Re-push the affected records along the new paths (OPTIMIZEOBJECTPTRS).
  void reroute_changed_pointers(TapestryNode& at,
                                const std::vector<PendingReroute>& before,
                                Trace* trace);
  void optimize_pointer(TapestryNode& from, const Guid& guid,
                        const PointerRecord& record, Trace* trace);
  /// `notifier` is the converge node that discovered the outdated branch:
  /// it originates the first delete message of the backward chain (§4.2).
  void delete_backward(const NodeId& notifier, const NodeId& start,
                       const Guid& guid, const NodeId& server,
                       const NodeId& changed, Trace* trace);
  [[nodiscard]] std::optional<NodeId> pointer_next_hop(
      const TapestryNode& at, const Guid& guid,
      const PointerRecord& record) const;

  // --- guarded pointer maintenance (§4.2 inside thread-parallel waves) ---
  // Stripe-locked variants of the block above for repair waves that mutate
  // routing tables from many threads: every table read happens under the
  // owning node's stripe in `locks`, one guard at a time (the node_locks.h
  // discipline), and pointer deposits rely on the store backend's own
  // synchronisation (StoreBackend::kSharded when genuinely racing).
  [[nodiscard]] std::vector<PendingReroute> snapshot_pointer_hops_guarded(
      const TapestryNode& at, const NodeLockTable& locks) const;
  void reroute_changed_pointers_guarded(
      TapestryNode& at, const std::vector<PendingReroute>& before,
      const NodeLockTable& locks, Trace* trace);
  void optimize_pointer_guarded(TapestryNode& from, const Guid& guid,
                                const PointerRecord& record,
                                const NodeLockTable& locks, Trace* trace);
  /// Quiescent convergence pass after a threaded wave: re-pushes every
  /// record whose snapshot-time next hop no longer holds it (two waves'
  /// guarded reroutes can interleave so a deposit lands after its holder's
  /// snapshot was taken; serial execution cannot).  Iterates to a fixed
  /// point (bounded by the digit count) and returns the number of records
  /// re-pushed.  With this pass, threaded repair restores Property-4-style
  /// locatability inside the wave — the §6.5 republish backstop is not
  /// involved.
  std::size_t repair_pointer_chains(Trace* trace = nullptr);

  // --- ground truth / oracle accessors (tests and benches only) ---
  /// Registered replica servers of a (base) guid, live ones only.
  [[nodiscard]] std::vector<NodeId> servers_of(const Guid& guid) const;
  /// All registered (guid, server) pairs, including dead servers.
  [[nodiscard]] std::vector<std::pair<Guid, NodeId>> published() const;
  /// Base guids whose replica registry lists `server` (dead or alive).
  [[nodiscard]] std::vector<Guid> guids_served_by(const NodeId& server) const;
  /// Distance from client to the nearest live replica (stretch denominator).
  [[nodiscard]] double distance_to_nearest_replica(const NodeId& client,
                                                   const Guid& guid) const;

  /// Property 4: every node on each (server -> root) publish path holds
  /// the pointer.  Non-const because walking routes may prune dead links.
  void check_property4();

  // --- locate cache (hotspot.h) ---
  /// The per-node locate cache (disabled when params.locate_cache_size is
  /// 0).  Both locate paths consult it at every node of the walk before
  /// routing onward and repopulate it on success; every hit re-reads the
  /// remembered holder's store before resolving, so cached and uncached
  /// locates agree on found/not-found (see hotspot.h).
  [[nodiscard]] LocateCache& locate_cache() noexcept { return cache_; }
  [[nodiscard]] const LocateCache& locate_cache() const noexcept {
    return cache_;
  }
  /// Drops every cache entry involving a dead/departed node — its own LRU
  /// and any hint naming it as holder or replica.  MaintenanceEngine calls
  /// this from fail()/leave(); queries already in flight toward the corpse
  /// fail holder verification and fall back to the walk regardless.  Also
  /// the death seam of the replication layer: the QuorumReplicator (when
  /// the replicated backend is active) re-replicates every holder set the
  /// dead node belonged to before the external hook fires.
  void invalidate_node_cache(const NodeId& id);

  /// Quorum replication coordinator; nullptr unless params.store_backend
  /// is kReplicated / kReplicatedPersistent (tests and benches introspect
  /// holder sets and stats through it).
  [[nodiscard]] QuorumReplicator* replicator() noexcept {
    return replicator_.get();
  }

  /// Registers a callback fired from invalidate_node_cache — i.e. on every
  /// §5 death/departure the maintenance layer reports.  HotspotManager uses
  /// it to drop dead hosts from its replica bookkeeping the moment they
  /// die.  Pass nullptr to unregister; at most one hook at a time.
  void set_node_death_hook(std::function<void(const NodeId&)> hook) {
    node_death_hook_ = std::move(hook);
  }

 private:
  struct AsyncLocateOp;
  struct AsyncPublishOp;
  void begin_locate_attempt(const std::shared_ptr<AsyncLocateOp>& op);
  void locate_step(const std::shared_ptr<AsyncLocateOp>& op);
  void locate_cache_step(const std::shared_ptr<AsyncLocateOp>& op);
  void locate_replica_step(const std::shared_ptr<AsyncLocateOp>& op);
  void next_locate_attempt(const std::shared_ptr<AsyncLocateOp>& op);
  void finish_locate(const std::shared_ptr<AsyncLocateOp>& op);
  void begin_publish_path(const std::shared_ptr<AsyncPublishOp>& op);
  void publish_step(const std::shared_ptr<AsyncPublishOp>& op);
  void schedule_republish_tick(double every, Trace* trace);
  void schedule_expiry_tick(double every);

  void publish_one(TapestryNode& server, const Guid& salted, Trace* trace);
  void unpublish_one(TapestryNode& server, const Guid& salted, Trace* trace);
  /// One query attempt toward one (salted) root name.  `base` keys the
  /// locate cache (nullptr skips caching, e.g. for internal probes).
  LocateResult locate_attempt(TapestryNode& client, const Guid& target,
                              Trace* trace, const Guid* base = nullptr);
  /// Deposits a locate-cache hint pointing at `holder` on every node the
  /// successful query walked through (paths toward a root converge, so
  /// hot objects get cached exactly where future queries will pass).
  void cache_fill_path(const Guid& base, const std::vector<NodeId>& path,
                       const Guid& via, const NodeId& holder,
                       const PointerRecord& rec);
  /// Picks the closest live replica among records; prunes dead-server
  /// records it trips over.  Returns nullopt when none is live.
  std::optional<PointerRecord> pick_live_replica(
      TapestryNode& holder, const Guid& target,
      const TapestryNode& relative_to);

  /// Fire-and-forget wire delivery for messages whose payload carries no
  /// fields the receiver continues from (probes, bounces, hop
  /// notifications) — the kinds with onward-flowing payloads construct
  /// and consume delivered Messages at their call sites instead.
  void wire(MessageKind kind, const NodeId& src, const NodeId& dst,
            const Id& target) {
    (void)transport_->deliver(make_message(kind, src, dst, target));
  }

  NodeRegistry& reg_;
  Router& router_;
  const TapestryParams& params_;
  EventQueue& events_;
  Rng& rng_;

  // Ground-truth replica registry: base guid -> servers.
  std::unordered_map<Guid, std::vector<NodeId>> replicas_;

  // Per-node locate cache (sized by params.locate_cache_size; 0 = off).
  LocateCache cache_;

  // Quorum replication layer; null for the non-replicated backends, which
  // keeps every default code path identical to the pre-replication build.
  std::unique_ptr<QuorumReplicator> replicator_;

  // Event-driven state.
  std::size_t in_flight_ = 0;
  std::optional<EventId> republish_event_;
  std::optional<EventId> expiry_event_;

  // Fired from invalidate_node_cache on node death/departure.
  std::function<void(const NodeId&)> node_death_hook_;

  // Wire layer for all cross-node pointer traffic (see bind_transport).
  Transport* transport_ = default_transport();
};

}  // namespace tap
