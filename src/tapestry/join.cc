// Node insertion (paper §4, Figure 7) built on the incremental
// nearest-neighbor algorithm (paper §3, Figure 4).
//
// INSERT:
//   1. acquire the primary surrogate by routing toward the new node-ID;
//   2. copy the surrogate's neighbor table as a preliminary table;
//   3. acknowledged-multicast LINKANDXFERROOT to every node sharing the
//      longest existing prefix α with the new node — these are exactly the
//      nodes whose tables have a hole the new node fills (Property 1), and
//      the holders of object pointers whose root moves to the new node;
//   4. ACQUIRENEIGHBORTABLE: starting from the α-node list, walk prefix
//      lengths downward, each time asking the current list's members for
//      their forward and backward pointers at the next level, measuring the
//      distance to every newly met candidate, and keeping the k closest
//      (Lemma 1 / Theorem 3).  Every contacted node also checks whether the
//      new node improves its own table (Theorem 4) and re-routes object
//      pointers whose next hop changed (§4.2).
//
// Digit-completeness note: row i of the new table is filled from the *full*
// candidate set gathered at level i (the union of the level-(i+1) list
// members' row-i entries), not from the trimmed k-list.  Because every
// queried table satisfies Property 1, the union contains a representative
// of every (prefix, j) that exists, so the new node's table satisfies
// Property 1 deterministically — the k-list only bounds who is *measured*
// for the recursion, mirroring the role k plays in the paper's analysis.
#include "src/tapestry/maintenance.h"

#include <algorithm>

namespace tap {

NodeId MaintenanceEngine::bootstrap(Location loc, std::optional<NodeId> id) {
  TAP_CHECK(reg_.live_count() == 0, "bootstrap requires an empty network");
  NodeId nid = id.has_value() ? *id : Id::random(params_.id, rng_);
  reg_.register_node(nid, loc);
  return nid;
}

NodeId MaintenanceEngine::join(Location loc, std::optional<NodeId> id,
                               Trace* trace) {
  TAP_CHECK(reg_.live_count() > 0,
            "join requires a non-empty network; bootstrap first");
  // Uniformly random live gateway.
  std::vector<NodeId> ids = reg_.node_ids();
  const NodeId gateway = ids[rng_.next_u64(ids.size())];
  return join_via(gateway, loc, id, trace);
}

NodeId MaintenanceEngine::join_via(NodeId gateway, Location loc,
                                   std::optional<NodeId> id, Trace* trace) {
  TAP_CHECK(reg_.is_live(gateway), "gateway must be a live node");
  NodeId nid = id.has_value() ? *id : reg_.fresh_node_id();
  TAP_CHECK(reg_.find(nid) == nullptr, "node id already in use");

  // 1. ACQUIREPRIMARYSURROGATE: route from the gateway toward the new ID;
  //    the root reached is the surrogate (the node whose ID shares the
  //    longest existing prefix with ours).
  const RouteResult rr = router_.route_to_root(gateway, nid, trace);
  const NodeId surrogate_id = rr.root;

  TapestryNode& nn = reg_.register_node(nid, loc);
  nn.inserting = true;
  nn.psurrogate = surrogate_id;
  TapestryNode& sur = reg_.live(surrogate_id);
  const unsigned alpha = nid.common_prefix_len(sur.id());

  // 2. GETPRELIMNEIGHBORTABLE: one bulk RPC for the surrogate's table.
  copy_preliminary_table(nn, sur, alpha, trace);

  // 3. ACKNOWLEDGEDMULTICAST(α, LINKANDXFERROOT): reach every α-node.  The
  //    new node is excluded from forwarding — it may already appear in
  //    tables updated earlier in the walk.
  std::vector<NodeId> alpha_nodes;
  router_.multicast(
      surrogate_id, nid, alpha,
      [&](NodeId y) {
        alpha_nodes.push_back(y);
        link_and_xfer_root(reg_.live(y), nn, trace);
      },
      trace, {nid});

  // 4. Build the neighbor table level by level, reusing the multicast
  //    result as the first (level-α) list.  Pointers transferred to the
  //    new node during step 3 are re-checked after its table settles.
  const auto before = dir_.snapshot_pointer_hops(nn);
  acquire_neighbor_table(nn, alpha, std::move(alpha_nodes), trace);
  dir_.reroute_changed_pointers(nn, before, trace);

  nn.inserting = false;
  nn.psurrogate.reset();
  return nid;
}

void MaintenanceEngine::copy_preliminary_table(TapestryNode& nn,
                                               TapestryNode& surrogate,
                                               unsigned max_level,
                                               Trace* trace) {
  reg_.acct(trace, nn, surrogate, 2);  // request + bulk reply
  // Rows 0..max_level of the surrogate hold nodes sharing the corresponding
  // prefix of the surrogate's ID, which equals ours up to max_level — all
  // valid candidates for the same rows of our table.
  const unsigned digits = params_.id.num_digits;
  for (unsigned l = 0; l <= max_level && l < digits; ++l) {
    for (unsigned j = 0; j < params_.id.radix(); ++j) {
      for (const auto& e : surrogate.table().at(l, j).entries()) {
        if (e.id == nn.id()) continue;
        if (TapestryNode* cand = reg_.find(e.id);
            cand != nullptr && cand->alive)
          link(nn, l, *cand);
      }
    }
  }
  add_to_table_if_closer(nn, surrogate);
}

void MaintenanceEngine::link_and_xfer_root(TapestryNode& host,
                                           TapestryNode& nn, Trace* trace) {
  if (host.id() == nn.id()) return;
  // Snapshot next hops, update the table, then re-route any pointer whose
  // path changed (this transfers to the new node the pointers it is now
  // root of, and deposits them along the new paths — §4.2).
  const auto before = dir_.snapshot_pointer_hops(host);
  add_to_table_if_closer(host, nn);
  dir_.reroute_changed_pointers(host, before, trace);
}

std::vector<NodeId> trim_closest_candidates(const NodeRegistry& reg,
                                            const TapestryNode& nn,
                                            std::vector<NodeId> list,
                                            std::size_t k) {
  // Dedupe, drop dead nodes and the node itself, order by distance.
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](const NodeId& x) {
                              return x == nn.id() || !reg.is_live(x);
                            }),
             list.end());
  std::stable_sort(list.begin(), list.end(),
                   [&](const NodeId& a, const NodeId& b) {
                     const double da = reg.dist(nn, reg.checked(a));
                     const double db = reg.dist(nn, reg.checked(b));
                     if (da != db) return da < db;
                     return a < b;
                   });
  if (list.size() > k) list.resize(k);
  return list;
}

std::vector<NodeId> MaintenanceEngine::trim_closest(const TapestryNode& nn,
                                                    std::vector<NodeId> list,
                                                    std::size_t k) const {
  return trim_closest_candidates(reg_, nn, std::move(list), k);
}

void MaintenanceEngine::build_row_from_list(TapestryNode& nn,
                                            const std::vector<NodeId>& list,
                                            unsigned level) {
  for (const NodeId& x : list) {
    if (x == nn.id() || !reg_.is_live(x)) continue;
    TapestryNode& cand = reg_.live(x);
    TAP_ASSERT_MSG(nn.id().common_prefix_len(x) >= level,
                   "candidate does not share the row prefix");
    link(nn, level, cand);
  }
}

std::vector<NodeId> MaintenanceEngine::get_next_list(
    TapestryNode& nn, const std::vector<NodeId>& list, unsigned level,
    std::unordered_set<std::uint64_t>& contacted, Trace* trace) {
  std::vector<NodeId> candidates;
  for (const NodeId& m : list) {
    if (!reg_.is_live(m)) continue;
    TapestryNode& member = reg_.live(m);
    reg_.acct(trace, nn, member, 2);  // GETFORWARDANDBACKPOINTERS round trip
    for (const NodeId& x : member.table().row_members(level))
      candidates.push_back(x);
    for (const NodeId& x : member.table().backpointers(level))
      candidates.push_back(x);
    candidates.push_back(m);  // the member itself matches >= level digits
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](const NodeId& x) {
                                    return x == nn.id() || !reg_.is_live(x);
                                  }),
                   candidates.end());

  // Measure the distance to every candidate met for the first time; the
  // contacted node simultaneously checks whether the new node belongs in
  // its own table (ADDTOTABLEIFCLOSER, Theorem 4) and fixes pointer paths.
  for (const NodeId& x : candidates) {
    if (contacted.insert(x.value()).second) {
      TapestryNode& cand = reg_.live(x);
      reg_.acct(trace, nn, cand, 2);  // distance probe round trip
      link_and_xfer_root(cand, nn, trace);
    }
  }
  return candidates;
}

void MaintenanceEngine::acquire_neighbor_table(TapestryNode& nn,
                                               unsigned max_level,
                                               std::vector<NodeId> initial_list,
                                               Trace* trace) {
  const std::size_t k = params_.effective_k(reg_.live_count());
  std::unordered_set<std::uint64_t> contacted;
  for (const NodeId& x : initial_list) contacted.insert(x.value());

  // Level max_level: the multicast already visited every α-node, so the
  // initial candidate set is complete by construction.
  build_row_from_list(nn, initial_list, max_level);
  std::vector<NodeId> list = trim_closest(nn, std::move(initial_list), k);

  for (unsigned level = max_level; level-- > 0;) {
    std::vector<NodeId> candidates =
        get_next_list(nn, list, level, contacted, trace);
    build_row_from_list(nn, candidates, level);
    list = trim_closest(nn, std::move(candidates), k);
  }
}

}  // namespace tap
