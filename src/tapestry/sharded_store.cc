#include "src/tapestry/sharded_store.h"

#include "src/common/assert.h"

namespace tap {

void ShardedStore::upsert(const Guid& guid, const PointerRecord& record) {
  TAP_CHECK(guid.valid() && record.server.valid(),
            "upsert needs valid guid and server");
  Stripe& s = stripes_[stripe_of(guid)];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.upserts;
  auto& vec = s.map[guid];
  for (auto& r : vec) {
    if (r.server == record.server) {
      r = record;
      return;
    }
  }
  vec.push_back(record);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<PointerRecord> ShardedStore::find(const Guid& guid,
                                                const NodeId& server) const {
  const Stripe& s = stripes_[stripe_of(guid)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(guid);
  if (it == s.map.end()) return std::nullopt;
  for (const auto& r : it->second)
    if (r.server == server) return r;
  return std::nullopt;
}

std::vector<PointerRecord> ShardedStore::find_all(const Guid& guid) const {
  const Stripe& s = stripes_[stripe_of(guid)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(guid);
  if (it == s.map.end()) return {};
  return it->second;
}

std::vector<PointerRecord> ShardedStore::find_live(const Guid& guid,
                                                   double now) const {
  std::vector<PointerRecord> out;
  const Stripe& s = stripes_[stripe_of(guid)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(guid);
  if (it == s.map.end()) return out;
  for (const auto& r : it->second)
    if (r.expires_at >= now) out.push_back(r);
  return out;
}

void ShardedStore::for_each_of(const Guid& guid, const Visitor& fn) const {
  const Stripe& s = stripes_[stripe_of(guid)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(guid);
  if (it == s.map.end()) return;
  for (const auto& r : it->second) fn(guid, r);
}

bool ShardedStore::remove(const Guid& guid, const NodeId& server) {
  Stripe& s = stripes_[stripe_of(guid)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(guid);
  if (it == s.map.end()) return false;
  auto& vec = it->second;
  for (auto r = vec.begin(); r != vec.end(); ++r) {
    if (r->server == server) {
      vec.erase(r);
      count_.fetch_sub(1, std::memory_order_relaxed);
      ++s.removes;
      if (vec.empty()) s.map.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t ShardedStore::remove_expired(double now) {
  std::size_t removed = 0;
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    std::size_t stripe_removed = 0;
    for (auto it = s.map.begin(); it != s.map.end();) {
      auto& vec = it->second;
      for (auto r = vec.begin(); r != vec.end();) {
        if (r->expires_at < now) {
          r = vec.erase(r);
          ++stripe_removed;
        } else {
          ++r;
        }
      }
      it = vec.empty() ? s.map.erase(it) : std::next(it);
    }
    s.expired += stripe_removed;
    removed += stripe_removed;
  }
  count_.fetch_sub(removed, std::memory_order_relaxed);
  return removed;
}

void ShardedStore::for_each(const Visitor& fn) const {
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [guid, vec] : s.map)
      for (const auto& r : vec) fn(guid, r);
  }
}

std::vector<std::pair<Guid, PointerRecord>> ShardedStore::snapshot() const {
  std::vector<std::pair<Guid, PointerRecord>> out;
  out.reserve(size());
  for_each([&](const Guid& g, const PointerRecord& r) { out.emplace_back(g, r); });
  return out;
}

StoreStats ShardedStore::stats() const {
  StoreStats st;
  st.backend = "sharded";
  st.records = size();
  st.stripes = kStripeCount;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    st.upserts += s.upserts;
    st.removes += s.removes;
    st.expired += s.expired;
  }
  return st;
}

}  // namespace tap
