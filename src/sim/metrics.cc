#include "src/sim/metrics.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/assert.h"

namespace tap::metrics {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::add(double d) noexcept {
  if (!enabled()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  TAP_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  TAP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                    bounds_.end(),
            "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double x) noexcept {
  if (!enabled()) return;
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;  // le semantics
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (
      !sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

// Shortest round-trip-exact decimal for a double; integral values print
// without a fractional part so counters and exact sums stay stable text.
std::string fmt_num(double v) {
  if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_bound(double b) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", b);
  return buf;
}

}  // namespace

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const std::string& help,
                                          const Labels& labels, Kind kind,
                                          bool volatile_metric) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string label_str;  // Prometheus form: k="v",k2="v2"
  std::string label_key;  // JSON-safe form:  k=v,k2=v2
  for (const auto& [k, v] : sorted) {
    if (!label_str.empty()) {
      label_str += ',';
      label_key += ',';
    }
    label_str += k + "=\"" + v + "\"";
    label_key += k + "=" + v;
  }
  std::string key = name;
  if (!label_key.empty()) key += "{" + label_key + "}";

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    TAP_CHECK(it->second.kind == kind,
              "metric re-registered with a different kind: " + key);
    return it->second;
  }
  Entry& e = entries_[key];
  e.name = name;
  e.help = help;
  e.label_str = label_str;
  e.kind = kind;
  e.volatile_metric = volatile_metric;
  return e;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels, bool volatile_metric) {
  Entry& e = find_or_create(name, help, labels, Kind::kCounter,
                            volatile_metric);
  if (!e.c) e.c = std::make_unique<Counter>();
  return *e.c;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels, bool volatile_metric) {
  Entry& e = find_or_create(name, help, labels, Kind::kGauge, volatile_metric);
  if (!e.g) e.g = std::make_unique<Gauge>();
  return *e.g;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds,
                               const Labels& labels, bool volatile_metric) {
  Entry& e = find_or_create(name, help, labels, Kind::kHistogram,
                            volatile_metric);
  if (!e.h) {
    e.h = std::make_unique<Histogram>(std::move(bounds));
  } else {
    TAP_CHECK(e.h->bounds() == bounds,
              "histogram re-registered with different bounds: " + name);
  }
  return *e.h;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : entries_) {
    if (e.c) e.c->reset();
    if (e.g) e.g->reset();
    if (e.h) e.h->reset();
  }
}

std::string Registry::snapshot_json(bool include_volatile) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [key, e] : entries_) {  // std::map: keys already sorted
    if (e.volatile_metric && !include_volatile) continue;
    if (!first) out += ',';
    first = false;
    out += "\"" + key + "\":";
    switch (e.kind) {
      case Kind::kCounter:
        out += fmt_num(static_cast<double>(e.c->value()));
        break;
      case Kind::kGauge:
        out += fmt_num(e.g->value());
        break;
      case Kind::kHistogram: {
        out += "{\"buckets\":[";
        for (std::size_t i = 0; i <= e.h->bounds().size(); ++i) {
          if (i > 0) out += ',';
          out += fmt_num(static_cast<double>(e.h->bucket_count(i)));
        }
        out += "],\"sum\":" + fmt_num(e.h->sum()) +
               ",\"count\":" + fmt_num(static_cast<double>(e.h->count())) +
               "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_family;
  for (const auto& [key, e] : entries_) {
    if (e.name != last_family) {  // map order keeps families adjacent
      last_family = e.name;
      const char* type = e.kind == Kind::kCounter   ? "counter"
                         : e.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      out += "# HELP " + e.name + " " + e.help + "\n";
      out += "# TYPE " + e.name + " " + std::string(type) + "\n";
    }
    std::string series = e.label_str.empty() ? "" : "{" + e.label_str + "}";
    switch (e.kind) {
      case Kind::kCounter:
        out += e.name + series + " " +
               fmt_num(static_cast<double>(e.c->value())) + "\n";
        break;
      case Kind::kGauge:
        out += e.name + series + " " + fmt_num(e.g->value()) + "\n";
        break;
      case Kind::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < e.h->bounds().size(); ++i) {
          cum += e.h->bucket_count(i);
          std::string le = e.label_str.empty()
                               ? "le=\"" + fmt_bound(e.h->bounds()[i]) + "\""
                               : e.label_str + ",le=\"" +
                                     fmt_bound(e.h->bounds()[i]) + "\"";
          out += e.name + "_bucket{" + le + "} " +
                 fmt_num(static_cast<double>(cum)) + "\n";
        }
        std::string le_inf = e.label_str.empty()
                                 ? "le=\"+Inf\""
                                 : e.label_str + ",le=\"+Inf\"";
        out += e.name + "_bucket{" + le_inf + "} " +
               fmt_num(static_cast<double>(e.h->count())) + "\n";
        out += e.name + "_sum" + series + " " + fmt_num(e.h->sum()) + "\n";
        out += e.name + "_count" + series + " " +
               fmt_num(static_cast<double>(e.h->count())) + "\n";
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> Registry::family_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [key, e] : entries_) {
    if (names.empty() || names.back() != e.name) names.push_back(e.name);
  }
  return names;
}

Registry& registry() {
  static Registry r;
  return r;
}

void reset_all() { registry().reset_values(); }
std::string snapshot_json(bool include_volatile) {
  return registry().snapshot_json(include_volatile);
}
std::string prometheus_text() { return registry().prometheus_text(); }

// --- well-known metrics -------------------------------------------------

Counter& messages_total() {
  static Counter& c = registry().counter(
      "tapestry_messages_total",
      "Inter-node messages booked through NodeRegistry::acct");
  return c;
}

Counter& locate_total() {
  static Counter& c = registry().counter(
      "tapestry_locate_total", "Locate operations completed (sync or async)");
  return c;
}

Counter& locate_found_total() {
  static Counter& c = registry().counter(
      "tapestry_locate_found_total",
      "Locate operations that resolved a live replica");
  return c;
}

Counter& publish_total() {
  static Counter& c = registry().counter(
      "tapestry_publish_total", "Publish operations started (sync or async)");
  return c;
}

Counter& unpublish_total() {
  static Counter& c = registry().counter("tapestry_unpublish_total",
                                         "Unpublish operations started");
  return c;
}

Histogram& locate_hops() {
  static Histogram& h = registry().histogram(
      "tapestry_locate_hops", "Overlay hops per completed locate",
      {0, 1, 2, 3, 4, 6, 8, 12, 16, 24});
  return h;
}

Counter& cache_hits_total() {
  static Counter& c = registry().counter(
      "tapestry_cache_hits_total", "Locate-cache hits served to queries");
  return c;
}

Counter& cache_fallbacks_total() {
  static Counter& c = registry().counter(
      "tapestry_cache_fallbacks_total",
      "Locate-cache hits whose holder verification failed");
  return c;
}

Counter& hotspot_promotions_total() {
  static Counter& c = registry().counter(
      "tapestry_hotspot_promotions_total",
      "Extra replicas published by the hotspot manager");
  return c;
}

Counter& hotspot_demotions_total() {
  static Counter& c = registry().counter(
      "tapestry_hotspot_demotions_total",
      "Extra replicas withdrawn by the hotspot manager");
  return c;
}

Counter& churn_joins_total() {
  static Counter& c = registry().counter(
      "tapestry_churn_events_total", "Churn events processed by kind",
      {{"kind", "join"}});
  return c;
}

Counter& churn_leaves_total() {
  static Counter& c = registry().counter(
      "tapestry_churn_events_total", "Churn events processed by kind",
      {{"kind", "leave"}});
  return c;
}

Counter& churn_fails_total() {
  static Counter& c = registry().counter(
      "tapestry_churn_events_total", "Churn events processed by kind",
      {{"kind", "fail"}});
  return c;
}

Counter& heartbeat_sweeps_total() {
  static Counter& c = registry().counter(
      "tapestry_heartbeat_sweeps_total",
      "Periodic §6.5 heartbeat sweeps executed");
  return c;
}

Counter& partition_transitions_total() {
  static Counter& c = registry().counter(
      "tapestry_partition_transitions_total",
      "Partition set/heal transitions applied to the overlay");
  return c;
}

Counter& replica_writes_total() {
  static Counter& c = registry().counter(
      "tapestry_replica_writes_total",
      "Pointer records mirrored to replica holders (acknowledged writes)");
  return c;
}

Counter& replica_quorum_reads_total() {
  static Counter& c = registry().counter(
      "tapestry_replica_quorum_reads_total",
      "R-of-N quorum reads issued at roots after a locate miss");
  return c;
}

Counter& replica_read_repairs_total() {
  static Counter& c = registry().counter(
      "tapestry_replica_read_repairs_total",
      "Stale or missing replica copies refreshed by read-repair");
  return c;
}

Counter& replica_rereplications_total() {
  static Counter& c = registry().counter(
      "tapestry_replica_rereplications_total",
      "Holder sets re-replicated onto a replacement after a holder death");
  return c;
}

Counter& transport_messages_total() {
  static Counter& c = registry().counter(
      "tapestry_transport_messages_total",
      "Inter-node messages delivered through the transport seam");
  return c;
}

Counter& transport_bytes_total() {
  static Counter& c = registry().counter(
      "tapestry_transport_bytes_total",
      "Datagram bytes encoded by serializing transports");
  return c;
}

Gauge& live_nodes() {
  static Gauge& g = registry().gauge("tapestry_live_nodes",
                                     "Live overlay members (sampled)");
  return g;
}

Gauge& event_queue_depth() {
  static Gauge& g = registry().gauge(
      "tapestry_event_queue_depth", "Pending event-queue actions (sampled)");
  return g;
}

Gauge& store_records() {
  static Gauge& g = registry().gauge(
      "tapestry_store_records",
      "Object-pointer records across all node stores (sampled)");
  return g;
}

Gauge& store_wal_bytes() {
  static Gauge& g = registry().gauge(
      "tapestry_store_wal_bytes",
      "WAL bytes appended across all node stores (sampled)");
  return g;
}

Histogram& repair_wave_seconds() {
  static Histogram& h = registry().histogram(
      "tapestry_repair_wave_seconds",
      "Wall-clock duration of leave/fail repair waves",
      {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0}, {}, /*volatile_metric=*/true);
  return h;
}

Counter& stripe_lock_contention_total() {
  static Counter& c = registry().counter(
      "tapestry_stripe_lock_contention_total",
      "Node stripe-lock acquisitions that had to wait", {},
      /*volatile_metric=*/true);
  return c;
}

void touch_builtin() {
  messages_total();
  locate_total();
  locate_found_total();
  publish_total();
  unpublish_total();
  locate_hops();
  cache_hits_total();
  cache_fallbacks_total();
  hotspot_promotions_total();
  hotspot_demotions_total();
  churn_joins_total();
  churn_leaves_total();
  churn_fails_total();
  heartbeat_sweeps_total();
  partition_transitions_total();
  replica_writes_total();
  replica_quorum_reads_total();
  replica_read_repairs_total();
  replica_rereplications_total();
  transport_messages_total();
  transport_bytes_total();
  live_nodes();
  event_queue_depth();
  store_records();
  store_wal_bytes();
  repair_wave_seconds();
  stripe_lock_contention_total();
}

// --- scrape endpoint ----------------------------------------------------

ScrapeServer::ScrapeServer(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in got{};
  socklen_t len = sizeof(got);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&got), &len) == 0)
    bound_port_ = ntohs(got.sin_port);
  thread_ = std::thread([this] { serve(); });
}

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::serve() {
  const int fd = listen_fd_;  // set before the thread started
  for (;;) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    char buf[1024];
    (void)::recv(conn, buf, sizeof(buf), 0);  // drain the request line(s)
    const std::string body = prometheus_text();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t sent = 0;
    while (sent < resp.size()) {
      ssize_t n = ::send(conn, resp.data() + sent, resp.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

void ScrapeServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace tap::metrics
