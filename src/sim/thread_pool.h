// Parallel trial driver for the benchmark harness and heavyweight tests.
//
// Experiments in this repository are embarrassingly parallel at the *trial*
// level: each trial owns an independent simulator instance seeded from the
// trial index, so trials share no mutable state and results are
// deterministic regardless of thread count or scheduling.  This is the
// standard HPC pattern for simulation sweeps — explicit decomposition, no
// shared mutable state, deterministic reduction order.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace tap {

/// Number of workers to use by default: hardware concurrency, at least 1.
[[nodiscard]] std::size_t default_worker_count() noexcept;

/// Runs fn(i) for i in [0, count) across `workers` threads using static
/// block scheduling.  Blocks until all iterations complete.  The first
/// exception thrown by any iteration is rethrown on the caller's thread
/// (after all workers have joined).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t workers = 0);

/// Runs `count` independent trials, each producing a value of type T, and
/// returns the results in trial order (deterministic reduction).
template <typename T>
[[nodiscard]] std::vector<T> run_trials(
    std::size_t count, const std::function<T(std::size_t)>& trial,
    std::size_t workers = 0) {
  std::vector<T> results(count);
  parallel_for(
      count, [&](std::size_t i) { results[i] = trial(i); }, workers);
  return results;
}

}  // namespace tap
