// Trace: per-operation cost accounting.
//
// Every inter-node interaction in the simulator — a routing hop, an RPC, a
// multicast edge, an acknowledgment — reports itself to the Trace of the
// operation it belongs to.  Benchmarks derive *all* of their numbers
// (application-level hops, network latency, message complexity, stretch)
// from these traces; the algorithms themselves never special-case
// measurement.
//
// Latency accounting follows the paper's cost model (§3): costs are network
// distances and message counts; local computation is free.  `latency`
// accumulates the distance of every message, which for a sequential chain
// of hops equals the end-to-end time; for operations with parallel fan-out
// (the acknowledged multicast) it is the *total traffic*, and the maximum
// over root-to-leaf chains — the completion time — is tracked separately by
// the multicast engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tap {

class Trace {
 public:
  /// When true, the sequence of visited entities (e.g. NodeId bit patterns)
  /// is recorded in path().  Off by default: most benchmarks only need the
  /// aggregate counters.
  explicit Trace(bool record_path = false) : record_path_(record_path) {}

  /// Records one message crossing the given network distance.
  void hop(double dist) noexcept {
    ++messages_;
    latency_ += dist;
  }

  /// Records a visited entity (used for route paths in tests).
  void visit(std::uint64_t id) {
    if (record_path_) path_.push_back(id);
  }

  /// Merges a sub-operation's costs into this trace (e.g. a nested RPC).
  void absorb(const Trace& sub) noexcept {
    messages_ += sub.messages_;
    latency_ += sub.latency_;
    if (record_path_)
      path_.insert(path_.end(), sub.path_.begin(), sub.path_.end());
  }

  [[nodiscard]] std::size_t messages() const noexcept { return messages_; }
  [[nodiscard]] double latency() const noexcept { return latency_; }
  [[nodiscard]] bool recording_path() const noexcept { return record_path_; }
  [[nodiscard]] const std::vector<std::uint64_t>& path() const noexcept {
    return path_;
  }

  void reset() noexcept {
    messages_ = 0;
    latency_ = 0.0;
    path_.clear();
  }

 private:
  bool record_path_;
  std::size_t messages_ = 0;
  double latency_ = 0.0;
  std::vector<std::uint64_t> path_;
};

}  // namespace tap
