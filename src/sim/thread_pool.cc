#include "src/sim/thread_pool.h"

#include <atomic>
#include <mutex>

#include "src/common/assert.h"

namespace tap {

std::size_t default_worker_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t workers) {
  TAP_CHECK(static_cast<bool>(fn), "parallel_for: empty function");
  if (count == 0) return;
  if (workers == 0) workers = default_worker_count();
  workers = std::min(workers, count);

  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic scheduling over an atomic counter: trials have highly variable
  // cost (different n, different seeds), so static blocks would straggle.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tap
