#include "src/sim/churn_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <unordered_set>

#include "src/metric/transit_stub.h"
#include "src/sim/metrics.h"
#include "src/tapestry/fingerprint.h"

namespace tap {

namespace {

Guid scenario_guid(const TapestryParams& params, std::uint64_t seed,
                   std::uint64_t index) {
  const IdSpec spec = params.id;
  const std::uint64_t mask = spec.total_bits() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << spec.total_bits()) - 1;
  return Guid(spec, splitmix64(splitmix64(seed) ^ index) & mask);
}

}  // namespace

// ---------------------------------------------------------------------
// PopularityDist
// ---------------------------------------------------------------------

PopularityDist PopularityDist::uniform(std::size_t n) {
  PopularityDist d;
  d.n_ = n;
  return d;  // no weight table: draw() stays the historical next_u64 call
}

PopularityDist PopularityDist::zipf(std::size_t n, double s) {
  PopularityDist d;
  d.n_ = n;
  d.weights_.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    d.weights_.push_back(std::pow(static_cast<double>(r + 1), -s));
  d.rebuild();
  return d;
}

void PopularityDist::rebuild() {
  cdf_.clear();
  cdf_.reserve(weights_.size());
  double acc = 0.0;
  for (const double w : weights_) {
    acc += w;
    cdf_.push_back(acc);
  }
}

void PopularityDist::boost(std::size_t index, double factor) {
  TAP_CHECK(index < n_, "boost: object index out of range");
  if (weights_.empty()) weights_.assign(n_, 1.0);
  weights_[index] *= factor;
  rebuild();
}

std::size_t PopularityDist::draw(Rng& rng) const {
  TAP_CHECK(n_ > 0, "draw from an empty distribution");
  if (cdf_.empty()) return rng.next_u64(n_);
  const double u = rng.next_double() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return idx < n_ ? idx : n_ - 1;
}

// ---------------------------------------------------------------------
// ChurnDriver
// ---------------------------------------------------------------------

ChurnDriver::ChurnDriver(Network& net, ChurnScenario scenario)
    : net_(net), sc_(scenario), rng_(scenario.seed ^ 0xc4a2b5ull) {
  TAP_CHECK(sc_.horizon > 0.0, "scenario horizon must be positive");
  TAP_CHECK(sc_.epoch > 0.0, "scenario epoch must be positive");
  TAP_CHECK(sc_.checkpoint_interval <= 0.0 || !sc_.checkpoint_dir.empty(),
            "checkpoint_interval requires checkpoint_dir");
  TAP_CHECK(sc_.partition_heal <= 0.0 ||
                (sc_.partition_at > 0.0 &&
                 sc_.partition_heal > sc_.partition_at),
            "partition_heal requires an earlier partition_at");
  TAP_CHECK(sc_.burst_every <= 0.0 || sc_.burst_len <= 0.0 ||
                sc_.burst_factor > 0.0,
            "burst_factor must be positive");
  // Locations not occupied by any node ever registered (tombstones keep
  // theirs — a corpse's underlay address is not reusable) are the join
  // pool; voluntary leavers return theirs.
  std::vector<bool> used(net_.space().size(), false);
  for (const auto& n : net_.registry().nodes()) used[n->location()] = true;
  for (std::size_t loc = 0; loc < used.size(); ++loc)
    if (!used[loc]) free_locs_.push_back(loc);
}

void ChurnDriver::log_event(char kind, const std::string& detail) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%c t=%.6f ", kind, net_.now());
  log_.push_back(buf + detail);
}

ChurnEpoch& ChurnDriver::epoch_now() {
  // Past the horizon, in-flight operations completing during the drain are
  // bucketed separately: clamping them into the final epoch would skew its
  // availability/traffic statistics with events from outside its window.
  if (draining_) return drain_;
  // Relative to the run's start: the network's clock may have advanced
  // before the driver was handed the net (e.g. parallel-join growth).
  const double rel = net_.now() - epochs_.front().t0;
  auto idx = static_cast<std::size_t>(rel <= 0.0 ? 0.0 : rel / sc_.epoch);
  if (idx >= epochs_.size()) idx = epochs_.size() - 1;
  return epochs_[idx];
}

void ChurnDriver::publish_initial_objects() {
  const auto ids = net_.node_ids();
  TAP_CHECK(!ids.empty(), "cannot run a scenario on an empty network");
  for (std::size_t i = 0; i < sc_.objects; ++i) {
    const Guid guid = scenario_guid(net_.params(), sc_.seed, i);
    objects_.push_back(guid);
    for (unsigned r = 0; r < sc_.replicas; ++r) {
      const NodeId server = ids[rng_.next_u64(ids.size())];
      log_event('P', guid.to_string() + " @ " + server.to_string());
      if (sc_.synchronous)
        net_.publish(server, guid);
      else
        net_.publish_async(server, guid);
    }
  }
}

void ChurnDriver::schedule_churn() {
  // The burst multiplier scales only the event rate; the join/leave/fail
  // mix in do_churn_event keeps drawing against the base rates.
  const double rate =
      (sc_.join_rate + sc_.leave_rate + sc_.fail_rate) * churn_multiplier_;
  if (rate <= 0.0) return;
  churn_event_ = net_.events().schedule_in(rng_.exponential(rate), [this] {
    churn_event_.reset();
    if (!running_) return;
    do_churn_event();
    schedule_churn();
  });
}

void ChurnDriver::reschedule_churn() {
  // Burst transitions redraw the next inter-event gap at the new rate;
  // the exponential is memoryless, so dropping the pending draw is sound.
  if (churn_event_.has_value()) {
    net_.events().cancel(*churn_event_);
    churn_event_.reset();
  }
  schedule_churn();
}

void ChurnDriver::do_churn_event() {
  const double total = sc_.join_rate + sc_.leave_rate + sc_.fail_rate;
  const double dice = rng_.next_double() * total;
  const auto ids = net_.node_ids();

  auto is_replica_server = [&](const NodeId& id) {
    for (const Guid& g : objects_) {
      const auto servers = net_.servers_of(g);
      if (std::find(servers.begin(), servers.end(), id) != servers.end())
        return true;
    }
    return false;
  };

  if (dice < sc_.join_rate) {
    if (free_locs_.empty()) {
      log_event('j', "no-free-location");
      return;
    }
    const Location loc = free_locs_.back();
    free_locs_.pop_back();
    const NodeId id = net_.join(loc, std::nullopt, &churn_trace_);
    ++epoch_now().joins;
    metrics::churn_joins_total().inc();
    log_event('J', id.to_string());
  } else if (dice < sc_.join_rate + sc_.leave_rate) {
    if (net_.size() <= sc_.min_nodes || ids.empty()) {
      log_event('l', "population-floor");
      return;
    }
    const NodeId victim = ids[rng_.next_u64(ids.size())];
    if (is_replica_server(victim)) {
      // Voluntary departure of a storage server would take its replicas
      // with it (§5.1 withdraws them); keep the object population stable
      // and let only crashes destroy replicas.
      log_event('l', "victim-is-server " + victim.to_string());
      return;
    }
    free_locs_.push_back(net_.node(victim).location());
    net_.leave(victim, &churn_trace_);
    ++epoch_now().leaves;
    metrics::churn_leaves_total().inc();
    log_event('L', victim.to_string());
  } else {
    if (net_.size() <= sc_.min_nodes || ids.empty()) {
      log_event('f', "population-floor");
      return;
    }
    const NodeId victim = ids[rng_.next_u64(ids.size())];
    net_.fail(victim);
    last_failure_ = net_.now();
    ++epoch_now().fails;
    metrics::churn_fails_total().inc();
    log_event('F', victim.to_string());
  }
}

void ChurnDriver::schedule_faults() {
  if (sc_.partition_at > 0.0) {
    partition_event_ = net_.events().schedule_in(sc_.partition_at, [this] {
      partition_event_.reset();
      if (!running_) return;
      // Side B: odd ranks of the sorted live id list — a deterministic
      // half-split independent of registration order.
      std::vector<NodeId> ids = net_.node_ids();
      std::sort(ids.begin(), ids.end());
      std::vector<NodeId> side_b;
      for (std::size_t i = 1; i < ids.size(); i += 2) side_b.push_back(ids[i]);
      net_.set_partition(side_b);
      log_event('X', "partition side_b=" + std::to_string(side_b.size()));
    });
  }
  if (sc_.partition_heal > 0.0) {
    heal_event_ = net_.events().schedule_in(sc_.partition_heal, [this] {
      heal_event_.reset();
      if (!running_) return;
      net_.heal_partition();
      log_event('H', "partition-heal");
    });
  }
  if (sc_.rackfail_at > 0.0) {
    // Fail fast on a mis-specified scenario instead of at the event.
    TAP_CHECK(dynamic_cast<const TransitStubMetric*>(&net_.space()) != nullptr,
              "rackfail requires a transit-stub metric space");
    rackfail_event_ = net_.events().schedule_in(sc_.rackfail_at, [this] {
      rackfail_event_.reset();
      if (!running_) return;
      do_rackfail();
    });
  }
  if (sc_.rootfail_at > 0.0) {
    rootfail_event_ = net_.events().schedule_in(sc_.rootfail_at, [this] {
      rootfail_event_.reset();
      if (!running_) return;
      do_rootfail();
    });
  }
}

void ChurnDriver::do_rootfail() {
  // Kill the current surrogate roots of the hottest published objects —
  // under a zipf workload object index = popularity rank, under uniform
  // the leading objects stand in for "hottest".  Each root is computed at
  // kill time (the oracle walk), so the victims adapt to whatever churn
  // already happened; duplicates (one node rooting several objects) and
  // roots that store the object themselves are skipped.
  std::size_t killed = 0;
  const std::size_t want = std::min(sc_.rootfail_count, objects_.size());
  for (std::size_t i = 0; i < want; ++i) {
    const Guid& object = objects_[i];
    if (net_.directory().servers_of(object).empty()) continue;
    const NodeId root = net_.surrogate_root(salted_guid(object, 0));
    if (!net_.registry().is_live(root)) continue;  // already dead: skip
    const auto servers = net_.directory().servers_of(object);
    if (std::find(servers.begin(), servers.end(), root) != servers.end()) {
      log_event('o', "root-is-server " + root.to_string());
      continue;
    }
    net_.fail(root);
    ++epoch_now().fails;
    metrics::churn_fails_total().inc();
    ++killed;
    log_event('O', "rootfail obj=" + object.to_string() + " root=" +
                       root.to_string());
  }
  if (killed > 0) last_failure_ = net_.now();
}

void ChurnDriver::do_rackfail() {
  const auto& ts = dynamic_cast<const TransitStubMetric&>(net_.space());
  // Group the live population by stub domain and kill the most populated
  // one outright (ties break toward the lowest stub id) — every node that
  // shares the victim rack's stub router fail-stops in the same instant.
  std::vector<std::vector<NodeId>> by_stub(ts.num_stubs());
  for (const NodeId id : net_.node_ids())
    by_stub[ts.stub_of(net_.node(id).location())].push_back(id);
  std::size_t victim_stub = 0;
  for (std::size_t s = 1; s < by_stub.size(); ++s)
    if (by_stub[s].size() > by_stub[victim_stub].size()) victim_stub = s;
  for (const NodeId v : by_stub[victim_stub]) {
    net_.fail(v);
    ++epoch_now().fails;
    metrics::churn_fails_total().inc();
  }
  last_failure_ = net_.now();
  log_event('K', "rackfail stub=" + std::to_string(victim_stub) + " killed=" +
                     std::to_string(by_stub[victim_stub].size()));
}

void ChurnDriver::schedule_burst() {
  if (sc_.burst_every <= 0.0 || sc_.burst_len <= 0.0) return;
  burst_event_ = net_.events().schedule_in(sc_.burst_every, [this] {
    burst_event_.reset();
    if (!running_) return;
    churn_multiplier_ = sc_.burst_factor;
    log_event('U', "burst-start x" + std::to_string(sc_.burst_factor));
    reschedule_churn();
    burst_event_ = net_.events().schedule_in(sc_.burst_len, [this] {
      burst_event_.reset();
      if (!running_) return;
      churn_multiplier_ = 1.0;
      log_event('U', "burst-end");
      reschedule_churn();
      schedule_burst();  // next burst burst_every after this one ends
    });
  });
}

void ChurnDriver::open_metrics() {
  if (sc_.metrics_out.empty()) return;
  // Per-run clean slate over a fixed metric set: values reset to zero and
  // every builtin family registers up front, so two same-seed runs emit
  // byte-identical streams regardless of what ran in this process before.
  metrics::reset_all();
  metrics::touch_builtin();
  metrics_file_.open(sc_.metrics_out, std::ios::trunc);
  TAP_CHECK(metrics_file_.is_open(),
            "cannot open metrics_out file: " + sc_.metrics_out);
}

void ChurnDriver::write_metrics_snapshot(std::size_t index) {
  if (!metrics_file_.is_open()) return;
  // Point-in-time gauges are sampled here rather than maintained on the
  // hot paths: population, queue depth, and the store totals summed over
  // the live membership.
  metrics::live_nodes().set(static_cast<double>(net_.size()));
  metrics::event_queue_depth().set(
      static_cast<double>(net_.events().pending()));
  std::uint64_t records = 0;
  std::uint64_t wal_bytes = 0;
  for (const auto& n : net_.registry().nodes()) {
    if (!n->alive) continue;
    const StoreStats st = n->store().stats();
    records += st.records;
    wal_bytes += st.wal_bytes;
  }
  metrics::store_records().set(static_cast<double>(records));
  metrics::store_wal_bytes().set(static_cast<double>(wal_bytes));
  char head[96];
  std::snprintf(head, sizeof head, "{\"t\":%.6f,\"epoch\":%zu,\"metrics\":",
                net_.now(), index);
  metrics_file_ << head << metrics::snapshot_json() << "}\n";
}

void ChurnDriver::schedule_queries() {
  if (sc_.query_rate <= 0.0) return;
  query_event_ =
      net_.events().schedule_in(rng_.exponential(sc_.query_rate), [this] {
        query_event_.reset();
        if (!running_) return;
        issue_query();
        schedule_queries();
      });
}

void ChurnDriver::issue_query() {
  if (objects_.empty() || net_.size() == 0) return;
  const Guid guid = objects_[pop_.draw(rng_)];
  if (net_.servers_of(guid).empty()) {
    // No live replica anywhere: nothing to find, nothing to count — the
    // paper's availability is over objects that still exist.
    ++epoch_now().queries_skipped;
    log_event('S', guid.to_string());
    return;
  }
  const auto ids = net_.node_ids();
  const NodeId client = ids[rng_.next_u64(ids.size())];
  const double direct = net_.distance_to_nearest_replica(client, guid);
  const bool post_failure =
      net_.now() - last_failure_ < sc_.post_failure_window;
  log_event('Q', guid.to_string() + " from " + client.to_string());

  auto handle = [this, guid, client, direct,
                 post_failure](const LocateResult& r) {
    ChurnEpoch& e = epoch_now();
    ++e.queries;
    if (r.found) {
      ++e.found;
      e.hops.add(static_cast<double>(r.hops));
      ++load_[r.pointer_node.value()];  // the holder that resolved it
    }
    if (post_failure) {
      ++e.queries_post_failure;
      if (r.found) ++e.found_post_failure;
    }
    if (r.found && direct > 1e-9 && direct < 1e18) {
      e.stretch_sum += r.latency / direct;
      ++e.stretch_n;
    }
    log_event('R', std::string(r.found ? "hit" : "miss") + " hops=" +
                       std::to_string(r.hops));
    if (hotspot_ != nullptr) hotspot_->record_query(guid, client, r.found);
  };
  if (sc_.synchronous)
    handle(net_.locate(client, guid));
  else
    net_.locate_async(client, guid, handle);
}

void ChurnDriver::schedule_sync_maintenance() {
  // Legacy engine: one atomic maintenance boundary per republish interval
  // (sweep, expire, republish-all in a single instant), exactly what the
  // pre-event-driven churn experiments did between batches.
  const double every =
      sc_.republish_interval > 0.0 ? sc_.republish_interval : 0.0;
  if (every <= 0.0) return;
  sync_maint_event_ = net_.events().schedule_in(every, [this] {
    sync_maint_event_.reset();
    if (!running_) return;
    if (sc_.heartbeat_interval > 0.0) net_.heartbeat_sweep(&maint_trace_);
    if (sc_.expiry_interval > 0.0) net_.expire_pointers();
    net_.republish_all(&maint_trace_);
    log_event('M', "sync-maintenance");
    schedule_sync_maintenance();
  });
}

void ChurnDriver::schedule_checkpoint() {
  if (sc_.checkpoint_interval <= 0.0) return;
  checkpoint_event_ =
      net_.events().schedule_in(sc_.checkpoint_interval, [this] {
        checkpoint_event_.reset();
        if (!running_) return;
        net_.checkpoint_stores(sc_.checkpoint_dir);
        log_event('C', "checkpoint " + sc_.checkpoint_dir);
        schedule_checkpoint();
      });
}

void ChurnDriver::snapshot_epoch_boundary(std::size_t index) {
  ChurnEpoch& e = epochs_[index];
  e.live_nodes = net_.size();
  e.maintenance_msgs = maint_trace_.messages() - maint_msgs_seen_;
  maint_msgs_seen_ = maint_trace_.messages();
  e.churn_msgs = churn_trace_.messages() - churn_msgs_seen_;
  churn_msgs_seen_ = churn_trace_.messages();
  write_metrics_snapshot(index);
}

ChurnReport ChurnDriver::run() {
  TAP_CHECK(!ran_, "ChurnDriver instances are single-shot");
  ran_ = true;
  open_metrics();
  fired_at_start_ = net_.events().fired();

  const auto n_epochs = static_cast<std::size_t>(
      std::ceil(sc_.horizon / sc_.epoch - 1e-12));
  const double t0 = net_.now();
  epochs_.resize(n_epochs == 0 ? 1 : n_epochs);
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    epochs_[i].t0 = t0 + static_cast<double>(i) * sc_.epoch;
    epochs_[i].t1 = std::min(t0 + sc_.horizon,
                             t0 + static_cast<double>(i + 1) * sc_.epoch);
  }

  publish_initial_objects();
  pop_ = sc_.popularity == ChurnScenario::Popularity::kZipf
             ? PopularityDist::zipf(objects_.size(), sc_.zipf_s)
             : PopularityDist::uniform(objects_.size());
  if (sc_.flash_at > 0.0 && !objects_.empty()) {
    // One object's popularity spikes mid-run (offset from the run start).
    flash_event_ = net_.events().schedule_in(sc_.flash_at, [this] {
      flash_event_.reset();
      if (!running_) return;
      const std::size_t idx = sc_.flash_index % objects_.size();
      pop_.boost(idx, sc_.flash_factor);
      log_event('B', "flash-crowd " + objects_[idx].to_string() + " x" +
                         std::to_string(sc_.flash_factor));
    });
  }
  if (sc_.hotspot_replication)
    hotspot_ = std::make_unique<HotspotManager>(
        net_.registry(), net_.directory(), net_.events(), sc_.hotspot,
        sc_.synchronous, &maint_trace_);
  if (sc_.synchronous) {
    schedule_sync_maintenance();
  } else {
    net_.start_soft_state(sc_.republish_interval, sc_.expiry_interval,
                          &maint_trace_);
    if (sc_.heartbeat_interval > 0.0)
      net_.start_heartbeats(sc_.heartbeat_interval, &maint_trace_);
  }
  running_ = true;
  if (hotspot_ != nullptr) hotspot_->start();
  schedule_churn();
  schedule_queries();
  schedule_checkpoint();
  schedule_faults();
  schedule_burst();

  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    net_.events().run_until(epochs_[i].t1);
    snapshot_epoch_boundary(i);
  }

  // Horizon reached: stop every recurring process, then drain the
  // operations still in flight.  Their completions land in the terminal
  // drain bucket, not in the last epoch.
  running_ = false;
  draining_ = true;
  drain_.t0 = epochs_.back().t1;
  if (churn_event_.has_value()) net_.events().cancel(*churn_event_);
  if (query_event_.has_value()) net_.events().cancel(*query_event_);
  if (sync_maint_event_.has_value()) net_.events().cancel(*sync_maint_event_);
  if (checkpoint_event_.has_value()) net_.events().cancel(*checkpoint_event_);
  if (flash_event_.has_value()) net_.events().cancel(*flash_event_);
  if (partition_event_.has_value()) net_.events().cancel(*partition_event_);
  if (heal_event_.has_value()) net_.events().cancel(*heal_event_);
  if (rackfail_event_.has_value()) net_.events().cancel(*rackfail_event_);
  if (rootfail_event_.has_value()) net_.events().cancel(*rootfail_event_);
  if (burst_event_.has_value()) net_.events().cancel(*burst_event_);
  if (hotspot_ != nullptr) hotspot_->stop();
  net_.stop_soft_state();
  net_.stop_heartbeats();
  net_.events().run();
  TAP_CHECK(net_.async_in_flight() == 0,
            "operations still in flight after drain");
  // A final checkpoint after the drain, so kill-and-resume experiments can
  // restore the run's end state, not just the last periodic snapshot.
  if (sc_.checkpoint_interval > 0.0) {
    net_.checkpoint_stores(sc_.checkpoint_dir);
    log_event('C', "checkpoint-final " + sc_.checkpoint_dir);
  }
  // Terminal snapshot for the drain bucket (epoch index past the last).
  write_metrics_snapshot(epochs_.size());
  if (metrics_file_.is_open()) metrics_file_.close();
  return finalize();
}

ChurnReport ChurnDriver::finalize() {
  // Traffic from drained operations lands in the terminal drain bucket —
  // the last epoch keeps only what happened inside its own window.
  drain_.t1 = net_.now();
  drain_.maintenance_msgs += maint_trace_.messages() - maint_msgs_seen_;
  maint_msgs_seen_ = maint_trace_.messages();
  drain_.churn_msgs += churn_trace_.messages() - churn_msgs_seen_;
  churn_msgs_seen_ = churn_trace_.messages();
  drain_.live_nodes = net_.size();

  ChurnReport r;
  r.epochs = epochs_;
  r.drain = drain_;
  auto accumulate = [&r](const ChurnEpoch& e) {
    r.joins += e.joins;
    r.leaves += e.leaves;
    r.fails += e.fails;
    r.queries += e.queries;
    r.found += e.found;
    r.queries_post_failure += e.queries_post_failure;
    r.found_post_failure += e.found_post_failure;
    r.queries_skipped += e.queries_skipped;
    r.stretch_sum += e.stretch_sum;
    r.stretch_n += e.stretch_n;
    r.maintenance_msgs += e.maintenance_msgs;
    r.churn_msgs += e.churn_msgs;
    r.hops.add_all(e.hops.samples());
  };
  for (const ChurnEpoch& e : epochs_) accumulate(e);
  accumulate(drain_);  // drained completions still count toward the totals
  r.events_fired = net_.events().fired() - fired_at_start_;
  for (const auto& [node, n] : load_) r.load_max = std::max(r.load_max, n);
  r.load_nodes = load_.size();
  const LocateCache::Stats& cs = net_.directory().locate_cache().stats();
  r.cache_hits = cs.hits;
  r.cache_misses = cs.misses;
  r.cache_fallbacks = cs.fallbacks;
  if (hotspot_ != nullptr) {
    const HotspotManager::Stats hs = hotspot_->stats();
    r.hotspot_promotions = hs.promotions;
    r.hotspot_demotions = hs.demotions;
  }
  return r;
}

// ---------------------------------------------------------------------
// ThreadedChurnSoak
// ---------------------------------------------------------------------

ThreadedChurnSoak::ThreadedChurnSoak(Network& net, ThreadedChurnScenario sc)
    : net_(net), sc_(sc), rng_(sc.seed ^ 0x50a4c7ull) {
  TAP_CHECK(net_.params().store_backend == StoreBackend::kSharded,
            "the threaded churn soak needs the sharded store backend: racer "
            "publishes and expiry sweeps mutate stores mid-wave");
  TAP_CHECK(net_.params().locate_cache_size == 0,
            "the threaded churn soak needs the locate cache disabled: cache "
            "maps are not synchronized against the repair waves");
  TAP_CHECK(sc_.min_nodes >= 2, "min_nodes must keep at least two nodes");
  TAP_CHECK(net_.size() >= sc_.min_nodes,
            "initial population is already below min_nodes");
  TAP_CHECK(sc_.rounds > 0, "a soak needs at least one round");
  TAP_CHECK(sc_.objects > 0, "a soak needs a tracked object population");
  // Join pool: locations never occupied (tombstones keep theirs, exactly
  // as in ChurnDriver); voluntary leavers return theirs each round.
  std::vector<bool> used(net_.space().size(), false);
  for (const auto& n : net_.registry().nodes()) used[n->location()] = true;
  for (std::size_t loc = 0; loc < used.size(); ++loc)
    if (!used[loc]) free_locs_.push_back(loc);
}

Guid ThreadedChurnSoak::soak_guid() {
  return scenario_guid(net_.params(), sc_.seed ^ 0x9e11ull, ++guid_ctr_);
}

ThreadedChurnSoak::RoundPlan ThreadedChurnSoak::plan_round() {
  RoundPlan plan;
  const std::vector<NodeId> ids = net_.node_ids();

  // Joins: vacated or never-used locations, fresh random ids (drawn inside
  // join_bulk's serial preamble — part of its determinism contract).
  const std::size_t joins = std::min(sc_.joins_per_round, free_locs_.size());
  for (std::size_t i = 0; i < joins; ++i) {
    JoinRequest r;
    r.loc = free_locs_.back();
    free_locs_.pop_back();
    plan.joins.push_back(r);
  }

  // Victims: live non-servers, fail and leave sets disjoint.  Servers are
  // exempt because the round's availability gate is "every tracked object
  // locatable with NO republish" — that needs the server set stable while
  // the waves run (a leaving server's preamble would unpublish it).
  std::unordered_set<std::uint64_t> servers;
  for (const auto& entry : tracked_)
    if (net_.contains(entry.second)) servers.insert(entry.second.value());
  std::unordered_set<std::uint64_t> doomed;
  std::size_t live_after = ids.size() + plan.joins.size();
  auto draw = [&](std::size_t want, std::vector<NodeId>* out) {
    std::size_t attempts = 0;
    while (out->size() < want && attempts < 8 * ids.size() + 64) {
      ++attempts;
      if (live_after <= sc_.min_nodes) return;
      const NodeId c = ids[rng_.next_u64(ids.size())];
      if (servers.count(c.value()) != 0 || doomed.count(c.value()) != 0)
        continue;
      doomed.insert(c.value());
      out->push_back(c);
      --live_after;
    }
  };
  draw(sc_.fails_per_round, &plan.fails);
  draw(sc_.leaves_per_round, &plan.leaves);

  // Racer publishes: new objects served by this round's survivors, pushed
  // through the guarded batch path while the waves run.
  for (std::size_t i = 0; i < sc_.publishes_per_round; ++i) {
    ObjectDirectory::PublishRequest pub;
    pub.guid = soak_guid();
    std::size_t attempts = 0;
    do {
      pub.server = ids[rng_.next_u64(ids.size())];
    } while (doomed.count(pub.server.value()) != 0 && ++attempts < 256);
    if (doomed.count(pub.server.value()) != 0) break;
    plan.racer_pubs.push_back(pub);
  }
  return plan;
}

ThreadedChurnReport ThreadedChurnSoak::run() {
  ThreadedChurnReport rep;

  // Initial object population, published serially at quiescence.
  {
    const std::vector<NodeId> ids = net_.node_ids();
    for (std::size_t i = 0; i < sc_.objects; ++i) {
      const Guid g = soak_guid();
      const NodeId server = ids[rng_.next_u64(ids.size())];
      net_.publish(server, g);
      tracked_.emplace_back(g, server);
    }
  }

  for (std::size_t round = 0; round < sc_.rounds; ++round) {
    RoundPlan plan = plan_round();

    // Voluntary leavers vacate their underlay addresses; corpses keep
    // theirs (tombstones, matching ChurnDriver).
    for (const NodeId v : plan.leaves)
      free_locs_.push_back(net_.node(v).location());

    // Survivor list for the prober, captured before anything dies.
    std::unordered_set<std::uint64_t> doomed;
    for (const NodeId v : plan.fails) doomed.insert(v.value());
    for (const NodeId v : plan.leaves) doomed.insert(v.value());
    std::vector<NodeId> sources;
    for (const NodeId id : net_.node_ids())
      if (doomed.count(id.value()) == 0) sources.push_back(id);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> probes{0}, transients{0}, sweeps{0};

    // Racer 1: one guarded batch publish racing the waves (§2.2 deposits
    // under per-hop stripe locks).
    std::thread publisher([&] {
      if (!plan.racer_pubs.empty())
        net_.publish_batch(plan.racer_pubs, 2, nullptr, /*guarded=*/true);
    });
    // Racer 2: §6.5 expiry sweeps in a loop until the waves finish.
    std::thread expirer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        net_.expire_pointers(2);
        sweeps.fetch_add(1, std::memory_order_relaxed);
      }
    });
    // Racer 3: guarded-peek root walks from survivors.  A walk tripping
    // over a mid-repair row surfaces as CheckError — a legal transient,
    // counted and swallowed; torn reads and crashes are TSan's job.
    std::thread prober([&] {
      Rng prng(sc_.seed ^ (0xbeef00ull + round));
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId src = sources[prng.next_u64(sources.size())];
        const Guid& target = tracked_[prng.next_u64(tracked_.size())].first;
        try {
          (void)net_.router().route_to_root_guarded(src, target);
        } catch (const CheckError&) {
          transients.fetch_add(1, std::memory_order_relaxed);
        }
        probes.fetch_add(1, std::memory_order_relaxed);
      }
    });

    // The waves: join, then fail-stop repair, then voluntary leave — all
    // on `workers` real threads against the racers above.
    if (!plan.joins.empty()) (void)net_.join_bulk(plan.joins, sc_.workers);
    const auto t0 = std::chrono::steady_clock::now();
    if (!plan.fails.empty())
      net_.fail_and_repair_bulk(plan.fails, sc_.workers);
    if (!plan.leaves.empty()) net_.leave_bulk(plan.leaves, sc_.workers);
    rep.repair_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    stop.store(true, std::memory_order_relaxed);
    publisher.join();
    expirer.join();
    prober.join();

    // A racer-published chain may have deposited on a node that died
    // mid-walk; one quiescent conformance pass re-pushes those records
    // along current next hops (§4.2) — still no republish.
    (void)net_.directory().repair_pointer_chains();
    for (const auto& pub : plan.racer_pubs)
      tracked_.emplace_back(pub.guid, pub.server);
    rep.publishes += plan.racer_pubs.size();

    // Quiescent availability sweep: every tracked object (servers are all
    // still live by construction) from a random live client, no republish.
    const std::vector<NodeId> ids = net_.node_ids();
    for (const auto& entry : tracked_) {
      if (!net_.contains(entry.second)) continue;
      ++rep.queries;
      if (net_.locate(ids[rng_.next_u64(ids.size())], entry.first).found)
        ++rep.found;
    }

    rep.joins += plan.joins.size();
    rep.fails += plan.fails.size();
    rep.leaves += plan.leaves.size();
    rep.probes += probes.load();
    rep.probe_transients += transients.load();
    rep.expiry_sweeps += sweeps.load();
    ++rep.rounds;
  }

  // Terminal invariants and fingerprints — the cross-worker-count
  // convergence gates bench_churn_threaded compares.
  try {
    net_.check_property1();
    rep.property1_ok = true;
  } catch (const CheckError&) {
  }
  try {
    net_.check_backpointer_symmetry();
    rep.symmetry_ok = true;
  } catch (const CheckError&) {
  }
  rep.no_pins = true;
  for (const auto& n : net_.registry().nodes()) {
    if (!n->alive) continue;
    const RoutingTable& t = n->table();
    for (unsigned l = 0; l < t.levels() && rep.no_pins; ++l)
      for (unsigned j = 0; j < t.radix(); ++j)
        if (!t.at(l, j).pinned_members().empty()) {
          rep.no_pins = false;
          break;
        }
  }
  {
    std::vector<std::uint64_t> vals;
    for (const NodeId id : net_.node_ids()) vals.push_back(id.value());
    std::sort(vals.begin(), vals.end());
    detail::Fnv1a h;
    for (const std::uint64_t v : vals) h.mix(v);
    rep.membership_fp = h.value();
  }
  rep.occupancy_fp = fingerprint_occupancy(net_);
  return rep;
}

}  // namespace tap
