// ChurnDriver: scriptable event-driven churn scenarios (paper §6.5).
//
// Schedules node joins / voluntary leaves / fail-stop crashes, object
// publishes, soft-state republish and expiry timers, heartbeat repair
// sweeps and locate queries as interleaved EventQueue events against one
// Network, then reports per-epoch and aggregate availability / stretch /
// maintenance-cost statistics.  Two execution engines share one schedule:
//
//   * event engine (default): publish/locate decompose into one event per
//     routing hop (ObjectDirectory::publish_async / locate_async), repair
//     and republish run on subsystem timers — queries genuinely observe
//     mid-repair state, the regime §6.5's availability results assume;
//   * synchronous engine: every operation executes atomically at its
//     scheduled instant and maintenance runs as one combined tick — the
//     serialized approximation the pre-event-driven experiments measured,
//     kept for A/B comparison.
//
// Everything is deterministic in (scenario, Network seed): the driver owns
// its workload Rng, the EventQueue breaks timestamp ties by scheduling
// order, and the driver records a replayable event log (see event_log()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/tapestry/hotspot.h"
#include "src/tapestry/network.h"

namespace tap {

/// Seed-deterministic object-popularity distribution for query target
/// selection.  Uniform draws stay byte-identical to the historical
/// `rng.next_u64(n)` call (one u64 from the stream, same value), so every
/// pre-existing scenario replays unchanged; weighted (zipf / flash-boosted)
/// draws consume one `next_double` instead and invert a cumulative weight
/// table.
class PopularityDist {
 public:
  PopularityDist() = default;

  /// Every object equally likely — the default workload.
  static PopularityDist uniform(std::size_t n);
  /// Zipf(s): object at popularity rank r (= index r) has weight
  /// 1 / (r+1)^s.  s = 0 degenerates to a weighted uniform.
  static PopularityDist zipf(std::size_t n, double s);

  /// Draws an object index from the driver's workload Rng.
  [[nodiscard]] std::size_t draw(Rng& rng) const;

  /// Multiplies object `index`'s weight by `factor` (flash crowd).  A
  /// uniform distribution switches to its weighted equivalent — its draws
  /// then consume next_double like any weighted distribution.
  void boost(std::size_t index, double factor);

  [[nodiscard]] bool weighted() const noexcept { return !cdf_.empty(); }

 private:
  void rebuild();

  std::size_t n_ = 0;
  std::vector<double> weights_;  // empty while exactly uniform
  std::vector<double> cdf_;      // running sums of weights_; back() = total
};

/// Scenario script: Poisson processes plus timer intervals, all in
/// simulated time units.  A rate of zero disables that process; an
/// interval of zero disables that timer.
struct ChurnScenario {
  double horizon = 40.0;  ///< simulated run length
  double epoch = 5.0;     ///< statistics bucket length

  // Membership churn (Poisson event rates, per time unit).
  double join_rate = 0.8;
  double leave_rate = 0.6;  ///< voluntary §5.1 departures (non-servers only)
  double fail_rate = 0.6;   ///< fail-stop §5.2 crashes (servers included)
  std::size_t min_nodes = 16;  ///< no departures below this population

  // Query workload.
  double query_rate = 20.0;
  /// Object-popularity skew of the query targets.  kUniform replays the
  /// historical workload byte for byte; kZipf ranks objects by index.
  enum class Popularity { kUniform, kZipf };
  Popularity popularity = Popularity::kUniform;
  double zipf_s = 1.0;  ///< zipf exponent (kZipf only)
  /// Flash crowd: at `flash_at` time units into the run, multiply object
  /// `flash_index`'s popularity weight by `flash_factor`.  0 disables.
  double flash_at = 0.0;
  double flash_factor = 1000.0;
  std::size_t flash_index = 0;
  /// Demand-driven replica placement (src/tapestry/hotspot.h), fed from
  /// every query completion; knobs in `hotspot`.
  bool hotspot_replication = false;
  HotspotParams hotspot{};
  double post_failure_window =
      4.0;  ///< queries issued this soon after a crash are bucketed
            ///< separately (availability_post_failure)

  // Object workload, published at t = 0 through the selected engine.
  std::size_t objects = 64;
  unsigned replicas = 1;

  // Maintenance timers (§6.5 / §5.2).
  double republish_interval = 4.0;
  double expiry_interval = 1.0;
  double heartbeat_interval = 4.0;

  // Fault script (tentpole scenarios; zero disables each knob).
  /// Network partition: at `partition_at` time units into the run the live
  /// population is split into two halves (odd ranks of the sorted id list
  /// form side B) that cannot exchange messages; at `partition_heal` the
  /// cut heals.  Partitioned members stay alive — routing skips them
  /// without purging, so healing needs no repair wave, only the next
  /// republish round to refresh cross-side pointers.
  double partition_at = 0.0;
  double partition_heal = 0.0;
  /// Correlated rack failure: at `rackfail_at`, every live node in the
  /// most-populated transit-stub domain fail-stops at once.  Requires the
  /// network's metric space to be a TransitStubMetric (TAP_CHECKed).
  double rackfail_at = 0.0;
  /// Targeted root failure: at `rootfail_at`, the current surrogate roots
  /// of the `rootfail_count` hottest published objects (by popularity
  /// rank) fail-stop at once — the adversarial worst case for pointer
  /// availability, since each kill erases exactly the records that object's
  /// locates depend on.  A root that is the object's own storage server is
  /// skipped (killing the replica would make the object genuinely
  /// unlocatable rather than exercise the directory).  Zero disables.
  double rootfail_at = 0.0;
  std::size_t rootfail_count = 3;
  /// Mobile-style churn bursts: `burst_len` time units of churn at
  /// `burst_factor` times the base rates, recurring `burst_every` time
  /// units after the run start / the previous burst's end.  The multiplier
  /// scales only the event rate — the join/leave/fail mix is unchanged.
  double burst_every = 0.0;
  double burst_len = 0.0;
  double burst_factor = 8.0;

  /// Metrics JSONL sink: when non-empty, the run resets the global metrics
  /// registry and appends one `{"t":..,"epoch":..,"metrics":{..}}` line per
  /// epoch boundary plus a terminal line for the drain.  Only deterministic
  /// metrics are included (snapshot_json(false)), so the stream is
  /// byte-identical across same-seed runs.
  std::string metrics_out{};

  std::uint64_t seed = 1;    ///< workload randomness (driver-owned Rng)
  bool synchronous = false;  ///< legacy atomic-operation engine

  // Checkpoint epochs (persistent object-store backend): every
  // `checkpoint_interval` simulated time units the driver flushes all node
  // stores and writes the membership/replica manifest to `checkpoint_dir`
  // (Network::checkpoint_stores), so a killed run can resume from the last
  // checkpoint.  Zero disables; a non-zero interval requires a directory.
  double checkpoint_interval = 0.0;
  std::string checkpoint_dir{};
};

/// One statistics bucket.  Queries are bucketed by completion time; churn
/// events by occurrence time.
struct ChurnEpoch {
  double t0 = 0.0, t1 = 0.0;
  std::size_t joins = 0, leaves = 0, fails = 0;
  std::size_t queries = 0, found = 0;
  std::size_t queries_post_failure = 0, found_post_failure = 0;
  std::size_t queries_skipped = 0;  ///< drawn object had no live replica
  double stretch_sum = 0.0;
  std::size_t stretch_n = 0;
  std::size_t maintenance_msgs = 0;  ///< heartbeat + republish (this epoch)
  std::size_t churn_msgs = 0;        ///< join/leave protocol (this epoch)
  std::size_t live_nodes = 0;        ///< population at epoch end
  Summary hops;  ///< per-query hop counts of found queries (completion time)

  [[nodiscard]] double availability() const {
    return queries == 0 ? 1.0
                        : static_cast<double>(found) /
                              static_cast<double>(queries);
  }
  [[nodiscard]] double mean_stretch() const {
    return stretch_n == 0 ? 0.0 : stretch_sum / static_cast<double>(stretch_n);
  }
};

/// Aggregates over the whole run plus the per-epoch series.
struct ChurnReport {
  std::vector<ChurnEpoch> epochs;
  /// Terminal bucket for the drain phase: once the horizon is reached and
  /// the recurring processes are stopped, completions of still-in-flight
  /// operations (and their traffic) land here instead of being silently
  /// clamped into the last epoch — the last epoch's availability/traffic
  /// figures describe only its own window.  `drain.t0` is the horizon,
  /// `drain.t1` the time the queue actually drained; the aggregate totals
  /// below include it.
  ChurnEpoch drain;
  std::size_t joins = 0, leaves = 0, fails = 0;
  std::size_t queries = 0, found = 0;
  std::size_t queries_post_failure = 0, found_post_failure = 0;
  std::size_t queries_skipped = 0;
  double stretch_sum = 0.0;
  std::size_t stretch_n = 0;
  std::size_t maintenance_msgs = 0;
  std::size_t churn_msgs = 0;
  std::uint64_t events_fired = 0;  ///< EventQueue events over the run
  Summary hops;  ///< found-query hops across all epochs plus the drain
  // Per-node query load: how many found queries each pointer holder
  // resolved (max / number of distinct resolvers; `found` is the total, so
  // mean load over resolvers is found / load_nodes).
  std::size_t load_max = 0;
  std::size_t load_nodes = 0;
  // Locate-cache counters for the run (zeros when the cache is disabled).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_fallbacks = 0;
  // Demand-driven replication counters (zeros unless hotspot_replication).
  std::size_t hotspot_promotions = 0;
  std::size_t hotspot_demotions = 0;

  [[nodiscard]] double availability() const {
    return queries == 0 ? 1.0
                        : static_cast<double>(found) /
                              static_cast<double>(queries);
  }
  [[nodiscard]] double availability_post_failure() const {
    return queries_post_failure == 0
               ? 1.0
               : static_cast<double>(found_post_failure) /
                     static_cast<double>(queries_post_failure);
  }
  [[nodiscard]] double mean_stretch() const {
    return stretch_n == 0 ? 0.0 : stretch_sum / static_cast<double>(stretch_n);
  }
};

class ChurnDriver {
 public:
  /// `net` must already contain its initial population (bootstrap + joins
  /// or the static builder); the driver churns whatever it is handed.
  ChurnDriver(Network& net, ChurnScenario scenario);

  ChurnDriver(const ChurnDriver&) = delete;
  ChurnDriver& operator=(const ChurnDriver&) = delete;

  /// Runs the scenario to its horizon, drains in-flight operations, and
  /// returns the report.  Single-shot: a driver instance runs once.
  ChurnReport run();

  /// Deterministic, replayable record of every workload decision and
  /// outcome: "<kind> t=<time> <detail>" lines in firing order.  Two runs
  /// with identical (scenario, network construction) produce identical
  /// logs — the replay test's oracle.
  [[nodiscard]] const std::vector<std::string>& event_log() const noexcept {
    return log_;
  }

  /// The object population the scenario published (available after run();
  /// callers audit final locatability against servers_of()).
  [[nodiscard]] const std::vector<Guid>& objects() const noexcept {
    return objects_;
  }

 private:
  void publish_initial_objects();
  void schedule_churn();
  void reschedule_churn();
  void schedule_queries();
  void schedule_sync_maintenance();
  void schedule_checkpoint();
  void schedule_faults();
  void schedule_burst();
  void do_churn_event();
  void do_rackfail();
  void do_rootfail();
  void issue_query();
  void open_metrics();
  void write_metrics_snapshot(std::size_t index);
  void log_event(char kind, const std::string& detail);
  ChurnEpoch& epoch_now();
  void snapshot_epoch_boundary(std::size_t index);
  ChurnReport finalize();

  Network& net_;
  ChurnScenario sc_;
  Rng rng_;  ///< workload randomness, independent of the network's Rng

  std::vector<Guid> objects_;
  PopularityDist pop_;
  std::unique_ptr<HotspotManager> hotspot_;
  std::unordered_map<std::uint64_t, std::size_t> load_;  ///< resolver -> found
  std::vector<Location> free_locs_;
  std::vector<ChurnEpoch> epochs_;
  std::vector<std::string> log_;

  Trace maint_trace_;  ///< heartbeat + republish traffic
  Trace churn_trace_;  ///< join/leave protocol traffic
  std::size_t maint_msgs_seen_ = 0;
  std::size_t churn_msgs_seen_ = 0;

  double last_failure_ = -std::numeric_limits<double>::infinity();
  std::uint64_t fired_at_start_ = 0;
  bool running_ = false;
  bool ran_ = false;
  bool draining_ = false;   ///< horizon reached; stats go to drain_
  ChurnEpoch drain_;        ///< terminal bucket (see ChurnReport::drain)
  std::optional<EventId> churn_event_;
  std::optional<EventId> query_event_;
  std::optional<EventId> sync_maint_event_;
  std::optional<EventId> checkpoint_event_;
  std::optional<EventId> flash_event_;

  // Fault-script state (see the ChurnScenario knobs).
  double churn_multiplier_ = 1.0;  ///< burst scaling of the churn rate
  std::ofstream metrics_file_;     ///< open iff sc_.metrics_out non-empty
  std::optional<EventId> partition_event_;
  std::optional<EventId> heal_event_;
  std::optional<EventId> rackfail_event_;
  std::optional<EventId> rootfail_event_;
  std::optional<EventId> burst_event_;
};

// ---------------------------------------------------------------------
// ThreadedChurnSoak: wall-clock churn on real threads
// ---------------------------------------------------------------------

/// Round-based churn soak where everything races on one overlay at once:
/// each round draws a join batch, a fail batch and a leave batch serially
/// (the determinism contract of join_bulk / leave_bulk), then runs the
/// three thread-parallel waves back to back while racer threads hammer the
/// same mesh with guarded batch publishes, §6.5 expiry sweeps and
/// guarded-peek locate probes.  After the racers stop, one quiescent
/// pointer-chain repair conforms anything the racers published mid-wave,
/// every tracked object is located WITHOUT republishing, and the §4
/// structural invariants are checked.
///
/// Requires the sharded store backend and the locate cache disabled; both
/// are TAP_CHECKed.  Same seed + any worker count converges to identical
/// membership and occupancy fingerprints — the bench's contract gate.
struct ThreadedChurnScenario {
  std::size_t rounds = 4;
  std::size_t joins_per_round = 8;
  std::size_t leaves_per_round = 4;   ///< voluntary §5.1, non-servers only
  std::size_t fails_per_round = 4;    ///< fail-stop §5.2, non-servers only
  std::size_t min_nodes = 24;         ///< no departures below this population
  std::size_t objects = 24;           ///< published up front, one server each
  std::size_t publishes_per_round = 8;  ///< racer-published during the waves
  std::size_t workers = 0;            ///< wave width; 0 = hardware concurrency
  std::uint64_t seed = 1;
};

struct ThreadedChurnReport {
  std::size_t rounds = 0;
  std::size_t joins = 0, leaves = 0, fails = 0;
  std::size_t publishes = 0;         ///< objects racer-published mid-wave
  std::size_t probes = 0;            ///< guarded-peek walks issued by the racer
  std::size_t probe_transients = 0;  ///< CheckError observed mid-wave (benign)
  std::size_t expiry_sweeps = 0;
  std::size_t queries = 0, found = 0;  ///< quiescent locates, no republish
  bool property1_ok = false;
  bool symmetry_ok = false;
  bool no_pins = false;
  double repair_seconds = 0.0;  ///< wall time inside fail/leave waves only
  std::uint64_t membership_fp = 0;  ///< FNV over sorted live id values
  std::uint64_t occupancy_fp = 0;   ///< fingerprint_occupancy at quiescence

  [[nodiscard]] double availability() const {
    return queries == 0 ? 1.0
                        : static_cast<double>(found) /
                              static_cast<double>(queries);
  }
  [[nodiscard]] double repairs_per_sec() const {
    return repair_seconds <= 0.0
               ? 0.0
               : static_cast<double>(leaves + fails) / repair_seconds;
  }
  [[nodiscard]] bool converged() const {
    return property1_ok && symmetry_ok && no_pins;
  }
};

class ThreadedChurnSoak {
 public:
  ThreadedChurnSoak(Network& net, ThreadedChurnScenario scenario);

  ThreadedChurnSoak(const ThreadedChurnSoak&) = delete;
  ThreadedChurnSoak& operator=(const ThreadedChurnSoak&) = delete;

  /// Runs every round and returns the report.  Single-shot.
  ThreadedChurnReport run();

 private:
  struct RoundPlan {
    std::vector<JoinRequest> joins;
    std::vector<NodeId> fails;
    std::vector<NodeId> leaves;
    std::vector<ObjectDirectory::PublishRequest> racer_pubs;
  };
  RoundPlan plan_round();
  Guid soak_guid();

  Network& net_;
  ThreadedChurnScenario sc_;
  Rng rng_;  ///< workload randomness, independent of the network's Rng

  std::vector<std::pair<Guid, NodeId>> tracked_;  ///< (object, its server)
  std::vector<Location> free_locs_;
  std::uint64_t guid_ctr_ = 0;
};

}  // namespace tap
