#include "src/sim/event_queue.h"

namespace tap {

EventId EventQueue::schedule_at(double when, Action action) {
  TAP_CHECK(when >= now_, "schedule_at: cannot schedule in the past");
  TAP_CHECK(static_cast<bool>(action), "schedule_at: empty action");
  const EventId id = next_id_++;
  if (actions_.size() <= id) actions_.resize(id + 1);
  actions_[id] = std::move(action);
  heap_.push(Entry{when, id});
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= actions_.size() || !actions_[id]) return false;
  actions_[id] = nullptr;  // release captured state eagerly
  cancelled_.insert(id);
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    TAP_ASSERT(e.time >= now_);
    now_ = e.time;
    Action action = std::move(actions_[e.id]);
    actions_[e.id] = nullptr;
    ++fired_;
    action();
    return true;
  }
  return false;
}

void EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    TAP_CHECK(++n <= max_events, "EventQueue::run exceeded max_events");
  }
}

void EventQueue::run_until(double t_end) {
  TAP_CHECK(t_end >= now_, "run_until: cannot rewind the clock");
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    if (cancelled_.count(e.id)) {
      heap_.pop();
      cancelled_.erase(e.id);
      continue;
    }
    if (e.time > t_end) break;
    step();
  }
  now_ = t_end;
}

}  // namespace tap
