#include "src/sim/event_queue.h"

namespace tap {

EventId EventQueue::schedule_at(double when, Action action) {
  TAP_CHECK(when >= now_, "schedule_at: cannot schedule in the past");
  TAP_CHECK(static_cast<bool>(action), "schedule_at: empty action");
  const EventId id = next_id_++;
  actions_.emplace(id, std::move(action));
  heap_.push(Entry{when, id});
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only ids with a live action are cancellable; an already-fired, already-
  // cancelled or never-issued id is rejected without leaving any tombstone
  // state behind (the stale heap entry, if one exists, is popped lazily).
  auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);  // release captured state eagerly
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    auto it = actions_.find(e.id);
    if (it == actions_.end()) {
      heap_.pop();  // cancellation tombstone
      continue;
    }
    heap_.pop();
    TAP_ASSERT(e.time >= now_);
    now_ = e.time;
    Action action = std::move(it->second);
    actions_.erase(it);
    ++fired_;
    action();
    return true;
  }
  return false;
}

void EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    TAP_CHECK(++n <= max_events, "EventQueue::run exceeded max_events");
  }
}

void EventQueue::run_until(double t_end) {
  TAP_CHECK(t_end >= now_, "run_until: cannot rewind the clock");
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    if (actions_.find(e.id) == actions_.end()) {
      heap_.pop();  // cancellation tombstone
      continue;
    }
    if (e.time > t_end) break;
    step();
  }
  now_ = t_end;
}

}  // namespace tap
