// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms behind lock-free hot paths.
//
// The simulator's per-epoch CSV answers "how did the run go"; this
// registry answers "what is the overlay doing right now" — routing
// message volume, locate outcomes and hop distributions, repair-wave
// activity, store occupancy, event-queue depth — the Prometheus-style
// observability ROADMAP's production-observability item asks for.
//
// Design rules:
//
//   * Hot-path writes are single relaxed atomic RMWs.  Instrumented
//     call sites cache a reference (`static Counter& c = ...`), so the
//     registry map is only consulted once per site per process.
//   * Registration is centralized: every metric the simulator exports
//     is created by a named accessor in metrics.cc (the well-known
//     metrics section below).  tools/check_metrics_doc.py scans that
//     one file and cross-checks docs/metrics.md, so an undocumented
//     metric fails CI.
//   * Snapshots must be replay-deterministic.  Metrics whose values
//     depend on wall-clock time or thread scheduling (wave durations,
//     lock contention) are registered `volatile` and excluded from
//     snapshot_json(), which feeds --metrics-out JSONL; the Prometheus
//     text exposition (a live scrape, no determinism contract) always
//     includes them.
//   * Values reset, identities persist: reset_values() zeroes every
//     metric but never invalidates a reference handed out earlier, so
//     one process can run many deterministic scenarios back to back.
//
// The registry is process-global on purpose — overlays, drivers and
// benches all write into one namespace, exactly like a real process
// exporting one scrape page.  Drivers that need a clean slate call
// reset_values() at run start.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tap::metrics {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global on/off switch for hot-path recording (relaxed read per write).
/// Exists so bench_churn can measure instrumentation overhead by running
/// the identical workload with recording suppressed.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Monotonic counter.  inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins instantaneous value (sampled, not accumulated).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept;
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: observation x
/// lands in the first bucket with x <= bound; the implicit last bucket
/// is +Inf.  Bounds are fixed at registration — no resizing, so
/// observe() is a bucket scan plus two relaxed RMWs.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Raw (non-cumulative) count of bucket i; i == bounds().size() is the
  /// +Inf overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One label pair; series are keyed by name + sorted label set.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class Kind { kCounter, kGauge, kHistogram };

/// Named + labeled metric store.  Lookup/registration takes a mutex (it
/// is called once per call site, not per event); the returned references
/// are stable for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {}, bool volatile_metric = false);
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {}, bool volatile_metric = false);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const Labels& labels = {},
                       bool volatile_metric = false);

  /// Zeroes every metric's value; identities and references survive.
  void reset_values();

  /// One-line JSON object mapping "name{labels}" -> value, keys sorted.
  /// Counters/gauges map to numbers; histograms map to
  /// {"buckets":[...],"sum":s,"count":n} with the +Inf bucket last.
  /// Volatile (wall-clock / scheduling dependent) metrics are excluded
  /// unless `include_volatile` — the seed-determinism contract of
  /// --metrics-out.
  [[nodiscard]] std::string snapshot_json(bool include_volatile = false) const;

  /// Prometheus text exposition (format 0.0.4): HELP/TYPE headers, one
  /// series per line, histograms expanded to cumulative _bucket{le=...}
  /// plus _sum/_count.  Includes volatile metrics — a live scrape has no
  /// determinism contract.
  [[nodiscard]] std::string prometheus_text() const;

  /// Distinct family names, sorted (docs tooling and tests).
  [[nodiscard]] std::vector<std::string> family_names() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::string label_str;  // rendered `k="v",k2="v2"`, sorted by key
    Kind kind = Kind::kCounter;
    bool volatile_metric = false;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry& find_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, Kind kind, bool volatile_metric);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // key = name + "{" + labels + "}"
};

/// The process-wide registry every accessor below registers into.
[[nodiscard]] Registry& registry();

/// Convenience passthroughs on the global registry.
void reset_all();
[[nodiscard]] std::string snapshot_json(bool include_volatile = false);
[[nodiscard]] std::string prometheus_text();

// --- well-known metrics -------------------------------------------------
// Every metric the simulator exports, one accessor each (all defined in
// metrics.cc — the single file check_metrics_doc.py scans).  First call
// registers; later calls return the same object.

Counter& messages_total();            ///< inter-node messages (registry acct)
Counter& locate_total();              ///< locate operations completed
Counter& locate_found_total();        ///< locates that found a replica
Counter& publish_total();             ///< publish operations started
Counter& unpublish_total();           ///< unpublish operations started
Histogram& locate_hops();             ///< per-locate overlay hop count
Counter& cache_hits_total();          ///< locate-cache hits served
Counter& cache_fallbacks_total();     ///< cache hits failing verification
Counter& hotspot_promotions_total();  ///< extra replicas published
Counter& hotspot_demotions_total();   ///< extra replicas withdrawn
Counter& churn_joins_total();         ///< §4.4 dynamic joins completed
Counter& churn_leaves_total();        ///< §5.1 voluntary leaves completed
Counter& churn_fails_total();         ///< fail-stop deaths processed
Counter& heartbeat_sweeps_total();    ///< §6.5 heartbeat sweeps run
Counter& partition_transitions_total();  ///< partition set/heal events
Counter& replica_writes_total();      ///< quorum mirror writes acknowledged
Counter& replica_quorum_reads_total();  ///< R-of-N quorum reads at roots
Counter& replica_read_repairs_total();  ///< stale/missing replicas repaired
Counter& replica_rereplications_total();  ///< holder deaths re-replicated
Counter& transport_messages_total();  ///< messages through the wire seam
Counter& transport_bytes_total();     ///< datagram bytes encoded (loopback)
Gauge& live_nodes();                  ///< live overlay members (sampled)
Gauge& event_queue_depth();           ///< pending event actions (sampled)
Gauge& store_records();               ///< pointer records, all nodes (sampled)
Gauge& store_wal_bytes();             ///< WAL bytes appended, all nodes (sampled)
Histogram& repair_wave_seconds();     ///< volatile: repair wave wall time
Counter& stripe_lock_contention_total();  ///< volatile: contended stripe locks

/// Registers every well-known metric above.  Drivers that export
/// deterministic snapshots call this first so the exported metric set
/// never depends on which code paths happened to run earlier in the
/// process.
void touch_builtin();

// --- scrape endpoint ----------------------------------------------------

/// Minimal plain-HTTP exposition server: every request to any path gets
/// a 200 with the current prometheus_text().  Binds 127.0.0.1:`port`
/// (port 0 picks an ephemeral port — tests); serves on a background
/// thread until stop()/destruction.
class ScrapeServer {
 public:
  explicit ScrapeServer(int port);
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Bound port (resolves port 0), or 0 if the listener failed to start.
  [[nodiscard]] int port() const noexcept { return bound_port_; }
  [[nodiscard]] bool running() const noexcept { return listen_fd_ >= 0; }
  void stop();

 private:
  void serve();

  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace tap::metrics
