// Discrete-event simulation engine.
//
// Used wherever the *interleaving* of distributed events matters to the
// algorithms, not just their aggregate cost:
//   * the event-driven acknowledged multicast (paper §4.1/§4.4), where
//     simultaneous insertions race and the pinned-pointer/watch-list
//     machinery must observe genuinely interleaved message deliveries;
//   * soft-state timers (object-pointer expiry and periodic republish,
//     §6.5) driving the churn/availability experiments.
//
// Events at equal timestamps fire in scheduling order (a stable tiebreak on
// a monotone sequence number), which keeps every simulation deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/assert.h"

namespace tap {

/// Handle returned by schedule(); can be used to cancel a pending event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.  Starts at 0 and only moves forward.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `action` to fire at absolute time `when` (>= now()).
  EventId schedule_at(double when, Action action);

  /// Schedules `action` to fire `delay` (>= 0) after the current time.
  EventId schedule_in(double delay, Action action) {
    TAP_CHECK(delay >= 0.0, "schedule_in: delay must be non-negative");
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event and releases its action (and captures)
  /// immediately.  Returns false — with no state change — if the id is not
  /// currently pending: already fired, already cancelled, or never issued.
  bool cancel(EventId id);

  /// Fires the earliest pending event.  Returns false if the queue is
  /// empty.  Actions may schedule further events.
  bool step();

  /// Runs until the queue drains.  `max_events` guards against runaway
  /// event loops in tests.
  void run(std::size_t max_events = 100'000'000);

  /// Runs events with time <= t_end, then advances the clock to t_end.
  void run_until(double t_end);

  [[nodiscard]] std::size_t pending() const noexcept {
    return actions_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return actions_.empty(); }

  /// Total number of events fired over the queue's lifetime.
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  struct Entry {
    double time;
    EventId id;
    // Ordered as a min-heap: earliest time first, scheduling order breaking
    // ties so same-time events are FIFO.
    bool operator>(const Entry& o) const noexcept {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 0;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // Pending events only: an entry is erased (releasing the closure and its
  // captures) when the event fires or is cancelled, so retention is bounded
  // by the pending count, never by the lifetime event total.  A heap entry
  // with no map entry is a cancellation tombstone, skipped and popped
  // lazily; ids are never reused, so a tombstone cannot alias a live event.
  std::unordered_map<EventId, Action> actions_;
};

}  // namespace tap
