// LocationScheme adapter over the Tapestry core, so the comparison harness
// drives Tapestry through the same interface as the baselines.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/baselines/scheme.h"
#include "src/tapestry/network.h"

namespace tap {

class TapestryScheme final : public LocationScheme {
 public:
  TapestryScheme(const MetricSpace& space, TapestryParams params,
                 std::uint64_t seed)
      : net_(std::make_unique<Network>(space, params, seed)) {}

  [[nodiscard]] std::string name() const override { return "tapestry"; }

  std::size_t add_node(Location loc, Trace* trace) override {
    const NodeId id = handles_.empty() ? net_->bootstrap(loc)
                                       : net_->join(loc, std::nullopt, trace);
    handles_.push_back(id);
    handle_of_.emplace(id, handles_.size() - 1);
    return handles_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const override { return handles_.size(); }

  void publish(std::size_t server, std::uint64_t key, Trace* trace) override {
    net_->publish(handles_.at(server), key_to_guid(key), trace);
  }

  SchemeLocate locate(std::size_t client, std::uint64_t key,
                      Trace* trace) override {
    const LocateResult r =
        net_->locate(handles_.at(client), key_to_guid(key), trace);
    SchemeLocate out;
    out.found = r.found;
    out.hops = r.hops;
    out.latency = r.latency;
    if (r.found) out.server = handle_of_.at(r.server);
    return out;
  }

  [[nodiscard]] std::size_t total_state() const override {
    return net_->total_table_entries() + net_->total_object_pointers();
  }

  [[nodiscard]] bool dynamic_insert() const override { return true; }

  /// The wrapped network, for experiments needing Tapestry-only features.
  [[nodiscard]] Network& network() noexcept { return *net_; }

 private:
  [[nodiscard]] Guid key_to_guid(std::uint64_t key) const {
    const IdSpec spec = net_->params().id;
    const std::uint64_t mask =
        spec.total_bits() == 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << spec.total_bits()) - 1;
    return Guid(spec, splitmix64(key ^ 0x7a9e5) & mask);
  }

  std::unique_ptr<Network> net_;
  std::vector<NodeId> handles_;
  std::unordered_map<NodeId, std::size_t> handle_of_;
};

}  // namespace tap
