#include "src/baselines/central.h"

#include <limits>

namespace tap {

std::size_t CentralDirectory::add_node(Location loc, Trace* trace) {
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  locs_.push_back(loc);
  // Registering with the directory costs one message once it exists.
  if (finalized_ && trace != nullptr)
    trace->hop(space_.distance(loc, locs_[directory_]));
  return locs_.size() - 1;
}

void CentralDirectory::finalize() {
  TAP_CHECK(!locs_.empty(), "no nodes");
  // Medoid placement: the kindest possible home for the directory.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < locs_.size(); ++c) {
    double sum = 0;
    for (const Location l : locs_) sum += space_.distance(locs_[c], l);
    if (sum < best) {
      best = sum;
      directory_ = c;
    }
  }
  finalized_ = true;
}

void CentralDirectory::publish(std::size_t server, std::uint64_t key,
                               Trace* trace) {
  TAP_CHECK(finalized_, "finalize() before publishing");
  TAP_CHECK(server < locs_.size(), "bad server handle");
  if (trace != nullptr)
    trace->hop(space_.distance(locs_[server], locs_[directory_]));
  auto& servers = table_[key];
  for (const std::size_t s : servers)
    if (s == server) return;
  servers.push_back(server);
}

SchemeLocate CentralDirectory::locate(std::size_t client, std::uint64_t key,
                                      Trace* trace) {
  TAP_CHECK(finalized_, "finalize() before locating");
  TAP_CHECK(client < locs_.size(), "bad client handle");
  SchemeLocate res;
  const double to_dir = space_.distance(locs_[client], locs_[directory_]);
  if (trace != nullptr) trace->hop(to_dir);
  res.hops = 1;
  res.latency = to_dir;
  auto it = table_.find(key);
  if (it == table_.end() || it->second.empty()) return res;
  // The directory forwards to the replica closest to the *client* (again,
  // the kindest possible policy for this baseline).
  std::size_t best = it->second.front();
  for (const std::size_t s : it->second)
    if (space_.distance(locs_[client], locs_[s]) <
        space_.distance(locs_[client], locs_[best]))
      best = s;
  const double to_server = space_.distance(locs_[directory_], locs_[best]);
  if (trace != nullptr) trace->hop(to_server);
  res.found = true;
  res.server = best;
  res.hops = 2;
  res.latency += to_server;
  return res;
}

std::size_t CentralDirectory::total_state() const {
  std::size_t n = 0;
  for (const auto& [key, servers] : table_) n += servers.size();
  return n;
}

}  // namespace tap
