#include "src/baselines/chord.h"

#include <algorithm>

namespace tap {

ChordNetwork::ChordNetwork(const MetricSpace& space, std::uint64_t seed,
                           unsigned ring_bits)
    : space_(space), ring_bits_(ring_bits), rng_(seed) {
  TAP_CHECK(ring_bits_ >= 8 && ring_bits_ <= 64, "ring_bits in [8, 64]");
}

bool ChordNetwork::in_range(std::uint64_t x, std::uint64_t a,
                            std::uint64_t b) {
  // Half-open ring interval (a, b]; when a == b the interval is the whole
  // ring (single-node case).
  if (a == b) return true;
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wraps zero
}

ChordNetwork::ChordNode& ChordNetwork::ring_node(std::uint64_t key) {
  auto it = ring_.find(key);
  TAP_ASSERT(it != ring_.end());
  return it->second;
}

std::uint64_t ChordNetwork::ring_successor(std::uint64_t k) const {
  TAP_ASSERT(!ring_.empty());
  auto it = ring_.lower_bound(k);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->first;
}

std::uint64_t ChordNetwork::key_of(std::size_t handle) const {
  TAP_CHECK(handle < handles_.size(), "bad handle");
  return handles_[handle];
}

std::size_t ChordNetwork::successor_handle(std::uint64_t k) const {
  return ring_.at(ring_successor(k & mask())).handle;
}

std::uint64_t ChordNetwork::lookup(std::uint64_t from_key, std::uint64_t k,
                                   Trace* trace, std::size_t* hops_out,
                                   double* latency_out) {
  std::size_t hops = 0;
  double latency = 0.0;
  std::uint64_t cur = from_key;
  // Progress guard: strictly shrinking clockwise distance to k.
  for (std::size_t guard = 0; guard <= 2 * ring_.size() + ring_bits_;
       ++guard) {
    const std::uint64_t succ = ring_successor((cur + 1) & mask());
    if (in_range(k, cur, succ)) {
      // One final hop to the owner.
      if (succ != cur) {
        const double d =
            space_.distance(ring_node(cur).loc, ring_node(succ).loc);
        if (trace != nullptr) trace->hop(d);
        ++hops;
        latency += d;
      }
      if (hops_out != nullptr) *hops_out = hops;
      if (latency_out != nullptr) *latency_out = latency;
      return succ;
    }
    // Closest preceding finger of `cur` for target k.
    const ChordNode& n = ring_node(cur);
    std::uint64_t next = succ;  // fall back to the successor: always correct
    for (auto f = n.fingers.rbegin(); f != n.fingers.rend(); ++f) {
      if (*f != cur && in_range(*f, cur, (k - 1) & mask())) {
        next = *f;
        break;
      }
    }
    if (next == cur) next = succ;
    const double d = space_.distance(n.loc, ring_node(next).loc);
    if (trace != nullptr) trace->hop(d);
    ++hops;
    latency += d;
    cur = next;
  }
  TAP_CHECK(false, "chord lookup failed to converge");
}

void ChordNetwork::build_fingers(ChordNode& n) {
  n.fingers.assign(ring_bits_, n.key);
  for (unsigned i = 0; i < ring_bits_; ++i) {
    const std::uint64_t target = (n.key + (std::uint64_t{1} << i)) & mask();
    n.fingers[i] = ring_successor(target);
  }
}

void ChordNetwork::refresh_fingers() {
  for (auto& [key, n] : ring_) build_fingers(n);
}

std::size_t ChordNetwork::add_node(Location loc, Trace* trace) {
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  std::uint64_t key = 0;
  do {
    key = rng_() & mask();
  } while (ring_.count(key) != 0);

  ChordNode n;
  n.key = key;
  n.loc = loc;
  n.handle = handles_.size();

  if (ring_.empty()) {
    ring_.emplace(key, std::move(n));
    handles_.push_back(key);
    build_fingers(ring_node(key));
    return handles_.size() - 1;
  }

  // Join via a random gateway: find our successor (counted), take over the
  // keys in (pred, us], then initialize fingers with one lookup each,
  // starting from the previous answer (the O(log^2 n) construction).
  const std::uint64_t gateway = handles_[rng_.next_u64(handles_.size())];
  const std::uint64_t succ = lookup(gateway, key, trace);

  // Key transfer from the successor (one bulk message); the actual moves
  // happen below, once the ring contains us.
  if (trace != nullptr) trace->hop(space_.distance(loc, ring_node(succ).loc));

  ring_.emplace(key, std::move(n));
  handles_.push_back(key);
  ChordNode& self = ring_node(key);

  // Now that the ring contains us, move the keys we own.
  ChordNode& successor = ring_node(succ);
  for (auto it = successor.store.begin(); it != successor.store.end();) {
    if (ring_successor(hash_key(it->first)) == key) {
      self.store.emplace(it->first, std::move(it->second));
      it = successor.store.erase(it);
    } else {
      ++it;
    }
  }

  // Finger construction: lookup each target from the previous finger.
  self.fingers.assign(ring_bits_, key);
  std::uint64_t from = succ;
  for (unsigned i = 0; i < ring_bits_; ++i) {
    const std::uint64_t target = (key + (std::uint64_t{1} << i)) & mask();
    const std::uint64_t f = lookup(from, target, trace);
    self.fingers[i] = f;
    from = f;
  }
  return handles_.size() - 1;
}

void ChordNetwork::publish(std::size_t server, std::uint64_t key,
                           Trace* trace) {
  TAP_CHECK(server < handles_.size(), "bad server handle");
  const std::uint64_t owner = lookup(handles_[server], hash_key(key), trace);
  auto& replicas = ring_node(owner).store[key];
  for (const std::size_t s : replicas)
    if (s == server) return;
  replicas.push_back(server);
}

SchemeLocate ChordNetwork::locate(std::size_t client, std::uint64_t key,
                                  Trace* trace) {
  TAP_CHECK(client < handles_.size(), "bad client handle");
  SchemeLocate res;
  std::size_t hops = 0;
  double latency = 0.0;
  const std::uint64_t owner =
      lookup(handles_[client], hash_key(key), trace, &hops, &latency);
  res.hops = hops;
  res.latency = latency;
  const ChordNode& o = ring_node(owner);
  auto it = o.store.find(key);
  if (it == o.store.end() || it->second.empty()) return res;
  // Forward to the replica closest to the client.
  const Location client_loc = ring_node(handles_[client]).loc;
  std::size_t best = it->second.front();
  for (const std::size_t s : it->second)
    if (space_.distance(client_loc, ring_node(handles_[s]).loc) <
        space_.distance(client_loc, ring_node(handles_[best]).loc))
      best = s;
  const double d =
      space_.distance(o.loc, ring_node(handles_[best]).loc);
  if (trace != nullptr) trace->hop(d);
  res.found = true;
  res.server = best;
  res.hops += 1;
  res.latency += d;
  return res;
}

std::size_t ChordNetwork::total_state() const {
  std::size_t n = 0;
  for (const auto& [key, node] : ring_) {
    n += node.fingers.size() + 1;  // fingers + successor knowledge
    for (const auto& [obj, replicas] : node.store) n += replicas.size();
  }
  return n;
}

}  // namespace tap
