// Centralized directory — the strawman of paper §1: one directory server
// holds every (object -> server) mapping; publishes register with it and
// queries are forwarded through it.  Placed at the medoid of the joined
// nodes (the best case for this design), it still pays ~network-diameter
// latency for queries whose answer sits next door, has O(n·m) state on one
// machine, and is a single point of failure — the properties Table 1 and
// E2 contrast Tapestry against.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/baselines/scheme.h"
#include "src/common/assert.h"

namespace tap {

class CentralDirectory final : public LocationScheme {
 public:
  explicit CentralDirectory(const MetricSpace& space) : space_(space) {}

  [[nodiscard]] std::string name() const override { return "central-dir"; }

  std::size_t add_node(Location loc, Trace* trace) override;
  void finalize() override;
  [[nodiscard]] std::size_t size() const override { return locs_.size(); }

  void publish(std::size_t server, std::uint64_t key, Trace* trace) override;
  SchemeLocate locate(std::size_t client, std::uint64_t key,
                      Trace* trace) override;

  [[nodiscard]] std::size_t total_state() const override;
  [[nodiscard]] bool dynamic_insert() const override { return true; }

  /// Handle of the node acting as the directory (valid after finalize()).
  [[nodiscard]] std::size_t directory() const { return directory_; }

 private:
  const MetricSpace& space_;
  std::vector<Location> locs_;
  std::size_t directory_ = 0;
  bool finalized_ = false;
  // key -> replica server handles, stored "at" the directory node.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> table_;
};

}  // namespace tap
