// Object location in general metric spaces (paper §7, Theorem 7) — the
// static "PRR v.0" sampling scheme.
//
// For i in [1, log n] and j in [0, c·log n), the set S_{i,j} contains each
// node independently with probability 2^i / n (implemented with nested
// per-(node, j) ranks so S_{i,j} ⊆ S_{i+1,j}, the containment the proof's
// final remark requires).  S_{0,0} is a single anchor node.  Every node
// stores its closest member of each S_{i,j}; every member stores the
// objects of the nodes that point to it.
//
// A query from X probes its representatives level by level, densest first
// (i = log n down to 0), all j in parallel; the first level where some
// representative knows the object answers it.  Theorem 7: the distance to
// the answering representative is O(d(X, Y) · log n) w.h.p., giving
// polylogarithmic stretch in *any* metric — including the high-expansion
// spaces where the growth-restricted machinery of §3 does not apply.
// E8 measures exactly this.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/baselines/scheme.h"
#include "src/common/assert.h"
#include "src/common/rng.h"

namespace tap {

class GeneralMetricScheme final : public LocationScheme {
 public:
  /// `rep_factor` is the c in c·log n parallel sampling classes.
  GeneralMetricScheme(const MetricSpace& space, std::uint64_t seed,
                      double rep_factor = 2.0);

  [[nodiscard]] std::string name() const override { return "prr-v0"; }

  std::size_t add_node(Location loc, Trace* trace) override;
  void finalize() override;
  [[nodiscard]] std::size_t size() const override { return locs_.size(); }

  void publish(std::size_t server, std::uint64_t key, Trace* trace) override;
  SchemeLocate locate(std::size_t client, std::uint64_t key,
                      Trace* trace) override;

  [[nodiscard]] std::size_t total_state() const override;
  [[nodiscard]] bool dynamic_insert() const override { return false; }

  /// Number of (i, j) sampling classes (exposed for space accounting
  /// tests: average per-node state must be O(log^2 n)).
  [[nodiscard]] std::size_t num_levels() const { return levels_; }
  [[nodiscard]] std::size_t num_classes() const { return classes_; }

 private:
  struct Member {
    // Objects of the nodes that point to this member, per (i, j) class:
    // key -> holder handles.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> objects;
  };

  [[nodiscard]] std::size_t rep_index(std::size_t node, std::size_t i,
                                      std::size_t j) const {
    return (node * levels_ + i) * classes_ + j;
  }

  const MetricSpace& space_;
  std::uint64_t seed_;
  double rep_factor_;
  std::vector<Location> locs_;
  bool finalized_ = false;

  std::size_t levels_ = 0;   // i in [0, levels_); 0 is the anchor level
  std::size_t classes_ = 0;  // j in [0, classes_)
  std::size_t anchor_ = 0;
  // rep_[rep_index(u, i, j)] = handle of u's closest member of S_{i,j}.
  std::vector<std::size_t> rep_;
  // Per (member, i, j): object lists.  Keyed by rep_index(member, i, j).
  std::unordered_map<std::size_t, Member> member_state_;
};

}  // namespace tap
