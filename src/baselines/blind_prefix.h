// Proximity-blind prefix routing — the Property 2 ablation.
//
// Identical digit-resolution mesh and surrogate routing to Tapestry, but
// each table slot holds a *uniformly random* qualifying node instead of the
// closest one (this is prefix routing as Pastry would behave with its
// locality heuristics disabled, and roughly how early PRR-style systems
// behaved before proximity neighbor selection).  Hole-freeness (Property 1)
// still holds — a slot is filled iff candidates exist — so root uniqueness
// and deterministic location are preserved; only the *locality* of the mesh
// is destroyed.  E2 uses this to show that Tapestry's constant stretch
// comes from Property 2, not from prefix routing per se.
//
// Static construction (finalize()); membership changes are out of scope for
// the ablation.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/baselines/scheme.h"
#include "src/common/assert.h"
#include "src/common/rng.h"
#include "src/tapestry/id.h"

namespace tap {

class BlindPrefixOverlay final : public LocationScheme {
 public:
  BlindPrefixOverlay(const MetricSpace& space, IdSpec spec,
                     std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "blind-prefix"; }

  std::size_t add_node(Location loc, Trace* trace) override;
  void finalize() override;
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

  void publish(std::size_t server, std::uint64_t key, Trace* trace) override;
  SchemeLocate locate(std::size_t client, std::uint64_t key,
                      Trace* trace) override;

  [[nodiscard]] std::size_t total_state() const override;
  [[nodiscard]] bool dynamic_insert() const override { return false; }

  /// Surrogate root handle for a key (exposed for tests: Theorem 2 holds
  /// for any hole-free prefix mesh, proximity-blind or not).
  [[nodiscard]] std::size_t root_of(std::uint64_t key) const;

 private:
  struct BNode {
    NodeId id{};
    Location loc = 0;
    // One entry per (level, digit); nullopt = hole (no qualifying node).
    std::vector<std::optional<std::size_t>> table;
    // key -> replica handles deposited by publishes through this node.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> pointers;
  };

  [[nodiscard]] Guid key_to_guid(std::uint64_t key) const;
  [[nodiscard]] std::size_t slot(unsigned level, unsigned digit) const {
    return static_cast<std::size_t>(level) * spec_.radix() + digit;
  }
  /// Tapestry-native next step from `cur` toward `target` at `level`, or
  /// nullopt when `cur` is the root.
  [[nodiscard]] std::optional<std::size_t> step(std::size_t cur,
                                                const Guid& target,
                                                unsigned& level) const;

  const MetricSpace& space_;
  IdSpec spec_;
  Rng rng_;
  std::vector<BNode> nodes_;
  bool finalized_ = false;
};

}  // namespace tap
