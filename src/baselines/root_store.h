// Store-at-root — the "power of indirection" ablation (paper §6.1).
//
// Same locality-optimal prefix mesh as Tapestry (static PRR construction),
// but objects follow plain DHT semantics: the mapping lives *only at the
// root node*, with no pointer trail along the publish path.  §6.1 argues
// that in hop-count terms this costs "only one additional hop", yet in
// *stretch* terms it is drastically different: a query must travel all the
// way to the root even when the replica is next door, because there is no
// intermediate pointer for it to meet.  Comparing this scheme against full
// Tapestry on the same mesh isolates the value of maintaining pointers
// within the network.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/baselines/scheme.h"
#include "src/tapestry/network.h"

namespace tap {

class RootStoreOverlay final : public LocationScheme {
 public:
  RootStoreOverlay(const MetricSpace& space, TapestryParams params,
                   std::uint64_t seed)
      : net_(std::make_unique<Network>(space, params, seed)) {}

  [[nodiscard]] std::string name() const override { return "root-store"; }

  std::size_t add_node(Location loc, Trace* /*trace*/) override {
    const NodeId id = net_->insert_static(loc);
    handles_.push_back(id);
    handle_of_.emplace(id, handles_.size() - 1);
    return handles_.size() - 1;
  }

  void finalize() override { net_->rebuild_static_tables(); }

  [[nodiscard]] std::size_t size() const override { return handles_.size(); }

  void publish(std::size_t server, std::uint64_t key, Trace* trace) override {
    const Guid g = key_to_guid(key);
    // Route to the root and deposit the mapping there — nowhere else.
    const RouteResult rr = net_->route_to_root(handles_.at(server), g, trace);
    auto& replicas = directory_[rr.root.value()][key];
    for (const std::size_t s : replicas)
      if (s == server) return;
    replicas.push_back(server);
  }

  SchemeLocate locate(std::size_t client, std::uint64_t key,
                      Trace* trace) override {
    SchemeLocate res;
    const Guid g = key_to_guid(key);
    Trace local(false);
    Trace* t = trace != nullptr ? trace : &local;
    const std::size_t msgs0 = t->messages();
    const double lat0 = t->latency();
    const RouteResult rr = net_->route_to_root(handles_.at(client), g, t);
    const auto dir = directory_.find(rr.root.value());
    if (dir != directory_.end()) {
      const auto obj = dir->second.find(key);
      if (obj != dir->second.end() && !obj->second.empty()) {
        // Fetch from the replica closest to the client.
        std::size_t best = obj->second.front();
        for (const std::size_t s : obj->second)
          if (net_->distance(handles_[client], handles_[s]) <
              net_->distance(handles_[client], handles_[best]))
            best = s;
        t->hop(net_->distance(rr.root, handles_[best]));
        res.found = true;
        res.server = best;
      }
    }
    res.hops = t->messages() - msgs0;
    res.latency = t->latency() - lat0;
    return res;
  }

  [[nodiscard]] std::size_t total_state() const override {
    std::size_t n = net_->total_table_entries();
    for (const auto& [root, objects] : directory_)
      for (const auto& [key, replicas] : objects) n += replicas.size();
    return n;
  }

  [[nodiscard]] bool dynamic_insert() const override { return false; }

 private:
  [[nodiscard]] Guid key_to_guid(std::uint64_t key) const {
    const IdSpec spec = net_->params().id;
    const std::uint64_t mask =
        spec.total_bits() == 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << spec.total_bits()) - 1;
    return Guid(spec, splitmix64(key ^ 0x7a9e5) & mask);
  }

  std::unique_ptr<Network> net_;
  std::vector<NodeId> handles_;
  std::unordered_map<NodeId, std::size_t> handle_of_;
  // root-id value -> key -> replica handles (the root-resident directory).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, std::vector<std::size_t>>>
      directory_;
};

}  // namespace tap
