// Chord (Stoica et al. [30]) — the canonical load-balanced DHT baseline of
// Table 1: nodes on an m-bit virtual ring, each keeping a successor, a
// predecessor and m fingers; lookups walk closest-preceding-fingers in
// O(log n) hops; objects live at successor(hash(key)).
//
// The essential contrast with Tapestry: Chord's fingers are chosen by ring
// arithmetic with *no regard for network distance*, so although the hop
// count is logarithmic, each hop is an expected random cross-network jump —
// stretch grows with the network instead of staying constant (E2).
//
// Fidelity notes:
//   * joins are dynamic: a join pays a successor lookup plus one lookup per
//     finger (started from the previous finger's answer, the standard
//     O(log^2 n) construction) plus key transfer;
//   * successor/predecessor pointers are maintained eagerly on join (the
//     paper's stabilization protocol run to quiescence), so lookups are
//     always correct; stale *fingers* of other nodes only cost extra hops
//     until refresh_fingers() — our stand-in for the background
//     fix_fingers task — is run.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "src/baselines/scheme.h"
#include "src/common/assert.h"
#include "src/common/rng.h"

namespace tap {

class ChordNetwork final : public LocationScheme {
 public:
  ChordNetwork(const MetricSpace& space, std::uint64_t seed,
               unsigned ring_bits = 24);

  [[nodiscard]] std::string name() const override { return "chord"; }

  std::size_t add_node(Location loc, Trace* trace) override;
  void finalize() override { refresh_fingers(); }
  [[nodiscard]] std::size_t size() const override { return handles_.size(); }

  void publish(std::size_t server, std::uint64_t key, Trace* trace) override;
  SchemeLocate locate(std::size_t client, std::uint64_t key,
                      Trace* trace) override;

  [[nodiscard]] std::size_t total_state() const override;
  [[nodiscard]] bool dynamic_insert() const override { return true; }

  /// Recomputes every node's fingers against the current ring (the
  /// background fix_fingers task, run to quiescence; not charged).
  void refresh_fingers();

  /// Ring key of a node handle (exposed for tests).
  [[nodiscard]] std::uint64_t key_of(std::size_t handle) const;
  /// Handle of the node owning ring position k (exposed for tests).
  [[nodiscard]] std::size_t successor_handle(std::uint64_t k) const;

 private:
  struct ChordNode {
    std::uint64_t key = 0;
    Location loc = 0;
    std::size_t handle = 0;
    std::vector<std::uint64_t> fingers;  // finger[i] ~ successor(key + 2^i)
    // Objects this node is responsible for: key -> replica handles.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> store;
  };

  [[nodiscard]] std::uint64_t mask() const {
    return ring_bits_ == 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << ring_bits_) - 1;
  }
  [[nodiscard]] std::uint64_t hash_key(std::uint64_t key) const {
    return splitmix64(key ^ 0xc0ffee) & mask();
  }
  /// True iff x lies in the half-open ring interval (a, b].
  [[nodiscard]] static bool in_range(std::uint64_t x, std::uint64_t a,
                                     std::uint64_t b);
  [[nodiscard]] ChordNode& ring_node(std::uint64_t key);
  [[nodiscard]] std::uint64_t ring_successor(std::uint64_t k) const;
  /// Iterative lookup of successor(k) from a starting node; costs land in
  /// `trace` and `hops_out`/`latency_out`.
  std::uint64_t lookup(std::uint64_t from_key, std::uint64_t k, Trace* trace,
                       std::size_t* hops_out = nullptr,
                       double* latency_out = nullptr);
  void build_fingers(ChordNode& n);

  const MetricSpace& space_;
  unsigned ring_bits_;
  Rng rng_;
  std::map<std::uint64_t, ChordNode> ring_;  // ordered by ring key
  std::vector<std::uint64_t> handles_;       // handle -> ring key
};

}  // namespace tap
