// LocationScheme: the common face of every object-location system compared
// in Table 1, so the benchmark harness can run one workload over all of
// them.  Nodes are addressed by dense handles (0..size-1, in join order);
// objects by opaque 64-bit keys.  All costs flow through Trace, exactly as
// in the Tapestry core.
#pragma once

#include <cstdint>
#include <string>

#include "src/metric/metric_space.h"
#include "src/sim/trace.h"

namespace tap {

/// Outcome of a baseline locate, mirroring tapestry's LocateResult.
struct SchemeLocate {
  bool found = false;
  std::size_t server = 0;  ///< node handle of the replica resolved to
  std::size_t hops = 0;
  double latency = 0.0;
};

class LocationScheme {
 public:
  virtual ~LocationScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Adds a node at the given underlay location; returns its handle.
  /// The first call bootstraps the system.  Insertion traffic lands in
  /// `trace` (schemes without a dynamic insertion algorithm — the “-”
  /// rows of Table 1 — charge their full construction here or rebuild in
  /// finalize()).
  virtual std::size_t add_node(Location loc, Trace* trace) = 0;

  /// Called once after the last add_node, before any publish/locate.
  /// Static schemes build their structures here.
  virtual void finalize() {}

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Registers that `server` stores the object `key`.
  virtual void publish(std::size_t server, std::uint64_t key,
                       Trace* trace) = 0;

  /// Finds some replica of `key` starting at `client`.
  virtual SchemeLocate locate(std::size_t client, std::uint64_t key,
                              Trace* trace) = 0;

  /// Total directory + routing state (Table 1 “space”), in entries.
  [[nodiscard]] virtual std::size_t total_state() const = 0;

  /// True when add_node implements the paper's dynamic-membership column
  /// (Table 1 “insert cost”); false for static constructions.
  [[nodiscard]] virtual bool dynamic_insert() const = 0;

  LocationScheme() = default;
  LocationScheme(const LocationScheme&) = delete;
  LocationScheme& operator=(const LocationScheme&) = delete;
};

}  // namespace tap
