#include "src/baselines/blind_prefix.h"

#include <algorithm>

namespace tap {

BlindPrefixOverlay::BlindPrefixOverlay(const MetricSpace& space, IdSpec spec,
                                       std::uint64_t seed)
    : space_(space), spec_(spec), rng_(seed) {
  TAP_CHECK(spec.valid(), "invalid IdSpec");
}

Guid BlindPrefixOverlay::key_to_guid(std::uint64_t key) const {
  const std::uint64_t mask = spec_.total_bits() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << spec_.total_bits()) - 1;
  return Guid(spec_, splitmix64(key ^ 0xb11d) & mask);
}

std::size_t BlindPrefixOverlay::add_node(Location loc, Trace* /*trace*/) {
  TAP_CHECK(!finalized_, "static scheme: no joins after finalize()");
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  BNode n;
  n.loc = loc;
  // Fresh random id, retrying collisions.
  for (;;) {
    n.id = Id::random(spec_, rng_);
    bool clash = false;
    for (const auto& other : nodes_)
      if (other.id == n.id) clash = true;
    if (!clash) break;
  }
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

void BlindPrefixOverlay::finalize() {
  TAP_CHECK(!nodes_.empty(), "no nodes");
  // Bucket nodes by (level+1)-digit prefix value.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  auto key = [&](unsigned len, std::uint64_t prefix) {
    return (static_cast<std::uint64_t>(len) << 56) | prefix;
  };
  for (std::size_t h = 0; h < nodes_.size(); ++h)
    for (unsigned len = 1; len <= spec_.num_digits; ++len)
      buckets[key(len, nodes_[h].id.prefix_value(len))].push_back(h);

  for (std::size_t h = 0; h < nodes_.size(); ++h) {
    BNode& n = nodes_[h];
    n.table.assign(static_cast<std::size_t>(spec_.num_digits) * spec_.radix(),
                   std::nullopt);
    for (unsigned l = 0; l < spec_.num_digits; ++l) {
      const std::uint64_t base = n.id.prefix_value(l) << spec_.digit_bits;
      for (unsigned j = 0; j < spec_.radix(); ++j) {
        if (j == n.id.digit(l)) {
          n.table[slot(l, j)] = h;  // self-entry, as in Tapestry
          continue;
        }
        auto it = buckets.find(key(l + 1, base | j));
        if (it == buckets.end()) continue;
        // Property 2 ablation: a UNIFORMLY RANDOM qualifying node.
        n.table[slot(l, j)] = it->second[rng_.next_u64(it->second.size())];
      }
    }
  }
  finalized_ = true;
}

std::optional<std::size_t> BlindPrefixOverlay::step(std::size_t cur,
                                                    const Guid& target,
                                                    unsigned& level) const {
  const unsigned radix = spec_.radix();
  while (level < spec_.num_digits) {
    const unsigned desired = target.digit(level);
    std::optional<std::size_t> pick;
    for (unsigned off = 0; off < radix && !pick; ++off) {
      const unsigned j = (desired + off) % radix;
      if (nodes_[cur].table[slot(level, j)].has_value())
        pick = *nodes_[cur].table[slot(level, j)];
    }
    TAP_ASSERT_MSG(pick.has_value(), "row with no filled slot");
    ++level;
    if (*pick != cur) return pick;
  }
  return std::nullopt;
}

std::size_t BlindPrefixOverlay::root_of(std::uint64_t key) const {
  TAP_CHECK(finalized_, "finalize() first");
  const Guid g = key_to_guid(key);
  std::size_t cur = 0;
  unsigned level = 0;
  for (;;) {
    auto next = step(cur, g, level);
    if (!next.has_value()) return cur;
    cur = *next;
  }
}

void BlindPrefixOverlay::publish(std::size_t server, std::uint64_t key,
                                 Trace* trace) {
  TAP_CHECK(finalized_, "finalize() first");
  TAP_CHECK(server < nodes_.size(), "bad server handle");
  const Guid g = key_to_guid(key);
  std::size_t cur = server;
  unsigned level = 0;
  for (;;) {
    auto& replicas = nodes_[cur].pointers[key];
    if (std::find(replicas.begin(), replicas.end(), server) == replicas.end())
      replicas.push_back(server);
    auto next = step(cur, g, level);
    if (!next.has_value()) break;
    if (trace != nullptr)
      trace->hop(space_.distance(nodes_[cur].loc, nodes_[*next].loc));
    cur = *next;
  }
}

SchemeLocate BlindPrefixOverlay::locate(std::size_t client, std::uint64_t key,
                                        Trace* trace) {
  TAP_CHECK(finalized_, "finalize() first");
  TAP_CHECK(client < nodes_.size(), "bad client handle");
  SchemeLocate res;
  const Guid g = key_to_guid(key);
  std::size_t cur = client;
  unsigned level = 0;
  for (;;) {
    auto it = nodes_[cur].pointers.find(key);
    if (it != nodes_[cur].pointers.end() && !it->second.empty()) {
      // Closest replica to the pointer node, then hop to it.
      std::size_t best = it->second.front();
      for (const std::size_t s : it->second)
        if (space_.distance(nodes_[cur].loc, nodes_[s].loc) <
            space_.distance(nodes_[cur].loc, nodes_[best].loc))
          best = s;
      if (best != cur) {
        const double d = space_.distance(nodes_[cur].loc, nodes_[best].loc);
        if (trace != nullptr) trace->hop(d);
        ++res.hops;
        res.latency += d;
      }
      res.found = true;
      res.server = best;
      return res;
    }
    auto next = step(cur, g, level);
    if (!next.has_value()) return res;  // root miss
    const double d = space_.distance(nodes_[cur].loc, nodes_[*next].loc);
    if (trace != nullptr) trace->hop(d);
    ++res.hops;
    res.latency += d;
    cur = *next;
  }
}

std::size_t BlindPrefixOverlay::total_state() const {
  std::size_t n = 0;
  for (std::size_t h = 0; h < nodes_.size(); ++h) {
    for (const auto& e : nodes_[h].table)
      if (e.has_value() && *e != h) ++n;
    for (const auto& [key, replicas] : nodes_[h].pointers)
      n += replicas.size();
  }
  return n;
}

}  // namespace tap
