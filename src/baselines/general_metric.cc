#include "src/baselines/general_metric.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <limits>

namespace tap {

GeneralMetricScheme::GeneralMetricScheme(const MetricSpace& space,
                                         std::uint64_t seed,
                                         double rep_factor)
    : space_(space), seed_(seed), rep_factor_(rep_factor) {
  TAP_CHECK(rep_factor_ >= 1.0, "rep_factor must be >= 1");
}

std::size_t GeneralMetricScheme::add_node(Location loc, Trace* /*trace*/) {
  TAP_CHECK(!finalized_, "static scheme: no joins after finalize()");
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  locs_.push_back(loc);
  return locs_.size() - 1;
}

void GeneralMetricScheme::finalize() {
  TAP_CHECK(!locs_.empty(), "no nodes");
  const std::size_t n = locs_.size();
  const double lg = std::log2(static_cast<double>(n < 2 ? 2 : n));
  levels_ = static_cast<std::size_t>(std::ceil(lg)) + 1;  // level 0 = anchor
  classes_ = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(rep_factor_ * lg)));

  // Nested sampling ranks: rank(u, j) uniform in [0,1);
  // S_{i,j} = { u : rank(u, j) < 2^i / n }, so S_{i,j} ⊆ S_{i+1,j}.
  auto rank = [&](std::size_t u, std::size_t j) {
    const std::uint64_t h = splitmix64(hash_combine(seed_, u * 131 + j));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  };

  // The anchor: a deterministic "random" node every class agrees on.
  anchor_ = 0;
  double best_rank = 2.0;
  for (std::size_t u = 0; u < n; ++u) {
    if (rank(u, 0) < best_rank) {
      best_rank = rank(u, 0);
      anchor_ = u;
    }
  }

  // Precompute S_{i,j} membership and every node's closest representative.
  rep_.assign(n * levels_ * classes_, anchor_);
  for (std::size_t j = 0; j < classes_; ++j) {
    for (std::size_t i = 1; i < levels_; ++i) {
      const double threshold =
          std::min(1.0, std::pow(2.0, static_cast<double>(i)) /
                            static_cast<double>(n));
      std::vector<std::size_t> members;
      for (std::size_t u = 0; u < n; ++u)
        if (rank(u, j) < threshold) members.push_back(u);
      if (members.empty()) members.push_back(anchor_);
      for (std::size_t u = 0; u < n; ++u) {
        std::size_t best = members.front();
        double best_d = space_.distance(locs_[u], locs_[best]);
        for (const std::size_t m : members) {
          const double d = space_.distance(locs_[u], locs_[m]);
          if (d < best_d || (d == best_d && m < best)) {
            best = m;
            best_d = d;
          }
        }
        rep_[rep_index(u, i, j)] = best;
      }
    }
    // Level 0: everyone points at the anchor.
    for (std::size_t u = 0; u < n; ++u) rep_[rep_index(u, 0, j)] = anchor_;
  }
  finalized_ = true;
}

void GeneralMetricScheme::publish(std::size_t server, std::uint64_t key,
                                  Trace* trace) {
  TAP_CHECK(finalized_, "finalize() first");
  TAP_CHECK(server < locs_.size(), "bad server handle");
  // Register the object with every representative of its holder.
  for (std::size_t i = 0; i < levels_; ++i) {
    for (std::size_t j = 0; j < classes_; ++j) {
      const std::size_t rep = rep_[rep_index(server, i, j)];
      if (trace != nullptr)
        trace->hop(space_.distance(locs_[server], locs_[rep]));
      auto& holders = member_state_[rep_index(rep, i, j)].objects[key];
      if (std::find(holders.begin(), holders.end(), server) == holders.end())
        holders.push_back(server);
    }
  }
}

SchemeLocate GeneralMetricScheme::locate(std::size_t client,
                                         std::uint64_t key, Trace* trace) {
  TAP_CHECK(finalized_, "finalize() first");
  TAP_CHECK(client < locs_.size(), "bad client handle");
  SchemeLocate res;
  // Densest level first: representatives are nearest there.  All j classes
  // are probed in parallel, so the level's latency is the worst round trip,
  // while every probe counts as traffic.
  for (std::size_t level = levels_; level-- > 0;) {
    double level_latency = 0.0;
    std::optional<std::size_t> found_holder;
    double found_dist = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < classes_; ++j) {
      const std::size_t rep = rep_[rep_index(client, level, j)];
      const double d = space_.distance(locs_[client], locs_[rep]);
      if (trace != nullptr) {
        trace->hop(d);
        trace->hop(d);  // reply
      }
      res.hops += 2;
      level_latency = std::max(level_latency, 2.0 * d);
      auto it = member_state_.find(rep_index(rep, level, j));
      if (it == member_state_.end()) continue;
      auto obj = it->second.objects.find(key);
      if (obj == it->second.objects.end() || obj->second.empty()) continue;
      for (const std::size_t h : obj->second) {
        const double dh = space_.distance(locs_[client], locs_[h]);
        if (dh < found_dist) {
          found_dist = dh;
          found_holder = h;
        }
      }
    }
    res.latency += level_latency;
    if (found_holder.has_value()) {
      // Fetch from the closest holder discovered at this level.
      if (trace != nullptr) trace->hop(found_dist);
      res.hops += 1;
      res.latency += found_dist;
      res.found = true;
      res.server = *found_holder;
      return res;
    }
  }
  return res;  // only reachable when the object was never published
}

std::size_t GeneralMetricScheme::total_state() const {
  std::size_t n = rep_.size();  // every (node, i, j) pointer
  for (const auto& [idx, member] : member_state_)
    for (const auto& [key, holders] : member.objects) n += holders.size();
  return n;
}

}  // namespace tap
