#include "src/baselines/can.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace tap {

CanNetwork::CanNetwork(const MetricSpace& space, std::uint64_t seed)
    : space_(space), rng_(seed) {}

std::array<double, 2> CanNetwork::point_of(std::uint64_t key) const {
  const std::uint64_t h = splitmix64(key ^ 0xdecade);
  const auto x = static_cast<double>(h >> 32) / 4294967296.0;
  const auto y = static_cast<double>(h & 0xffffffffu) / 4294967296.0;
  return {{x, y}};
}

bool CanNetwork::zones_adjacent(const Zone& a, const Zone& b) {
  // Adjacent on the unit torus: abut in one dimension (possibly across the
  // wrap) and overlap in the other.  Zone bounds are binary fractions, so
  // the comparisons are exact.
  auto abut = [](double alo, double ahi, double blo, double bhi) {
    return ahi == blo || bhi == alo || (ahi == 1.0 && blo == 0.0) ||
           (bhi == 1.0 && alo == 0.0);
  };
  auto overlap = [](double alo, double ahi, double blo, double bhi) {
    return alo < bhi && blo < ahi;
  };
  const bool x_abut = abut(a.lo[0], a.hi[0], b.lo[0], b.hi[0]);
  const bool y_abut = abut(a.lo[1], a.hi[1], b.lo[1], b.hi[1]);
  const bool x_overlap = overlap(a.lo[0], a.hi[0], b.lo[0], b.hi[0]);
  const bool y_overlap = overlap(a.lo[1], a.hi[1], b.lo[1], b.hi[1]);
  return (x_abut && y_overlap) || (y_abut && x_overlap);
}

double CanNetwork::torus_dist(const std::array<double, 2>& a,
                              const std::array<double, 2>& b) {
  double dx = std::fabs(a[0] - b[0]);
  double dy = std::fabs(a[1] - b[1]);
  dx = std::min(dx, 1.0 - dx);
  dy = std::min(dy, 1.0 - dy);
  return std::sqrt(dx * dx + dy * dy);
}

std::size_t CanNetwork::owner_of(double x, double y) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].zone.contains(x, y)) return i;
  TAP_CHECK(false, "zones do not cover the torus");
}

const std::vector<std::size_t>& CanNetwork::neighbors(
    std::size_t handle) const {
  TAP_CHECK(handle < nodes_.size(), "bad handle");
  return nodes_[handle].neighbors;
}

namespace {
/// Torus distance from coordinate x to the circular interval [lo, hi].
double axis_gap(double x, double lo, double hi) {
  if (x >= lo && x < hi) return 0.0;
  auto circ = [](double a, double b) {
    const double d = std::fabs(a - b);
    return std::min(d, 1.0 - d);
  };
  return std::min(circ(x, lo), circ(x, hi));
}
}  // namespace

std::size_t CanNetwork::route(std::size_t from,
                              const std::array<double, 2>& target,
                              Trace* trace, std::size_t* hops_out,
                              double* lat_out) {
  // Greedy on the torus distance from the target *point* to each zone
  // *rectangle*: the owner is at distance 0, and the neighbor across the
  // face containing the current zone's closest boundary point is never
  // farther, so the walk decreases (cf. CAN's greedy + perimeter
  // fallback).  A visited set breaks the rare corner-degenerate ties.
  auto rect_dist = [&](std::size_t h) {
    const Zone& z = nodes_[h].zone;
    const double gx = axis_gap(target[0], z.lo[0], z.hi[0]);
    const double gy = axis_gap(target[1], z.lo[1], z.hi[1]);
    return std::sqrt(gx * gx + gy * gy);
  };
  std::size_t cur = from;
  std::size_t hops = 0;
  double latency = 0.0;
  std::unordered_set<std::size_t> visited;
  while (!nodes_[cur].zone.contains(target[0], target[1])) {
    visited.insert(cur);
    std::size_t next = cur;
    double next_d = std::numeric_limits<double>::infinity();
    bool next_unvisited = false;
    for (const std::size_t nb : nodes_[cur].neighbors) {
      const double d = rect_dist(nb);
      const bool unvisited = visited.count(nb) == 0;
      // Prefer unvisited zones, then smaller rect distance, then handle.
      const bool better =
          (unvisited && !next_unvisited) ||
          (unvisited == next_unvisited &&
           (d < next_d || (d == next_d && nb < next)));
      if (better) {
        next = nb;
        next_d = d;
        next_unvisited = unvisited;
      }
    }
    TAP_CHECK(next != cur, "CAN routing stuck");
    const double d = space_.distance(nodes_[cur].loc, nodes_[next].loc);
    if (trace != nullptr) trace->hop(d);
    ++hops;
    latency += d;
    cur = next;
    TAP_CHECK(hops <= 4 * nodes_.size() + 8, "CAN routing did not converge");
  }
  if (hops_out != nullptr) *hops_out = hops;
  if (lat_out != nullptr) *lat_out = latency;
  return cur;
}

void CanNetwork::rebuild_neighbor_lists(std::size_t a, std::size_t b) {
  // Recompute adjacency for the two affected zones against everyone, and
  // fix everyone's references to them.  O(n) per join — acceptable for the
  // simulator; a deployment updates only the perimeter.
  auto rebuild_one = [&](std::size_t h) {
    nodes_[h].neighbors.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i == h) continue;
      if (zones_adjacent(nodes_[h].zone, nodes_[i].zone))
        nodes_[h].neighbors.push_back(i);
    }
  };
  rebuild_one(a);
  rebuild_one(b);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == a || i == b) continue;
    auto& nb = nodes_[i].neighbors;
    nb.erase(std::remove_if(nb.begin(), nb.end(),
                            [&](std::size_t x) { return x == a || x == b; }),
             nb.end());
    if (zones_adjacent(nodes_[i].zone, nodes_[a].zone)) nb.push_back(a);
    if (zones_adjacent(nodes_[i].zone, nodes_[b].zone)) nb.push_back(b);
  }
}

std::size_t CanNetwork::add_node(Location loc, Trace* trace) {
  TAP_CHECK(loc < space_.size(), "location outside the metric space");
  if (nodes_.empty()) {
    CanNode first;
    first.loc = loc;
    nodes_.push_back(std::move(first));
    return 0;
  }

  // Route from a random gateway to a random point; split the owner's zone.
  const std::array<double, 2> p{{rng_.next_double(), rng_.next_double()}};
  const std::size_t gateway = rng_.next_u64(nodes_.size());
  const std::size_t victim = route(gateway, p, trace, nullptr, nullptr);

  CanNode incoming;
  incoming.loc = loc;
  CanNode& old = nodes_[victim];
  const unsigned dim = old.split_depth % 2;
  const double mid = (old.zone.lo[dim] + old.zone.hi[dim]) / 2;
  incoming.zone = old.zone;
  incoming.zone.lo[dim] = mid;
  old.zone.hi[dim] = mid;
  ++old.split_depth;
  incoming.split_depth = old.split_depth;

  // Object handoff: keys hashing into the new half move (one bulk message).
  if (trace != nullptr) trace->hop(space_.distance(old.loc, loc));
  for (auto it = old.store.begin(); it != old.store.end();) {
    const auto q = point_of(it->first);
    if (incoming.zone.contains(q[0], q[1])) {
      incoming.store.emplace(it->first, std::move(it->second));
      it = old.store.erase(it);
    } else {
      ++it;
    }
  }

  nodes_.push_back(std::move(incoming));
  const std::size_t handle = nodes_.size() - 1;
  rebuild_neighbor_lists(victim, handle);
  // Neighbor-update traffic: one message per affected neighbor.
  if (trace != nullptr)
    for (const std::size_t nb : nodes_[handle].neighbors)
      trace->hop(space_.distance(nodes_[handle].loc, nodes_[nb].loc));
  return handle;
}

void CanNetwork::publish(std::size_t server, std::uint64_t key,
                         Trace* trace) {
  TAP_CHECK(server < nodes_.size(), "bad server handle");
  const auto p = point_of(key);
  const std::size_t owner = route(server, p, trace, nullptr, nullptr);
  auto& replicas = nodes_[owner].store[key];
  for (const std::size_t s : replicas)
    if (s == server) return;
  replicas.push_back(server);
}

SchemeLocate CanNetwork::locate(std::size_t client, std::uint64_t key,
                                Trace* trace) {
  TAP_CHECK(client < nodes_.size(), "bad client handle");
  SchemeLocate res;
  const auto p = point_of(key);
  std::size_t hops = 0;
  double latency = 0.0;
  const std::size_t owner = route(client, p, trace, &hops, &latency);
  res.hops = hops;
  res.latency = latency;
  auto it = nodes_[owner].store.find(key);
  if (it == nodes_[owner].store.end() || it->second.empty()) return res;
  std::size_t best = it->second.front();
  for (const std::size_t s : it->second)
    if (space_.distance(nodes_[client].loc, nodes_[s].loc) <
        space_.distance(nodes_[client].loc, nodes_[best].loc))
      best = s;
  const double d = space_.distance(nodes_[owner].loc, nodes_[best].loc);
  if (trace != nullptr) trace->hop(d);
  res.found = true;
  res.server = best;
  res.hops += 1;
  res.latency += d;
  return res;
}

std::size_t CanNetwork::total_state() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    n += node.neighbors.size();
    for (const auto& [key, replicas] : node.store) n += replicas.size();
  }
  return n;
}

void CanNetwork::check_invariants() const {
  // Coverage + disjointness via area accounting and point probes.
  double area = 0.0;
  for (const auto& n : nodes_)
    area += (n.zone.hi[0] - n.zone.lo[0]) * (n.zone.hi[1] - n.zone.lo[1]);
  TAP_CHECK(std::fabs(area - 1.0) < 1e-9, "zone areas do not tile the torus");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      const Zone& a = nodes_[i].zone;
      const Zone& b = nodes_[j].zone;
      const bool overlap = a.lo[0] < b.hi[0] && b.lo[0] < a.hi[0] &&
                           a.lo[1] < b.hi[1] && b.lo[1] < a.hi[1];
      TAP_CHECK(!overlap, "zones overlap");
    }
  }
  // Neighbor symmetry + completeness.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (i == j) continue;
      const bool adj = zones_adjacent(nodes_[i].zone, nodes_[j].zone);
      const bool listed =
          std::find(nodes_[i].neighbors.begin(), nodes_[i].neighbors.end(),
                    j) != nodes_[i].neighbors.end();
      TAP_CHECK(adj == listed, "neighbor list out of sync with the tiling");
    }
  }
}

}  // namespace tap
