// CAN — the Content-Addressable Network (Ratnasamy et al. [26]): nodes own
// rectangular zones of a d-dimensional torus (d = 2 here, so hops are
// O(sqrt(n)) per Table 1's O(r·n^(1/r)) with r = 2); objects hash to points
// and live with the zone owner; routing is greedy through zone neighbors.
//
// Like Chord, CAN's structure is oblivious to network distance: a zone
// neighbor can be physically anywhere, so every virtual-space hop costs a
// random network jump — the stretch contrast E2 measures.
//
// Joins follow the paper: pick a random point, route to its zone owner,
// split that zone in half (alternating dimensions), inherit the relevant
// neighbors and the objects falling in the new half.  Zone coordinates are
// binary fractions, so adjacency tests are exact.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "src/baselines/scheme.h"
#include "src/common/assert.h"
#include "src/common/rng.h"

namespace tap {

class CanNetwork final : public LocationScheme {
 public:
  CanNetwork(const MetricSpace& space, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "can"; }

  std::size_t add_node(Location loc, Trace* trace) override;
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

  void publish(std::size_t server, std::uint64_t key, Trace* trace) override;
  SchemeLocate locate(std::size_t client, std::uint64_t key,
                      Trace* trace) override;

  [[nodiscard]] std::size_t total_state() const override;
  [[nodiscard]] bool dynamic_insert() const override { return true; }

  /// Zone owner of a virtual point (exposed for tests).
  [[nodiscard]] std::size_t owner_of(double x, double y) const;
  /// Neighbor handles of a node (exposed for tests).
  [[nodiscard]] const std::vector<std::size_t>& neighbors(
      std::size_t handle) const;

  /// Audits the zone tiling: zones are disjoint, cover the unit torus, and
  /// neighbor lists are symmetric and complete.  Throws on violation.
  void check_invariants() const;

 private:
  struct Zone {
    std::array<double, 2> lo{{0.0, 0.0}};
    std::array<double, 2> hi{{1.0, 1.0}};
    [[nodiscard]] bool contains(double x, double y) const {
      return x >= lo[0] && x < hi[0] && y >= lo[1] && y < hi[1];
    }
    [[nodiscard]] std::array<double, 2> center() const {
      return {{(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2}};
    }
  };
  struct CanNode {
    Zone zone{};
    Location loc = 0;
    unsigned split_depth = 0;  // next split dimension = depth % 2
    std::vector<std::size_t> neighbors;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> store;
  };

  [[nodiscard]] std::array<double, 2> point_of(std::uint64_t key) const;
  [[nodiscard]] static bool zones_adjacent(const Zone& a, const Zone& b);
  [[nodiscard]] static double torus_dist(const std::array<double, 2>& a,
                                         const std::array<double, 2>& b);
  std::size_t route(std::size_t from, const std::array<double, 2>& target,
                    Trace* trace, std::size_t* hops_out, double* lat_out);
  void rebuild_neighbor_lists(std::size_t a, std::size_t b);

  const MetricSpace& space_;
  Rng rng_;
  std::vector<CanNode> nodes_;
};

}  // namespace tap
