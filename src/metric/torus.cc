#include "src/metric/torus.h"

#include <cmath>

#include "src/common/assert.h"

namespace tap {

Torus2D::Torus2D(std::size_t n, Rng& rng) {
  TAP_CHECK(n > 0, "Torus2D needs at least one point");
  xs_.reserve(n);
  ys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs_.push_back(rng.next_double());
    ys_.push_back(rng.next_double());
  }
}

double Torus2D::distance(Location a, Location b) const {
  TAP_ASSERT(a < xs_.size() && b < xs_.size());
  double dx = std::fabs(xs_[a] - xs_[b]);
  double dy = std::fabs(ys_[a] - ys_[b]);
  dx = std::min(dx, 1.0 - dx);
  dy = std::min(dy, 1.0 - dy);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace tap
