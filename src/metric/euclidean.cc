#include "src/metric/euclidean.h"

#include <cmath>

#include "src/common/assert.h"

namespace tap {

Euclidean2D::Euclidean2D(std::size_t n, Rng& rng) {
  TAP_CHECK(n > 0, "Euclidean2D needs at least one point");
  xs_.reserve(n);
  ys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs_.push_back(rng.next_double());
    ys_.push_back(rng.next_double());
  }
}

Euclidean2D::Euclidean2D(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  TAP_CHECK(xs_.size() == ys_.size(), "coordinate vectors must match");
  TAP_CHECK(!xs_.empty(), "Euclidean2D needs at least one point");
}

double Euclidean2D::distance(Location a, Location b) const {
  TAP_ASSERT(a < xs_.size() && b < xs_.size());
  const double dx = xs_[a] - xs_[b];
  const double dy = ys_[a] - ys_[b];
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace tap
