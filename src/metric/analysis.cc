#include "src/metric/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/assert.h"
#include "src/common/stats.h"

namespace tap {

TriangleAudit audit_triangle_inequality(const MetricSpace& space, Rng& rng,
                                        std::size_t triples) {
  constexpr double kTolerance = 1e-9;
  TriangleAudit audit;
  const std::size_t n = space.size();
  if (n < 3) return audit;
  for (std::size_t t = 0; t < triples; ++t) {
    const Location x = rng.next_u64(n);
    const Location y = rng.next_u64(n);
    const Location z = rng.next_u64(n);
    const double excess =
        space.distance(x, y) - (space.distance(x, z) + space.distance(z, y));
    ++audit.triples_checked;
    if (excess > kTolerance) {
      ++audit.violations;
      audit.worst_excess = std::max(audit.worst_excess, excess);
    }
  }
  return audit;
}

ExpansionEstimate estimate_expansion(const MetricSpace& space, Rng& rng,
                                     std::size_t centers,
                                     std::size_t min_ball) {
  const std::size_t n = space.size();
  TAP_CHECK(n >= 2, "expansion estimate needs >= 2 points");
  Summary ratios;
  for (std::size_t c = 0; c < centers; ++c) {
    const Location a = rng.next_u64(n);
    std::vector<double> dist;
    dist.reserve(n);
    for (Location i = 0; i < n; ++i)
      if (i != a) dist.push_back(space.distance(a, i));
    std::sort(dist.begin(), dist.end());
    // Sweep r = distance to the j-th nearest point; |B(r)| = j + 1 (counting
    // the center).  |B(2r)| by binary search.  Skip radii where the doubled
    // ball covers everything (Equation 1's side condition).
    for (std::size_t j = min_ball; j < dist.size(); ++j) {
      const double r = dist[j - 1];
      if (r <= 0) continue;
      const auto it =
          std::upper_bound(dist.begin(), dist.end(), 2.0 * r);
      const auto ball2 = static_cast<std::size_t>(it - dist.begin()) + 1;
      if (ball2 >= n) break;  // doubled ball is the whole space
      const auto ball1 = j + 1;
      ratios.add(static_cast<double>(ball2) / static_cast<double>(ball1));
    }
  }
  ExpansionEstimate est;
  if (!ratios.empty()) {
    est.median_ratio = ratios.median();
    est.p90_ratio = ratios.percentile(90);
    est.max_ratio = ratios.max();
  }
  return est;
}

double diameter(const MetricSpace& space) {
  const std::size_t n = space.size();
  double best = 0.0;
  for (Location a = 0; a < n; ++a)
    for (Location b = a + 1; b < n; ++b)
      best = std::max(best, space.distance(a, b));
  return best;
}

Location medoid(const MetricSpace& space) {
  const std::size_t n = space.size();
  TAP_CHECK(n > 0, "medoid of empty space");
  Location best = 0;
  double best_sum = std::numeric_limits<double>::infinity();
  for (Location a = 0; a < n; ++a) {
    double sum = 0.0;
    for (Location b = 0; b < n; ++b) sum += space.distance(a, b);
    if (sum < best_sum) {
      best_sum = sum;
      best = a;
    }
  }
  return best;
}

std::vector<Location> nearest_sorted(const MetricSpace& space, Location from) {
  TAP_CHECK(from < space.size(), "location out of range");
  std::vector<Location> order;
  order.reserve(space.size() - 1);
  for (Location i = 0; i < space.size(); ++i)
    if (i != from) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](Location a, Location b) {
    return space.distance(from, a) < space.distance(from, b);
  });
  return order;
}

}  // namespace tap
