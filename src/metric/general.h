// Metric spaces *outside* the growth-restricted family — the regime of the
// paper's §7 (object location in general metric spaces, "PRR v.0").
//
//   HighDimEuclidean  points uniform in [0,1]^d.  The expansion constant of
//                     a d-dimensional cube is ~2^d, so for d >= 5 the
//                     b > c^2 precondition of the dynamic algorithms fails
//                     decisively; §7's sampling scheme still works here.
//   TwoClusterMetric  two dense clusters separated by a long bridge — a
//                     minimal, adversarial violation of even growth (a ball
//                     that reaches the far cluster suddenly doubles its
//                     population).  Useful for worst-case stretch tests.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"

namespace tap {

class HighDimEuclidean final : public MetricSpace {
 public:
  HighDimEuclidean(std::size_t n, std::size_t dim, Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept override { return n_; }
  [[nodiscard]] double distance(Location a, Location b) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

 private:
  std::size_t n_, dim_;
  std::vector<double> coords_;  // row-major n x dim
};

class TwoClusterMetric final : public MetricSpace {
 public:
  /// Half the points sit in a cluster of the given radius around 0, half
  /// around `separation` on a line.
  TwoClusterMetric(std::size_t n, Rng& rng, double cluster_radius = 0.01,
                   double separation = 1.0);

  [[nodiscard]] std::size_t size() const noexcept override {
    return pos_.size();
  }
  [[nodiscard]] double distance(Location a, Location b) const override;
  [[nodiscard]] std::string name() const override { return "two-cluster"; }

  [[nodiscard]] bool in_first_cluster(Location i) const {
    return i < pos_.size() / 2;
  }

 private:
  std::vector<double> pos_;
};

}  // namespace tap
