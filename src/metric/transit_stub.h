// Transit-stub topology (Zegura, Calvert, Bhattacharjee [34]; paper §6.2).
//
// The metric is the exact shortest-path metric of the following graph:
//
//   * T transit routers placed uniformly in the unit square, fully
//     connected with edge weight  transit_scale * euclid(r1, r2)
//     (wide-area links are an order of magnitude longer than local ones);
//   * each router owns S stub domains; a stub's gateway sits near its
//     router; stub nodes sit near their gateway and connect only to it
//     (star topology), with Euclidean edge weights.
//
// Because the router-router weights are a scaled Euclidean metric, the
// direct router edge is always a shortest router path, so the graph
// shortest path has the closed form implemented in distance() — exact,
// symmetric, and triangle-inequality-satisfying by construction.
//
// Intra-stub latencies are tiny compared to wide-area latencies, exactly
// the regime that motivates the stub-locality optimization of §6.3, which
// queries the stub structure through domain_of().
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"

namespace tap {

struct TransitStubParams {
  std::size_t transit_routers = 4;    ///< T
  std::size_t stubs_per_transit = 4;  ///< S
  double transit_scale = 10.0;        ///< wide-area edge weight multiplier
  double gateway_spread = 0.04;       ///< max gateway offset from its router
  double stub_radius = 0.01;          ///< max node offset from its gateway
};

class TransitStubMetric final : public MetricSpace {
 public:
  TransitStubMetric(std::size_t n, Rng& rng,
                    TransitStubParams params = TransitStubParams{});

  [[nodiscard]] std::size_t size() const noexcept override {
    return stub_of_.size();
  }
  [[nodiscard]] double distance(Location a, Location b) const override;
  [[nodiscard]] std::string name() const override { return "transit-stub"; }

  /// Stub domain identifiers, used by the §6.3 locality optimization.
  [[nodiscard]] std::size_t num_stubs() const noexcept {
    return stub_cx_.size();
  }
  [[nodiscard]] std::size_t stub_of(Location i) const;
  [[nodiscard]] std::size_t transit_of(Location i) const;
  [[nodiscard]] bool same_stub(Location a, Location b) const {
    return stub_of(a) == stub_of(b);
  }

  /// Upper bound on any intra-stub distance; the locality optimization can
  /// use it as the latency threshold that "probably guesses" stub locality
  /// (paper §6.3) instead of oracle knowledge.
  [[nodiscard]] double max_intra_stub_distance() const noexcept {
    return 4.0 * params_.stub_radius;
  }

  [[nodiscard]] const TransitStubParams& params() const noexcept {
    return params_;
  }

 private:
  [[nodiscard]] double node_to_gateway(Location i) const;

  TransitStubParams params_;
  // Node coordinates and their stub assignment.
  std::vector<double> nx_, ny_;
  std::vector<std::size_t> stub_of_;
  // Stub gateway coordinates and their transit-router assignment.
  std::vector<double> stub_cx_, stub_cy_;
  std::vector<std::size_t> stub_transit_;
  // Transit router coordinates.
  std::vector<double> tx_, ty_;
};

}  // namespace tap
