// MetricSpace: the network-distance substrate underneath the overlay.
//
// The paper analyses Tapestry over a metric space with the even-growth
// ("expansion") property of Equation 1: |B_A(2r)| <= c * |B_A(r)|.  The
// simulator separates the *overlay* (Tapestry nodes, identified by NodeId)
// from the *underlay* (points in a metric space, identified by location
// index): each overlay node is pinned to one location, and every message
// between overlay nodes costs the metric distance between their locations.
//
// Concrete spaces provided:
//   RingMetric        1-D ring (expansion c ~= 2) — the "nice" space where
//                     b > c^2 comfortably holds for hex digits (b = 16).
//   Torus2D           2-D torus (c ~= 4) — the marginal case b = c^2.
//   Euclidean2D       2-D unit square without wrap-around (boundary effects).
//   TransitStubMetric graph shortest-path transit-stub topology (paper §6.2).
//   HighDimEuclidean  d-dimensional cube — high expansion, used for the
//                     general-metric scheme of §7.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tap {

/// Index of a point in the underlay.  Overlay nodes map 1:1 onto locations.
using Location = std::size_t;

/// Abstract finite metric space.  Implementations must satisfy symmetry,
/// identity of indiscernibles (distinct sampled points have positive
/// distance almost surely) and the triangle inequality; tests/test_metric.cc
/// verifies these properties on random triples for every space.
class MetricSpace {
 public:
  virtual ~MetricSpace() = default;

  /// Number of locations available.  Valid locations are [0, size()).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Distance between two locations.  Must be symmetric and obey the
  /// triangle inequality.
  [[nodiscard]] virtual double distance(Location a, Location b) const = 0;

  /// Human-readable name used in benchmark tables.
  [[nodiscard]] virtual std::string name() const = 0;

  MetricSpace() = default;
  MetricSpace(const MetricSpace&) = delete;
  MetricSpace& operator=(const MetricSpace&) = delete;
};

}  // namespace tap
