#include "src/metric/general.h"

#include <cmath>

#include "src/common/assert.h"

namespace tap {

HighDimEuclidean::HighDimEuclidean(std::size_t n, std::size_t dim, Rng& rng)
    : n_(n), dim_(dim) {
  TAP_CHECK(n > 0, "HighDimEuclidean needs at least one point");
  TAP_CHECK(dim > 0, "dimension must be positive");
  coords_.reserve(n * dim);
  for (std::size_t i = 0; i < n * dim; ++i)
    coords_.push_back(rng.next_double());
}

double HighDimEuclidean::distance(Location a, Location b) const {
  TAP_ASSERT(a < n_ && b < n_);
  double acc = 0.0;
  const double* pa = &coords_[a * dim_];
  const double* pb = &coords_[b * dim_];
  for (std::size_t k = 0; k < dim_; ++k) {
    const double d = pa[k] - pb[k];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::string HighDimEuclidean::name() const {
  return "euclid" + std::to_string(dim_) + "d";
}

TwoClusterMetric::TwoClusterMetric(std::size_t n, Rng& rng,
                                   double cluster_radius, double separation) {
  TAP_CHECK(n >= 2, "TwoClusterMetric needs at least two points");
  TAP_CHECK(cluster_radius > 0 && separation > 2 * cluster_radius,
            "clusters must be separated");
  pos_.reserve(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const double center = i < half ? 0.0 : separation;
    pos_.push_back(center + rng.uniform(-cluster_radius, cluster_radius));
  }
}

double TwoClusterMetric::distance(Location a, Location b) const {
  TAP_ASSERT(a < pos_.size() && b < pos_.size());
  return std::fabs(pos_[a] - pos_[b]);
}

}  // namespace tap
