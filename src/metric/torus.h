// 2-D torus metric: points uniform in the unit square with wrap-around L2
// distance.  Doubling a ball radius quadruples its area, so the expansion
// constant is about 4 — the marginal case b = c^2 for hex digits.  The
// paper's algorithms are proved for b > c^2 but are reported to work well
// in practice on such spaces; our benches measure exactly that.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"

namespace tap {

class Torus2D final : public MetricSpace {
 public:
  Torus2D(std::size_t n, Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept override {
    return xs_.size();
  }
  [[nodiscard]] double distance(Location a, Location b) const override;
  [[nodiscard]] std::string name() const override { return "torus2d"; }

  [[nodiscard]] double x(Location i) const { return xs_.at(i); }
  [[nodiscard]] double y(Location i) const { return ys_.at(i); }

 private:
  std::vector<double> xs_, ys_;
};

}  // namespace tap
