#include "src/metric/ring.h"

#include <cmath>

#include "src/common/assert.h"

namespace tap {

RingMetric::RingMetric(std::size_t n, Rng& rng, double jitter) {
  TAP_CHECK(n > 0, "RingMetric needs at least one point");
  TAP_CHECK(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0,1)");
  pos_.reserve(n);
  const double slot = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = static_cast<double>(i) * slot;
    const double offs = jitter > 0 ? rng.uniform(0.0, jitter * slot) : 0.0;
    pos_.push_back(base + offs);
  }
}

double RingMetric::distance(Location a, Location b) const {
  TAP_ASSERT(a < pos_.size() && b < pos_.size());
  const double d = std::fabs(pos_[a] - pos_[b]);
  return std::min(d, 1.0 - d);
}

double RingMetric::position(Location i) const {
  TAP_CHECK(i < pos_.size(), "position out of range");
  return pos_[i];
}

}  // namespace tap
