// Empirical analysis of metric spaces: triangle-inequality auditing,
// expansion-constant estimation (Equation 1 of the paper), diameter and
// medoid computation.  These feed both the test suite (every space is
// audited) and the benchmark reports (each experiment prints the measured
// expansion constant of the space it ran on, since the paper's guarantees
// are parameterized by it).
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"

namespace tap {

/// Result of a randomized triangle-inequality audit.
struct TriangleAudit {
  std::size_t triples_checked = 0;
  std::size_t violations = 0;
  double worst_excess = 0.0;  ///< max of d(x,y) - (d(x,z) + d(z,y)) observed
};

/// Samples random triples and checks d(x,y) <= d(x,z) + d(z,y) up to a
/// small floating-point tolerance.
[[nodiscard]] TriangleAudit audit_triangle_inequality(const MetricSpace& space,
                                                      Rng& rng,
                                                      std::size_t triples);

/// Estimate of the expansion constant c of Equation 1:
///   |B_A(2r)| <= c |B_A(r)|   (while B_A(2r) is not the whole space).
/// For each sampled center we sweep r over the sorted distance profile and
/// record |B(2r)| / |B(r)|; the estimate aggregates over centers and radii.
struct ExpansionEstimate {
  double median_ratio = 0.0;
  double p90_ratio = 0.0;
  double max_ratio = 0.0;
};

[[nodiscard]] ExpansionEstimate estimate_expansion(const MetricSpace& space,
                                                   Rng& rng,
                                                   std::size_t centers = 32,
                                                   std::size_t min_ball = 4);

/// Exact diameter over all pairs (O(n^2); spaces here are <= a few thousand
/// points).
[[nodiscard]] double diameter(const MetricSpace& space);

/// The medoid: the location minimizing the sum of distances to all others.
/// Used to place the centralized directory baseline fairly (best possible
/// single-server position).
[[nodiscard]] Location medoid(const MetricSpace& space);

/// All locations sorted by distance from `from` (nearest first, excluding
/// `from` itself).  Brute force; the test oracle for nearest-neighbor
/// correctness.
[[nodiscard]] std::vector<Location> nearest_sorted(const MetricSpace& space,
                                                   Location from);

}  // namespace tap
