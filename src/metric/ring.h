// 1-D ring metric: points on a circle of circumference 1.
//
// This is the canonical growth-restricted space for this paper: doubling a
// ball's radius at most doubles the number of points it contains (up to
// sampling noise), so the expansion constant c is about 2 and the paper's
// requirement b > c^2 holds comfortably for hex digits (16 > 4).
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"

namespace tap {

class RingMetric final : public MetricSpace {
 public:
  /// Places n points on the ring.  `jitter` in [0,1): 0 places points
  /// exactly evenly (deterministic growth), larger values perturb each
  /// point away from its even slot by up to jitter/n.
  RingMetric(std::size_t n, Rng& rng, double jitter = 0.9);

  [[nodiscard]] std::size_t size() const noexcept override {
    return pos_.size();
  }
  [[nodiscard]] double distance(Location a, Location b) const override;
  [[nodiscard]] std::string name() const override { return "ring"; }

  /// Angular position in [0,1); exposed for tests.
  [[nodiscard]] double position(Location i) const;

 private:
  std::vector<double> pos_;
};

}  // namespace tap
