// Flat 2-D Euclidean point set on the unit square (no wrap-around).
// Compared with Torus2D this has boundary effects: balls near the edge grow
// more slowly, so the local expansion constant varies across the space —
// closer to a realistic geographic layout.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/metric/metric_space.h"

namespace tap {

class Euclidean2D final : public MetricSpace {
 public:
  Euclidean2D(std::size_t n, Rng& rng);

  /// Constructs from explicit coordinates (used by tests for hand-built
  /// geometries and by TransitStubMetric internally).
  Euclidean2D(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] std::size_t size() const noexcept override {
    return xs_.size();
  }
  [[nodiscard]] double distance(Location a, Location b) const override;
  [[nodiscard]] std::string name() const override { return "euclid2d"; }

  [[nodiscard]] double x(Location i) const { return xs_.at(i); }
  [[nodiscard]] double y(Location i) const { return ys_.at(i); }

 private:
  std::vector<double> xs_, ys_;
};

}  // namespace tap
