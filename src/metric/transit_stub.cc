#include "src/metric/transit_stub.h"

#include <cmath>

#include "src/common/assert.h"

namespace tap {

namespace {
double euclid(double ax, double ay, double bx, double by) {
  const double dx = ax - bx;
  const double dy = ay - by;
  return std::sqrt(dx * dx + dy * dy);
}
}  // namespace

TransitStubMetric::TransitStubMetric(std::size_t n, Rng& rng,
                                     TransitStubParams params)
    : params_(params) {
  TAP_CHECK(n > 0, "TransitStubMetric needs at least one node");
  TAP_CHECK(params_.transit_routers > 0, "need at least one transit router");
  TAP_CHECK(params_.stubs_per_transit > 0, "need at least one stub per router");
  TAP_CHECK(params_.transit_scale >= 1.0,
            "transit links must not be shorter than local ones");

  const std::size_t T = params_.transit_routers;
  const std::size_t num_stubs = T * params_.stubs_per_transit;

  tx_.reserve(T);
  ty_.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    tx_.push_back(rng.next_double());
    ty_.push_back(rng.next_double());
  }

  stub_cx_.reserve(num_stubs);
  stub_cy_.reserve(num_stubs);
  stub_transit_.reserve(num_stubs);
  for (std::size_t s = 0; s < num_stubs; ++s) {
    const std::size_t t = s / params_.stubs_per_transit;
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double r = rng.uniform(0.0, params_.gateway_spread);
    stub_cx_.push_back(tx_[t] + r * std::cos(angle));
    stub_cy_.push_back(ty_[t] + r * std::sin(angle));
    stub_transit_.push_back(t);
  }

  nx_.reserve(n);
  ny_.reserve(n);
  stub_of_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Round-robin assignment keeps stub populations balanced, matching the
    // even-node-layout variant of transit-stub generation.
    const std::size_t s = i % num_stubs;
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double r = rng.uniform(0.0, params_.stub_radius);
    nx_.push_back(stub_cx_[s] + r * std::cos(angle));
    ny_.push_back(stub_cy_[s] + r * std::sin(angle));
    stub_of_.push_back(s);
  }
}

double TransitStubMetric::node_to_gateway(Location i) const {
  const std::size_t s = stub_of_[i];
  return euclid(nx_[i], ny_[i], stub_cx_[s], stub_cy_[s]);
}

double TransitStubMetric::distance(Location a, Location b) const {
  TAP_ASSERT(a < stub_of_.size() && b < stub_of_.size());
  if (a == b) return 0.0;
  const std::size_t sa = stub_of_[a];
  const std::size_t sb = stub_of_[b];
  if (sa == sb) {
    // Star topology inside a stub: path goes through the gateway.
    return node_to_gateway(a) + node_to_gateway(b);
  }
  const std::size_t ta = stub_transit_[sa];
  const std::size_t tb = stub_transit_[sb];
  double d = node_to_gateway(a) + node_to_gateway(b);
  d += euclid(stub_cx_[sa], stub_cy_[sa], tx_[ta], ty_[ta]);
  d += euclid(stub_cx_[sb], stub_cy_[sb], tx_[tb], ty_[tb]);
  if (ta != tb) {
    // Scaled-Euclidean router weights form a metric, so the direct router
    // edge is a shortest router path.
    d += params_.transit_scale * euclid(tx_[ta], ty_[ta], tx_[tb], ty_[tb]);
  }
  return d;
}

std::size_t TransitStubMetric::stub_of(Location i) const {
  TAP_CHECK(i < stub_of_.size(), "location out of range");
  return stub_of_[i];
}

std::size_t TransitStubMetric::transit_of(Location i) const {
  return stub_transit_[stub_of(i)];
}

}  // namespace tap
