// Property-style tests for the EventQueue itself: randomized schedules
// checked against a reference ordering (equal timestamps fire in
// scheduling order), cancellation edge cases (after fire, self-cancel,
// cancel from an earlier event), and run_until clock-advancement
// semantics.  test_sim.cc covers the basic API; these pin the properties
// every deterministic simulation above the queue depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/assert.h"
#include "src/common/rng.h"
#include "src/sim/event_queue.h"

namespace tap {
namespace {

// ---------------------------------------------------------------- ordering

TEST(EventQueueProperty, RandomSchedulesFireInStableTimestampOrder) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    EventQueue q;
    struct Rec {
      double t;
      std::size_t seq;
    };
    std::vector<Rec> scheduled;
    std::vector<Rec> fired;
    const std::size_t n = 200;
    for (std::size_t i = 0; i < n; ++i) {
      // Few distinct timestamps => many ties, the interesting case.
      const double t = 0.5 * static_cast<double>(rng.next_u64(10));
      scheduled.push_back({t, i});
      q.schedule_at(t, [&fired, t, i] { fired.push_back({t, i}); });
    }
    q.run();
    ASSERT_EQ(fired.size(), n);
    // Reference: sort by time, scheduling order breaking ties.
    std::vector<Rec> expect = scheduled;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const Rec& a, const Rec& b) { return a.t < b.t; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fired[i].seq, expect[i].seq) << "seed " << seed << " pos " << i;
      EXPECT_EQ(fired[i].t, expect[i].t) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(EventQueueProperty, SameTimeEventScheduledWhileFiringRunsAfterPeers) {
  EventQueue q;
  std::vector<char> order;
  q.schedule_at(1.0, [&] {
    order.push_back('A');
    // C shares timestamp 1.0 but is scheduled later than B, so it must
    // fire after B (scheduling order is the tiebreak, not insert order
    // relative to the running event).
    q.schedule_at(1.0, [&] { order.push_back('C'); });
  });
  q.schedule_at(1.0, [&] { order.push_back('B'); });
  q.run();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C'}));
}

// ------------------------------------------------------------ cancellation

TEST(EventQueueProperty, CancelAfterFireReturnsFalse) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(1.0, [&] { fired = true; });
  q.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(q.cancel(id)) << "cancelling an already-fired event is a no-op";
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueProperty, SelfCancelWhileFiringIsNoop) {
  EventQueue q;
  EventId self = 0;
  bool cancel_result = true;
  self = q.schedule_at(1.0, [&] { cancel_result = q.cancel(self); });
  q.run();
  EXPECT_FALSE(cancel_result) << "an event cannot cancel itself mid-fire";
}

TEST(EventQueueProperty, EarlierEventCancelsPendingLaterEvent) {
  EventQueue q;
  bool late_fired = false;
  const EventId late = q.schedule_at(1.0, [&] { late_fired = true; });
  bool cancelled = false;
  q.schedule_at(0.5, [&] { cancelled = q.cancel(late); });
  q.run();
  EXPECT_TRUE(cancelled);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueProperty, RandomCancellationSetNeverFires) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 101);
    EventQueue q;
    const std::size_t n = 300;
    std::vector<bool> fired(n, false);
    std::vector<EventId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = 1.0 + static_cast<double>(rng.next_u64(50)) * 0.25;
      ids.push_back(q.schedule_at(t, [&fired, i] { fired[i] = true; }));
    }
    std::vector<bool> cancelled(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.4)) {
        EXPECT_TRUE(q.cancel(ids[i]));
        cancelled[i] = true;
      }
    }
    const std::size_t expect_live =
        static_cast<std::size_t>(std::count(cancelled.begin(),
                                            cancelled.end(), false));
    EXPECT_EQ(q.pending(), expect_live);
    q.run();
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(fired[i], !cancelled[i]) << "seed " << seed << " event " << i;
  }
}

TEST(EventQueueProperty, CancelAfterFireLeavesNoTombstone) {
  // The queue used to track cancellations in a separate cancelled-id set
  // whose consistency with the heap pending() arithmetic rested entirely
  // on cancel's id-validation guard; the reclaiming-map rework removed
  // that set.  These tests pin the contract the rework must preserve:
  // rejected cancels (fired, double, bogus ids) leave no state behind,
  // and pending()/empty()/drain loops stay coherent afterwards.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(q.schedule_at(1.0 + i, [] {}));
  q.run();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
  for (const EventId id : ids) EXPECT_FALSE(q.cancel(id));
  // pending() must not underflow/wrap after the rejected cancels...
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
  // ...and a drain loop over newly scheduled work still terminates.
  int fired = 0;
  q.schedule_in(1.0, [&] { ++fired; });
  EXPECT_EQ(q.pending(), 1u);
  while (!q.empty()) q.step();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueProperty, DoubleCancelSecondIsRejected) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id)) << "second cancel of the same id must reject";
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueProperty, BogusIdCancelIsRejectedWithoutStateChange) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  EXPECT_FALSE(q.cancel(EventId{999'999})) << "never-issued id";
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------- retention

namespace {
/// External retention witness: counts captures alive inside the queue.  A
/// queue that releases actions on fire/cancel keeps exactly one of these
/// per pending event; a non-reclaiming implementation (the old
/// EventId-indexed vector) accumulates one per event ever scheduled.
struct Payload {
  explicit Payload(std::size_t& n) : live(n) { ++live; }
  ~Payload() { --live; }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  std::size_t& live;
};
}  // namespace

TEST(EventQueueProperty, SoakRetainsNothingProportionalToFiredEvents) {
  // Regression: actions_ was a vector indexed by the monotone EventId that
  // never shrank — every fired/cancelled closure (and its captures) was
  // retained for the queue's lifetime, so long churn soaks grew without
  // bound.  The live-payload count must track the *pending* count only,
  // through a soak that fires, cancels and reschedules far more events
  // than are ever outstanding.
  Rng rng(4242);
  std::size_t live_payloads = 0;
  EventQueue q;
  std::vector<EventId> live;
  std::size_t peak_pending = 0;
  const std::size_t kRounds = 50'000;
  for (std::size_t i = 0; i < kRounds; ++i) {
    {
      // Scoped so the queue's closure holds the only reference by the
      // time the retention assertion below runs.
      auto payload = std::make_shared<Payload>(live_payloads);
      live.push_back(q.schedule_in(
          static_cast<double>(1 + rng.next_u64(16)),
          [payload] { (void)payload; }));
    }
    if (rng.bernoulli(0.3) && !live.empty()) {
      const std::size_t pick = rng.next_u64(live.size());
      q.cancel(live[pick]);  // may already have fired: rejection is fine
      live[pick] = live.back();
      live.pop_back();
    }
    if (rng.bernoulli(0.5)) q.step();
    peak_pending = std::max(peak_pending, q.pending());
    ASSERT_EQ(live_payloads, q.pending())
        << "fired/cancelled actions must release their captures immediately";
  }
  EXPECT_GT(q.fired(), kRounds / 4) << "the soak must actually fire events";
  // Retention is bounded by what is genuinely outstanding, not by the
  // lifetime event count.
  EXPECT_LT(peak_pending, kRounds / 2);
  q.run();
  EXPECT_EQ(live_payloads, 0u);
  EXPECT_EQ(q.pending(), 0u);
}

// ---------------------------------------------------------------- run_until

TEST(EventQueueProperty, RunUntilChunksEquivalentToSingleRun) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto build = [&](EventQueue& q, std::vector<std::size_t>& order) {
      Rng rng(seed * 7);
      for (std::size_t i = 0; i < 120; ++i) {
        const double t = static_cast<double>(rng.next_u64(40)) * 0.5;
        q.schedule_at(t, [&order, i] { order.push_back(i); });
      }
    };
    EventQueue whole, chunked;
    std::vector<std::size_t> order_whole, order_chunked;
    build(whole, order_whole);
    build(chunked, order_chunked);
    whole.run();

    Rng step_rng(seed * 13);
    while (!chunked.empty()) {
      const double t_end =
          chunked.now() + 0.25 * static_cast<double>(1 + step_rng.next_u64(8));
      chunked.run_until(t_end);
      EXPECT_DOUBLE_EQ(chunked.now(), t_end)
          << "run_until must land the clock exactly on t_end";
    }
    EXPECT_EQ(order_whole, order_chunked) << "seed " << seed;
  }
}

TEST(EventQueueProperty, RunUntilAdvancesClockOnEmptyQueue) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.run_until(3.5);
  EXPECT_DOUBLE_EQ(q.now(), 3.5);
  q.run_until(3.5);  // idempotent at the boundary
  EXPECT_DOUBLE_EQ(q.now(), 3.5);
  EXPECT_THROW(q.run_until(1.0), CheckError);  // never rewinds
}

TEST(EventQueueProperty, RunUntilExcludesStrictlyLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(2.0 + 1e-12, [&] { ++fired; });
  q.run_until(2.0);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueueProperty, FiredCountsEveryExecutedAction) {
  EventQueue q;
  const std::uint64_t before = q.fired();
  for (int i = 0; i < 25; ++i) q.schedule_at(1.0 + i, [] {});
  const EventId c = q.schedule_at(100.0, [] {});
  q.cancel(c);
  q.run();
  EXPECT_EQ(q.fired() - before, 25u) << "cancelled events never count";
}

}  // namespace
}  // namespace tap
