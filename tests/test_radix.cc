// Identifier-space generality: the algorithms are parameterized by the
// digit width b = 2^digit_bits and the digit count (paper §2: "digits are
// drawn from an alphabet of radix b").  This suite sweeps radix/digit
// configurations — from binary digits to byte digits — over grown
// networks and checks the full invariant battery plus object location,
// multicast coverage and deletion on each.  The b > c^2 precondition of
// §3 holds comfortably for b >= 16 on the ring (c ~= 2), marginally for
// b = 4; practice matches the paper's "works well anyway" observation.
#include <gtest/gtest.h>

#include <set>

#include "src/common/stats.h"
#include "src/metric/ring.h"
#include "test_util.h"

namespace tap {
namespace {

struct RadixConfig {
  unsigned digit_bits;
  unsigned num_digits;
  std::string label;
};

class RadixTest : public ::testing::TestWithParam<RadixConfig> {
 protected:
  test::GrownNetwork grow(std::size_t n, std::uint64_t seed) {
    TapestryParams p;
    p.id = IdSpec{GetParam().digit_bits, GetParam().num_digits};
    p.redundancy = 3;
    test::GrownNetwork g;
    Rng rng(seed);
    g.space = std::make_unique<RingMetric>(n + 16, rng);
    g.net = std::make_unique<Network>(*g.space, p, seed ^ 0xffee);
    g.ids.push_back(g.net->bootstrap(0));
    for (std::size_t i = 1; i < n; ++i) g.ids.push_back(g.net->join(i));
    return g;
  }

  Guid guid(const Network& net, std::uint64_t raw) {
    return test::make_guid(net, raw);
  }
};

TEST_P(RadixTest, GrownNetworkInvariants) {
  auto g = grow(72, 160);
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  EXPECT_GT(g.net->property2_quality(), 0.97);
}

TEST_P(RadixTest, RootsUniqueAndLocationWorks) {
  auto g = grow(64, 161);
  Rng rng(1);
  for (int obj = 0; obj < 10; ++obj) {
    const Guid target = guid(*g.net, 100 + obj);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : g.ids)
      roots.insert(g.net->route_to_root(src, target).root.value());
    EXPECT_EQ(roots.size(), 1u);
  }
  for (int obj = 0; obj < 8; ++obj) {
    const Guid target = guid(*g.net, 300 + obj);
    const NodeId server = g.ids[rng.next_u64(g.ids.size())];
    g.net->publish(server, target);
    for (std::size_t c = 0; c < g.ids.size(); c += 5) {
      const LocateResult r = g.net->locate(g.ids[c], target);
      ASSERT_TRUE(r.found);
      EXPECT_EQ(r.server, server);
    }
  }
  g.net->check_property4();
}

TEST_P(RadixTest, MulticastSpanningTreeHolds) {
  auto g = grow(48, 162);
  const MulticastStats stats =
      g.net->multicast(g.ids[0], g.ids[0], 0, [](NodeId) {});
  EXPECT_EQ(stats.reached, 48u);
  EXPECT_EQ(stats.messages, 2u * 47u);
}

TEST_P(RadixTest, ChurnPreservesInvariants) {
  auto g = grow(48, 163);
  Rng rng(2);
  for (int round = 0; round < 12; ++round) {
    if (rng.bernoulli(0.5) && g.net->size() > 24) {
      auto ids = g.net->node_ids();
      g.net->leave(ids[rng.next_u64(ids.size())]);
    } else {
      g.net->join(48 + static_cast<std::size_t>(round));
    }
    g.net->check_property1();
  }
  g.net->check_backpointer_symmetry();
}

TEST_P(RadixTest, HopCountTracksDigitCapacity) {
  auto g = grow(96, 164);
  Rng rng(3);
  Summary hops;
  for (int q = 0; q < 100; ++q) {
    const NodeId src = g.ids[rng.next_u64(g.ids.size())];
    hops.add(double(g.net->route_to_root(src, guid(*g.net, 500 + q)).hops));
  }
  // Routes resolve one digit per hop plus a small surrogate overhead.
  const double digits_needed =
      std::log2(96.0) / GetParam().digit_bits;
  EXPECT_LE(hops.mean(), digits_needed + 3.0);
  EXPECT_LE(hops.max(), double(GetParam().num_digits));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RadixTest,
    ::testing::Values(RadixConfig{1, 16, "binary16"},
                      RadixConfig{2, 12, "quad12"},
                      RadixConfig{4, 8, "hex8"},
                      RadixConfig{4, 16, "hex16"},
                      RadixConfig{6, 5, "b64x5"},
                      RadixConfig{8, 4, "byte4"}),
    [](const auto& ti) { return ti.param.label; });

}  // namespace
}  // namespace tap
