// Surrogate routing (§2.3) on statically built (oracle) networks: root
// uniqueness (Theorem 2), termination, path properties, both routing
// variants, and the consistency/locality invariants of the static builder.
#include <gtest/gtest.h>

#include <set>

#include "src/common/stats.h"
#include "src/metric/analysis.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;
using test::static_ring_network;

class RoutingModeTest : public ::testing::TestWithParam<RoutingMode> {};

TEST_P(RoutingModeTest, StaticBuildSatisfiesProperties) {
  auto g = static_ring_network(128, 21, small_params(GetParam()));
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  EXPECT_DOUBLE_EQ(g.net->property2_quality(), 1.0);
}

TEST_P(RoutingModeTest, SurrogateRootIsUniqueAcrossAllSources) {
  // Theorem 2: every source must reach the same root for a given GUID.
  auto g = static_ring_network(128, 22, small_params(GetParam()));
  for (int obj = 0; obj < 25; ++obj) {
    const Guid guid = make_guid(*g.net, 1000 + obj);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : g.ids)
      roots.insert(g.net->route_to_root(src, guid).root.value());
    EXPECT_EQ(roots.size(), 1u) << "guid " << guid.to_string();
  }
}

TEST_P(RoutingModeTest, RoutingToExistingNodeTerminatesThere) {
  auto g = static_ring_network(128, 23, small_params(GetParam()));
  for (std::size_t i = 0; i < g.ids.size(); i += 7) {
    for (std::size_t j = 0; j < g.ids.size(); j += 13) {
      const RouteResult rr = g.net->route_to_root(g.ids[i], g.ids[j]);
      EXPECT_EQ(rr.root, g.ids[j]);
      EXPECT_EQ(rr.surrogate_hops, 0u)
          << "routing to an existing id never wraps";
    }
  }
}

TEST_P(RoutingModeTest, HopsAreLogarithmic) {
  auto g = static_ring_network(256, 24, small_params(GetParam()));
  Rng rng(77);
  Summary hops;
  for (int q = 0; q < 200; ++q) {
    const NodeId src = g.ids[rng.next_u64(g.ids.size())];
    const Guid guid = make_guid(*g.net, 5000 + q);
    hops.add(static_cast<double>(g.net->route_to_root(src, guid).hops));
  }
  // log_16(256) = 2 digits typically distinguish a node; surrogate steps
  // add a small constant (§2.3: < 2 in expectation).
  EXPECT_LE(hops.mean(), 6.0);
  EXPECT_LE(hops.max(), static_cast<double>(g.net->params().id.num_digits));
}

TEST_P(RoutingModeTest, PathPrefixMonotone) {
  // Along a route, each next node never matches the target in fewer levels
  // than the pattern resolved so far allows; the last node is the root.
  auto g = static_ring_network(64, 25, small_params(GetParam()));
  const Guid guid = make_guid(*g.net, 1);
  const RouteResult rr = g.net->route_to_root(g.ids[0], guid);
  EXPECT_FALSE(rr.path.empty());
  EXPECT_EQ(rr.path.front(), g.ids[0]);
  EXPECT_EQ(rr.path.back(), rr.root);
  // No node repeats on a route.
  std::set<std::uint64_t> seen;
  for (const NodeId& n : rr.path) EXPECT_TRUE(seen.insert(n.value()).second);
}

INSTANTIATE_TEST_SUITE_P(BothModes, RoutingModeTest,
                         ::testing::Values(RoutingMode::kTapestryNative,
                                           RoutingMode::kPrrLike),
                         [](const auto& ti) {
                           return ti.param == RoutingMode::kTapestryNative
                                      ? "native"
                                      : "prrlike";
                         });

TEST(Routing, SurrogateExtraHopsSmallOnAverage) {
  // §2.3: localized routing adds < 2 extra hops in expectation.
  auto g = static_ring_network(512, 26);
  Rng rng(88);
  Summary extra;
  for (int q = 0; q < 400; ++q) {
    const NodeId src = g.ids[rng.next_u64(g.ids.size())];
    const Guid guid = make_guid(*g.net, 9000 + q);
    extra.add(static_cast<double>(
        g.net->route_to_root(src, guid).surrogate_hops));
  }
  EXPECT_LT(extra.mean(), 2.0);
}

TEST(Routing, SingleNodeNetworkRootsEverything) {
  Rng rng(1);
  RingMetric space(4, rng);
  Network net(space, small_params());
  const NodeId only = net.bootstrap(0);
  for (int i = 0; i < 20; ++i) {
    const Guid guid = make_guid(net, i);
    EXPECT_EQ(net.route_to_root(only, guid).root, only);
    EXPECT_EQ(net.surrogate_root(guid), only);
  }
}

TEST(Routing, SurrogateRootAgreesWithRouteToRoot) {
  auto g = static_ring_network(128, 27);
  for (int i = 0; i < 50; ++i) {
    const Guid guid = make_guid(*g.net, 40 + i);
    EXPECT_EQ(g.net->surrogate_root(guid),
              g.net->route_to_root(g.ids[i % g.ids.size()], guid).root);
  }
}

TEST(Routing, NativeAndPrrLikeCanDisagreeOnRoots) {
  // The two variants are both valid surrogate schemes but resolve holes
  // differently; with many GUIDs they should not always pick the same root.
  auto native = static_ring_network(128, 28,
                                    small_params(RoutingMode::kTapestryNative));
  auto prr = static_ring_network(128, 28, small_params(RoutingMode::kPrrLike));
  ASSERT_EQ(native.ids, prr.ids);
  int differ = 0;
  for (int i = 0; i < 200; ++i) {
    const Guid guid = make_guid(*native.net, 600 + i);
    if (!(native.net->surrogate_root(guid) == prr.net->surrogate_root(guid)))
      ++differ;
  }
  EXPECT_GT(differ, 0);
}

// ------------------------------------------------------- publish & locate

TEST(PublishLocate, EveryNodeFindsEveryObject) {
  auto g = static_ring_network(128, 30);
  Rng rng(5);
  std::vector<Guid> guids;
  for (int i = 0; i < 20; ++i) {
    const Guid guid = make_guid(*g.net, 100 + i);
    guids.push_back(guid);
    g.net->publish(g.ids[rng.next_u64(g.ids.size())], guid);
  }
  g.net->check_property4();
  for (const Guid& guid : guids) {
    for (std::size_t c = 0; c < g.ids.size(); c += 5) {
      const LocateResult r = g.net->locate(g.ids[c], guid);
      EXPECT_TRUE(r.found) << guid.to_string();
    }
  }
}

TEST(PublishLocate, MissingObjectIsNotFound) {
  auto g = static_ring_network(64, 31);
  const LocateResult r = g.net->locate(g.ids[0], make_guid(*g.net, 999));
  EXPECT_FALSE(r.found);
}

TEST(PublishLocate, ServerLocatesItsOwnObjectLocally) {
  auto g = static_ring_network(64, 32);
  const Guid guid = make_guid(*g.net, 7);
  g.net->publish(g.ids[3], guid);
  const LocateResult r = g.net->locate(g.ids[3], guid);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.server, g.ids[3]);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_DOUBLE_EQ(r.latency, 0.0);
}

TEST(PublishLocate, QueryResolvesToAReplica) {
  auto g = static_ring_network(128, 33);
  const Guid guid = make_guid(*g.net, 8);
  g.net->publish(g.ids[10], guid);
  g.net->publish(g.ids[90], guid);
  for (std::size_t c = 0; c < g.ids.size(); c += 3) {
    const LocateResult r = g.net->locate(g.ids[c], guid);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(r.server == g.ids[10] || r.server == g.ids[90]);
  }
}

TEST(PublishLocate, UnpublishRemovesOneReplica) {
  auto g = static_ring_network(128, 34);
  const Guid guid = make_guid(*g.net, 9);
  g.net->publish(g.ids[10], guid);
  g.net->publish(g.ids[90], guid);
  g.net->unpublish(g.ids[10], guid);
  for (std::size_t c = 0; c < g.ids.size(); c += 7) {
    const LocateResult r = g.net->locate(g.ids[c], guid);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.server, g.ids[90]);
  }
  g.net->unpublish(g.ids[90], guid);
  EXPECT_FALSE(g.net->locate(g.ids[0], guid).found);
  EXPECT_EQ(g.net->total_object_pointers(), 0u);
}

TEST(PublishLocate, PointerPathEndsAtUniqueRoot) {
  // Theorem 1: the query routed toward the root meets a pointer at the
  // root in the worst case.
  auto g = static_ring_network(128, 35);
  const Guid guid = make_guid(*g.net, 10);
  g.net->publish(g.ids[5], guid);
  const NodeId root = g.net->surrogate_root(guid);
  const auto recs = g.net->node(root).store().find_all(guid);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].server, g.ids[5]);
}

TEST(PublishLocate, MultipleRootsPublishEverywhere) {
  TapestryParams p = small_params();
  p.root_multiplicity = 3;
  auto g = static_ring_network(128, 36, p);
  const Guid guid = make_guid(*g.net, 11);
  g.net->publish(g.ids[7], guid);
  for (unsigned salt = 0; salt < 3; ++salt) {
    const NodeId root = g.net->surrogate_root(salted_guid(guid, salt));
    EXPECT_FALSE(g.net->node(root).store().find_all(salted_guid(guid, salt))
                     .empty())
        << "salt " << salt;
  }
  // Queries succeed regardless of which root the client draws.
  for (int i = 0; i < 30; ++i)
    EXPECT_TRUE(g.net->locate(g.ids[i % g.ids.size()], guid).found);
}

TEST(PublishLocate, LocateLatencyBoundedByRootTrip) {
  // Sanity bound: a locate's latency can't exceed the root round trip plus
  // the server leg by more than the metric diameter scale.
  auto g = static_ring_network(256, 37);
  Rng rng(6);
  const Guid guid = make_guid(*g.net, 12);
  const NodeId server = g.ids[rng.next_u64(g.ids.size())];
  g.net->publish(server, guid);
  for (int q = 0; q < 50; ++q) {
    const NodeId client = g.ids[rng.next_u64(g.ids.size())];
    const LocateResult r = g.net->locate(client, guid);
    ASSERT_TRUE(r.found);
    // Ring diameter is 0.5; a locate crosses the network a bounded number
    // of times (root path + server leg).
    EXPECT_LT(r.latency, 0.5 * (g.net->params().id.num_digits + 2.0));
  }
}

}  // namespace
}  // namespace tap
