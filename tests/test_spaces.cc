// Space generality for the *core* algorithms: the paper's guarantees are
// proved for b > c^2, but Tapestry is reported to behave well beyond that
// (§6.2: "our nearest neighbor algorithm seems to continue to perform well
// with real network topologies").  Grow full networks over the marginal
// 2-D torus (c ~= 4, b = c^2), the boundary-affected Euclidean square, the
// transit-stub Internet model, and the adversarial two-cluster space, and
// check the hard invariants plus location correctness on each.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/common/stats.h"
#include "src/metric/euclidean.h"
#include "src/metric/general.h"
#include "src/metric/torus.h"
#include "src/metric/transit_stub.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;

std::unique_ptr<MetricSpace> make_space(const std::string& kind,
                                        std::size_t n, Rng& rng) {
  if (kind == "torus") return std::make_unique<Torus2D>(n, rng);
  if (kind == "euclid") return std::make_unique<Euclidean2D>(n, rng);
  if (kind == "transit") return std::make_unique<TransitStubMetric>(n, rng);
  if (kind == "clusters") return std::make_unique<TwoClusterMetric>(n, rng);
  if (kind == "highdim") return std::make_unique<HighDimEuclidean>(n, 6, rng);
  ADD_FAILURE() << "unknown space";
  return nullptr;
}

class SpaceGrowthTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SpaceGrowthTest, GrownNetworkInvariantsHold) {
  Rng rng(170);
  auto space = make_space(GetParam(), 128, rng);
  Network net(*space, small_params(), 170);
  net.bootstrap(0);
  for (Location i = 1; i < 96; ++i) net.join(i);
  net.check_property1();
  net.check_backpointer_symmetry();
  // Property 2 quality stays high even where b > c^2 fails: the candidate
  // unions are digit-complete regardless of the expansion constant.
  EXPECT_GT(net.property2_quality(), 0.9) << GetParam();
}

TEST_P(SpaceGrowthTest, DeterministicLocationEverywhere) {
  Rng rng(171);
  auto space = make_space(GetParam(), 96, rng);
  Network net(*space, small_params(), 171);
  net.bootstrap(0);
  for (Location i = 1; i < 96; ++i) net.join(i);
  const auto ids = net.node_ids();
  Rng wl(1);
  for (int obj = 0; obj < 10; ++obj) {
    const Guid guid = make_guid(net, 600 + obj);
    const NodeId server = ids[wl.next_u64(ids.size())];
    net.publish(server, guid);
    for (std::size_t c = 0; c < ids.size(); c += 7) {
      const LocateResult r = net.locate(ids[c], guid);
      ASSERT_TRUE(r.found) << GetParam();
      EXPECT_EQ(r.server, server);
    }
  }
  net.check_property4();
}

TEST_P(SpaceGrowthTest, RootsUniqueAndChurnSafe) {
  Rng rng(172);
  auto space = make_space(GetParam(), 128, rng);
  Network net(*space, small_params(), 172);
  net.bootstrap(0);
  for (Location i = 1; i < 80; ++i) net.join(i);
  Rng churn(2);
  for (int round = 0; round < 10; ++round) {
    if (churn.bernoulli(0.5) && net.size() > 40) {
      auto ids = net.node_ids();
      net.leave(ids[churn.next_u64(ids.size())]);
    } else {
      net.join(80 + static_cast<Location>(round));
    }
  }
  for (int obj = 0; obj < 8; ++obj) {
    const Guid guid = make_guid(net, 700 + obj);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : net.node_ids())
      roots.insert(net.route_to_root(src, guid).root.value());
    EXPECT_EQ(roots.size(), 1u) << GetParam();
  }
  net.check_property1();
}

TEST_P(SpaceGrowthTest, FailureRepairWorks) {
  Rng rng(173);
  auto space = make_space(GetParam(), 96, rng);
  Network net(*space, small_params(), 173);
  net.bootstrap(0);
  for (Location i = 1; i < 96; ++i) net.join(i);
  Rng wl(3);
  const Guid guid = make_guid(net, 42);
  {
    const auto ids = net.node_ids();
    net.publish(ids[5], guid);
  }
  for (int i = 0; i < 10; ++i) {
    const auto ids = net.node_ids();
    NodeId victim = ids[wl.next_u64(ids.size())];
    if (victim == net.node_ids()[5]) continue;
    const auto servers = net.servers_of(guid);
    bool is_server = false;
    for (const NodeId& s : servers)
      if (s == victim) is_server = true;
    if (is_server) continue;
    net.fail(victim);
  }
  net.heartbeat_sweep();
  net.republish_all();
  for (const NodeId& c : net.node_ids())
    EXPECT_TRUE(net.locate(c, guid).found) << GetParam();
  net.check_property1();
}

INSTANTIATE_TEST_SUITE_P(Spaces, SpaceGrowthTest,
                         ::testing::Values("torus", "euclid", "transit",
                                           "clusters", "highdim"),
                         [](const auto& ti) { return ti.param; });

TEST(SpaceStretch, TapestryDegradesGracefullyOffTheory) {
  // §6.3: "when the expansion property does not hold, the routing stretch
  // may become quite high.  Note, however, that the system will always
  // find an object after O(log n) hops."  Check both halves on the
  // adversarial two-cluster space.
  Rng rng(174);
  TwoClusterMetric space(128, rng);
  Network net(space, small_params(), 174);
  net.bootstrap(0);
  for (Location i = 1; i < 128; ++i) net.join(i);
  const auto ids = net.node_ids();
  Rng wl(4);
  Summary hops;
  std::size_t found = 0, total = 0;
  for (int q = 0; q < 100; ++q) {
    const Guid guid = make_guid(net, 900 + q);
    const NodeId server = ids[wl.next_u64(ids.size())];
    net.publish(server, guid);
    const NodeId client = ids[wl.next_u64(ids.size())];
    const LocateResult r = net.locate(client, guid);
    ++total;
    if (r.found) {
      ++found;
      hops.add(double(r.hops));
    }
  }
  EXPECT_EQ(found, total) << "deterministic location must survive bad spaces";
  EXPECT_LE(hops.mean(), 2.0 * net.params().id.num_digits)
      << "hop bound is metric-independent";
}

}  // namespace
}  // namespace tap
