// Shared helpers for the test suite: canonical parameter sets and builders
// for join-grown and statically built networks over the standard spaces.
#pragma once

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/common/rng.h"
#include "src/metric/euclidean.h"
#include "src/metric/ring.h"
#include "src/metric/torus.h"
#include "src/metric/transit_stub.h"
#include "src/tapestry/network.h"

namespace tap::test {

/// Applies the TAP_STORE environment override — the CI backend matrix runs
/// the directory/churn test binaries once per value: "memory" (default),
/// "sharded", "persist", "replicated", "replicated+persist".  Every call
/// hands the disk-backed backends a fresh scratch directory (under
/// TAP_STORE_DIR or the system temp dir): two networks in one test must
/// never recover each other's WALs.
inline void apply_store_env(TapestryParams& p) {
  const char* s = std::getenv("TAP_STORE");
  if (s == nullptr) return;
  const std::string backend(s);
  if (backend.empty() || backend == "memory") return;
  if (backend == "sharded") {
    p.store_backend = StoreBackend::kSharded;
    return;
  }
  if (backend == "replicated") {
    p.store_backend = StoreBackend::kReplicated;
    return;
  }
  TAP_CHECK(backend == "persist" || backend == "replicated+persist",
            "TAP_STORE must be memory|sharded|persist|replicated|"
            "replicated+persist");
  p.store_backend = backend == "persist"
                        ? StoreBackend::kPersistent
                        : StoreBackend::kReplicatedPersistent;
  static std::atomic<unsigned> counter{0};
  const char* base = std::getenv("TAP_STORE_DIR");
  const std::filesystem::path root =
      base != nullptr ? std::filesystem::path(base)
                      : std::filesystem::temp_directory_path();
  p.store_dir = (root / ("tap_store_" + std::to_string(::getpid()) + "_" +
                         std::to_string(counter++)))
                    .string();
  // Scratch dirs accumulate one WAL per node; sweep them when the test
  // binary exits (all Networks are gone by then) so repeated local runs
  // don't litter the temp dir.
  struct Sweeper {
    std::vector<std::string> dirs;
    std::mutex mu;
    ~Sweeper() {
      for (const std::string& d : dirs) {
        std::error_code ec;
        std::filesystem::remove_all(d, ec);  // best-effort
      }
    }
  };
  static Sweeper sweeper;
  std::lock_guard<std::mutex> lock(sweeper.mu);
  sweeper.dirs.push_back(p.store_dir);
}

/// Applies the TAP_TRANSPORT environment override — the CI transport
/// matrix runs the suite once per value: "direct" (default) and
/// "loopback" (every inter-node message round-trips through the Datagram
/// codec; see docs/transport.md).
inline void apply_transport_env(TapestryParams& p) {
  const char* s = std::getenv("TAP_TRANSPORT");
  if (s == nullptr) return;
  const std::string kind(s);
  if (kind.empty() || kind == "direct") return;
  TAP_CHECK(kind == "loopback", "TAP_TRANSPORT must be direct|loopback");
  p.transport = TransportKind::kLoopback;
}

inline TapestryParams small_params(RoutingMode mode = RoutingMode::kTapestryNative) {
  TapestryParams p;
  p.id = IdSpec{4, 8};  // radix 16, 8 digits
  p.redundancy = 3;
  p.routing = mode;
  apply_store_env(p);
  apply_transport_env(p);
  return p;
}

/// A network whose nodes all arrived through the dynamic join protocol.
struct GrownNetwork {
  std::unique_ptr<MetricSpace> space;
  std::unique_ptr<Network> net;
  std::vector<NodeId> ids;
};

inline GrownNetwork grow_ring_network(std::size_t n, std::uint64_t seed,
                                      TapestryParams params) {
  GrownNetwork g;
  Rng rng(seed);
  // 64 spare locations so tests can add nodes beyond the initial n.
  g.space = std::make_unique<RingMetric>(n + 64, rng);
  g.net = std::make_unique<Network>(*g.space, params, seed ^ 0xabcdef);
  g.ids.push_back(g.net->bootstrap(0));
  for (std::size_t i = 1; i < n; ++i) g.ids.push_back(g.net->join(i));
  return g;
}

inline GrownNetwork grow_ring_network(std::size_t n, std::uint64_t seed = 42) {
  return grow_ring_network(n, seed, small_params());
}

/// A network built by the static (oracle) constructor — the ground truth.
inline GrownNetwork static_ring_network(std::size_t n, std::uint64_t seed,
                                        TapestryParams params) {
  GrownNetwork g;
  Rng rng(seed);
  g.space = std::make_unique<RingMetric>(n + 64, rng);
  g.net = std::make_unique<Network>(*g.space, params, seed ^ 0xabcdef);
  for (std::size_t i = 0; i < n; ++i) g.ids.push_back(g.net->insert_static(i));
  g.net->rebuild_static_tables();
  return g;
}

inline GrownNetwork static_ring_network(std::size_t n,
                                        std::uint64_t seed = 42) {
  return static_ring_network(n, seed, small_params());
}

inline Guid make_guid(const Network& net, std::uint64_t raw) {
  const IdSpec spec = net.params().id;
  const std::uint64_t mask = spec.total_bits() == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << spec.total_bits()) - 1;
  return Guid(spec, splitmix64(raw) & mask);
}

}  // namespace tap::test
