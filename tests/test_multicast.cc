// Acknowledged multicast (§4.1, Theorem 5): exact prefix coverage, each
// node visited once, spanning-tree message count, completion-time shape.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/stats.h"
#include "test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::small_params;
using test::static_ring_network;

// All live ids carrying the first `len` digits of `pattern`.
std::vector<NodeId> prefix_set(const Network& net, const Id& pattern,
                               unsigned len) {
  std::vector<NodeId> out;
  for (const NodeId& id : net.node_ids())
    if (id.matches_prefix(pattern, len)) out.push_back(id);
  return out;
}

TEST(Multicast, ReachesExactlyThePrefixSet) {
  auto g = static_ring_network(256, 60);
  // Use each node's own first digit as a prefix pattern.
  for (unsigned digit = 0; digit < 16; ++digit) {
    const NodeId pattern = g.ids[0].with_digit(0, digit);
    const auto expected = prefix_set(*g.net, pattern, 1);
    if (expected.empty()) continue;
    std::multiset<std::uint64_t> visited;
    g.net->multicast(expected.front(), pattern, 1,
                     [&](NodeId y) { visited.insert(y.value()); });
    std::multiset<std::uint64_t> want;
    for (const NodeId& id : expected) want.insert(id.value());
    EXPECT_EQ(visited, want) << "digit " << digit;
  }
}

TEST(Multicast, EachNodeVisitedExactlyOnce) {
  auto g = static_ring_network(200, 61);
  std::map<std::uint64_t, int> count;
  g.net->multicast(g.ids[0], g.ids[0], 0, [&](NodeId y) { ++count[y.value()]; });
  EXPECT_EQ(count.size(), 200u);
  for (const auto& [id, c] : count) EXPECT_EQ(c, 1) << id;
}

TEST(Multicast, MessageCountIsSpanningTree) {
  // Collapsing self-messages, k nodes are covered by k-1 tree edges, each
  // carrying a forward and an acknowledgment: exactly 2(k-1) messages.
  auto g = static_ring_network(128, 62);
  MulticastStats stats =
      g.net->multicast(g.ids[0], g.ids[0], 0, [](NodeId) {});
  EXPECT_EQ(stats.reached, 128u);
  EXPECT_EQ(stats.messages, 2u * (128u - 1u));
}

TEST(Multicast, SingletonPrefixVisitsOnlyStart) {
  auto g = static_ring_network(64, 63);
  // The full id of a node is a prefix only it carries.
  MulticastStats stats = g.net->multicast(
      g.ids[5], g.ids[5], g.net->params().id.num_digits, [](NodeId) {});
  EXPECT_EQ(stats.reached, 1u);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_DOUBLE_EQ(stats.completion, 0.0);
}

TEST(Multicast, StartMustCarryThePrefix) {
  auto g = static_ring_network(64, 64);
  // Find a node whose first digit differs from ids[0]'s.
  NodeId other{};
  for (const NodeId& id : g.ids)
    if (id.digit(0) != g.ids[0].digit(0)) other = id;
  ASSERT_TRUE(other.valid());
  EXPECT_THROW(
      g.net->multicast(other, g.ids[0], 1, [](NodeId) {}),
      CheckError);
}

TEST(Multicast, CompletionIsBelowTotalTraffic) {
  // Fan-out runs in parallel: the longest chain is shorter than the summed
  // traffic whenever the tree branches.
  auto g = static_ring_network(256, 65);
  MulticastStats stats =
      g.net->multicast(g.ids[0], g.ids[0], 0, [](NodeId) {});
  EXPECT_LT(stats.completion, stats.traffic);
  EXPECT_GT(stats.completion, 0.0);
}

TEST(Multicast, ExcludedNodeNeitherVisitedNorForwarded) {
  auto g = static_ring_network(128, 66);
  const NodeId excluded = g.ids[17];
  std::set<std::uint64_t> visited;
  g.net->multicast(g.ids[0], g.ids[0], 0,
                   [&](NodeId y) { visited.insert(y.value()); }, nullptr,
                   {excluded});
  EXPECT_EQ(visited.count(excluded.value()), 0u);
  EXPECT_EQ(visited.size(), 127u);
}

TEST(Multicast, WorksOnGrownNetworks) {
  auto g = grow_ring_network(96, 67);
  std::set<std::uint64_t> visited;
  MulticastStats stats = g.net->multicast(
      g.ids[0], g.ids[0], 0, [&](NodeId y) { visited.insert(y.value()); });
  EXPECT_EQ(stats.reached, 96u);
  EXPECT_EQ(visited.size(), 96u);
}

TEST(Multicast, TraceAccountsTraffic) {
  auto g = static_ring_network(64, 68);
  Trace t;
  MulticastStats stats =
      g.net->multicast(g.ids[0], g.ids[0], 0, [](NodeId) {}, &t);
  EXPECT_EQ(t.messages(), stats.messages);
  EXPECT_DOUBLE_EQ(t.latency(), stats.traffic);
}

TEST(Multicast, SkipsDeadBranchMembersBestEffort) {
  auto g = static_ring_network(96, 69);
  // Fail a node, then multicast from another: the corpse must not be
  // visited; the rest should still be covered because the static tables
  // hold R = 3 members per slot.
  const NodeId dead = g.ids[40];
  g.net->fail(dead);
  std::set<std::uint64_t> visited;
  NodeId start = g.ids[0] == dead ? g.ids[1] : g.ids[0];
  g.net->multicast(start, start, 0,
                   [&](NodeId y) { visited.insert(y.value()); });
  EXPECT_EQ(visited.count(dead.value()), 0u);
  EXPECT_EQ(visited.size(), 95u);
}

TEST(Multicast, DeterministicVisitOrder) {
  auto a = static_ring_network(64, 70);
  auto b = static_ring_network(64, 70);
  std::vector<std::uint64_t> va, vb;
  a.net->multicast(a.ids[0], a.ids[0], 0,
                   [&](NodeId y) { va.push_back(y.value()); });
  b.net->multicast(b.ids[0], b.ids[0], 0,
                   [&](NodeId y) { vb.push_back(y.value()); });
  EXPECT_EQ(va, vb);
}

}  // namespace
}  // namespace tap
