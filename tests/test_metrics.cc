// Metrics registry (src/sim/metrics.h): concurrent-increment exactness,
// histogram `le` bucket-edge semantics, snapshot-vs-reset lifecycle,
// JSON / Prometheus exposition round trips, labeled series identity, the
// enabled() hot-path gate, and a live scrape through ScrapeServer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "src/sim/metrics.h"

namespace tap::metrics {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ------------------------------------------------------------ primitives

TEST(Metrics, ConcurrentCounterIncrementsAreExact) {
  Counter& c = registry().counter("test_concurrent_counter",
                                  "concurrency exactness probe");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ConcurrentHistogramObservationsAreExact) {
  Histogram& h = registry().histogram("test_concurrent_hist",
                                      "concurrency exactness probe", {1, 2, 4});
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(3.0);
    });
  for (auto& w : workers) w.join();
  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), total);
  EXPECT_EQ(h.bucket_count(2), total);  // 2 < 3.0 <= 4
  EXPECT_DOUBLE_EQ(h.sum(), 3.0 * static_cast<double>(total));
}

TEST(Metrics, HistogramBucketEdgesUseLeSemantics) {
  Histogram& h = registry().histogram("test_hist_edges",
                                      "bucket edge semantics", {1, 2, 4});
  h.reset();
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // == bound 1: le keeps it in bucket 0
  h.observe(1.001);  // first bucket with x <= bound is 2
  h.observe(4.0);    // == bound 4: bucket 2
  h.observe(4.001);  // past every bound: +Inf overflow
  h.observe(100.0);  // +Inf overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);  // bounds().size() == +Inf bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 4.0 + 4.001 + 100.0);
}

TEST(Metrics, EnabledGateSuppressesRecording) {
  Counter& c =
      registry().counter("test_gate_counter", "enabled() gate probe");
  c.reset();
  set_enabled(false);
  c.inc(5);
  EXPECT_EQ(c.value(), 0u) << "writes must be no-ops while disabled";
  set_enabled(true);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

// ------------------------------------------------------ registry lifecycle

TEST(Metrics, ResetZeroesValuesButKeepsIdentities) {
  Counter& c = registry().counter("test_reset_counter", "reset probe");
  Gauge& g = registry().gauge("test_reset_gauge", "reset probe");
  Histogram& h =
      registry().histogram("test_reset_hist", "reset probe", {1, 10});
  c.inc(7);
  g.set(3.5);
  h.observe(5.0);
  registry().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // The references stay live and the families stay registered.
  c.inc(2);
  EXPECT_EQ(c.value(), 2u);
  Counter& again = registry().counter("test_reset_counter", "reset probe");
  EXPECT_EQ(&again, &c) << "re-registration must return the same object";
  EXPECT_TRUE(contains(registry().snapshot_json(), "\"test_reset_counter\":2"));
}

TEST(Metrics, LabelsCreateDistinctSeries) {
  Counter& a = registry().counter("test_labeled_total", "labeled probe",
                                  {{"kind", "a"}});
  Counter& b = registry().counter("test_labeled_total", "labeled probe",
                                  {{"kind", "b"}});
  EXPECT_NE(&a, &b);
  a.reset();
  b.reset();
  a.inc(3);
  b.inc(4);
  const std::string json = registry().snapshot_json();
  EXPECT_TRUE(contains(json, "\"test_labeled_total{kind=a}\":3")) << json;
  EXPECT_TRUE(contains(json, "\"test_labeled_total{kind=b}\":4")) << json;
  const std::string prom = registry().prometheus_text();
  EXPECT_TRUE(contains(prom, "test_labeled_total{kind=\"a\"} 3")) << prom;
  EXPECT_TRUE(contains(prom, "test_labeled_total{kind=\"b\"} 4")) << prom;
}

// ----------------------------------------------------------- expositions

TEST(Metrics, JsonSnapshotRoundTrip) {
  Counter& c = registry().counter("test_json_counter", "json probe");
  Gauge& g = registry().gauge("test_json_gauge", "json probe");
  Histogram& h = registry().histogram("test_json_hist", "json probe", {1, 2});
  c.reset();
  g.reset();
  h.reset();
  c.inc(42);
  g.set(2.5);
  h.observe(1.0);
  h.observe(9.0);
  const std::string json = registry().snapshot_json();
  EXPECT_TRUE(contains(json, "\"test_json_counter\":42")) << json;
  EXPECT_TRUE(contains(json, "\"test_json_gauge\":2.5")) << json;
  EXPECT_TRUE(contains(
      json, "\"test_json_hist\":{\"buckets\":[1,0,1],\"sum\":10,\"count\":2}"))
      << json;
  // Snapshots of the same state are byte-identical.
  EXPECT_EQ(json, registry().snapshot_json());
}

TEST(Metrics, PrometheusExpositionShape) {
  Histogram& h = registry().histogram("test_prom_hist", "prom shape probe",
                                      {1, 2});
  h.reset();
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string prom = registry().prometheus_text();
  EXPECT_TRUE(contains(prom, "# HELP test_prom_hist prom shape probe"));
  EXPECT_TRUE(contains(prom, "# TYPE test_prom_hist histogram"));
  // Cumulative buckets: le=1 -> 1, le=2 -> 2, +Inf -> 3.
  EXPECT_TRUE(contains(prom, "test_prom_hist_bucket{le=\"1\"} 1")) << prom;
  EXPECT_TRUE(contains(prom, "test_prom_hist_bucket{le=\"2\"} 2")) << prom;
  EXPECT_TRUE(contains(prom, "test_prom_hist_bucket{le=\"+Inf\"} 3")) << prom;
  EXPECT_TRUE(contains(prom, "test_prom_hist_sum 11")) << prom;
  EXPECT_TRUE(contains(prom, "test_prom_hist_count 3")) << prom;
}

TEST(Metrics, VolatileMetricsExcludedFromDeterministicSnapshot) {
  touch_builtin();
  stripe_lock_contention_total().inc();
  repair_wave_seconds().observe(0.5);
  const std::string det = snapshot_json(/*include_volatile=*/false);
  EXPECT_FALSE(contains(det, "tapestry_stripe_lock_contention_total")) << det;
  EXPECT_FALSE(contains(det, "tapestry_repair_wave_seconds")) << det;
  const std::string full = snapshot_json(/*include_volatile=*/true);
  EXPECT_TRUE(contains(full, "tapestry_stripe_lock_contention_total"));
  EXPECT_TRUE(contains(full, "tapestry_repair_wave_seconds"));
  // A live scrape has no determinism contract: volatile metrics included.
  const std::string prom = prometheus_text();
  EXPECT_TRUE(contains(prom, "tapestry_stripe_lock_contention_total"));
  EXPECT_TRUE(contains(prom, "tapestry_repair_wave_seconds_bucket"));
}

TEST(Metrics, BuiltinFamiliesAllRegistered) {
  touch_builtin();
  const std::vector<std::string> names = registry().family_names();
  auto has = [&names](const char* n) {
    for (const std::string& x : names)
      if (x == n) return true;
    return false;
  };
  EXPECT_TRUE(has("tapestry_messages_total"));
  EXPECT_TRUE(has("tapestry_locate_total"));
  EXPECT_TRUE(has("tapestry_locate_hops"));
  EXPECT_TRUE(has("tapestry_churn_events_total"));
  EXPECT_TRUE(has("tapestry_live_nodes"));
  EXPECT_TRUE(has("tapestry_store_wal_bytes"));
  EXPECT_TRUE(has("tapestry_repair_wave_seconds"));
}

// --------------------------------------------------------- scrape server

TEST(Metrics, ScrapeServerServesPrometheusText) {
  touch_builtin();
  messages_total().inc();
  ScrapeServer server(0);  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.stop();
  EXPECT_FALSE(server.running());

  EXPECT_TRUE(contains(resp, "HTTP/1.0 200 OK")) << resp;
  EXPECT_TRUE(contains(resp, "text/plain; version=0.0.4")) << resp;
  EXPECT_TRUE(contains(resp, "tapestry_messages_total")) << resp;
  EXPECT_TRUE(contains(resp, "tapestry_locate_hops_bucket")) << resp;
}

}  // namespace
}  // namespace tap::metrics
