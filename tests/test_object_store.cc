// Backend conformance suite for the object-store API (ISSUE 4).
//
// The ObjectStoreBackend contract (object_store.h) promises that any
// single-threaded op sequence drives all three backends — MemoryStore (the
// reference), ShardedStore, PersistentStore — to identical visible state:
// size(), find(), find_all()/find_live() per-guid order, for_each_of
// visitation, and snapshot() up to global ordering.  The suite fuzzes that
// property over scripted and seeded-random sequences, pins the expiry
// edge at now == expires_at (inclusive deadline: still live, not swept),
// and proves the PersistentStore crash-recovery round trip: after flush()
// the on-disk state rebuilds a bit-identical store, through both recover()
// and a fresh construction, across WAL-only and compacted histories.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tapestry/object_store.h"
#include "src/tapestry/params.h"
#include "src/tapestry/persistent_store.h"
#include "src/tapestry/replicated_store.h"
#include "src/tapestry/sharded_store.h"
#include "tests/test_util.h"

namespace tap {
namespace {

constexpr IdSpec kSpec{4, 8};

Guid gid(std::uint64_t v) { return Guid(kSpec, v); }
NodeId nid(std::uint64_t v) { return NodeId(kSpec, v); }

/// Scratch directory for one persistent store; wiped on construction and
/// destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("tap_test_" + std::to_string(::getpid()) + "_" + name))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string path;
};

bool record_eq(const PointerRecord& a, const PointerRecord& b) {
  return a.server == b.server && a.last_hop == b.last_hop &&
         a.level == b.level && a.past_hole == b.past_hole &&
         a.expires_at == b.expires_at;  // deadlines must round-trip exactly
}

std::vector<std::pair<Guid, PointerRecord>> sorted_snapshot(
    const ObjectStoreBackend& s) {
  auto snap = s.snapshot();
  std::sort(snap.begin(), snap.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    if (!(a.second.server == b.second.server))
      return a.second.server < b.second.server;
    return a.second.expires_at < b.second.expires_at;
  });
  return snap;
}

/// Full visible-state comparison of `got` against the reference `ref`,
/// probing every guid/server in the given pools.
void expect_same_state(const ObjectStoreBackend& ref,
                       const ObjectStoreBackend& got,
                       const std::vector<std::uint64_t>& guid_pool,
                       const std::vector<std::uint64_t>& server_pool,
                       const std::vector<double>& probe_times,
                       const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(ref.size(), got.size());
  EXPECT_EQ(ref.empty(), got.empty());
  for (const std::uint64_t g : guid_pool) {
    const auto ra = ref.find_all(gid(g));
    const auto ga = got.find_all(gid(g));
    ASSERT_EQ(ra.size(), ga.size()) << "find_all size for guid " << g;
    for (std::size_t i = 0; i < ra.size(); ++i)
      EXPECT_TRUE(record_eq(ra[i], ga[i]))
          << "find_all order/content for guid " << g << " at " << i;
    std::vector<PointerRecord> visited;
    got.for_each_of(gid(g), [&](const Guid& vg, const PointerRecord& r) {
      EXPECT_EQ(vg, gid(g));
      visited.push_back(r);
    });
    ASSERT_EQ(visited.size(), ra.size()) << "for_each_of count, guid " << g;
    for (std::size_t i = 0; i < ra.size(); ++i)
      EXPECT_TRUE(record_eq(visited[i], ra[i]));
    for (const double now : probe_times) {
      const auto rl = ref.find_live(gid(g), now);
      const auto gl = got.find_live(gid(g), now);
      ASSERT_EQ(rl.size(), gl.size())
          << "find_live size, guid " << g << " now " << now;
      for (std::size_t i = 0; i < rl.size(); ++i)
        EXPECT_TRUE(record_eq(rl[i], gl[i]));
    }
    for (const std::uint64_t s : server_pool) {
      const auto rf = ref.find(gid(g), nid(s));
      const auto gf = got.find(gid(g), nid(s));
      ASSERT_EQ(rf.has_value(), gf.has_value())
          << "find presence, guid " << g << " server " << s;
      if (rf.has_value()) {
        EXPECT_TRUE(record_eq(*rf, *gf));
      }
    }
  }
  const auto rs = sorted_snapshot(ref);
  const auto gs = sorted_snapshot(got);
  ASSERT_EQ(rs.size(), gs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].first, gs[i].first);
    EXPECT_TRUE(record_eq(rs[i].second, gs[i].second));
  }
}

/// One randomized op applied identically to every backend; return values
/// must agree too.
struct OpDriver {
  std::vector<ObjectStoreBackend*> stores;
  std::vector<std::uint64_t> guid_pool;
  std::vector<std::uint64_t> server_pool;
  std::vector<double> expiry_pool;
  Rng rng{7};

  void upsert(std::uint64_t g, std::uint64_t s, double expires,
              unsigned level = 0, bool past_hole = false,
              std::optional<std::uint64_t> last_hop = std::nullopt) {
    PointerRecord rec;
    rec.server = nid(s);
    if (last_hop.has_value()) rec.last_hop = nid(*last_hop);
    rec.level = level;
    rec.past_hole = past_hole;
    rec.expires_at = expires;
    for (ObjectStoreBackend* st : stores) st->upsert(gid(g), rec);
  }

  void remove(std::uint64_t g, std::uint64_t s) {
    const bool first = stores[0]->remove(gid(g), nid(s));
    for (std::size_t i = 1; i < stores.size(); ++i)
      EXPECT_EQ(stores[i]->remove(gid(g), nid(s)), first);
  }

  void remove_expired(double now) {
    const std::size_t first = stores[0]->remove_expired(now);
    for (std::size_t i = 1; i < stores.size(); ++i)
      EXPECT_EQ(stores[i]->remove_expired(now), first);
  }

  void random_op() {
    const std::uint64_t g = guid_pool[rng.next_u64(guid_pool.size())];
    const std::uint64_t s = server_pool[rng.next_u64(server_pool.size())];
    const double dice = rng.next_double();
    if (dice < 0.6) {
      const double exp = expiry_pool[rng.next_u64(expiry_pool.size())];
      const bool lh = rng.next_double() < 0.5;
      upsert(g, s, exp, static_cast<unsigned>(rng.next_u64(8)),
             rng.next_double() < 0.25,
             lh ? std::optional<std::uint64_t>(
                      server_pool[rng.next_u64(server_pool.size())])
                : std::nullopt);
    } else if (dice < 0.85) {
      remove(g, s);
    } else {
      remove_expired(expiry_pool[rng.next_u64(expiry_pool.size())]);
    }
  }
};

TEST(StoreConformance, RandomOpSequencesAgree) {
  MemoryStore mem;
  ShardedStore shard;
  ScratchDir dir("conf_random");
  PersistentStore persist(dir.path, nid(0xABCD), kSpec);
  ReplicatedStore repl(std::make_unique<MemoryStore>(), "replicated");
  ScratchDir dir_rp("conf_random_rp");
  ReplicatedStore repl_persist(
      std::make_unique<PersistentStore>(dir_rp.path, nid(0xABCF), kSpec),
      "replicated+persist");

  OpDriver d;
  d.stores = {&mem, &shard, &persist, &repl, &repl_persist};
  d.guid_pool = {1, 2, 0x1000, 0x1001, 0xFFFFFF, 0xABCDEF01, 0x7F7F7F7F};
  d.server_pool = {10, 11, 12, 0xBEEF, 0xF00D};
  d.expiry_pool = {0.5, 1.0, 2.0, 5.0, 5.0, 10.0,
                   std::numeric_limits<double>::infinity()};
  const std::vector<double> probes = {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 11.0};

  for (int round = 0; round < 8; ++round) {
    for (int op = 0; op < 150; ++op) d.random_op();
    expect_same_state(mem, shard, d.guid_pool, d.server_pool, probes,
                      "sharded, round " + std::to_string(round));
    expect_same_state(mem, persist, d.guid_pool, d.server_pool, probes,
                      "persist, round " + std::to_string(round));
    expect_same_state(mem, repl, d.guid_pool, d.server_pool, probes,
                      "replicated, round " + std::to_string(round));
    expect_same_state(mem, repl_persist, d.guid_pool, d.server_pool, probes,
                      "replicated+persist, round " + std::to_string(round));
  }
  // The stats hook reports per-backend identities but shared mutation
  // counts (upserts accepted are identical by construction).
  EXPECT_STREQ(mem.stats().backend, "memory");
  EXPECT_STREQ(shard.stats().backend, "sharded");
  EXPECT_STREQ(persist.stats().backend, "persist");
  EXPECT_STREQ(repl.stats().backend, "replicated");
  EXPECT_STREQ(repl_persist.stats().backend, "replicated+persist");
  EXPECT_EQ(mem.stats().upserts, shard.stats().upserts);
  EXPECT_EQ(mem.stats().upserts, persist.stats().upserts);
  EXPECT_EQ(mem.stats().upserts, repl.stats().upserts);
  EXPECT_EQ(mem.stats().upserts, repl_persist.stats().upserts);
  EXPECT_GT(shard.stats().stripes, 1u);
  // The replica area never leaks into the standard interface.
  EXPECT_EQ(repl.replica_size(), 0u);
}

TEST(StoreConformance, ExpiryDeadlineEdgeIsInclusive) {
  MemoryStore mem;
  ShardedStore shard;
  ScratchDir dir("conf_edge");
  PersistentStore persist(dir.path, nid(0xABCE), kSpec);
  ReplicatedStore repl(std::make_unique<MemoryStore>(), "replicated");
  ScratchDir dir_rp("conf_edge_rp");
  ReplicatedStore repl_persist(
      std::make_unique<PersistentStore>(dir_rp.path, nid(0xABD0), kSpec),
      "replicated+persist");
  std::vector<ObjectStoreBackend*> stores = {&mem, &shard, &persist, &repl,
                                             &repl_persist};

  for (ObjectStoreBackend* s : stores) {
    s->upsert(gid(1), PointerRecord{nid(1), std::nullopt, 0, false, 5.0});
    s->upsert(gid(1), PointerRecord{nid(2), std::nullopt, 0, false, 4.0});
  }
  for (ObjectStoreBackend* s : stores) {
    SCOPED_TRACE(s->stats().backend);
    // At now == expires_at the record is still live...
    const auto live = s->find_live(gid(1), 5.0);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].server, nid(1));
    // ...and an expiry sweep at that instant must not drop it.
    EXPECT_EQ(s->remove_expired(5.0), 1u);  // only the 4.0 record goes
    EXPECT_EQ(s->size(), 1u);
    ASSERT_TRUE(s->find(gid(1), nid(1)).has_value());
    // Strictly past the deadline it is gone from both views.
    EXPECT_TRUE(s->find_live(gid(1), 5.0 + 1e-9).empty());
    EXPECT_EQ(s->remove_expired(5.0 + 1e-9), 1u);
    EXPECT_TRUE(s->empty());
  }
}

TEST(PersistentStoreTest, RecoverRebuildsIdenticalState) {
  ScratchDir dir("recover_basic");
  PersistentStore store(dir.path, nid(0x1111), kSpec);
  store.upsert(gid(1), PointerRecord{nid(1), std::nullopt, 0, false, 10.0});
  store.upsert(gid(1), PointerRecord{nid(2), nid(1), 1, true, 20.0});
  store.upsert(gid(2), PointerRecord{nid(3), std::nullopt, 2, false,
                                     std::numeric_limits<double>::infinity()});
  store.upsert(gid(1), PointerRecord{nid(1), nid(9), 3, false, 12.5});  // replace
  store.remove(gid(2), nid(3));
  store.upsert(gid(3), PointerRecord{nid(4), std::nullopt, 0, false, 0.1});
  store.remove_expired(0.5);
  const auto before = sorted_snapshot(store);
  const auto order_before = store.find_all(gid(1));
  store.flush();

  // In-place recovery: drop the mirror, rebuild from disk.
  store.recover();
  const auto after = sorted_snapshot(store);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].first, after[i].first);
    EXPECT_TRUE(record_eq(before[i].second, after[i].second));
  }
  // Per-guid record order (first-insertion order) survives the round trip.
  const auto order_after = store.find_all(gid(1));
  ASSERT_EQ(order_before.size(), order_after.size());
  for (std::size_t i = 0; i < order_before.size(); ++i)
    EXPECT_TRUE(record_eq(order_before[i], order_after[i]));
}

TEST(PersistentStoreTest, CrashRecoveryAcrossInstances) {
  ScratchDir dir("recover_crash");
  std::vector<std::pair<Guid, PointerRecord>> before;
  {
    PersistentStore store(dir.path, nid(0x2222), kSpec);
    Rng rng(99);
    for (int i = 0; i < 300; ++i) {
      PointerRecord rec;
      rec.server = nid(1 + rng.next_u64(6));
      rec.level = static_cast<unsigned>(rng.next_u64(8));
      rec.expires_at = 1.0 + static_cast<double>(rng.next_u64(100)) / 7.0;
      store.upsert(gid(rng.next_u64(40)), rec);
      if (i % 7 == 0) store.remove(gid(rng.next_u64(40)), nid(1 + rng.next_u64(6)));
      if (i % 31 == 0) store.remove_expired(static_cast<double>(i) / 40.0);
    }
    before = sorted_snapshot(store);
    // Destruction flushes and closes — the "kill" point.
  }
  PersistentStore revived(dir.path, nid(0x2222), kSpec);
  const auto after = sorted_snapshot(revived);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].first, after[i].first);
    EXPECT_TRUE(record_eq(before[i].second, after[i].second));
  }
}

TEST(PersistentStoreTest, CompactionPreservesStateAndFencesStaleWal) {
  ScratchDir dir("recover_compact");
  std::vector<std::pair<Guid, PointerRecord>> before;
  std::size_t compactions = 0;
  {
    PersistentStore store(dir.path, nid(0x3333), kSpec);
    // Hammer a small key set: the WAL grows far beyond the live record
    // count, forcing snapshot compactions.
    for (int i = 0; i < 4000; ++i) {
      PointerRecord rec;
      rec.server = nid(1 + (i % 3));
      rec.expires_at = static_cast<double>(i);
      store.upsert(gid(i % 10), rec);
    }
    compactions = store.stats().compactions;
    EXPECT_GT(compactions, 0u);
    EXPECT_LT(store.stats().wal_records, 4000u);  // log was truncated
    before = sorted_snapshot(store);
  }
  PersistentStore revived(dir.path, nid(0x3333), kSpec);
  const auto after = sorted_snapshot(revived);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_TRUE(record_eq(before[i].second, after[i].second));
}

TEST(PersistentStoreTest, TornWalTailIsTruncatedNotFatal) {
  ScratchDir dir("recover_torn");
  char name[32];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(nid(0x6666).value()));
  const std::string wal_path = dir.path + "/" + std::string(name) + ".wal";

  std::vector<std::pair<Guid, PointerRecord>> before;
  {
    PersistentStore store(dir.path, nid(0x6666), kSpec);
    store.upsert(gid(1), PointerRecord{nid(1), std::nullopt, 0, false, 10.0});
    store.upsert(gid(2), PointerRecord{nid(2), std::nullopt, 0, false, 20.0});
    before = sorted_snapshot(store);
  }
  // Simulate a kill mid-append: a partial record (no newline) at the tail.
  {
    std::FILE* f = std::fopen(wal_path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("U 3 4 0 0", f);
    std::fclose(f);
  }
  {
    // Recovery keeps every whole record and truncates the torn tail
    // instead of failing the constructor.
    PersistentStore revived(dir.path, nid(0x6666), kSpec);
    const auto after = sorted_snapshot(revived);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i)
      EXPECT_TRUE(record_eq(before[i].second, after[i].second));
    // Appends after the cut must still form valid records.
    revived.upsert(gid(9), PointerRecord{nid(9), std::nullopt, 0, false, 5.0});
  }
  PersistentStore again(dir.path, nid(0x6666), kSpec);
  EXPECT_EQ(again.size(), before.size() + 1);
  EXPECT_TRUE(again.find(gid(9), nid(9)).has_value());
}

TEST(PersistentStoreTest, InPlaceRecoverKeepsEveryAcceptedMutation) {
  ScratchDir dir("recover_inplace");
  PersistentStore store(dir.path, nid(0x4444), kSpec);
  store.upsert(gid(1), PointerRecord{nid(1), std::nullopt, 0, false, 10.0});
  // No explicit flush: in-place recover() is the clean-restart path — it
  // flushes the open log before replaying, so buffered appends survive.
  // (Crash semantics are covered by the across-instances and torn-tail
  // tests above.)
  store.recover();
  EXPECT_TRUE(store.find(gid(1), nid(1)).has_value());
  EXPECT_EQ(store.size(), 1u);
}

// ------------------------------------------------------------------
// Factory and overlay-level round trip
// ------------------------------------------------------------------

TEST(StoreFactory, SelectsBackendFromParams) {
  TapestryParams p;
  p.id = kSpec;
  const NodeId id = nid(0x5555);
  EXPECT_STREQ(make_object_store(p, id)->stats().backend, "memory");
  p.store_backend = StoreBackend::kSharded;
  EXPECT_STREQ(make_object_store(p, id)->stats().backend, "sharded");
  p.store_backend = StoreBackend::kPersistent;
  EXPECT_THROW((void)make_object_store(p, id), CheckError);  // no store_dir
  p.store_backend = StoreBackend::kReplicated;
  EXPECT_STREQ(make_object_store(p, id)->stats().backend, "replicated");
  p.store_backend = StoreBackend::kReplicatedPersistent;
  EXPECT_THROW((void)make_object_store(p, id), CheckError);  // no store_dir
  ScratchDir dir("factory");
  p.store_dir = dir.path;
  EXPECT_STREQ(make_object_store(p, id)->stats().backend,
               "replicated+persist");
  p.store_backend = StoreBackend::kPersistent;
  EXPECT_STREQ(make_object_store(p, id)->stats().backend, "persist");
}

/// publish_batch through the striped drain (ShardedStore) must equal the
/// serial publish loop record for record — the PR 3 determinism guarantee
/// extended to the concurrent backend.
TEST(StoreBackendOverlay, ShardedBatchPublishMatchesSerial) {
  const std::size_t n = 96, objects = 48;
  auto params_serial = test::small_params();
  params_serial.store_backend = StoreBackend::kMemory;
  params_serial.store_dir.clear();
  auto params_batch = params_serial;
  params_batch.store_backend = StoreBackend::kSharded;

  Rng rng_a(5), rng_b(5);
  RingMetric space_a(n + 8, rng_a), space_b(n + 8, rng_b);
  Network serial(space_a, params_serial, 77);
  Network batch(space_b, params_batch, 77);
  for (std::size_t i = 0; i < n; ++i) {
    serial.insert_static(i);
    batch.insert_static(i);
  }
  serial.rebuild_static_tables();
  batch.rebuild_static_tables();

  std::vector<ObjectDirectory::PublishRequest> reqs;
  Rng wl(123);
  const auto ids_a = serial.node_ids();
  for (std::size_t i = 0; i < objects; ++i) {
    const Guid g = test::make_guid(serial, i);
    reqs.push_back({ids_a[wl.next_u64(ids_a.size())], g});
  }
  Trace ta, tb;
  for (const auto& r : reqs) serial.publish(r.server, r.guid, &ta);
  batch.publish_batch(reqs, /*workers=*/4, &tb);

  EXPECT_EQ(ta.messages(), tb.messages());
  EXPECT_EQ(serial.total_object_pointers(), batch.total_object_pointers());
  for (const NodeId& id : serial.node_ids()) {
    const auto sa = sorted_snapshot(serial.node(id).store());
    const auto sb = sorted_snapshot(batch.node(id).store());
    ASSERT_EQ(sa.size(), sb.size()) << "node " << id.to_string();
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].first, sb[i].first);
      EXPECT_TRUE(record_eq(sa[i].second, sb[i].second));
    }
  }
}

/// Multi-threaded expiry sweeps over the striped backend must drop exactly
/// what the serial sweep drops.
TEST(StoreBackendOverlay, ParallelExpirySweepMatchesSerial) {
  const std::size_t n = 96;
  auto params = test::small_params();
  params.store_backend = StoreBackend::kSharded;
  params.store_dir.clear();
  params.pointer_ttl = 5.0;

  auto build = [&] {
    Rng rng(3);
    auto space = std::make_unique<RingMetric>(n + 8, rng);
    auto net = std::make_unique<Network>(*space, params, 21);
    for (std::size_t i = 0; i < n; ++i) net->insert_static(i);
    net->rebuild_static_tables();
    const auto ids = net->node_ids();
    Rng wl(8);
    // Two publish waves with different deadlines: t=0 (expires 5) and
    // t=4 (expires 9); at t=7 only the first wave is overdue.
    for (std::size_t i = 0; i < 24; ++i)
      net->publish(ids[wl.next_u64(ids.size())], test::make_guid(*net, i));
    net->events().run_until(4.0);
    for (std::size_t i = 24; i < 48; ++i)
      net->publish(ids[wl.next_u64(ids.size())], test::make_guid(*net, i));
    net->events().run_until(7.0);
    return std::make_pair(std::move(space), std::move(net));
  };
  auto [space_a, serial] = build();
  auto [space_b, parallel] = build();
  const std::size_t before = serial->total_object_pointers();
  ASSERT_EQ(before, parallel->total_object_pointers());

  serial->expire_pointers(1);
  parallel->expire_pointers(4);
  EXPECT_EQ(serial->total_object_pointers(),
            parallel->total_object_pointers());
  EXPECT_LT(serial->total_object_pointers(), before);  // wave 1 expired
  EXPECT_GT(serial->total_object_pointers(), 0u);      // wave 2 survives
  for (const NodeId& id : serial->node_ids()) {
    const auto sa = sorted_snapshot(serial->node(id).store());
    const auto sb = sorted_snapshot(parallel->node(id).store());
    ASSERT_EQ(sa.size(), sb.size()) << "node " << id.to_string();
    for (std::size_t i = 0; i < sa.size(); ++i)
      EXPECT_TRUE(record_eq(sa[i].second, sb[i].second));
  }
}

/// Overlay-level kill-and-resume: publish into a persistent overlay,
/// checkpoint, destroy the Network, rebuild the membership from the
/// manifest, restore — published() and every locate must come back.
TEST(StoreBackendOverlay, PersistCheckpointDestroyRecover) {
  ScratchDir dir("overlay_recover");
  const std::size_t n = 64, objects = 32;
  auto params = test::small_params();
  params.store_backend = StoreBackend::kPersistent;
  params.store_dir = dir.path;

  std::vector<std::pair<Guid, NodeId>> published_before;
  std::vector<Guid> guids;
  std::size_t found_before = 0;
  Rng rng_a(9);
  RingMetric space(n + 8, rng_a);
  {
    Network net(space, params, 31);
    for (std::size_t i = 0; i < n; ++i) net.insert_static(i);
    net.rebuild_static_tables();
    const auto ids = net.node_ids();
    Rng wl(55);
    for (std::size_t i = 0; i < objects; ++i) {
      const Guid g = test::make_guid(net, 1000 + i);
      guids.push_back(g);
      net.publish(ids[wl.next_u64(ids.size())], g);
    }
    Rng ql(66);
    for (const Guid& g : guids)
      if (net.locate(ids[ql.next_u64(ids.size())], g).found) ++found_before;
    net.checkpoint_stores(dir.path);
    published_before = net.published();
    // Network destroyed here — the "kill".
  }

  const auto manifest = ObjectDirectory::read_manifest(dir.path);
  ASSERT_EQ(manifest.nodes.size(), n);
  Network revived(space, params, 31);
  for (const auto& [idv, loc] : manifest.nodes)
    revived.insert_static(loc, NodeId(params.id, idv));
  revived.rebuild_static_tables();
  const double t = revived.restore_directory(dir.path);
  EXPECT_GE(t, 0.0);

  auto canon = [](std::vector<std::pair<Guid, NodeId>> v) {
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    return v;
  };
  EXPECT_EQ(canon(published_before), canon(revived.published()));

  const auto ids = revived.node_ids();
  Rng ql(66);
  std::size_t found_after = 0;
  for (const Guid& g : guids)
    if (revived.locate(ids[ql.next_u64(ids.size())], g).found) ++found_after;
  EXPECT_EQ(found_before, guids.size());
  EXPECT_EQ(found_after, guids.size());
  revived.check_property4();
}

// ------------------------------------------------------------------
// Quorum replication (ReplicatedStore + QuorumReplicator)
// ------------------------------------------------------------------

TapestryParams replicated_params() {
  auto p = test::small_params();
  p.store_backend = StoreBackend::kReplicated;
  p.store_dir.clear();
  return p;
}

/// A publish that reaches the root must mirror the record to the root's
/// holder set, acknowledged by at least W of the k holders, without the
/// mirrors leaking into any holder's replica-area-free visible state.
TEST(QuorumReplication, PublishMirrorsToWOfKHolders) {
  const auto params = replicated_params();
  auto g = test::static_ring_network(64, 11, params);
  Network& net = *g.net;
  QuorumReplicator* repl = net.directory().replicator();
  ASSERT_NE(repl, nullptr);

  const Guid obj = test::make_guid(net, 7);
  const NodeId server = g.ids[5];
  net.publish(server, obj);

  const Guid salted = salted_guid(obj, 0);
  const auto* holders = repl->holders(salted);
  ASSERT_NE(holders, nullptr);
  ASSERT_EQ(holders->size(), params.replication.k);
  const NodeId root = net.surrogate_root(salted);
  std::size_t acked = 0;
  for (const NodeId& h : *holders) {
    EXPECT_NE(h, root);  // the root never mirrors to itself
    auto* store = dynamic_cast<ReplicatedStore*>(&net.node(h).store());
    ASSERT_NE(store, nullptr);
    const auto copy = store->replica_find(salted, server);
    if (copy.has_value()) {
      ++acked;
      EXPECT_EQ(copy->server, server);
    }
  }
  EXPECT_GE(acked, params.replication.w);
  EXPECT_GE(repl->stats().replica_writes, params.replication.w);
  // Unpublish withdraws every mirror again.
  net.unpublish(server, obj);
  for (const NodeId& h : *holders) {
    auto* store = dynamic_cast<ReplicatedStore*>(&net.node(h).store());
    EXPECT_FALSE(store->replica_find(salted, server).has_value());
  }
}

/// An R-of-N quorum read merges the freshest copy per server and pushes it
/// back onto stale responders (read-repair).
TEST(QuorumReplication, QuorumReadMergesFreshestAndReadRepairs) {
  auto params = replicated_params();
  params.pointer_ttl = 100.0;  // finite deadlines so staleness is visible
  auto g = test::static_ring_network(64, 17, params);
  Network& net = *g.net;
  QuorumReplicator* repl = net.directory().replicator();
  ASSERT_NE(repl, nullptr);

  const Guid obj = test::make_guid(net, 21);
  const NodeId server = g.ids[9];
  net.publish(server, obj);
  const Guid salted = salted_guid(obj, 0);
  const auto* holders = repl->holders(salted);
  ASSERT_NE(holders, nullptr);
  ASSERT_GE(holders->size(), 2u);

  // Stale-ify the first responder's copy; the second responder still has
  // the fresh one, and w + r > k guarantees the read sees it.
  auto* first = dynamic_cast<ReplicatedStore*>(
      &net.node((*holders)[0]).store());
  ASSERT_NE(first, nullptr);
  const auto fresh = first->replica_find(salted, server);
  ASSERT_TRUE(fresh.has_value());
  PointerRecord stale = *fresh;
  stale.expires_at = fresh->expires_at - 50.0;
  first->replica_upsert(salted, stale);

  const auto repairs_before = repl->stats().read_repairs;
  const auto merged =
      repl->quorum_read(net.node(net.surrogate_root(salted)), salted,
                        net.now(), nullptr);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].server, server);
  EXPECT_EQ(merged[0].expires_at, fresh->expires_at);  // freshest won
  EXPECT_GT(repl->stats().read_repairs, repairs_before);
  // Read-repair restored the stale responder's deadline.
  EXPECT_EQ(first->replica_find(salted, server)->expires_at,
            fresh->expires_at);
}

/// Killing the current root of a published object between publish and
/// locate loses zero locates: the locate at the new surrogate falls back
/// to a quorum read over the old root's holder set.  No republish runs.
TEST(QuorumReplication, RootDeathLosesZeroLocates) {
  const auto params = replicated_params();
  auto g = test::grow_ring_network(64, 13, params);
  Network& net = *g.net;
  ASSERT_NE(net.directory().replicator(), nullptr);

  const std::size_t objects = 8;
  std::vector<Guid> guids;
  Rng wl(4);
  for (std::size_t i = 0; i < objects; ++i) {
    const Guid obj = test::make_guid(net, 100 + i);
    guids.push_back(obj);
    net.publish(g.ids[wl.next_u64(g.ids.size())], obj);
  }

  std::size_t kills = 0;
  for (const Guid& obj : guids) {
    const NodeId root = net.surrogate_root(salted_guid(obj, 0));
    if (!net.registry().is_live(root)) continue;  // a prior kill got it
    const auto servers = net.servers_of(obj);
    if (std::find(servers.begin(), servers.end(), root) != servers.end())
      continue;  // root is the server: its death would lose the object
    net.fail(root);
    ++kills;
  }
  ASSERT_GT(kills, 0u);

  std::size_t locatable = 0;
  for (const Guid& obj : guids) {
    const auto servers = net.servers_of(obj);
    // A root killed above may have been this object's server; the object
    // is legitimately gone then, not a replication loss.
    if (servers.empty() || !net.registry().is_live(servers[0])) continue;
    ++locatable;
    NodeId client = servers[0];
    for (const NodeId& id : g.ids) {  // a remote live client
      if (net.registry().is_live(id) && !(id == servers[0])) {
        client = id;
        break;
      }
    }
    EXPECT_TRUE(net.locate(client, obj).found)
        << "lost locate for " << obj.to_string();
  }
  ASSERT_GT(locatable, 0u);
}

/// A holder death re-replicates: the dead holder is replaced by the next
/// nearest live node and the surviving copies are merged onto it.
TEST(QuorumReplication, HolderDeathReReplicatesOntoReplacement) {
  const auto params = replicated_params();
  auto g = test::grow_ring_network(64, 19, params);
  Network& net = *g.net;
  QuorumReplicator* repl = net.directory().replicator();
  ASSERT_NE(repl, nullptr);

  const Guid obj = test::make_guid(net, 33);
  const NodeId server = g.ids[3];
  net.publish(server, obj);
  const Guid salted = salted_guid(obj, 0);
  const auto* holders = repl->holders(salted);
  ASSERT_NE(holders, nullptr);
  const std::vector<NodeId> before = *holders;
  ASSERT_EQ(before.size(), params.replication.k);

  const NodeId victim = before[0];
  net.fail(victim);

  const auto* after = repl->holders(salted);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->size(), params.replication.k);
  EXPECT_EQ(std::find(after->begin(), after->end(), victim), after->end());
  EXPECT_GE(repl->stats().rereplications, 1u);
  // The replacement (the one id not in the old set) holds the record.
  for (const NodeId& h : *after) {
    if (std::find(before.begin(), before.end(), h) != before.end()) continue;
    auto* store = dynamic_cast<ReplicatedStore*>(&net.node(h).store());
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->replica_find(salted, server).has_value())
        << "replacement " << h.to_string() << " missing the mirrored record";
  }
}

}  // namespace
}  // namespace tap
