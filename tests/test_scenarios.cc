// Fault-scenario suite (ChurnScenario's partition / rackfail / burst
// script): replay determinism of each scenario, the availability story
// each one exists to show (degrade under the fault, recover after soft
// state catches up), and byte-identical --metrics-out JSONL streams
// across same-seed runs.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/metric/transit_stub.h"
#include "src/sim/churn_driver.h"
#include "src/sim/metrics.h"
#include "test_util.h"

namespace tap {
namespace {

using test::small_params;

// Transit-stub sibling of test_util's ring builders — rackfail groups its
// victims by the space's stub domains.
test::GrownNetwork grow_ts_network(std::size_t n, std::uint64_t seed,
                                   TapestryParams params) {
  test::GrownNetwork g;
  Rng rng(seed);
  g.space = std::make_unique<TransitStubMetric>(n + 64, rng);
  g.net = std::make_unique<Network>(*g.space, params, seed ^ 0xabcdef);
  g.ids.push_back(g.net->bootstrap(0));
  for (std::size_t i = 1; i < n; ++i) g.ids.push_back(g.net->join(i));
  return g;
}

ChurnScenario quiet_scenario(std::uint64_t seed) {
  // No background churn: the scripted fault is the only disturbance.
  ChurnScenario sc;
  sc.horizon = 16.0;
  sc.epoch = 4.0;
  sc.join_rate = 0.0;
  sc.leave_rate = 0.0;
  sc.fail_rate = 0.0;
  sc.min_nodes = 24;
  sc.query_rate = 16.0;
  sc.objects = 24;
  sc.replicas = 1;
  sc.republish_interval = 4.0;
  sc.expiry_interval = 2.0;
  sc.heartbeat_interval = 4.0;
  sc.seed = seed;
  return sc;
}

std::size_t count_kind(const std::vector<std::string>& log, char kind) {
  std::size_t n = 0;
  for (const std::string& line : log)
    if (!line.empty() && line[0] == kind) ++n;
  return n;
}

std::string scratch_path(const char* stem) {
  return testing::TempDir() + "tap_" + stem + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// -------------------------------------------------------------- partition

TEST(Scenarios, PartitionDegradesThenHealsDeterministically) {
  auto run_once = [](std::vector<std::string>* log) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = test::grow_ring_network(48, 9, p);
    ChurnScenario sc = quiet_scenario(9);
    sc.partition_at = 4.0;   // epoch 1 (4..8) runs fully partitioned
    sc.partition_heal = 10.0;  // republish at 12 refreshes cross-side state
    ChurnDriver driver(*g.net, sc);
    const ChurnReport rep = driver.run();
    *log = driver.event_log();
    EXPECT_FALSE(g.net->partition_active()) << "heal must clear the cut";
    return rep;
  };

  std::vector<std::string> log_a, log_b;
  const ChurnReport a = run_once(&log_a);
  const ChurnReport b = run_once(&log_b);
  EXPECT_EQ(log_a, log_b) << "same seed must replay the same event trace";
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.found, b.found);

  EXPECT_EQ(count_kind(log_a, 'X'), 1u) << "one partition cut";
  EXPECT_EQ(count_kind(log_a, 'H'), 1u) << "one heal";

  // The cut must actually cost availability while it holds...
  ASSERT_EQ(a.epochs.size(), 4u);
  EXPECT_GT(a.epochs[1].queries, 10u);
  EXPECT_LT(a.epochs[1].availability(), 0.95)
      << "a partitioned overlay cannot resolve cross-side queries";
  // ...and the final epoch (heal + one republish round later) recovers.
  EXPECT_GT(a.epochs[3].queries, 10u);
  EXPECT_GT(a.epochs[3].availability(), 0.90)
      << "soft state must restore availability after the heal";
}

TEST(Scenarios, PartitionKeepsMembersAlive) {
  // Partition != death: no fails are recorded and the population at the
  // end matches the population at the start.
  TapestryParams p = small_params();
  p.pointer_ttl = 8.0;
  auto g = test::grow_ring_network(48, 11, p);
  const std::size_t before = g.net->size();
  ChurnScenario sc = quiet_scenario(11);
  sc.partition_at = 4.0;
  sc.partition_heal = 10.0;
  ChurnDriver driver(*g.net, sc);
  const ChurnReport rep = driver.run();
  EXPECT_EQ(rep.fails, 0u);
  EXPECT_EQ(g.net->size(), before);
}

// --------------------------------------------------------------- rackfail

TEST(Scenarios, RackfailKillsOneStubAndRecovers) {
  auto run_once = [](std::vector<std::string>* log, std::size_t* size_after) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = grow_ts_network(64, 13, p);
    ChurnScenario sc = quiet_scenario(13);
    sc.objects = 32;
    sc.rackfail_at = 4.0;
    ChurnDriver driver(*g.net, sc);
    const ChurnReport rep = driver.run();
    *log = driver.event_log();
    *size_after = g.net->size();
    return rep;
  };

  std::vector<std::string> log_a, log_b;
  std::size_t size_a = 0, size_b = 0;
  const ChurnReport a = run_once(&log_a, &size_a);
  const ChurnReport b = run_once(&log_b, &size_b);
  EXPECT_EQ(log_a, log_b) << "same seed must replay the same event trace";
  EXPECT_EQ(size_a, size_b);

  EXPECT_EQ(count_kind(log_a, 'K'), 1u) << "exactly one rack kill";
  EXPECT_GT(a.fails, 0u) << "the rack must have live members to kill";
  EXPECT_EQ(size_a, 64u - a.fails);

  // Availability is over objects that still have a live replica, so after
  // a heartbeat interval of repair the final epoch must be healthy again.
  ASSERT_EQ(a.epochs.size(), 4u);
  EXPECT_GT(a.epochs[3].queries, 10u);
  EXPECT_GT(a.epochs[3].availability(), 0.90)
      << "repair must route around the dead rack";
}

// --------------------------------------------------------------- rootfail

TEST(Scenarios, RootfailKillsObjectRootsDeterministically) {
  auto run_once = [](std::vector<std::string>* log) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = test::grow_ring_network(48, 23, p);
    ChurnScenario sc = quiet_scenario(23);
    sc.popularity = ChurnScenario::Popularity::kZipf;
    sc.rootfail_at = 4.0;
    ChurnDriver driver(*g.net, sc);
    const ChurnReport rep = driver.run();
    *log = driver.event_log();
    return rep;
  };

  std::vector<std::string> log_a, log_b;
  const ChurnReport a = run_once(&log_a);
  const ChurnReport b = run_once(&log_b);
  EXPECT_EQ(log_a, log_b) << "same seed must replay the same event trace";
  EXPECT_EQ(a.fails, b.fails);

  // Every targeted object either lost its root ('O') or was skipped
  // because the root serves the object itself ('o').
  EXPECT_EQ(count_kind(log_a, 'O') + count_kind(log_a, 'o'), 3u);
  EXPECT_GE(count_kind(log_a, 'O'), 1u) << "at least one root must die";
  EXPECT_EQ(a.fails, count_kind(log_a, 'O'));

  // With the default republish backstop running, the final epoch (one
  // republish round after the kills) must be healthy again.
  ASSERT_EQ(a.epochs.size(), 4u);
  EXPECT_GT(a.epochs[3].queries, 10u);
  EXPECT_GT(a.epochs[3].availability(), 0.90)
      << "soft state must re-deposit records at the new surrogate roots";
}

/// The tentpole claim: with the §6.5 republish backstop pushed past the
/// horizon, a memory overlay loses locates to root kills for good, while
/// the replicated overlay's quorum reads keep every locate resolving.
TEST(Scenarios, RootfailReplicatedLosesNoLocatesWithoutBackstop) {
  auto run_once = [](StoreBackend backend) {
    TapestryParams p = small_params();
    p.store_backend = backend;
    p.store_dir.clear();
    auto g = test::grow_ring_network(48, 29, p);
    ChurnScenario sc = quiet_scenario(29);
    sc.popularity = ChurnScenario::Popularity::kZipf;
    sc.rootfail_at = 4.0;
    sc.rootfail_count = 6;
    sc.republish_interval = 1000.0;  // backstop disabled for this horizon
    ChurnDriver driver(*g.net, sc);
    return driver.run();
  };

  const ChurnReport mem = run_once(StoreBackend::kMemory);
  const ChurnReport rep = run_once(StoreBackend::kReplicated);
  ASSERT_GT(mem.fails, 0u);
  EXPECT_EQ(mem.fails, rep.fails) << "both runs must kill the same roots";
  ASSERT_GT(rep.queries, 50u);

  // Zero lost locates with replication; without it the kills must show.
  EXPECT_EQ(rep.found, rep.queries)
      << "quorum reads must absorb every root kill";
  EXPECT_GE(rep.found * mem.queries, mem.found * rep.queries)
      << "replicated availability must dominate memory availability";
  EXPECT_LT(mem.availability(), 1.0)
      << "without the backstop the memory overlay must lose locates "
         "(otherwise this test proves nothing)";
}

// ------------------------------------------------------------------ burst

TEST(Scenarios, BurstScalesChurnRateDeterministically) {
  auto run_once = [](std::vector<std::string>* log) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = test::grow_ring_network(48, 17, p);
    ChurnScenario sc = quiet_scenario(17);
    sc.join_rate = 0.4;
    sc.leave_rate = 0.3;
    sc.fail_rate = 0.3;
    sc.burst_every = 4.0;
    sc.burst_len = 2.0;
    sc.burst_factor = 8.0;
    ChurnDriver driver(*g.net, sc);
    const ChurnReport rep = driver.run();
    *log = driver.event_log();
    return rep;
  };

  std::vector<std::string> log_a, log_b;
  const ChurnReport a = run_once(&log_a);
  const ChurnReport b = run_once(&log_b);
  EXPECT_EQ(log_a, log_b) << "same seed must replay the same event trace";
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.fails, b.fails);

  // The toggle events must actually fire, and the bursts must drive real
  // churn (8x rate over the burst windows dominates the quiet stretches).
  EXPECT_GE(count_kind(log_a, 'U'), 2u) << "burst start + end";
  EXPECT_GT(a.joins + a.leaves + a.fails, 20u);
  EXPECT_GT(a.availability(), 0.5);
}

// ------------------------------------------------------- metrics export

TEST(Scenarios, MetricsJsonlIsSeedDeterministic) {
  auto run_once = [](const std::string& path) {
    TapestryParams p = small_params();
    p.pointer_ttl = 8.0;
    auto g = test::grow_ring_network(48, 9, p);
    ChurnScenario sc = quiet_scenario(9);
    sc.join_rate = 0.4;
    sc.leave_rate = 0.3;
    sc.fail_rate = 0.3;
    sc.partition_at = 4.0;
    sc.partition_heal = 10.0;
    sc.metrics_out = path;
    ChurnDriver driver(*g.net, sc);
    driver.run();
  };

  const std::string path_a = scratch_path("metrics_a");
  const std::string path_b = scratch_path("metrics_b");
  run_once(path_a);
  run_once(path_b);
  const std::string a = slurp(path_a);
  const std::string b = slurp(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same-seed runs must emit byte-identical JSONL";

  // One line per epoch boundary plus the terminal drain snapshot, each a
  // self-contained JSON object carrying the deterministic metric set.
  std::size_t lines = 0;
  std::istringstream in(a);
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("{\"t\":", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"tapestry_messages_total\":"), std::string::npos);
    EXPECT_NE(line.find("\"tapestry_locate_hops\":"), std::string::npos);
    EXPECT_EQ(line.find("tapestry_repair_wave_seconds"), std::string::npos)
        << "volatile metrics must stay out of the deterministic stream";
  }
  EXPECT_EQ(lines, 5u) << "4 epochs + drain";

  // The stream carries real measurements, not a page of zeros: the last
  // snapshot's locate counter must be positive.
  const std::string last = a.substr(a.rfind("{\"t\":"));
  EXPECT_EQ(last.find("\"tapestry_locate_total\":0,"), std::string::npos);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Scenarios, MetricsCountersMatchReport) {
  // The registry's churn counters and the driver's report describe the
  // same events.
  TapestryParams p = small_params();
  p.pointer_ttl = 8.0;
  auto g = test::grow_ring_network(48, 21, p);
  ChurnScenario sc = quiet_scenario(21);
  sc.join_rate = 0.5;
  sc.leave_rate = 0.4;
  sc.fail_rate = 0.3;
  metrics::reset_all();
  ChurnDriver driver(*g.net, sc);
  const ChurnReport rep = driver.run();
  EXPECT_EQ(metrics::churn_joins_total().value(), rep.joins);
  EXPECT_EQ(metrics::churn_leaves_total().value(), rep.leaves);
  EXPECT_EQ(metrics::churn_fails_total().value(), rep.fails);
  EXPECT_EQ(metrics::locate_total().value(), rep.queries);
  EXPECT_EQ(metrics::locate_found_total().value(), rep.found);
  EXPECT_EQ(metrics::locate_hops().count(), rep.queries);
}

}  // namespace
}  // namespace tap
