// Identifier semantics: digit extraction, prefixes, salting, spec handling.
#include "src/tapestry/id.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/assert.h"
#include "src/common/rng.h"

namespace tap {
namespace {

TEST(IdSpec, ValidityRules) {
  EXPECT_TRUE((IdSpec{4, 10}.valid()));
  EXPECT_TRUE((IdSpec{1, 64}.valid()));
  EXPECT_TRUE((IdSpec{8, 8}.valid()));
  EXPECT_FALSE((IdSpec{0, 10}.valid()));   // zero-width digits
  EXPECT_FALSE((IdSpec{4, 0}.valid()));    // no digits
  EXPECT_FALSE((IdSpec{8, 9}.valid()));    // 72 bits > 64
  EXPECT_FALSE((IdSpec{9, 4}.valid()));    // digit wider than a byte
}

TEST(IdSpec, DerivedQuantities) {
  const IdSpec spec{4, 10};
  EXPECT_EQ(spec.radix(), 16u);
  EXPECT_EQ(spec.total_bits(), 40u);
}

TEST(Id, DefaultConstructedIsInvalid) {
  const Id id;
  EXPECT_FALSE(id.valid());
}

TEST(Id, DigitExtractionMostSignificantFirst) {
  const IdSpec spec{4, 4};
  const Id id(spec, 0x1A2Fu);
  EXPECT_EQ(id.digit(0), 0x1u);
  EXPECT_EQ(id.digit(1), 0xAu);
  EXPECT_EQ(id.digit(2), 0x2u);
  EXPECT_EQ(id.digit(3), 0xFu);
}

TEST(Id, DigitExtractionNonNibbleRadix) {
  const IdSpec spec{3, 5};  // radix 8, 15 bits
  const Id id(spec, 0b101'110'000'011'111u);
  EXPECT_EQ(id.digit(0), 0b101u);
  EXPECT_EQ(id.digit(1), 0b110u);
  EXPECT_EQ(id.digit(2), 0b000u);
  EXPECT_EQ(id.digit(3), 0b011u);
  EXPECT_EQ(id.digit(4), 0b111u);
}

TEST(Id, ValueRangeChecked) {
  const IdSpec spec{4, 4};  // 16 bits
  EXPECT_NO_THROW(Id(spec, 0xFFFFu));
  EXPECT_THROW(Id(spec, 0x10000u), CheckError);
}

TEST(Id, PrefixMatching) {
  const IdSpec spec{4, 4};
  const Id a(spec, 0x12ABu);
  const Id b(spec, 0x12CDu);
  EXPECT_TRUE(a.matches_prefix(b, 0));
  EXPECT_TRUE(a.matches_prefix(b, 1));
  EXPECT_TRUE(a.matches_prefix(b, 2));
  EXPECT_FALSE(a.matches_prefix(b, 3));
  EXPECT_FALSE(a.matches_prefix(b, 4));
}

TEST(Id, CommonPrefixLen) {
  const IdSpec spec{4, 4};
  EXPECT_EQ(Id(spec, 0x1234u).common_prefix_len(Id(spec, 0x1234u)), 4u);
  EXPECT_EQ(Id(spec, 0x1234u).common_prefix_len(Id(spec, 0x1235u)), 3u);
  EXPECT_EQ(Id(spec, 0x1234u).common_prefix_len(Id(spec, 0x1934u)), 1u);
  EXPECT_EQ(Id(spec, 0x1234u).common_prefix_len(Id(spec, 0x9234u)), 0u);
}

TEST(Id, PrefixValue) {
  const IdSpec spec{4, 4};
  const Id id(spec, 0x1A2Fu);
  EXPECT_EQ(id.prefix_value(0), 0u);
  EXPECT_EQ(id.prefix_value(1), 0x1u);
  EXPECT_EQ(id.prefix_value(2), 0x1Au);
  EXPECT_EQ(id.prefix_value(4), 0x1A2Fu);
}

TEST(Id, WithDigitReplacesExactlyOne) {
  const IdSpec spec{4, 4};
  const Id id(spec, 0x1234u);
  EXPECT_EQ(id.with_digit(0, 0xF).value(), 0xF234u);
  EXPECT_EQ(id.with_digit(2, 0x0).value(), 0x1204u);
  EXPECT_EQ(id.with_digit(3, 0xB).value(), 0x123Bu);
  EXPECT_THROW((void)id.with_digit(1, 16), CheckError);
}

TEST(Id, ToStringHex) {
  const IdSpec spec{4, 4};
  EXPECT_EQ(Id(spec, 0x1A2Fu).to_string(), "1A2F");
  EXPECT_EQ(Id().to_string(), "<invalid>");
}

TEST(Id, ToStringWideDigits) {
  const IdSpec spec{5, 3};  // radix 32
  const Id id(spec, (7u << 10) | (31u << 5) | 1u);
  EXPECT_EQ(id.to_string(), "7.31.1");
}

TEST(Id, OrderingIsByValue) {
  const IdSpec spec{4, 4};
  EXPECT_LT(Id(spec, 1), Id(spec, 2));
  EXPECT_FALSE(Id(spec, 2) < Id(spec, 2));
}

TEST(Id, RandomIsUniformAcrossFirstDigit) {
  const IdSpec spec{4, 8};
  Rng rng(7);
  std::vector<int> counts(16, 0);
  constexpr int kDraws = 16000;
  for (int i = 0; i < kDraws; ++i) ++counts[Id::random(spec, rng).digit(0)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 16 / 2);
    EXPECT_LT(c, kDraws / 16 * 2);
  }
}

TEST(Id, RandomRespectsNamespaceMask) {
  const IdSpec spec{4, 4};
  Rng rng(9);
  for (int i = 0; i < 1000; ++i)
    EXPECT_LT(Id::random(spec, rng).value(), 0x10000u);
}

TEST(SaltedGuid, SaltZeroIsIdentity) {
  const IdSpec spec{4, 8};
  Rng rng(3);
  const Guid g = Id::random(spec, rng);
  EXPECT_EQ(salted_guid(g, 0), g);
}

TEST(SaltedGuid, DistinctSaltsGiveDistinctNames) {
  const IdSpec spec{4, 8};
  Rng rng(4);
  const Guid g = Id::random(spec, rng);
  std::set<std::uint64_t> seen;
  for (unsigned salt = 0; salt < 16; ++salt)
    seen.insert(salted_guid(g, salt).value());
  EXPECT_EQ(seen.size(), 16u);
}

TEST(SaltedGuid, DeterministicAcrossCalls) {
  const IdSpec spec{4, 8};
  const Guid g(spec, 0x12345678u);
  EXPECT_EQ(salted_guid(g, 3), salted_guid(g, 3));
}

TEST(SaltedGuid, StaysInNamespace) {
  const IdSpec spec{4, 4};
  const Guid g(spec, 0x1234u);
  for (unsigned salt = 0; salt < 64; ++salt)
    EXPECT_LT(salted_guid(g, salt).value(), 0x10000u);
}

TEST(IdHash, UsableInUnorderedContainers) {
  const IdSpec spec{4, 8};
  std::hash<Id> h;
  EXPECT_EQ(h(Id(spec, 42)), h(Id(spec, 42)));
  EXPECT_NE(h(Id(spec, 42)), h(Id(spec, 43)));
}

}  // namespace
}  // namespace tap
