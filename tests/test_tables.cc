// Data-structure semantics: NeighborSet capacity/eviction/pinning,
// RoutingTable self-entries and backpointers, ObjectStore records and
// soft-state expiry.
#include <gtest/gtest.h>

#include "src/tapestry/neighbor_set.h"
#include "src/tapestry/object_store.h"
#include "src/tapestry/routing_table.h"

namespace tap {
namespace {

const IdSpec kSpec{4, 4};

NodeId nid(std::uint64_t v) { return NodeId(kSpec, v); }

// ------------------------------------------------------------ NeighborSet

TEST(NeighborSet, KeepsClosestUpToCapacity) {
  NeighborSet set(2);
  EXPECT_TRUE(set.consider(nid(1), 5.0).inserted);
  EXPECT_TRUE(set.consider(nid(2), 3.0).inserted);
  EXPECT_EQ(*set.primary(), nid(2));

  // Farther candidate bounces off a full set.
  const auto r = set.consider(nid(3), 9.0);
  EXPECT_FALSE(r.inserted);
  EXPECT_FALSE(r.evicted.has_value());
  EXPECT_EQ(set.size(), 2u);

  // Closer candidate evicts the farthest member.
  const auto r2 = set.consider(nid(4), 1.0);
  EXPECT_TRUE(r2.inserted);
  ASSERT_TRUE(r2.evicted.has_value());
  EXPECT_EQ(*r2.evicted, nid(1));
  EXPECT_EQ(*set.primary(), nid(4));
}

TEST(NeighborSet, EntriesSortedByDistanceThenId) {
  NeighborSet set(4);
  set.consider(nid(5), 2.0);
  set.consider(nid(3), 2.0);
  set.consider(nid(9), 1.0);
  const auto& e = set.entries();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].id, nid(9));
  EXPECT_EQ(e[1].id, nid(3));  // distance tie broken by id
  EXPECT_EQ(e[2].id, nid(5));
}

TEST(NeighborSet, ReconsiderUpdatesDistance) {
  NeighborSet set(3);
  set.consider(nid(1), 5.0);
  set.consider(nid(2), 1.0);
  EXPECT_EQ(*set.primary(), nid(2));
  // Node 1 moved closer (relocation): same member, new rank.
  EXPECT_TRUE(set.consider(nid(1), 0.5).inserted);
  EXPECT_EQ(*set.primary(), nid(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(NeighborSet, RemoveAndContains) {
  NeighborSet set(2);
  set.consider(nid(1), 1.0);
  EXPECT_TRUE(set.contains(nid(1)));
  EXPECT_TRUE(set.remove(nid(1)));
  EXPECT_FALSE(set.remove(nid(1)));
  EXPECT_FALSE(set.contains(nid(1)));
  EXPECT_TRUE(set.empty());
}

TEST(NeighborSet, TieBreaksDeterministicallyById) {
  // Equal distances order by id, so the set contents converge to the same
  // answer regardless of insertion order (static-vs-grown equivalence).
  NeighborSet set(1);
  set.consider(nid(1), 2.0);
  const auto r = set.consider(nid(0), 2.0);  // same distance, smaller id
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(*r.evicted, nid(1));
  EXPECT_EQ(*set.primary(), nid(0));
  // The mirror case: a larger id at the same distance bounces off.
  const auto r2 = set.consider(nid(2), 2.0);
  EXPECT_FALSE(r2.inserted);
  EXPECT_EQ(*set.primary(), nid(0));
}

TEST(NeighborSet, PinnedMembersExceedCapacity) {
  NeighborSet set(1);
  set.consider(nid(1), 1.0);
  set.pin(nid(2), 9.0);  // pinned insert ignores capacity
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.pinned_members(), (std::vector<NodeId>{nid(2)}));
  EXPECT_EQ(set.unpinned_count(), 1u);

  // A closer unpinned candidate evicts the unpinned member, never the pin.
  const auto r = set.consider(nid(3), 0.5);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(*r.evicted, nid(1));
  EXPECT_TRUE(set.contains(nid(2)));
}

TEST(NeighborSet, UnpinRestoresCapacityPressure) {
  NeighborSet set(1);
  set.consider(nid(1), 1.0);
  set.pin(nid(2), 9.0);
  std::vector<NodeId> evicted;
  set.unpin(nid(2), evicted);
  // Now over capacity: the farthest unpinned member (2) must go.
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], nid(2));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(nid(1)));
}

TEST(NeighborSet, PinExistingMember) {
  NeighborSet set(2);
  set.consider(nid(1), 1.0);
  set.pin(nid(1), 1.0);
  EXPECT_EQ(set.pinned_members(), (std::vector<NodeId>{nid(1)}));
  EXPECT_EQ(set.size(), 1u);  // no duplicate
}

TEST(NeighborSet, ZeroCapacityRejected) {
  NeighborSet set(0);
  EXPECT_THROW(set.consider(nid(1), 1.0), CheckError);
}

// ----------------------------------------------------------- RoutingTable

TEST(RoutingTable, SelfEntriesSeedEveryLevel) {
  const NodeId self = nid(0x1A2F);
  RoutingTable table(kSpec, self, 2);
  EXPECT_EQ(*table.primary(0, 0x1), self);
  EXPECT_EQ(*table.primary(1, 0xA), self);
  EXPECT_EQ(*table.primary(2, 0x2), self);
  EXPECT_EQ(*table.primary(3, 0xF), self);
  // Other slots start empty.
  EXPECT_FALSE(table.primary(0, 0x2).has_value());
  EXPECT_EQ(table.total_entries(), 0u);  // self-entries not counted as links
}

TEST(RoutingTable, RowHasOtherDetectsCompany) {
  const NodeId self = nid(0x1000);
  RoutingTable table(kSpec, self, 2);
  EXPECT_FALSE(table.row_has_other(0));
  table.consider(0, 0x2, nid(0x2AAA), 1.0);
  EXPECT_TRUE(table.row_has_other(0));
  EXPECT_FALSE(table.row_has_other(1));
}

TEST(RoutingTable, RowMembersAndAllNeighbors) {
  const NodeId self = nid(0x1000);
  RoutingTable table(kSpec, self, 2);
  table.consider(0, 0x2, nid(0x2AAA), 1.0);
  table.consider(1, 0x3, nid(0x13BB), 2.0);
  const auto row0 = table.row_members(0);
  EXPECT_EQ(row0.size(), 2u);  // self + 2AAA
  const auto all = table.all_neighbors();
  EXPECT_EQ(all.size(), 2u);  // self excluded
  EXPECT_EQ(table.total_entries(), 2u);
}

TEST(RoutingTable, BackpointerBookkeeping) {
  const NodeId self = nid(0x1000);
  RoutingTable table(kSpec, self, 2);
  table.add_backpointer(1, nid(0x1234));
  table.add_backpointer(1, nid(0x1567));
  table.add_backpointer(2, nid(0x1234));
  EXPECT_EQ(table.backpointers(1).size(), 2u);
  EXPECT_EQ(table.all_backpointers().size(), 2u);  // unique nodes
  table.remove_backpointer(1, nid(0x1234));
  EXPECT_EQ(table.backpointers(1).size(), 1u);
  EXPECT_EQ(table.all_backpointers().size(), 2u);  // still at level 2
}

// ---------------------------------------------------- MemoryStore backend
// (Cross-backend conformance lives in test_object_store.cc; these pin the
// reference backend's semantics directly.)

Guid gid(std::uint64_t v) { return Guid(kSpec, v); }

TEST(ObjectStore, UpsertFindRemove) {
  MemoryStore store;
  store.upsert(gid(0xAAAA), PointerRecord{nid(1), std::nullopt, 0, false, 10});
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.find(gid(0xAAAA), nid(1)).has_value());
  EXPECT_FALSE(store.find(gid(0xAAAA), nid(2)).has_value());
  EXPECT_TRUE(store.remove(gid(0xAAAA), nid(1)));
  EXPECT_FALSE(store.remove(gid(0xAAAA), nid(1)));
  EXPECT_TRUE(store.empty());
}

TEST(ObjectStore, MultipleReplicasPerGuid) {
  // Tapestry keeps a pointer per replica (§2.4), unlike PRR.
  MemoryStore store;
  store.upsert(gid(7), PointerRecord{nid(1), std::nullopt, 0, false, 10});
  store.upsert(gid(7), PointerRecord{nid(2), nid(1), 1, false, 10});
  EXPECT_EQ(store.find_all(gid(7)).size(), 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ObjectStore, UpsertReplacesSameServer) {
  MemoryStore store;
  store.upsert(gid(7), PointerRecord{nid(1), std::nullopt, 0, false, 10});
  store.upsert(gid(7), PointerRecord{nid(1), nid(9), 3, true, 20});
  EXPECT_EQ(store.size(), 1u);
  const auto rec = store.find(gid(7), nid(1));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level, 3u);
  EXPECT_EQ(rec->expires_at, 20);
  ASSERT_TRUE(rec->last_hop.has_value());
  EXPECT_EQ(*rec->last_hop, nid(9));
}

TEST(ObjectStore, VisitorMatchesFindAll) {
  MemoryStore store;
  store.upsert(gid(7), PointerRecord{nid(1), std::nullopt, 0, false, 10});
  store.upsert(gid(7), PointerRecord{nid(2), nid(1), 1, false, 10});
  store.upsert(gid(8), PointerRecord{nid(3), std::nullopt, 0, false, 10});
  std::vector<PointerRecord> seen;
  store.for_each_of(gid(7), [&](const Guid& g, const PointerRecord& r) {
    EXPECT_EQ(g, gid(7));
    seen.push_back(r);
  });
  const auto all = store.find_all(gid(7));
  ASSERT_EQ(seen.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(seen[i].server, all[i].server);
  store.for_each_of(gid(9), [&](const Guid&, const PointerRecord&) {
    FAIL() << "no records for this guid";
  });
}

TEST(ObjectStore, StatsCounters) {
  MemoryStore store;
  store.upsert(gid(1), PointerRecord{nid(1), std::nullopt, 0, false, 5.0});
  store.upsert(gid(1), PointerRecord{nid(2), std::nullopt, 0, false, 1.0});
  store.remove(gid(1), nid(1));
  store.remove_expired(3.0);
  const StoreStats s = store.stats();
  EXPECT_STREQ(s.backend, "memory");
  EXPECT_EQ(s.records, 0u);
  EXPECT_EQ(s.upserts, 2u);
  EXPECT_EQ(s.removes, 1u);
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.stripes, 1u);
}

TEST(ObjectStore, SoftStateExpiry) {
  MemoryStore store;
  store.upsert(gid(1), PointerRecord{nid(1), std::nullopt, 0, false, 5.0});
  store.upsert(gid(1), PointerRecord{nid(2), std::nullopt, 0, false, 15.0});
  store.upsert(gid(2), PointerRecord{nid(3), std::nullopt, 0, false, 3.0});

  EXPECT_EQ(store.find_live(gid(1), 10.0).size(), 1u);  // one expired
  EXPECT_EQ(store.find_live(gid(1), 0.0).size(), 2u);

  EXPECT_EQ(store.remove_expired(10.0), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.find_all(gid(2)).empty());
}

TEST(ObjectStore, SnapshotIsStable) {
  MemoryStore store;
  for (std::uint64_t i = 0; i < 10; ++i)
    store.upsert(gid(i), PointerRecord{nid(i), std::nullopt, 0, false, 1.0});
  auto snap = store.snapshot();
  EXPECT_EQ(snap.size(), 10u);
  // Mutating the store does not disturb the snapshot.
  store.remove(gid(3), nid(3));
  EXPECT_EQ(snap.size(), 10u);
}

TEST(ObjectStore, InvalidUpsertRejected) {
  MemoryStore store;
  EXPECT_THROW(store.upsert(Guid(), PointerRecord{nid(1), std::nullopt, 0,
                                                  false, 1.0}),
               CheckError);
}

}  // namespace
}  // namespace tap
