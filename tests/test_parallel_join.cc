// Simultaneous insertion (§4.4, Theorem 6): batches of nodes inserting at
// overlapping times — with genuinely interleaved message delivery — must
// leave the network with no Property 1 holes, including the adversarial
// same-hole and same-prefix-different-hole conflicts of Lemmas 5 and 6.
#include <gtest/gtest.h>

#include <set>

#include "src/tapestry/parallel_join.h"
#include "test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::make_guid;
using test::small_params;

ParallelJoinCoordinator::Request req(Location loc, NodeId gw, double t,
                                     std::optional<NodeId> id = std::nullopt) {
  ParallelJoinCoordinator::Request r;
  r.loc = loc;
  r.gateway = gw;
  r.start_time = t;
  r.id = id;
  return r;
}

TEST(ParallelJoin, SingleAsyncJoinMatchesInvariants) {
  auto g = grow_ring_network(64, 120);
  ParallelJoinCoordinator coord(*g.net, 0.01);
  const auto outcomes = coord.run({req(64, g.ids[0], 0.0)});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(g.net->contains(outcomes[0].id));
  EXPECT_FALSE(g.net->node(outcomes[0].id).inserting);
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
}

TEST(ParallelJoin, ConcurrentBatchLeavesNoHoles) {
  auto g = grow_ring_network(96, 121);
  ParallelJoinCoordinator coord(*g.net, 0.05);
  std::vector<ParallelJoinCoordinator::Request> reqs;
  for (int i = 0; i < 16; ++i)
    reqs.push_back(req(96 + i, g.ids[static_cast<std::size_t>(i) * 3 %
                                     g.ids.size()],
                       0.001 * i));
  const auto outcomes = coord.run(reqs);
  EXPECT_EQ(g.net->size(), 96u + 16u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(g.net->contains(o.id));
    EXPECT_GE(o.core_time, o.start_time);
    EXPECT_GE(o.done_time, o.core_time);
    EXPECT_GT(o.messages, 0u);
  }
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  // No pinned entries may survive the batch.
  for (const NodeId& id : g.net->node_ids()) {
    const auto& table = g.net->node(id).table();
    for (unsigned l = 0; l < g.net->params().id.num_digits; ++l)
      for (unsigned j = 0; j < 16; ++j)
        EXPECT_TRUE(table.at(l, j).pinned_members().empty());
  }
}

TEST(ParallelJoin, SameHoleConflictBothLearnOfEachOther) {
  // Lemma 5: craft two inserters that fill the *same* hole: same prefix
  // digits, different tails, where no existing node carries the prefix.
  auto g = grow_ring_network(64, 122);
  // Find a 2-digit prefix no live node carries.
  const IdSpec spec = g.net->params().id;
  std::optional<Id> free_prefix;
  Rng probe(9);
  for (int t = 0; t < 4096 && !free_prefix; ++t) {
    const Id cand = Id::random(spec, probe);
    bool taken = false;
    for (const NodeId& id : g.net->node_ids())
      if (id.matches_prefix(cand, 2)) taken = true;
    if (!taken) free_prefix = cand;
  }
  ASSERT_TRUE(free_prefix.has_value()) << "no free prefix in a 64-node net";
  const NodeId n1 = free_prefix->with_digit(7, 1);
  const NodeId n2 = free_prefix->with_digit(7, 2);
  ASSERT_FALSE(n1 == n2);

  ParallelJoinCoordinator coord(*g.net, 0.08);
  coord.run({req(64, g.ids[0], 0.0, n1), req(65, g.ids[5], 0.0001, n2)});

  // Both nodes must know each other (they share >= 2 digits, so each fills
  // the other's table at the shared-prefix levels).
  const unsigned gcp = n1.common_prefix_len(n2);
  for (unsigned l = 0; l <= 2 && l < gcp; ++l) {
    EXPECT_TRUE(g.net->node(n1).table().at(l, n2.digit(l)).contains(n2))
        << "n1 missing n2 at level " << l;
    EXPECT_TRUE(g.net->node(n2).table().at(l, n1.digit(l)).contains(n1))
        << "n2 missing n1 at level " << l;
  }
  g.net->check_property1();
}

TEST(ParallelJoin, DifferentHolesSamePrefixWatchListCatches) {
  // Lemma 6: two inserters under the same (existing) prefix β but filling
  // different digit holes; the watch list / pinned forwarding must connect
  // them.  Construction: β = an occupied first digit; i, j = two second
  // digits no existing node carries under β.
  auto g = grow_ring_network(64, 123);
  const IdSpec spec = g.net->params().id;
  const unsigned d0 = g.ids[0].digit(0);  // an occupied first digit
  std::vector<bool> second_taken(16, false);
  for (const NodeId& id : g.net->node_ids())
    if (id.digit(0) == d0) second_taken[id.digit(1)] = true;
  std::vector<unsigned> free_digits;
  for (unsigned j = 0; j < 16; ++j)
    if (!second_taken[j]) free_digits.push_back(j);
  ASSERT_GE(free_digits.size(), 2u) << "need two free second digits";
  const unsigned di = free_digits[0];
  const unsigned dj = free_digits[1];

  Rng tail_rng(10);
  const NodeId n1 =
      Id::random(spec, tail_rng).with_digit(0, d0).with_digit(1, di);
  const NodeId n2 =
      Id::random(spec, tail_rng).with_digit(0, d0).with_digit(1, dj);

  ParallelJoinCoordinator coord(*g.net, 0.08);
  const auto outcomes =
      coord.run({req(64, g.ids[0], 0.0, n1), req(65, g.ids[7], 0.0001, n2)});
  EXPECT_EQ(outcomes[0].alpha, 1u);
  EXPECT_EQ(outcomes[1].alpha, 1u);

  // Each must have discovered the other: n2 fills n1's (β, dj) hole at
  // level 1 and vice versa.
  EXPECT_TRUE(g.net->node(n1).table().at(1, dj).contains(n2));
  EXPECT_TRUE(g.net->node(n2).table().at(1, di).contains(n1));
  g.net->check_property1();
}

TEST(ParallelJoin, ObjectsAvailableDuringInsertions) {
  auto g = grow_ring_network(96, 124);
  Rng rng(11);
  std::vector<Guid> guids;
  for (int i = 0; i < 8; ++i) {
    const Guid guid = make_guid(*g.net, 600 + i);
    g.net->publish(g.ids[rng.next_u64(g.ids.size())], guid);
    guids.push_back(guid);
  }
  // Interleave lookups with the insertion batch via scheduled events.
  std::size_t failures = 0;
  for (int probe_i = 0; probe_i < 40; ++probe_i) {
    g.net->events().schedule_at(0.01 + 0.02 * probe_i, [&, probe_i] {
      const Guid& guid = guids[static_cast<std::size_t>(probe_i) % guids.size()];
      auto ids = g.net->node_ids();
      Rng local(static_cast<std::uint64_t>(probe_i));
      const NodeId client = ids[local.next_u64(ids.size())];
      if (!g.net->locate(client, guid).found) ++failures;
    });
  }
  ParallelJoinCoordinator coord(*g.net, 0.05);
  std::vector<ParallelJoinCoordinator::Request> reqs;
  for (int i = 0; i < 12; ++i)
    reqs.push_back(req(96 + i, g.ids[static_cast<std::size_t>(i) * 5 %
                                     g.ids.size()],
                       0.005 * i));
  coord.run(reqs);
  EXPECT_EQ(failures, 0u) << "lookups failed while nodes were inserting";
  g.net->check_property4();
}

TEST(ParallelJoin, LargeBatchOnSmallCore) {
  // Stress: 24 simultaneous inserts on a 16-node core.
  auto g = grow_ring_network(16, 125);
  ParallelJoinCoordinator coord(*g.net, 0.1);
  std::vector<ParallelJoinCoordinator::Request> reqs;
  for (int i = 0; i < 24; ++i)
    reqs.push_back(req(16 + i, g.ids[static_cast<std::size_t>(i) %
                                     g.ids.size()],
                       0.002 * i));
  coord.run(reqs);
  EXPECT_EQ(g.net->size(), 40u);
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
  // Root uniqueness across the merged network.
  for (int obj = 0; obj < 10; ++obj) {
    const Guid guid = make_guid(*g.net, 1200 + obj);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : g.net->node_ids())
      roots.insert(g.net->route_to_root(src, guid).root.value());
    EXPECT_EQ(roots.size(), 1u);
  }
}

TEST(ParallelJoin, PeekAgreesWithMutatingRouteMidFlight) {
  // route_to_root_peek vs route_to_root while joins are mid-flight with
  // pinned entries present (event-coordinator side; the threaded-driver
  // side lives in test_threaded_join.cc).  A reference pass learns each
  // join's [start, core] window; the probe pass replays the identical
  // schedule (probes neither mutate tables nor draw from the network Rng,
  // so the protocol timeline is unperturbed) and compares both route
  // variants in the thick of the multicasts.
  auto build = [] { return grow_ring_network(64, 127); };
  auto reqs_for = [](const test::GrownNetwork& g) {
    std::vector<ParallelJoinCoordinator::Request> reqs;
    for (int i = 0; i < 12; ++i)
      reqs.push_back(req(64 + i,
                         g.ids[static_cast<std::size_t>(i) * 5 % g.ids.size()],
                         0.003 * i));
    return reqs;
  };

  auto reference = build();
  ParallelJoinCoordinator ref_coord(*reference.net, 0.05);
  const auto ref_outcomes = ref_coord.run(reqs_for(reference));

  auto g = build();
  std::size_t compared = 0, with_pins = 0;
  auto any_pins = [&] {
    for (const NodeId& id : g.net->node_ids()) {
      const auto& t = g.net->node(id).table();
      for (unsigned l = 0; l < t.levels(); ++l)
        for (unsigned j = 0; j < t.radix(); ++j)
          if (!t.at(l, j).pinned_members().empty()) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < ref_outcomes.size(); ++i) {
    // Midpoint of the join's multicast window: its pin is live then.
    const double t =
        0.5 * (ref_outcomes[i].start_time + ref_outcomes[i].core_time);
    g.net->events().schedule_at(t, [&, i] {
      if (any_pins()) ++with_pins;
      Rng local(static_cast<std::uint64_t>(i) * 77 + 1);
      const auto ids = g.net->node_ids();
      const NodeId src = ids[local.next_u64(ids.size())];
      const Guid target = make_guid(*g.net, 3000 + i);
      const NodeId peek = g.net->router().route_to_root_peek(src, target).root;
      const NodeId mut = g.net->route_to_root(src, target).root;
      EXPECT_EQ(peek.value(), mut.value()) << "probe " << i;
      ++compared;
    });
  }
  ParallelJoinCoordinator coord(*g.net, 0.05);
  coord.run(reqs_for(g));
  EXPECT_EQ(compared, ref_outcomes.size());
  EXPECT_GT(with_pins, 0u) << "probes must sample mid-flight pinned state";
  g.net->check_property1();
}

TEST(ParallelJoin, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    auto g = grow_ring_network(32, seed);
    ParallelJoinCoordinator coord(*g.net, 0.05);
    std::vector<ParallelJoinCoordinator::Request> reqs;
    for (int i = 0; i < 6; ++i)
      reqs.push_back(req(32 + i, g.ids[static_cast<std::size_t>(i) %
                                       g.ids.size()],
                         0.001 * i));
    const auto outcomes = coord.run(reqs);
    std::vector<std::uint64_t> ids;
    for (const auto& o : outcomes) ids.push_back(o.id.value());
    return ids;
  };
  EXPECT_EQ(run_once(126), run_once(126));
}

}  // namespace
}  // namespace tap
