// Fault-tolerance machinery: multi-root retry (Observation 1), backup
// links (R > 1, §2.4), the PRR secondary-search variant, the heartbeat
// sweep, and the store-at-root ablation's contract.
#include <gtest/gtest.h>

#include <set>

#include "src/baselines/root_store.h"
#include "src/common/stats.h"
#include "test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::make_guid;
using test::small_params;
using test::static_ring_network;

// ----------------------------------------------- Observation 1: retries

TEST(MultiRoot, RetryFindsObjectAfterRootFailure) {
  TapestryParams p = small_params();
  p.root_multiplicity = 3;
  p.retry_all_roots = true;
  auto g = grow_ring_network(128, 140, p);
  const Guid guid = make_guid(*g.net, 1);
  g.net->publish(g.ids[7], guid);

  // Fail the salt-0 root; queries drawing that root must fail over to the
  // other salted names without any republish.
  const NodeId root0 = g.net->surrogate_root(salted_guid(guid, 0));
  if (root0 == g.ids[7]) GTEST_SKIP() << "server happens to be root";
  g.net->fail(root0);
  std::size_t found = 0, total = 0;
  for (const NodeId& c : g.net->node_ids()) {
    ++total;
    if (g.net->locate(c, guid).found) ++found;
  }
  EXPECT_EQ(found, total) << "retry over the root set must mask the failure";
}

TEST(MultiRoot, WithoutRetrySomeQueriesMissAfterRootFailure) {
  TapestryParams p = small_params();
  // This measures the base miss behaviour after a root death; the
  // replicated backend would mask the dead root via quorum reads, so pin
  // the reference store regardless of the TAP_STORE matrix leg.
  p.store_backend = StoreBackend::kMemory;
  p.store_dir.clear();
  p.root_multiplicity = 3;
  p.retry_all_roots = false;  // single random root per query (base behaviour)
  auto g = grow_ring_network(128, 141, p);
  const Guid guid = make_guid(*g.net, 2);
  g.net->publish(g.ids[9], guid);
  const NodeId root0 = g.net->surrogate_root(salted_guid(guid, 0));
  if (root0 == g.ids[9]) GTEST_SKIP() << "server happens to be root";
  g.net->fail(root0);
  std::size_t misses = 0;
  for (int q = 0; q < 200; ++q) {
    const auto ids = g.net->node_ids();
    if (!g.net->locate(ids[static_cast<std::size_t>(q) % ids.size()], guid)
             .found)
      ++misses;
  }
  // Roughly a third of queries draw the dead root and miss.
  EXPECT_GT(misses, 20u);
}

TEST(MultiRoot, RetryCostBoundedByRootCount) {
  TapestryParams p = small_params();
  p.root_multiplicity = 4;
  p.retry_all_roots = true;
  auto g = static_ring_network(128, 142, p);
  const Guid guid = make_guid(*g.net, 3);
  // Query for a *nonexistent* object pays all four attempts, no more.
  Trace t;
  const LocateResult r = g.net->locate(g.ids[0], guid, &t);
  EXPECT_FALSE(r.found);
  EXPECT_GT(t.messages(), 0u);
  // Each attempt is O(log n) hops; four attempts stay well under 8*digits.
  EXPECT_LE(t.messages(), 4u * g.net->params().id.num_digits * 2u);
}

TEST(MultiRoot, AllRootsHoldPointersIndependently) {
  TapestryParams p = small_params();
  p.root_multiplicity = 4;
  auto g = static_ring_network(128, 143, p);
  const Guid guid = make_guid(*g.net, 4);
  g.net->publish(g.ids[11], guid);
  std::set<std::uint64_t> roots;
  for (unsigned salt = 0; salt < 4; ++salt) {
    const NodeId root = g.net->surrogate_root(salted_guid(guid, salt));
    roots.insert(root.value());
    EXPECT_FALSE(
        g.net->node(root).store().find_all(salted_guid(guid, salt)).empty());
  }
  // Salted names are independent, so the roots are (almost surely) distinct.
  EXPECT_GE(roots.size(), 3u);
}

// ------------------------------------------------- backup links (R > 1)

TEST(BackupLinks, SecondaryTakesOverInstantlyOnPrimaryDeath) {
  auto g = static_ring_network(128, 144);  // R = 3
  // Find a slot with at least two live members; kill the primary and
  // verify a single route step fails over without a replacement search
  // (the repair prunes the corpse and promotes the stored secondary).
  for (const NodeId& id : g.ids) {
    const auto& table = g.net->node(id).table();
    for (unsigned j = 0; j < 16; ++j) {
      const auto& set = table.at(0, j);
      if (set.size() < 2) continue;
      const NodeId primary = *set.primary();
      if (primary == id || !g.net->contains(primary)) continue;
      const NodeId secondary = set.entries()[1].id;
      if (!g.net->contains(secondary)) continue;
      g.net->fail(primary);
      // Route a guid whose first digit is j from this node: the step must
      // reach the promoted secondary (or another live member).
      Guid guid = make_guid(*g.net, 900).with_digit(0, j);
      const RouteResult rr = g.net->route_to_root(id, guid);
      ASSERT_GE(rr.path.size(), 2u);
      EXPECT_FALSE(rr.path[1] == primary);
      EXPECT_TRUE(g.net->contains(rr.path[1]));
      // The slot no longer lists the corpse.
      EXPECT_FALSE(g.net->node(id).table().at(0, j).contains(primary));
      return;  // one scenario suffices; the loop guards against misses
    }
  }
  FAIL() << "no testable slot found";
}

TEST(BackupLinks, RedundancyOneStillRoutesViaReplacementSearch) {
  TapestryParams p = small_params();
  p.redundancy = 1;
  auto g = grow_ring_network(96, 145, p);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    auto ids = g.net->node_ids();
    g.net->fail(ids[rng.next_u64(ids.size())]);
  }
  // With no backups, transient root divergence is possible while repairs
  // are in flight (the §5.2 caveat: replacement multicasts assume complete
  // tables); the periodic heartbeat restores consistency.
  g.net->heartbeat_sweep();
  for (int obj = 0; obj < 20; ++obj) {
    const Guid guid = make_guid(*g.net, 700 + obj);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : g.net->node_ids())
      roots.insert(g.net->route_to_root(src, guid).root.value());
    EXPECT_EQ(roots.size(), 1u);
  }
}

// ---------------------------------------------- PRR secondary search

TEST(SecondarySearch, FindsSameObjectsAsBase) {
  TapestryParams p = small_params();
  p.prr_secondary_search = true;
  auto g = static_ring_network(128, 146, p);
  Rng rng(2);
  for (int i = 0; i < 15; ++i) {
    const Guid guid = make_guid(*g.net, 300 + i);
    g.net->publish(g.ids[rng.next_u64(g.ids.size())], guid);
    for (std::size_t c = 0; c < g.ids.size(); c += 9)
      EXPECT_TRUE(g.net->locate(g.ids[c], guid).found);
  }
}

TEST(SecondarySearch, NeverWorseStretchOnAverageCostsMoreMessages) {
  auto base = static_ring_network(256, 147, small_params());
  TapestryParams p = small_params();
  p.prr_secondary_search = true;
  auto prr = static_ring_network(256, 147, p);
  ASSERT_EQ(base.ids, prr.ids);

  Rng wl(3);
  Summary base_lat, prr_lat, base_msgs, prr_msgs;
  for (int q = 0; q < 150; ++q) {
    const Guid guid = make_guid(*base.net, 500 + q);
    const std::size_t si = wl.next_u64(base.ids.size());
    base.net->publish(base.ids[si], guid);
    prr.net->publish(prr.ids[si], guid);
    const std::size_t ci = (si + 1) % base.ids.size();  // nearby client
    Trace tb, tp;
    const LocateResult rb = base.net->locate(base.ids[ci], guid, &tb);
    const LocateResult rp = prr.net->locate(prr.ids[ci], guid, &tp);
    ASSERT_TRUE(rb.found && rp.found);
    base_lat.add(rb.latency);
    prr_lat.add(rp.latency);
    base_msgs.add(double(tb.messages()));
    prr_msgs.add(double(tp.messages()));
  }
  // The empirical §2.4 finding (see bench_ablation): with R-closest
  // tables the query's primaries are already on the publish path, so the
  // PRR machinery buys little and costs probe latency — bounded, though.
  EXPECT_LE(prr_lat.mean(), base_lat.mean() * 3.0)
      << "secondary probes should stay within local-neighborhood cost";
  EXPECT_GT(prr_msgs.mean(), base_msgs.mean())
      << "secondary probes and deposits must show up in message counts";
}

// -------------------------------------------------- heartbeat sweep

TEST(Heartbeat, PurgesEveryCorpseReference) {
  auto g = grow_ring_network(96, 148);
  Rng rng(4);
  std::vector<NodeId> dead;
  for (int i = 0; i < 12; ++i) {
    auto ids = g.net->node_ids();
    const NodeId victim = ids[rng.next_u64(ids.size())];
    g.net->fail(victim);
    dead.push_back(victim);
  }
  g.net->heartbeat_sweep();
  for (const NodeId& id : g.net->node_ids()) {
    const auto& table = g.net->node(id).table();
    for (unsigned l = 0; l < g.net->params().id.num_digits; ++l)
      for (unsigned j = 0; j < 16; ++j)
        for (const auto& e : table.at(l, j).entries())
          for (const NodeId& corpse : dead)
            EXPECT_FALSE(e.id == corpse)
                << id.to_string() << " still references a corpse";
  }
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
}

TEST(Heartbeat, IdempotentOnHealthyNetwork) {
  auto g = grow_ring_network(64, 149);
  Trace first, second;
  g.net->heartbeat_sweep(&first);
  g.net->heartbeat_sweep(&second);
  // Probes cost the same each round; no repair traffic on a healthy net.
  EXPECT_EQ(first.messages(), second.messages());
  g.net->check_property1();
}

TEST(Heartbeat, CountsProbeTraffic) {
  auto g = grow_ring_network(48, 150);
  Trace t;
  g.net->heartbeat_sweep(&t);
  // At least one probe per stored (non-self) table entry.
  EXPECT_GE(t.messages(), g.net->total_table_entries());
}

// ------------------------------------------------ store-at-root ablation

TEST(RootStore, ContractPublishLocate) {
  Rng rng(5);
  RingMetric space(96, rng);
  RootStoreOverlay scheme(space, small_params(), 151);
  for (Location i = 0; i < 96; ++i) scheme.add_node(i, nullptr);
  scheme.finalize();
  Rng wl(6);
  for (std::uint64_t key = 0; key < 10; ++key) {
    const auto server = wl.next_u64(96);
    scheme.publish(server, key, nullptr);
    for (std::size_t client = 0; client < 96; client += 11) {
      const SchemeLocate r = scheme.locate(client, key, nullptr);
      ASSERT_TRUE(r.found);
      EXPECT_EQ(r.server, server);
    }
  }
  EXPECT_FALSE(scheme.locate(0, 999999, nullptr).found);
}

TEST(RootStore, PaysRootTripForNearbyObjects) {
  Rng rng(7);
  RingMetric space(256, rng);
  RootStoreOverlay root_scheme(space, small_params(), 152);
  for (Location i = 0; i < 256; ++i) root_scheme.add_node(i, nullptr);
  root_scheme.finalize();

  // Tapestry on the same space/params for contrast.
  auto tap_net = std::make_unique<Network>(space, small_params(), 152);
  for (Location i = 0; i < 256; ++i) tap_net->insert_static(i);
  tap_net->rebuild_static_tables();

  Rng wl(8);
  Summary tap_stretch, root_stretch;
  for (int q = 0; q < 100; ++q) {
    const std::uint64_t key = 600 + q;
    const std::size_t server = wl.next_u64(256);
    const std::size_t client = (server + 1) % 256;  // adjacent pair
    root_scheme.publish(server, key, nullptr);
    const auto ids = tap_net->node_ids();
    (void)ids;
    const SchemeLocate rr = root_scheme.locate(client, key, nullptr);
    ASSERT_TRUE(rr.found);
    const double direct = space.distance(client, server);
    if (direct > 1e-9) root_stretch.add(rr.latency / direct);
  }
  // Without pointer trails, nearby objects cost root-trip latency: the
  // stretch for adjacent pairs is enormous.
  EXPECT_GT(root_stretch.mean(), 20.0)
      << "store-at-root should lose the nearby-object advantage (§6.1)";
}

}  // namespace
}  // namespace tap
