// Baseline comparators: each must locate correctly (its own invariants),
// and collectively they must show the structural contrasts Table 1 and the
// stretch experiments rely on.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/baselines/blind_prefix.h"
#include "src/baselines/can.h"
#include "src/baselines/central.h"
#include "src/baselines/chord.h"
#include "src/baselines/general_metric.h"
#include "src/baselines/tapestry_scheme.h"
#include "src/common/stats.h"
#include "src/metric/general.h"
#include "src/metric/ring.h"

namespace tap {
namespace {

constexpr std::uint64_t kSeed = 7777;

std::unique_ptr<LocationScheme> make_scheme(const std::string& kind,
                                            const MetricSpace& space) {
  if (kind == "central") return std::make_unique<CentralDirectory>(space);
  if (kind == "chord") return std::make_unique<ChordNetwork>(space, kSeed);
  if (kind == "can") return std::make_unique<CanNetwork>(space, kSeed);
  if (kind == "blind")
    return std::make_unique<BlindPrefixOverlay>(space, IdSpec{4, 8}, kSeed);
  if (kind == "prrv0")
    return std::make_unique<GeneralMetricScheme>(space, kSeed);
  if (kind == "tapestry") {
    TapestryParams p;
    p.id = IdSpec{4, 8};
    return std::make_unique<TapestryScheme>(space, p, kSeed);
  }
  ADD_FAILURE() << "unknown scheme " << kind;
  return nullptr;
}

class SchemeContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeContractTest, PublishThenLocateFromEverywhere) {
  Rng rng(1);
  RingMetric space(96, rng);
  auto scheme = make_scheme(GetParam(), space);
  for (Location i = 0; i < 96; ++i) scheme->add_node(i, nullptr);
  scheme->finalize();
  Rng wl(2);
  for (std::uint64_t key = 0; key < 12; ++key) {
    const auto server = wl.next_u64(96);
    scheme->publish(server, key, nullptr);
    for (std::size_t client = 0; client < 96; client += 7) {
      const SchemeLocate r = scheme->locate(client, key, nullptr);
      EXPECT_TRUE(r.found) << GetParam() << " key " << key;
      EXPECT_EQ(r.server, server);
    }
  }
}

TEST_P(SchemeContractTest, MissingKeyNotFound) {
  Rng rng(3);
  RingMetric space(48, rng);
  auto scheme = make_scheme(GetParam(), space);
  for (Location i = 0; i < 48; ++i) scheme->add_node(i, nullptr);
  scheme->finalize();
  const SchemeLocate r = scheme->locate(0, 424242, nullptr);
  EXPECT_FALSE(r.found);
}

TEST_P(SchemeContractTest, MultipleReplicasResolveToOne) {
  Rng rng(4);
  RingMetric space(64, rng);
  auto scheme = make_scheme(GetParam(), space);
  for (Location i = 0; i < 64; ++i) scheme->add_node(i, nullptr);
  scheme->finalize();
  scheme->publish(5, 99, nullptr);
  scheme->publish(50, 99, nullptr);
  for (std::size_t client = 0; client < 64; client += 5) {
    const SchemeLocate r = scheme->locate(client, 99, nullptr);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(r.server == 5 || r.server == 50);
  }
}

TEST_P(SchemeContractTest, TraceMatchesReportedLatency) {
  Rng rng(5);
  RingMetric space(64, rng);
  auto scheme = make_scheme(GetParam(), space);
  for (Location i = 0; i < 64; ++i) scheme->add_node(i, nullptr);
  scheme->finalize();
  scheme->publish(9, 7, nullptr);
  Trace t;
  const SchemeLocate r = scheme->locate(40, 7, &t);
  ASSERT_TRUE(r.found);
  // The trace records at least the reported query path (schemes may also
  // charge parallel probe traffic beyond the critical path).
  EXPECT_GE(t.latency() + 1e-12, r.latency);
  EXPECT_GE(t.messages(), r.hops);
}

TEST_P(SchemeContractTest, StateGrowsWithObjects) {
  Rng rng(6);
  RingMetric space(32, rng);
  auto scheme = make_scheme(GetParam(), space);
  for (Location i = 0; i < 32; ++i) scheme->add_node(i, nullptr);
  scheme->finalize();
  const std::size_t before = scheme->total_state();
  for (std::uint64_t key = 0; key < 10; ++key)
    scheme->publish(key % 32, 1000 + key, nullptr);
  EXPECT_GT(scheme->total_state(), before);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeContractTest,
                         ::testing::Values("central", "chord", "can", "blind",
                                           "prrv0", "tapestry"),
                         [](const auto& ti) { return ti.param; });

// ------------------------------------------------------------------ chord

TEST(Chord, LookupReachesRingSuccessor) {
  Rng rng(10);
  RingMetric space(128, rng);
  ChordNetwork chord(space, 11);
  for (Location i = 0; i < 128; ++i) chord.add_node(i, nullptr);
  chord.finalize();
  Rng probe(12);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t k = probe() & ((1ull << 24) - 1);
    const std::size_t owner = chord.successor_handle(k);
    // The owner's ring key is the first at or after k (cyclically): no
    // other node key lies in (k, owner_key).
    const std::uint64_t ok = chord.key_of(owner);
    for (std::size_t h = 0; h < chord.size(); ++h) {
      const std::uint64_t hk = chord.key_of(h);
      if (hk == ok) continue;
      const bool between = ok >= k ? (hk >= k && hk < ok)
                                   : (hk >= k || hk < ok);
      EXPECT_FALSE(between) << "node " << h << " is a closer successor";
    }
  }
}

TEST(Chord, HopsAreLogarithmic) {
  Rng rng(13);
  RingMetric space(512, rng);
  ChordNetwork chord(space, 14);
  for (Location i = 0; i < 512; ++i) chord.add_node(i, nullptr);
  chord.finalize();
  Rng wl(15);
  Summary hops;
  for (int q = 0; q < 200; ++q) {
    chord.publish(wl.next_u64(512), 5000 + q, nullptr);
    Trace t;
    const SchemeLocate r = chord.locate(wl.next_u64(512), 5000 + q, &t);
    ASSERT_TRUE(r.found);
    hops.add(static_cast<double>(r.hops));
  }
  // ~ (1/2) log2(512) = 4.5 expected for Chord.
  EXPECT_LT(hops.mean(), 9.0);
  EXPECT_GT(hops.mean(), 2.0);
}

TEST(Chord, DynamicJoinCostIsPolylog) {
  Rng rng(16);
  RingMetric space(600, rng);
  ChordNetwork chord(space, 17);
  for (Location i = 0; i < 512; ++i) chord.add_node(i, nullptr);
  chord.finalize();
  Summary msgs;
  for (Location i = 512; i < 520; ++i) {
    Trace t;
    chord.add_node(i, &t);
    msgs.add(static_cast<double>(t.messages()));
  }
  // m=24 finger lookups, each a few hops when started from the previous
  // answer; far below O(n).
  EXPECT_LT(msgs.mean(), 300.0);
  EXPECT_GT(msgs.mean(), 10.0);
}

TEST(Chord, KeysTransferOnJoin) {
  Rng rng(18);
  RingMetric space(64, rng);
  ChordNetwork chord(space, 19);
  for (Location i = 0; i < 32; ++i) chord.add_node(i, nullptr);
  chord.finalize();
  for (std::uint64_t k = 0; k < 64; ++k) chord.publish(k % 32, k, nullptr);
  // Grow the ring; every key must remain locatable.
  for (Location i = 32; i < 64; ++i) {
    chord.add_node(i, nullptr);
    chord.refresh_fingers();
  }
  for (std::uint64_t k = 0; k < 64; ++k)
    EXPECT_TRUE(chord.locate((k * 7) % 64, k, nullptr).found) << k;
}

// -------------------------------------------------------------------- can

TEST(Can, ZoneTilingInvariants) {
  Rng rng(20);
  RingMetric space(200, rng);
  CanNetwork can(space, 21);
  for (Location i = 0; i < 200; ++i) {
    can.add_node(i, nullptr);
    if (i % 50 == 49) can.check_invariants();
  }
  can.check_invariants();
}

TEST(Can, GreedyRoutingConverges) {
  Rng rng(22);
  RingMetric space(128, rng);
  CanNetwork can(space, 23);
  for (Location i = 0; i < 128; ++i) can.add_node(i, nullptr);
  Rng probe(24);
  for (int t = 0; t < 100; ++t) {
    const double x = probe.next_double();
    const double y = probe.next_double();
    const std::size_t owner = can.owner_of(x, y);
    (void)owner;  // owner_of itself throws if the tiling is broken
  }
}

TEST(Can, HopsScaleAsSqrtN) {
  Rng rng(25);
  auto measure = [&](std::size_t n, std::uint64_t seed) {
    Rng r2(seed);
    RingMetric space(n, r2);
    CanNetwork can(space, seed);
    for (Location i = 0; i < n; ++i) can.add_node(i, nullptr);
    Rng wl(seed + 1);
    Summary hops;
    for (int q = 0; q < 100; ++q) {
      can.publish(wl.next_u64(n), 100 + q, nullptr);
      const SchemeLocate res = can.locate(wl.next_u64(n), 100 + q, nullptr);
      hops.add(static_cast<double>(res.hops));
    }
    return hops.mean();
  };
  const double h64 = measure(64, 26);
  const double h256 = measure(256, 27);
  // 4x nodes => ~2x hops for d=2 (allow generous slack for zone skew).
  EXPECT_LT(h256 / h64, 3.5);
  EXPECT_GT(h256 / h64, 1.1);
}

// ----------------------------------------------------------- blind prefix

TEST(BlindPrefix, RootIsUniquePerKey) {
  Rng rng(28);
  RingMetric space(128, rng);
  BlindPrefixOverlay blind(space, IdSpec{4, 8}, 29);
  for (Location i = 0; i < 128; ++i) blind.add_node(i, nullptr);
  blind.finalize();
  // Theorem 2 holds for any hole-free prefix mesh: publishing from any
  // server and querying from anywhere must meet (checked indirectly by the
  // contract test); here check root stability directly.
  for (std::uint64_t k = 0; k < 50; ++k)
    EXPECT_EQ(blind.root_of(k), blind.root_of(k));
}

TEST(BlindPrefix, WorseStretchThanTapestryOnAverage) {
  // The headline ablation: identical mesh, random neighbor choice, much
  // worse stretch for nearby objects.
  Rng rng(30);
  RingMetric space(256, rng);

  BlindPrefixOverlay blind(space, IdSpec{4, 8}, 31);
  TapestryParams p;
  p.id = IdSpec{4, 8};
  TapestryScheme tap(space, p, 31);
  for (Location i = 0; i < 256; ++i) {
    blind.add_node(i, nullptr);
    tap.add_node(i, nullptr);
  }
  blind.finalize();

  // The locality advantage shows on *nearby* objects (the regime the
  // paper's stretch guarantee targets): query each object from the ring-
  // adjacent node.  On such pairs proximity-blind routing pays roughly a
  // network-diameter detour while Tapestry stays near the direct distance.
  Rng wl(32);
  double blind_total = 0, tap_total = 0;
  int counted = 0;
  for (int q = 0; q < 120; ++q) {
    const auto server = wl.next_u64(256);
    const auto client = (server + 1) % 256;  // ring-adjacent location
    const std::uint64_t key = 9000 + static_cast<std::uint64_t>(q);
    blind.publish(server, key, nullptr);
    tap.publish(server, key, nullptr);
    const SchemeLocate rb = blind.locate(client, key, nullptr);
    const SchemeLocate rt = tap.locate(client, key, nullptr);
    ASSERT_TRUE(rb.found && rt.found);
    const double direct = space.distance(client, server);
    if (direct < 1e-9) continue;
    blind_total += rb.latency / direct;
    tap_total += rt.latency / direct;
    ++counted;
  }
  ASSERT_GT(counted, 50);
  EXPECT_GT(blind_total / counted, 3.0 * (tap_total / counted))
      << "proximity-blind tables should cost much more stretch on nearby "
         "objects";
}

// ----------------------------------------------------------------- prrv0

TEST(GeneralMetric, AlwaysFindsViaAnchorFallback) {
  Rng rng(33);
  HighDimEuclidean space(128, 6, rng);  // high expansion: §7's territory
  GeneralMetricScheme scheme(space, 34);
  for (Location i = 0; i < 128; ++i) scheme.add_node(i, nullptr);
  scheme.finalize();
  Rng wl(35);
  for (std::uint64_t k = 0; k < 40; ++k) {
    scheme.publish(wl.next_u64(128), k, nullptr);
    EXPECT_TRUE(scheme.locate(wl.next_u64(128), k, nullptr).found) << k;
  }
}

TEST(GeneralMetric, SpacePerNodeIsPolylog) {
  Rng rng(36);
  HighDimEuclidean space(256, 6, rng);
  GeneralMetricScheme scheme(space, 37);
  for (Location i = 0; i < 256; ++i) scheme.add_node(i, nullptr);
  scheme.finalize();
  const double per_node =
      static_cast<double>(scheme.total_state()) / 256.0;
  // levels * classes = O(log^2 n) pointers per node; for n=256 that is
  // 9 * 16 = 144 before object lists.
  EXPECT_LE(per_node, 1.2 * static_cast<double>(scheme.num_levels() *
                                                scheme.num_classes()));
}

TEST(GeneralMetric, StretchIsPolylogOnHighDim) {
  Rng rng(38);
  HighDimEuclidean space(256, 6, rng);
  GeneralMetricScheme scheme(space, 39);
  for (Location i = 0; i < 256; ++i) scheme.add_node(i, nullptr);
  scheme.finalize();
  Rng wl(40);
  Summary stretch;
  for (int q = 0; q < 150; ++q) {
    const auto server = wl.next_u64(256);
    const auto client = wl.next_u64(256);
    if (server == client) continue;
    const std::uint64_t key = 500 + static_cast<std::uint64_t>(q);
    scheme.publish(server, key, nullptr);
    const SchemeLocate r = scheme.locate(client, key, nullptr);
    ASSERT_TRUE(r.found);
    const double direct = space.distance(client, server);
    if (direct < 1e-9) continue;
    stretch.add(r.latency / direct);
  }
  // Theorem 7: distance to the answering representative is
  // O(d log n) w.h.p.; total latency O(d log^2 n).  For n=256 (log n = 8,
  // log^2 n = 64) the average should be far below that worst case.
  EXPECT_LT(stretch.mean(), 64.0);
}

// ---------------------------------------------------------------- central

TEST(Central, LatencyIndependentOfObjectDistance) {
  Rng rng(41);
  RingMetric space(128, rng);
  CentralDirectory central(space);
  for (Location i = 0; i < 128; ++i) central.add_node(i, nullptr);
  central.finalize();
  // Publish next door to the client; the query still visits the directory.
  central.publish(1, 1, nullptr);
  const SchemeLocate near = central.locate(2, 1, nullptr);
  ASSERT_TRUE(near.found);
  const double direct = space.distance(2, 1);
  const double to_dir = space.distance(2, central.directory());
  if (to_dir > 4 * direct) {  // generic position: directory is not adjacent
    EXPECT_GT(near.latency, 2.0 * direct)
        << "central directory should not exploit locality";
  }
}

}  // namespace
}  // namespace tap
