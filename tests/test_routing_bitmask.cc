// Occupancy-bitmask invariants: the per-row masks RoutingTable maintains
// must mirror slot contents through every mutation path (insert, remove,
// pin/unpin, repair, full churn), the bitmask-driven Router::select_slot
// must agree digit-for-digit with the preserved linear-scan reference, and
// the const peek read path must agree with the mutating walk.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "src/tapestry/routing_table.h"
#include "test_util.h"

namespace tap {
namespace {

using test::make_guid;
using test::small_params;

/// Full-table invariant: every slot's mask bit equals its non-emptiness,
/// and rows contain no stray bits beyond the radix.
void expect_masks_mirror_slots(const RoutingTable& t) {
  for (unsigned l = 0; l < t.levels(); ++l) {
    const std::uint64_t* row = t.row_occupancy(l);
    for (unsigned j = 0; j < t.radix(); ++j) {
      EXPECT_EQ(t.slot_empty(l, j), t.at(l, j).empty())
          << "level " << l << " digit " << j;
      EXPECT_EQ(occ::test(row, j), !t.at(l, j).empty())
          << "level " << l << " digit " << j;
    }
    for (unsigned b = t.radix(); b < t.occupancy_words() * 64; ++b)
      EXPECT_FALSE(occ::test(row, b)) << "stray bit " << b;
  }
}

TEST(OccupancyMask, TracksEveryMutation) {
  const IdSpec spec{4, 4};
  Rng rng(21);
  const NodeId self = Id::random(spec, rng);
  RoutingTable t(spec, self, 2);
  expect_masks_mirror_slots(t);  // self-entries seeded

  std::vector<std::pair<unsigned, NodeId>> members;  // (level, id)
  for (int op = 0; op < 2000; ++op) {
    const unsigned l = static_cast<unsigned>(rng.next_u64(spec.num_digits));
    switch (rng.next_u64(4)) {
      case 0: {  // insert
        const NodeId id = Id::random(spec, rng);
        if (id == self) break;
        if (t.consider(l, id.digit(l), id, rng.next_double()).inserted)
          members.emplace_back(l, id);
        break;
      }
      case 1: {  // remove a known member (or a random absentee)
        if (!members.empty() && rng.bernoulli(0.8)) {
          const auto [ml, id] = members[rng.next_u64(members.size())];
          t.remove(ml, id.digit(ml), id);
        } else {
          const NodeId id = Id::random(spec, rng);
          if (!(id == self)) t.remove(l, id.digit(l), id);
        }
        break;
      }
      case 2: {  // pin
        const NodeId id = Id::random(spec, rng);
        if (id == self) break;
        t.pin(l, id.digit(l), id, rng.next_double());
        members.emplace_back(l, id);
        break;
      }
      default: {  // unpin
        if (members.empty()) break;
        const auto [ml, id] = members[rng.next_u64(members.size())];
        std::vector<NodeId> evicted;
        t.unpin(ml, id.digit(ml), id, evicted);
        break;
      }
    }
    if (op % 50 == 0) expect_masks_mirror_slots(t);
  }
  expect_masks_mirror_slots(t);
}

TEST(OccupancyMask, ConsistentAfterFullChurn) {
  auto g = test::grow_ring_network(72, 31);
  Rng rng(5);
  // Joins, voluntary leaves, crashes, repair sweeps — every mesh-mutating
  // path in the system funnels through the RoutingTable wrappers.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) g.net->join(72 + round * 8 + i);
    auto ids = g.net->node_ids();
    g.net->leave(ids[rng.next_u64(ids.size())]);
    ids = g.net->node_ids();
    g.net->fail(ids[rng.next_u64(ids.size())]);
    g.net->heartbeat_sweep();
  }
  for (const auto& n : g.net->registry().nodes())
    expect_masks_mirror_slots(n->table());  // tombstones included
}

TEST(OccupancyMask, MultiWordRowsByteRadix) {
  const IdSpec spec{8, 4};  // radix 256: four 64-bit words per row
  const NodeId self(spec, 0xAA112233u);  // digit 0 = 170
  RoutingTable t(spec, self, 2);
  ASSERT_EQ(t.occupancy_words(), 4u);
  expect_masks_mirror_slots(t);

  // Hit digits in every word, including the word boundaries.
  for (const unsigned digit : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 200u, 255u}) {
    t.consider(0, digit, self.with_digit(0, digit), 1.0 + digit);
    EXPECT_FALSE(t.slot_empty(0, digit));
  }
  expect_masks_mirror_slots(t);

  // occ:: helpers across word boundaries (self occupies digit 170).
  const std::uint64_t* row = t.row_occupancy(0);
  EXPECT_EQ(occ::next(row, 256, 64), 64u);
  EXPECT_EQ(occ::next(row, 256, 66), 127u);
  EXPECT_EQ(occ::prev(row, 256, 62), 1u);
  EXPECT_EQ(occ::next_wrap(row, 256, 201), 255u);
  EXPECT_EQ(occ::next_wrap(row, 256, 129), 170u);  // the self slot
  for (const unsigned digit : {63u, 64u, 255u})
    t.remove(0, digit, self.with_digit(0, digit));
  expect_masks_mirror_slots(t);
}

// ---------------------------------------------------------------------
// select_slot: bitmask fast path vs the linear-scan reference
// ---------------------------------------------------------------------

void expect_select_agreement(const Network& net,
                             const std::vector<NodeId>& ids,
                             std::uint64_t seed) {
  Rng rng(seed);
  const Router& router = net.router();
  const unsigned digits = net.params().id.num_digits;
  const unsigned radix = net.params().id.radix();
  for (int probe = 0; probe < 4000; ++probe) {
    const TapestryNode& at = net.node(ids[rng.next_u64(ids.size())]);
    const unsigned level = static_cast<unsigned>(rng.next_u64(digits));
    const unsigned desired = static_cast<unsigned>(rng.next_u64(radix));
    const bool start_hole = rng.bernoulli(0.3);

    // Optional exclude set: a random sample of overlay ids.
    Router::ExcludeSet exclude;
    const bool use_exclude = rng.bernoulli(0.3);
    if (use_exclude)
      for (int k = 0; k < 12; ++k)
        exclude.insert(ids[rng.next_u64(ids.size())].value());

    bool hole_fast = start_hole, hole_ref = start_hole;
    const auto fast = router.select_slot(at, level, desired, hole_fast,
                                         use_exclude ? &exclude : nullptr);
    const auto ref = router.select_slot_reference(
        at, level, desired, hole_ref, use_exclude ? &exclude : nullptr);
    ASSERT_EQ(fast, ref) << "level " << level << " desired " << desired;
    ASSERT_EQ(hole_fast, hole_ref) << "past_hole divergence";
  }
}

TEST(SelectSlot, BitmaskAgreesWithReferenceNative) {
  auto g = test::static_ring_network(128, 3,
                                     small_params(RoutingMode::kTapestryNative));
  expect_select_agreement(*g.net, g.ids, 91);
}

TEST(SelectSlot, BitmaskAgreesWithReferencePrr) {
  auto g =
      test::static_ring_network(128, 3, small_params(RoutingMode::kPrrLike));
  expect_select_agreement(*g.net, g.ids, 92);
}

TEST(SelectSlot, AgreesOnSparseGrownTablesWithHoles) {
  // A small grown network has rows dominated by holes at deep levels —
  // the wrap-around scans where the bitmask shortcut must still match.
  auto g = test::grow_ring_network(24, 13);
  expect_select_agreement(*g.net, g.ids, 93);
}

// ---------------------------------------------------------------------
// Peek (const, mutation-free) vs mutating route agreement
// ---------------------------------------------------------------------

TEST(PeekRoute, AgreesWithMutatingWalkHealthyAndRepaired) {
  auto g = test::grow_ring_network(64, 17);
  auto compare_routes = [&](std::uint64_t salt) {
    Rng rng(salt);
    const auto ids = g.net->node_ids();
    for (int q = 0; q < 40; ++q) {
      const Guid guid = make_guid(*g.net, salt * 1000 + q);
      const NodeId src = ids[rng.next_u64(ids.size())];
      // Peek first: it must not perturb what the mutating walk then sees.
      const RouteResult peek = g.net->router().route_to_root_peek(src, guid);
      const RouteResult walk = g.net->route_to_root(src, guid);
      EXPECT_EQ(peek.root, walk.root) << "root divergence";
      EXPECT_EQ(peek.hops, walk.hops);
      EXPECT_EQ(peek.path, walk.path);
      EXPECT_DOUBLE_EQ(peek.latency, walk.latency);
    }
  };
  compare_routes(1);

  // Crash a few nodes and repair; the steady state must agree again.
  Rng rng(23);
  for (int i = 0; i < 5; ++i) {
    const auto ids = g.net->node_ids();
    g.net->fail(ids[rng.next_u64(ids.size())]);
  }
  g.net->heartbeat_sweep();
  compare_routes(2);
}

}  // namespace
}  // namespace tap
