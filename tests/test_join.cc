// Dynamic node insertion (§3-§4): the grown network must satisfy the same
// invariants as the statically built one, objects must survive membership
// growth (Property 4 + availability), and the nearest-neighbor machinery
// must produce locality-correct tables.
#include <gtest/gtest.h>

#include <set>

#include "src/common/stats.h"
#include "src/metric/analysis.h"
#include "test_util.h"

namespace tap {
namespace {

using test::grow_ring_network;
using test::make_guid;
using test::small_params;
using test::static_ring_network;

class JoinModeTest : public ::testing::TestWithParam<RoutingMode> {};

TEST_P(JoinModeTest, GrownNetworkSatisfiesProperty1) {
  auto g = grow_ring_network(160, 40, small_params(GetParam()));
  g.net->check_property1();
  g.net->check_backpointer_symmetry();
}

TEST_P(JoinModeTest, GrownNetworkRootsAreUnique) {
  auto g = grow_ring_network(96, 41, small_params(GetParam()));
  for (int obj = 0; obj < 20; ++obj) {
    const Guid guid = make_guid(*g.net, 3000 + obj);
    std::set<std::uint64_t> roots;
    for (const NodeId& src : g.ids)
      roots.insert(g.net->route_to_root(src, guid).root.value());
    EXPECT_EQ(roots.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, JoinModeTest,
                         ::testing::Values(RoutingMode::kTapestryNative,
                                           RoutingMode::kPrrLike),
                         [](const auto& ti) {
                           return ti.param == RoutingMode::kTapestryNative
                                      ? "native"
                                      : "prrlike";
                         });

TEST(Join, TablesConvergeToStaticGroundTruth) {
  // §4: "the results of the insertion should be the same as if we had been
  // able to build the network from static data."  Property 2 quality of
  // the grown network should be essentially perfect.
  auto g = grow_ring_network(192, 42);
  const double quality = g.net->property2_quality();
  EXPECT_GT(quality, 0.98) << "grown tables diverge from nearest-neighbor "
                              "ground truth";
}

TEST(Join, NewNodeKnowsItsTrueNearestNeighbor) {
  // The incremental nearest-neighbor algorithm (§3) must find the closest
  // node overall: it is the primary of some level-0 slot.
  auto g = grow_ring_network(128, 43);
  for (const NodeId& id : g.ids) {
    const auto order = nearest_sorted(*g.space, g.net->node(id).location());
    // Find the nearest location that hosts a node.
    NodeId nearest{};
    for (const Location loc : order) {
      bool found = false;
      for (const NodeId& other : g.ids) {
        if (!(other == id) && g.net->node(other).location() == loc) {
          nearest = other;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    ASSERT_TRUE(nearest.valid());
    const auto prim =
        g.net->node(id).table().primary(0, nearest.digit(0));
    ASSERT_TRUE(prim.has_value());
    const double d_prim = g.net->distance(id, *prim);
    const double d_near = g.net->distance(id, nearest);
    // The slot holding the nearest node's first digit must contain a node
    // at distance <= the true nearest (i.e. the nearest itself or a tie).
    EXPECT_LE(d_prim, d_near + 1e-12);
  }
}

TEST(Join, DuplicateIdRejected) {
  auto g = grow_ring_network(16, 44);
  EXPECT_THROW(g.net->join(0, g.ids[3]), CheckError);
}

TEST(Join, JoinOnEmptyNetworkRejected) {
  Rng rng(1);
  RingMetric space(8, rng);
  Network net(space, small_params());
  EXPECT_THROW(net.join(0), CheckError);
}

TEST(Join, SecondBootstrapRejected) {
  Rng rng(1);
  RingMetric space(8, rng);
  Network net(space, small_params());
  net.bootstrap(0);
  EXPECT_THROW(net.bootstrap(1), CheckError);
}

TEST(Join, TinyNetworkGrowsCorrectly) {
  // Exercise the smallest cases: 1 -> 2 -> 3 nodes.
  Rng rng(2);
  RingMetric space(8, rng);
  Network net(space, small_params(), 99);
  const NodeId a = net.bootstrap(0);
  const NodeId b = net.join(1);
  const NodeId c = net.join(2);
  net.check_property1();
  net.check_backpointer_symmetry();
  EXPECT_EQ(net.size(), 3u);
  // All three route consistently.
  const Guid guid = make_guid(net, 55);
  const NodeId root = net.route_to_root(a, guid).root;
  EXPECT_EQ(net.route_to_root(b, guid).root, root);
  EXPECT_EQ(net.route_to_root(c, guid).root, root);
}

TEST(Join, ObjectsPublishedBeforeJoinStayAvailable) {
  Rng rng(3);
  RingMetric space(128, rng);
  Network net(space, small_params(), 7);
  std::vector<NodeId> ids{net.bootstrap(0)};
  for (std::size_t i = 1; i < 32; ++i) ids.push_back(net.join(i));

  std::vector<Guid> guids;
  for (int i = 0; i < 12; ++i) {
    const Guid guid = make_guid(net, 200 + i);
    guids.push_back(guid);
    net.publish(ids[static_cast<std::size_t>(i) % ids.size()], guid);
  }

  // Grow the network by 4x; every object must stay locatable from every
  // node after every single join (deterministic location, Property 1+4).
  for (std::size_t i = 32; i < 128; ++i) {
    ids.push_back(net.join(i));
    for (const Guid& guid : guids) {
      const LocateResult r = net.locate(ids[i % ids.size()], guid);
      ASSERT_TRUE(r.found) << "object lost after join " << i;
    }
  }
  net.check_property4();
}

TEST(Join, RootOwnershipTransfersToNewNode) {
  // If the new node becomes an object's root, the pointer must move to it
  // (LINKANDXFERROOT), otherwise surrogate routing would dead-end.
  Rng rng(4);
  RingMetric space(64, rng);
  TapestryParams p = small_params();
  Network net(space, p, 11);
  std::vector<NodeId> ids{net.bootstrap(0)};
  for (std::size_t i = 1; i < 24; ++i) ids.push_back(net.join(i));

  const Guid guid = make_guid(net, 77);
  net.publish(ids[5], guid);
  const NodeId old_root = net.surrogate_root(guid);

  // Insert a node whose id is one digit closer to the guid than the old
  // root: it must become the new root and hold the pointer.
  NodeId target = guid;
  // Perturb the last digit so the id is not the guid itself (and unused).
  unsigned last = guid.num_digits() - 1;
  NodeId candidate = target.with_digit(last, (guid.digit(last) + 1) % 16);
  if (net.contains(candidate)) GTEST_SKIP() << "improbable id collision";
  net.join(30, candidate);

  const NodeId new_root = net.surrogate_root(guid);
  EXPECT_EQ(new_root, candidate);
  EXPECT_FALSE(new_root == old_root);
  EXPECT_FALSE(net.node(new_root).store().find_all(guid).empty())
      << "root pointer did not transfer";
  // And the object remains locatable from everywhere.
  for (const NodeId& c : ids)
    EXPECT_TRUE(net.locate(c, guid).found);
  net.check_property4();
}

TEST(Join, InsertCostScalesPolylogarithmically) {
  // §4.5: insertion needs O(log^2 n) messages w.h.p.  At small n the cost
  // is dominated by the O(b·R·k) per-level candidate neighborhood, which
  // saturates; in the regime past saturation a 4x increase in n must cost
  // far less than 4x messages ((log 1024 / log 256)^2 = 1.5625x predicted).
  auto measure = [](std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    RingMetric space(n + 8, rng);
    Network net(space, small_params(), seed);
    net.bootstrap(0);
    for (std::size_t i = 1; i < n; ++i) net.join(i);
    Summary msgs;
    for (std::size_t i = 0; i < 8; ++i) {
      Trace t;
      net.join(n + i, std::nullopt, &t);
      msgs.add(static_cast<double>(t.messages()));
    }
    return msgs.mean();
  };
  const double cost256 = measure(256, 50);
  const double cost1024 = measure(1024, 51);
  EXPECT_LT(cost1024, cost256 * 3.0)
      << "insertion cost grows too fast with n (not polylog)";
}

TEST(Join, GatewayChoiceDoesNotAffectOutcomeInvariants) {
  Rng rng(5);
  RingMetric space(64, rng);
  Network net(space, small_params(), 13);
  std::vector<NodeId> ids{net.bootstrap(0)};
  for (std::size_t i = 1; i < 32; ++i) ids.push_back(net.join(i));
  // Join through every possible gateway in turn; invariants hold each time.
  for (std::size_t i = 32; i < 48; ++i) {
    const NodeId gw = ids[(i * 7) % ids.size()];
    ids.push_back(net.join_via(gw, i));
    net.check_property1();
  }
  net.check_backpointer_symmetry();
}

TEST(Join, TraceCountsRealisticCosts) {
  auto g = grow_ring_network(64, 45);
  Trace t;
  g.net->join(64, std::nullopt, &t);
  EXPECT_GT(t.messages(), 0u);
  EXPECT_GT(t.latency(), 0.0);
}

}  // namespace
}  // namespace tap
